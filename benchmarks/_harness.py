"""Shared benchmark harness: best-of-N timing and the JSON emit contract.

Every ``bench_*.py`` that records a checked-in ``BENCH_PR*.json`` follows
the same protocol, factored here so new benches cannot drift from it:

* **Best-of-N timing** (:func:`best_of`, :class:`TimedEngine`) — gates
  compare the *best* rep, so single-shot scheduler-noise spikes on
  shared CI runners don't poison a recorded baseline.
* **Write-before-gate emit** (:func:`emit_bench_doc`) — the measurement
  is written before any assertion fires (the CI artifact of a failed
  gate is exactly what a flake diagnosis needs); overwriting the
  checked-in baseline is an explicit act (``REPRO_BENCH_REFRESH=1``),
  the default out path is ``<baseline>.new.json``, a per-bench env var
  overrides it, and the baseline is read *before* any write so no
  output-path spelling turns a regression gate into a self-comparison.
* **Machine stamping** (:func:`machine_metadata`, applied inside
  :func:`emit_bench_doc`) — every emitted document carries the python
  version, platform, usable CPU count and active kernel backend under a
  ``"machine"`` key, so a checked-in baseline from a 1-CPU container and
  a CI leg on a 4-CPU runner are comparable at a glance instead of
  silently conflated.

The leading underscore keeps this module out of benchmark collection
(``benchmarks/pytest.ini`` collects ``bench_*.py`` / ``test_*.py``).
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Any, Callable


class TimedEngine:
    """Wrap an off-line engine, accumulating the seconds spent inside it.

    Replay benches race two wrappers around the *same* engine;
    subtracting the engine's time isolates the wrapper under test.
    """

    def __init__(self, fn: Callable):
        self.fn = fn
        self.seconds = 0.0

    def __call__(self, instance):
        t0 = time.perf_counter()
        out = self.fn(instance)
        self.seconds += time.perf_counter() - t0
        return out


def best_of(fn: Callable[[], Any], reps: int = 2) -> tuple[Any, float]:
    """Run ``fn`` ``reps`` times; return the fastest rep's ``(result, s)``."""
    best_out, best_s = None, float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        out = fn()
        elapsed = time.perf_counter() - t0
        if elapsed < best_s:
            best_out, best_s = out, elapsed
    return best_out, best_s


def placements(schedule) -> list[tuple]:
    """Canonical placement list for schedule-identity assertions."""
    return sorted((p.task.task_id, p.start, p.allotment) for p in schedule)


def machine_metadata() -> dict:
    """Where this measurement ran: stamped into every emitted bench doc.

    ``cpus`` is the *usable* count (CPU affinity mask where available),
    matching what the engine's worker-count default actually uses.
    """
    from repro import kernels
    from repro.experiments.engine import default_worker_count

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": f"{platform.system()}-{platform.machine()}",
        "cpus": default_worker_count(),
        "cpu_count_raw": os.cpu_count() or 1,
        "kernel_backend": kernels.backend_name(),
    }


def emit_bench_doc(
    doc: dict, baseline_path: Path, out_env: str
) -> tuple[dict | None, bool]:
    """Write ``doc`` per the emit contract (see module docstring).

    ``doc`` gains a ``"machine"`` stamp (:func:`machine_metadata`)
    unless the bench already set one.

    Returns ``(baseline, refreshing_baseline)``: the previously
    checked-in document (or ``None``) for regression gates, and whether
    this run is intentionally rewriting it (gates against the baseline
    should be skipped in that case — it would be a self-comparison).
    """
    doc.setdefault("machine", machine_metadata())
    refresh = os.environ.get("REPRO_BENCH_REFRESH") == "1"
    default_out = (
        baseline_path if refresh else baseline_path.with_suffix(".new.json")
    )
    out_path = Path(os.environ.get(out_env, default_out))
    refreshing_baseline = (
        out_path.resolve() == baseline_path.resolve() and refresh
    )
    if out_path.resolve() == baseline_path.resolve() and not refresh:
        raise AssertionError(
            f"refusing to overwrite the checked-in {baseline_path.name} "
            "baseline without REPRO_BENCH_REFRESH=1"
        )
    baseline = (
        json.loads(baseline_path.read_text()) if baseline_path.exists() else None
    )
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"  wrote {out_path}")
    return baseline, refreshing_baseline
