"""Ablation benches — quantify each DEMT design choice (DESIGN.md A1-A4).

Each bench prints the variant table (minsum ratio, cmax ratio) and asserts
the direction the paper motivates:

* the knapsack selection beats (or ties) greedy filling on minsum;
* list compaction beats the naive shelves;
* shuffling never hurts (it keeps the best candidate).
"""

from __future__ import annotations

import pytest

from repro.experiments.ablation import (
    ablate_compaction,
    ablate_merge,
    ablate_selection,
    ablate_shuffle,
)

#: Shared ablation workload parameters (moderate scale keeps benches fast).
PARAMS = dict(kind="cirne", n=100, m=64, runs=4, seed=17)


@pytest.fixture
def params(exec_backend, exec_jobs):
    """PARAMS plus the session's executor knobs (REPRO_BACKEND/REPRO_JOBS)."""
    return dict(PARAMS, backend=exec_backend, jobs=exec_jobs)


def _print(table: dict[str, tuple[float, float]]) -> None:
    print()
    for name, (minsum_r, cmax_r) in table.items():
        print(f"  {name:<16} minsum ratio {minsum_r:6.3f}   cmax ratio {cmax_r:6.3f}")


def test_ablation_selection(benchmark, params):
    table = benchmark.pedantic(
        lambda: ablate_selection(**params), rounds=1, iterations=1
    )
    _print(table)
    # The exact knapsack never loses weight vs greedy; the realised minsum
    # advantage can be small but must not invert grossly.
    assert table["knapsack"][0] <= table["greedy"][0] * 1.1


def test_ablation_merge(benchmark, params):
    table = benchmark.pedantic(lambda: ablate_merge(**params), rounds=1, iterations=1)
    _print(table)
    assert table["merge_on"][0] <= table["merge_off"][0] * 1.1


def test_ablation_compaction(benchmark, params):
    table = benchmark.pedantic(
        lambda: ablate_compaction(**params), rounds=1, iterations=1
    )
    _print(table)
    assert table["list"][0] <= table["shelf"][0] + 1e-9
    assert table["list"][1] <= table["shelf"][1] + 1e-9


def test_ablation_shuffle(benchmark, params):
    table = benchmark.pedantic(lambda: ablate_shuffle(**params), rounds=1, iterations=1)
    _print(table)
    assert table["shuffle_20"][0] <= table["shuffle_0"][0] + 1e-9
