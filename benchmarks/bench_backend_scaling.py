"""Backend scaling: serial vs thread(j) vs process(j) on DEMT campaigns.

The PR-10 thread backend's claim is *zero-copy parallelism*: no pickling,
no shared-memory staging, no per-worker warmup, with real overlap coming
from the compiled kernel layer releasing the GIL (``nogil`` numba loops,
cffi C calls — pinned by ``tests/kernels/test_gil_release.py``).  This
bench races the three backends on the same campaigns and emits
``BENCH_PR10.json``:

* **kernel-campaign legs (small / large n)** — a cell family whose cells
  are the DEMT algorithm core's three compiled inner loops (max-weight
  knapsack DP + reconstruction, binary-choice min-work DP, Graham event
  loop) on deterministically derived instances, driven through the real
  ``execute_cells`` machinery.  At large n a cell is almost entirely
  GIL-released kernel time, which is exactly the shape the thread
  backend exists for; the large leg carries the CI gate.
* **replay-clairvoyant leg (recorded, ungated)** — a natural end-to-end
  campaign (synthetic SWF window, five moldability models, clairvoyant
  DEMT offline engine) for the honest mixed-workload picture: its cells
  are mostly Python-object work between kernel calls, so thread scaling
  is Amdahl-limited there and the numbers document by how much.

Every leg asserts the three backends' records **bit-identical**, and a
separate traced pass asserts the obs *counter totals* identical too
(serial == thread == process — the tracer's exact-merge guarantee).

Gate: ``REPRO_THREAD_SPEEDUP_MIN`` (default 0 = record-only, because
this repo's dev container has a single usable CPU where no backend can
beat serial; the machine stamp in the emitted doc records that).  CI
runs the 4-CPU runners with ``REPRO_THREAD_SPEEDUP_MIN=2.0`` against
the kernel-campaign-large leg at ``jobs=4``.

Refreshing the baseline::

    PYTHONPATH=src REPRO_BENCH_REFRESH=1 python -m pytest \
        benchmarks/bench_backend_scaling.py -q -s
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np

from _harness import best_of, emit_bench_doc

from repro import kernels, obs
from repro.algorithms.knapsack import (
    knapsack_min_work_value,
    knapsack_select_indices,
)
from repro.core.profile import graham_starts
from repro.experiments.engine import (
    CellFamily,
    CellKey,
    CellRecord,
    execute_cells,
)
from repro.experiments.replay import replay_trace
from repro.workloads.trace import MOLDABILITY_MODELS, load_trace, synthesize_swf

#: Worker count raced against serial (the gate is defined at jobs=4).
JOBS = int(os.environ.get("REPRO_JOBS", "4"))

#: Cells per kernel-campaign leg (divisible by 4 so jobs=4 has no
#: straggler round at the ideal limit).
CELLS_PER_LEG = 8

#: DP size of one kernel cell (n items, n machines — the O(n*m) DPs) and
#: the Graham event-loop multiplier (n_graham = GRAHAM_SCALE * n).
LEG_SMALL_N = 600
LEG_LARGE_N = 12_000
GRAHAM_SCALE = 150

#: Replay leg shape (natural end-to-end campaign, recorded ungated).
REPLAY_N = 2_000
REPLAY_M = 64

#: Default location of the checked-in benchmark record / baseline.
BENCH_PR10_PATH = Path(__file__).resolve().parent / "BENCH_PR10.json"


def _measure_kernel_cell(task):
    """One kernel-campaign cell: all three DEMT compiled inner loops on
    inputs derived deterministically from the cell key (so every backend
    measures byte-identical instances)."""
    n, r, names = task
    t0 = time.perf_counter()
    rng = np.random.default_rng((1004, n, r))

    allot = rng.integers(1, 30, size=n).astype(np.int64)
    weights = rng.uniform(0.0, 10.0, size=n)
    _chosen, total, used = knapsack_select_indices(allot, weights, n)

    work_a = rng.uniform(1.0, 50.0, size=n)
    cost_a = rng.integers(1, 40, size=n).astype(np.int64)
    work_b = work_a + rng.uniform(0.0, 25.0, size=n)
    value = knapsack_min_work_value(work_a, cost_a, work_b, n)

    gn = GRAHAM_SCALE * n
    gallot = rng.integers(1, 8, size=gn).astype(np.int64)
    gdur = rng.uniform(0.5, 5.0, size=gn)
    starts, order = graham_starts(gallot, gdur, 16)

    elapsed = time.perf_counter() - t0
    starts = np.asarray(starts)
    rec = CellRecord(
        # Digests of all three kernels' outputs: any cross-backend bit
        # difference lands in the record equality assertion.
        cmax=float(total + used + starts.max() + order[0]),
        minsum=float(value + float(starts.sum())),
        seconds=elapsed,
    )
    return None, {name: rec for name in names}


class KernelCampaignFamily(CellFamily):
    """Cells = (n, r) DEMT-kernel instances; one 'algorithm', no bounds."""

    name = "kernel-campaign"
    worker = staticmethod(_measure_kernel_cell)

    def record_key(self, cell, name):
        n, r = cell
        return CellKey(1004, "kernel-campaign", n, 0, r, name)

    def make_task(self, cell, names, validate, need_bounds):
        n, r = cell
        return (n, r, names)


def _kernel_campaign(n: int, backend: str, jobs: int | None):
    """Run one kernel-campaign leg; return its record digest."""
    outcomes = execute_cells(
        KernelCampaignFamily(),
        [(n, r) for r in range(CELLS_PER_LEG)],
        ["DEMT-core"],
        backend=backend,
        jobs=jobs,
    )
    return {
        cell: {name: rec for name, rec in sorted(out.records.items())}
        for cell, out in outcomes.items()
    }


def _replay_campaign(trace, backend: str, jobs: int | None):
    """Run the end-to-end replay leg; return its result digest."""
    results = replay_trace(
        trace,
        m=REPLAY_M,
        models=list(MOLDABILITY_MODELS),
        modes="clairvoyant",
        backend=backend,
        jobs=jobs,
    )
    return [
        (r.model, r.mode, r.makespan, r.weighted_flow, r.n_batches)
        for r in results
    ]


def _race(run) -> tuple[dict, bool, bool]:
    """Race serial vs thread(JOBS) vs process(JOBS) over ``run(backend)``.

    Returns the leg document plus the two identity verdicts (records,
    traced counter totals).  Timed runs go untraced; a separate obs-ON
    pass (one run per backend) checks the counter totals so tracer lock
    traffic cannot skew the timings.
    """
    digest_serial, serial_s = best_of(lambda: run("serial", None))
    digest_thread, thread_s = best_of(lambda: run("thread", JOBS))
    digest_process, process_s = best_of(lambda: run("process", JOBS))
    records_ok = digest_serial == digest_thread == digest_process

    counters = {}
    for backend in ("serial", "thread", "process"):
        state = obs.enable(fresh=True)
        run(backend, JOBS)
        counters[backend] = dict(state.counters)
        obs.disable()
    counters_ok = (
        counters["serial"] == counters["thread"] == counters["process"]
    )

    doc = {
        "jobs": JOBS,
        "serial_ms": round(1e3 * serial_s, 1),
        "thread_ms": round(1e3 * thread_s, 1),
        "process_ms": round(1e3 * process_s, 1),
        "thread_speedup": round(serial_s / thread_s, 2),
        "process_speedup": round(serial_s / process_s, 2),
        "records_identical": records_ok,
        "counters_identical": counters_ok,
    }
    return doc, records_ok, counters_ok


def test_backend_scaling_emits_bench_pr10(benchmark):
    """Measure, emit and gate ``BENCH_PR10.json``.

    Always asserts the three backends bit-identical (records and traced
    counter totals) on every leg; the thread-vs-serial floor on the
    kernel-campaign-large leg fires only when
    ``REPRO_THREAD_SPEEDUP_MIN`` is set above 0 (CI: 2.0 at jobs=4).
    """
    # The thread backend's overlap needs a GIL-releasing kernel backend;
    # prefer the fastest compiled one whatever REPRO_KERNELS selected
    # for the suite, and record loudly when only numpy is importable
    # (pure-numpy glue holds the GIL between ufunc calls).
    compiled = [n for n in kernels.available_backend_names() if n != "numpy"]
    session_backend = kernels.backend_name()
    if compiled:
        kernels.set_backend(compiled[0])
    try:
        _run_bench(benchmark, kernel_backend=kernels.backend_name())
    finally:
        kernels.set_backend(session_backend)


def _run_bench(benchmark, kernel_backend: str):
    floor = float(os.environ.get("REPRO_THREAD_SPEEDUP_MIN", "0"))

    def measure():
        legs = {}
        verdicts = []
        for leg_name, n in (
            ("kernel-campaign-small", LEG_SMALL_N),
            ("kernel-campaign-large", LEG_LARGE_N),
        ):
            doc, records_ok, counters_ok = _race(
                lambda backend, jobs: _kernel_campaign(n, backend, jobs)
            )
            doc.update(
                cells=CELLS_PER_LEG, n=n, graham_n=GRAHAM_SCALE * n
            )
            legs[leg_name] = doc
            verdicts.append((leg_name, records_ok, counters_ok))

        trace = load_trace(synthesize_swf(REPLAY_N, REPLAY_M, seed=REPLAY_N))
        doc, records_ok, counters_ok = _race(
            lambda backend, jobs: _replay_campaign(trace, backend, jobs)
        )
        doc.update(
            cells=len(MOLDABILITY_MODELS),
            n_jobs=REPLAY_N,
            m=REPLAY_M,
            modes="clairvoyant",
        )
        legs["replay-clairvoyant"] = doc
        verdicts.append(("replay-clairvoyant", records_ok, counters_ok))
        return legs, verdicts

    legs, verdicts = benchmark.pedantic(measure, rounds=1, iterations=1)

    doc = {
        "bench": "backend-scaling",
        "description": "serial vs thread(j) vs process(j) on a kernel-bound "
        "DEMT campaign (cells = the three compiled inner loops on derived "
        "instances; small and large n) and an end-to-end clairvoyant "
        "replay campaign; records and traced counter totals asserted "
        "bit-identical across backends; the thread-vs-serial floor "
        "(REPRO_THREAD_SPEEDUP_MIN, CI: 2.0) gates the kernel-bound "
        "large leg",
        "kernel_backend": kernel_backend,
        "thread_speedup_floor": floor,
        "legs": legs,
    }
    baseline, refreshing = emit_bench_doc(
        doc, BENCH_PR10_PATH, "REPRO_BENCH_PR10_OUT"
    )

    for leg_name, records_ok, counters_ok in verdicts:
        assert records_ok, (
            f"{leg_name}: records differ across serial/thread/process"
        )
        assert counters_ok, (
            f"{leg_name}: traced counter totals differ across backends"
        )

    for leg_name, leg in legs.items():
        print(
            f"  {leg_name}: serial {leg['serial_ms']:.0f}ms | "
            f"thread(j={leg['jobs']}) {leg['thread_ms']:.0f}ms "
            f"({leg['thread_speedup']:.2f}x) | "
            f"process(j={leg['jobs']}) {leg['process_ms']:.0f}ms "
            f"({leg['process_speedup']:.2f}x)"
        )

    if floor > 0:
        if kernel_backend == "numpy":
            print(
                "  [gate skipped] no compiled kernel backend importable; "
                "pure-numpy glue does not release the GIL"
            )
            return
        got = legs["kernel-campaign-large"]["thread_speedup"]
        assert got >= floor, (
            f"thread backend speedup {got:.2f}x at jobs={JOBS} on the "
            f"kernel-bound leg is below the floor {floor}x"
        )
