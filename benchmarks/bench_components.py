"""Micro-benchmarks of the core components.

Not a paper figure — these track the cost of each pipeline stage (knapsack
selection, dual approximation, LP bound, full DEMT, baselines) on a
paper-scale instance, so performance regressions show up in CI before they
distort the Figure 7 reproduction.
"""

from __future__ import annotations

import pytest

from repro.algorithms.demt import schedule_demt
from repro.algorithms.dual_approx import dual_approximation
from repro.algorithms.gang import schedule_gang
from repro.algorithms.knapsack import KnapsackItem, knapsack_select
from repro.algorithms.list_graham import schedule_list_graham
from repro.algorithms.sequential import schedule_sequential
from repro.bounds.minsum_lp import minsum_lower_bound
from repro.workloads.generator import generate_workload


@pytest.fixture(scope="module")
def paper_instance():
    """One paper-scale instance (n=400, m=200, Cirne workload)."""
    return generate_workload("cirne", n=400, m=200, seed=0)


def test_bench_knapsack(benchmark):
    items = [KnapsackItem(i, (i % 7) + 1, float(i % 10 + 1)) for i in range(400)]
    result = benchmark(knapsack_select, items, 200)
    assert result.total_weight > 0


def test_bench_dual_approximation(benchmark, paper_instance):
    result = benchmark(dual_approximation, paper_instance)
    assert result.lower_bound > 0


def test_bench_minsum_lp(benchmark, paper_instance):
    lam = dual_approximation(paper_instance).lam
    result = benchmark(minsum_lower_bound, paper_instance, lam)
    assert result.value > 0


def test_bench_demt_full(benchmark, paper_instance):
    schedule = benchmark(schedule_demt, paper_instance)
    assert len(schedule) == 400


def test_bench_gang(benchmark, paper_instance):
    assert len(benchmark(schedule_gang, paper_instance)) == 400


def test_bench_sequential(benchmark, paper_instance):
    assert len(benchmark(schedule_sequential, paper_instance)) == 400


def test_bench_list_graham_saf(benchmark, paper_instance):
    dual = dual_approximation(paper_instance)
    assert len(benchmark(schedule_list_graham, paper_instance, "saf", dual)) == 400
