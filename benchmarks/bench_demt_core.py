"""DEMT algorithm core — kernelized inner loops + batched C*max probes.

The PR-6 core changes live below every campaign: the dual approximation
evaluates probe *vectors* against one shared areas matrix, and the three
inner loops that dominate DEMT end-to-end time (max-weight knapsack DP +
reconstruction, binary-choice min-work DP, Graham event loop) dispatch
through :mod:`repro.kernels` (compiled cffi/numba backends when the
toolchain is present, pure NumPy otherwise — all bit-identical).

This bench measures the headline at replay scale: one n = 20k synthetic
archive window (m = 64, load 1.0, rigid, online batch mode) with DEMT as
the batch engine, PR-6 core vs the seed core (``ReferenceDemtScheduler``:
scalar probes, per-item knapsack objects) on the *same* replay plane so
only the algorithm core differs.  Schedules are asserted identical
placement for placement.  A per-kernel micro table records where the
time went.  Results are emitted as ``BENCH_PR6.json`` (write-before-gate,
``REPRO_BENCH_REFRESH=1`` to rewrite the checked-in baseline) and the
measured end-to-end speedup is gated by ``REPRO_DEMT_SPEEDUP_MIN``
(default 3.0 — the pure-NumPy floor; the checked-in record documents the
compiled-backend measurement, >= 5x).
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np

from _harness import emit_bench_doc, placements as _placements

from repro import kernels
from repro.algorithms.demt import schedule_demt
from repro.algorithms.knapsack import knapsack_min_work_value, knapsack_select_indices
from repro.algorithms.reference import ReferenceDemtScheduler
from repro.core.profile import graham_starts
from repro.simulator.online import BatchPolicy
from repro.workloads.trace import load_trace, synthesize_swf, trace_instance

BENCH_N = 20_000
BENCH_M = 64
BENCH_LOAD = 1.0

#: Default location of the checked-in benchmark record / baseline.
BENCH_PR6_PATH = Path(__file__).resolve().parent / "BENCH_PR6.json"


def _seed_demt_engine(instance):
    """The seed DEMT core: scalar feasibility probes, object knapsack."""
    return ReferenceDemtScheduler().schedule(instance)


def _micro_inputs():
    rng = np.random.default_rng(7)
    n = BENCH_N
    return {
        "knapsack_select": (
            rng.integers(1, BENCH_M + 1, size=n).astype(np.int64),
            rng.uniform(0.1, 10.0, size=n),
        ),
        "min_work_value": (
            rng.uniform(1.0, 50.0, size=n),
            rng.integers(1, BENCH_M + 1, size=n).astype(np.float64),
            rng.uniform(1.0, 50.0, size=n),
        ),
        "graham_starts": (
            rng.integers(1, BENCH_M + 1, size=n).astype(np.int64),
            rng.uniform(0.5, 5.0, size=n),
        ),
    }


def _micro_seconds(inputs, reps: int = 3) -> dict[str, float]:
    sel_a, sel_w = inputs["knapsack_select"]
    mw_a, mw_c, mw_b = inputs["min_work_value"]
    g_a, g_d = inputs["graham_starts"]
    out = {}
    for label, fn in (
        ("knapsack_select", lambda: knapsack_select_indices(sel_a, sel_w, BENCH_M)),
        ("min_work_value", lambda: knapsack_min_work_value(mw_a, mw_c, mw_b, BENCH_M)),
        ("graham_starts", lambda: graham_starts(g_a, g_d, BENCH_M)),
    ):
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        out[label] = best
    return out


def test_demt_core_speedup_emits_bench_pr6(benchmark):
    """Measure, emit, and gate ``BENCH_PR6.json`` (see module docstring)."""
    threshold = float(os.environ.get("REPRO_DEMT_SPEEDUP_MIN", "3.0"))
    active = kernels.backend_name()

    def measure():
        trace = load_trace(synthesize_swf(BENCH_N, BENCH_M, seed=42, load=BENCH_LOAD))

        def _run(engine):
            inst = trace_instance(trace, BENCH_M, "rigid", online=True)
            t0 = time.perf_counter()
            res = BatchPolicy(engine).run(inst)
            return res, time.perf_counter() - t0

        # First run of each side doubles as the identity check; one more
        # rep gives best-of-2 per side.
        kern_res, kern_t = _run(schedule_demt)
        seed_res, seed_t = _run(_seed_demt_engine)
        assert _placements(kern_res.schedule) == _placements(seed_res.schedule), (
            "kernelized DEMT core diverged from the seed schedule"
        )
        assert kern_res.batch_starts == seed_res.batch_starts
        kern_s = min(kern_t, _run(schedule_demt)[1])
        seed_s = min(seed_t, _run(_seed_demt_engine)[1])

        # Per-kernel micro table at the same n, numpy vs the active
        # backend (empty when numpy *is* the active backend).
        micro = {}
        if active != "numpy":
            inputs = _micro_inputs()
            kernels.set_backend("numpy")
            base = _micro_seconds(inputs)
            kernels.set_backend(active)
            comp = _micro_seconds(inputs)
            micro = {
                label: {
                    "numpy_ms": round(1e3 * base[label], 3),
                    f"{active}_ms": round(1e3 * comp[label], 3),
                    "speedup": round(base[label] / comp[label], 2),
                }
                for label in base
            }

        end_to_end = {
            "n": BENCH_N,
            "batches": kern_res.n_batches,
            "seed_core_s": round(seed_s, 3),
            "kernel_core_s": round(kern_s, 3),
            "speedup": round(seed_s / kern_s, 2),
        }
        return end_to_end, micro

    end_to_end, micro = benchmark.pedantic(measure, rounds=1, iterations=1)
    doc = {
        "bench": "demt-algorithm-core",
        "description": "online replay of one synthetic archive window with "
        "DEMT as the batch engine: PR-6 core (batched dual-approximation "
        "probes + kernel layer) vs the seed core (ReferenceDemtScheduler) "
        "on the same replay plane, schedules asserted identical; plus "
        "per-kernel micro timings at the same n",
        "m": BENCH_M,
        "load": BENCH_LOAD,
        "kernel_backend": active,
        "demt_end_to_end": end_to_end,
        "kernel_micro": micro,
    }

    print()
    print(
        f"  DEMT core n={end_to_end['n']}: seed {end_to_end['seed_core_s']:.2f} s, "
        f"kernelized ({active}) {end_to_end['kernel_core_s']:.2f} s "
        f"-> {end_to_end['speedup']:.2f}x"
    )
    for label, row in micro.items():
        print(
            f"    {label:>16}: numpy {row['numpy_ms']:8.1f} ms  "
            f"{active} {row[f'{active}_ms']:7.1f} ms  -> {row['speedup']:.2f}x"
        )

    # Write-before-gate via the shared harness (see _harness.py), same
    # contract as BENCH_PR2.
    baseline, refreshing_baseline = emit_bench_doc(
        doc, BENCH_PR6_PATH, "REPRO_BENCH_PR6_OUT"
    )

    assert end_to_end["speedup"] >= threshold, (
        f"DEMT core only {end_to_end['speedup']:.2f}x faster than the seed "
        f"core (threshold {threshold}x)"
    )
    if baseline is not None and not refreshing_baseline:
        base = baseline.get("demt_end_to_end", {})
        if base.get("n") == end_to_end["n"] and baseline.get("kernel_backend") == active:
            floor = base["speedup"] / 2.0
            assert end_to_end["speedup"] >= floor, (
                f"DEMT core speedup regression: measured "
                f"{end_to_end['speedup']:.2f}x vs baseline "
                f"{base['speedup']:.2f}x (floor {floor:.2f}x)"
            )
