"""Event-spine benchmarks: the PR-8 acceptance bench.

One measurement lives here: ``test_spine_replay_emits_bench_pr8`` — the
on-line replay of synthetic archive windows through the **event-spine**
:class:`~repro.simulator.online.BatchPolicy` kernel vs the frozen PR-5
windowed path (:mod:`repro.simulator.windowed`), schedules asserted
identical.  Both paths call the same off-line engine, so the headline
number isolates the *replay path* (total minus time inside the engine):
the arrival cursor, the batch cut, the sub-instance construction and the
placement shift — exactly the code the spine refactor rewrote.  The
spine path must be ``>= 3x`` faster at the 100k-job window
(``REPRO_SPINE_SPEEDUP_MIN`` overrides the floor; CI runs with head-room
for noisy shared runners).

Alongside the comparison the bench records replay *throughput*
(``jobs_per_sec``, window size over engine-subtracted path seconds) and
the per-event cost (``us_per_event``; every job contributes one ARRIVAL
on the spine's arrival tape and one completion at its batch cut, so a
window of ``n`` jobs is ``2n`` events).  With ``REPRO_RUN_SLOW=1`` (CI's
slow lane) the archive-scale window is measured too: 1M jobs on ``m=32``,
spine path only — the windowed oracle is not raced at that scale, the
differential suite already pins it at fuzz sizes.

Everything is written to ``BENCH_PR8.json`` (``REPRO_BENCH_PR8_OUT``
overrides the path); the checked-in copy doubles as the regression
baseline — a measured path speedup below *half* the recorded one fails.

Refreshing the baseline after intentional perf work::

    PYTHONPATH=src REPRO_BENCH_REFRESH=1 REPRO_RUN_SLOW=1 python -m \
        pytest benchmarks/bench_event_spine.py -q -s
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from _harness import TimedEngine, emit_bench_doc, placements as _placements

from repro.algorithms.wspt import schedule_wspt
from repro.simulator.online import BatchPolicy
from repro.simulator.windowed import WINDOWED_POLICIES
from repro.workloads.trace import load_trace, synthesize_swf, trace_instance

#: Replay windows raced against the windowed oracle (the acceptance bar
#: requires >= 100k jobs).
REPLAY_NS = (20_000, 100_000)

#: Machine size and arrival load of the synthetic archives.
BENCH_M = 64
BENCH_LOAD = 1.0

#: The archive-scale window (slow lane only): 1M jobs on a smaller
#: machine — the matrix is ``n x m`` and 64M float64 cells is where a
#: shared runner starts swapping.
MILLION_N = 1_000_000
MILLION_M = 32

#: Default location of the checked-in benchmark record / baseline.
BENCH_PR8_PATH = Path(__file__).resolve().parent / "BENCH_PR8.json"


def _run(trace, m, policy_factory, reps=1):
    """Timed replay, best of ``reps``: ``(result, total_s, engine_s)``.

    "Best" means the rep with the smallest engine-subtracted path time —
    the quantity the gates compare — so single-shot scheduler-noise
    spikes on shared runners don't poison the recorded baseline.
    """
    best = None
    for _ in range(reps):
        engine = TimedEngine(schedule_wspt)
        inst = trace_instance(trace, m, "rigid", online=True)
        t0 = time.perf_counter()
        result = policy_factory(engine).run(inst)
        total = time.perf_counter() - t0
        if best is None or total - engine.seconds < best[1] - best[2]:
            best = (result, total, engine.seconds)
    return best


def test_spine_replay_emits_bench_pr8(benchmark):
    """Measure, emit, and gate ``BENCH_PR8.json`` (see module docstring)."""

    def measure():
        windows = []
        for n in REPLAY_NS:
            trace = load_trace(synthesize_swf(n, BENCH_M, seed=42, load=BENCH_LOAD))

            spine, spine_total, spine_eng = _run(
                trace, BENCH_M, lambda e: BatchPolicy(e), reps=2
            )
            win, win_total, win_eng = _run(
                trace, BENCH_M, lambda e: WINDOWED_POLICIES["batch"](offline=e), reps=2
            )

            # The kernels must agree placement for placement.
            assert _placements(spine.schedule) == _placements(win.schedule)
            assert spine.batch_starts == win.batch_starts

            spine_path = spine_total - spine_eng
            win_path = win_total - win_eng
            windows.append(
                {
                    "n": n,
                    "batches": spine.n_batches,
                    "spine_total_s": round(spine_total, 3),
                    "windowed_total_s": round(win_total, 3),
                    "total_speedup": round(win_total / spine_total, 2),
                    "spine_path_s": round(spine_path, 3),
                    "windowed_path_s": round(win_path, 3),
                    "path_speedup": round(win_path / spine_path, 2),
                    "jobs_per_sec": round(n / spine_path),
                    "us_per_event": round(spine_path / (2 * n) * 1e6, 3),
                }
            )

        # Archive scale, slow lane only: the spine path alone (the
        # windowed oracle is pinned differentially at fuzz sizes, racing
        # it at 1M just burns CI minutes).
        million = None
        if os.environ.get("REPRO_RUN_SLOW") == "1":
            trace = load_trace(
                synthesize_swf(MILLION_N, MILLION_M, seed=8, load=BENCH_LOAD)
            )
            res, total, eng = _run(trace, MILLION_M, lambda e: BatchPolicy(e))
            path = total - eng
            million = {
                "n": MILLION_N,
                "m": MILLION_M,
                "batches": res.n_batches,
                "spine_total_s": round(total, 3),
                "spine_path_s": round(path, 3),
                "jobs_per_sec": round(MILLION_N / path),
                "us_per_event": round(path / (2 * MILLION_N) * 1e6, 3),
            }
        return windows, million

    windows, million = benchmark.pedantic(measure, rounds=1, iterations=1)
    doc = {
        "bench": "event-spine-replay",
        "description": "on-line replay of synthetic archive windows: the "
        "event-spine BatchPolicy kernel vs the frozen PR-5 windowed path "
        "(identical schedules asserted; wspt engine, its time subtracted "
        "for the path_* figures); jobs_per_sec and us_per_event count the "
        "engine-subtracted replay path over 2n events (one arrival + one "
        "completion per job)",
        "m": BENCH_M,
        "load": BENCH_LOAD,
        "engine": "wspt",
        "windows": windows,
        "million_job_window": million,
    }

    print()
    for w in windows:
        print(
            f"  replay n={w['n']:>7}: path windowed {w['windowed_path_s']:7.3f} s"
            f"  spine {w['spine_path_s']:7.3f} s  -> {w['path_speedup']:.2f}x"
            f"   ({w['jobs_per_sec']:,} jobs/s, {w['us_per_event']:.3f} us/event)"
        )
    if million is not None:
        print(
            f"  replay n={million['n']:,} (m={million['m']}): spine path "
            f"{million['spine_path_s']:.3f} s  ({million['jobs_per_sec']:,} jobs/s, "
            f"{million['us_per_event']:.3f} us/event, {million['batches']} batches)"
        )

    # Write-before-gate via the shared harness (see _harness.py): the CI
    # artifact survives a failed floor (that record is exactly what a
    # flake diagnosis needs).
    baseline, refreshing_baseline = emit_bench_doc(
        doc, BENCH_PR8_PATH, "REPRO_BENCH_PR8_OUT"
    )

    # Acceptance gate: the spine path must carry its weight at archive
    # scale.
    floor = float(os.environ.get("REPRO_SPINE_SPEEDUP_MIN", "3.0"))
    at_100k = next(w for w in windows if w["n"] == REPLAY_NS[-1])
    assert at_100k["path_speedup"] >= floor, (
        f"spine replay-path speedup {at_100k['path_speedup']:.2f}x at "
        f"n={REPLAY_NS[-1]} below the {floor:.2f}x floor"
    )

    if baseline is not None and not refreshing_baseline:
        base_by_n = {w["n"]: w for w in baseline.get("windows", [])}
        for w in windows:
            base = base_by_n.get(w["n"])
            if base is None:
                continue
            regression_floor = base["path_speedup"] / 2.0
            assert w["path_speedup"] >= regression_floor, (
                f"spine-path speedup regression at n={w['n']}: measured "
                f"{w['path_speedup']:.2f}x vs baseline "
                f"{base['path_speedup']:.2f}x (floor {regression_floor:.2f}x)"
            )
