"""Figure 3 — performance ratios on weakly parallel tasks.

Paper headline (§4.2): the weakly parallel workload is DEMT's *worst* case
— it "spends resources to accelerate completion of small and high priority
parallel tasks ... without much gain".  Expected shape:

* DEMT's minsum ratio is worse than the list baselines' (but far better
  than Gang's);
* DEMT's Cmax ratio stays below ~2 while the others sit around 1.5;
* Gang's Cmax ratio is off the chart (the paper clips it out of range).
"""

from __future__ import annotations

from repro.experiments.figures import figure3
from repro.experiments.reporting import format_campaign_charts, format_campaign_table


def test_figure3_weakly_parallel(benchmark, scale_config, is_tiny_scale, exec_backend, exec_jobs):
    result = benchmark.pedantic(
        lambda: figure3(scale_config, backend=exec_backend, jobs=exec_jobs),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_campaign_table(result))
    print(format_campaign_charts(result))

    last = result.points[-1]
    demt = last.for_algorithm("DEMT")
    gang = last.for_algorithm("Gang")
    # Feasibility of the bounds: nothing beats a lower bound.
    for point in result.points:
        for s in point.stats:
            assert s.cmax.minimum >= 1.0 - 1e-9
            assert s.minsum.minimum >= 1.0 - 1e-9
    if not is_tiny_scale:
        # DEMT's makespan stays controlled even on its worst workload.
        assert demt.cmax.average < 2.5
        # Gang scheduling collapses on weakly parallel tasks.
        assert gang.cmax.average > 2.0 * demt.cmax.average
        assert gang.minsum.average > demt.minsum.average
