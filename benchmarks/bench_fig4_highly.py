"""Figure 4 — performance ratios on highly parallel tasks.

Paper headline (§4.2): "On the minsum criterion, our algorithm is clearly
the best one.  Gang and sequential have opposite behavior on both
criteria, Gang being good with a small number of tasks and sequential good
for a large number of tasks only. ... Cmax performance ratio of [the list]
algorithms is always smaller than 2."
"""

from __future__ import annotations

from repro.experiments.figures import figure4
from repro.experiments.reporting import format_campaign_charts, format_campaign_table


def test_figure4_highly_parallel(benchmark, scale_config, is_tiny_scale, exec_backend, exec_jobs):
    result = benchmark.pedantic(
        lambda: figure4(scale_config, backend=exec_backend, jobs=exec_jobs),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_campaign_table(result))
    print(format_campaign_charts(result))

    if not is_tiny_scale:
        first, last = result.points[0], result.points[-1]
        demt = last.for_algorithm("DEMT")
        # DEMT leads the minsum criterion against every baseline except SAF
        # at the heaviest load; SAF stays within ~25% (EXPERIMENTS.md
        # discusses this one deviation from the published figure, where
        # DEMT also edges SAF).
        for name in ("Gang", "Sequential", "List Scheduling", "LPTF"):
            assert demt.minsum.average <= last.for_algorithm(name).minsum.average * 1.1
        assert demt.minsum.average <= last.for_algorithm("SAF").minsum.average * 1.3
        # At light load DEMT leads everyone.
        demt_first = first.for_algorithm("DEMT")
        for name in ("Gang", "Sequential", "List Scheduling", "LPTF", "SAF"):
            assert (
                demt_first.minsum.average
                <= first.for_algorithm(name).minsum.average * 1.1
            )
        # List-algorithm allotments are good: Cmax ratio below 2.
        for name in ("List Scheduling", "LPTF", "SAF"):
            assert last.for_algorithm(name).cmax.average < 2.0
        # Gang vs Sequential crossover: Gang degrades with n on minsum,
        # Sequential improves.
        first = result.points[0]
        gang_trend = last.for_algorithm("Gang").minsum.average - first.for_algorithm("Gang").minsum.average
        seq_trend = last.for_algorithm("Sequential").minsum.average - first.for_algorithm("Sequential").minsum.average
        assert gang_trend > 0 or seq_trend < 0
