"""Figure 5 — performance ratios on the mixed workload.

Paper headline (§4.2): "our algorithm is still quite stable with a
performance ratio of around 2 for both criterion, however SAF is better
than our algorithm.  The ratio of the two other list algorithms greatly
increase with the number of tasks."
"""

from __future__ import annotations

from repro.experiments.figures import figure5
from repro.experiments.reporting import format_campaign_charts, format_campaign_table


def test_figure5_mixed(benchmark, scale_config, is_tiny_scale, exec_backend, exec_jobs):
    result = benchmark.pedantic(
        lambda: figure5(scale_config, backend=exec_backend, jobs=exec_jobs),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_campaign_table(result))
    print(format_campaign_charts(result))

    if not is_tiny_scale:
        first, last = result.points[0], result.points[-1]
        demt_first = first.for_algorithm("DEMT")
        demt_last = last.for_algorithm("DEMT")
        # Stability: DEMT's minsum ratio moves little across the sweep.
        assert abs(demt_last.minsum.average - demt_first.minsum.average) < 1.0
        assert demt_last.minsum.average < 3.0
        assert demt_last.cmax.average < 2.5
        # The shelf-order and LPTF list ratios degrade with n relative to
        # DEMT (task order matters on mixed workloads).
        ls_growth = (
            last.for_algorithm("List Scheduling").minsum.average
            - first.for_algorithm("List Scheduling").minsum.average
        )
        demt_growth = demt_last.minsum.average - demt_first.minsum.average
        assert ls_growth > demt_growth - 0.5
