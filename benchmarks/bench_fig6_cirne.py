"""Figure 6 — performance ratios on the Cirne–Berman workload.

Paper headline (§4.2): "In this more realistic setting our algorithm
clearly outperforms the other ones for the minsum criterion, and is also
the only one to keep a stable ratio for any number of tasks."
"""

from __future__ import annotations

from repro.experiments.figures import figure6
from repro.experiments.reporting import format_campaign_charts, format_campaign_table


def test_figure6_cirne(benchmark, scale_config, is_tiny_scale, exec_backend, exec_jobs):
    result = benchmark.pedantic(
        lambda: figure6(scale_config, backend=exec_backend, jobs=exec_jobs),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_campaign_table(result))
    print(format_campaign_charts(result))

    if not is_tiny_scale:
        last = result.points[-1]
        demt = last.for_algorithm("DEMT")
        # DEMT leads the minsum criterion at the largest n.
        for name in ("Gang", "Sequential", "List Scheduling", "LPTF", "SAF"):
            assert demt.minsum.average <= last.for_algorithm(name).minsum.average * 1.15, name
        # Global §4.2 claims: minsum ratio never above ~2.5, around 2 on
        # average; makespan ratio below ~2.
        minsum_avgs = [p.for_algorithm("DEMT").minsum.average for p in result.points]
        cmax_avgs = [p.for_algorithm("DEMT").cmax.average for p in result.points]
        assert max(minsum_avgs) < 2.8
        assert max(cmax_avgs) < 2.2
