"""Figure 7 — DEMT scheduling wall-clock time vs number of tasks.

Paper headline (§4.2): "the execution time of our scheduling algorithm is
low (less than 2 seconds for the largest instances)" and grows about
linearly in n.  The 2004 numbers are C on a 2004 machine; what must
reproduce is the *shape* (near-linear growth, small absolute values) —
EXPERIMENTS.md records both scales side by side.

This module also carries the vectorized-core headline measurement: DEMT
on the seed implementation (``ReferenceDemtScheduler``, the pre-migration
code preserved verbatim) vs the current one, at the paper-scale
``n = 300`` on the Figure-7 workloads — asserting the >= 3x speedup the
migration promised, on bit-for-bit identical schedules.

Since PR 2 it additionally benches the *columnar instance plane*:
campaign setup (generation + instance construction) through the batched
array builders vs the original task-by-task path, at the paper scale and
at n in {300, 1000, 2000, 5000}.  The scale sweep is emitted as
``BENCH_PR2.json`` (``REPRO_BENCH_OUT`` overrides the path) so the perf
trajectory is recorded in-repo, and the checked-in copy doubles as the
regression baseline: CI fails when the measured setup *speedup* drops
below half the recorded one (machine-independent, unlike raw ms).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.algorithms.demt import DemtScheduler
from repro.algorithms.reference import ReferenceDemtScheduler
from repro.experiments.figures import FIGURE7_WORKLOADS, figure7
from repro.experiments.reporting import format_timing_table
from repro.utils.rng import derive_rng
from repro.workloads.generator import generate_workload, generate_workload_reference

#: The scale sweep recorded in BENCH_PR2.json.
SETUP_BENCH_NS = (300, 1000, 2000, 5000)

#: Default location of the checked-in benchmark record / baseline.
BENCH_PR2_PATH = Path(__file__).resolve().parent / "BENCH_PR2.json"


def test_figure7_scheduling_time(benchmark, scale_config, is_tiny_scale):
    result = benchmark.pedantic(
        lambda: figure7(scale_config, repeats=3), rounds=1, iterations=1
    )
    print()
    print(format_timing_table(result.timings))

    # Scheduling stays fast at every scale (paper: < 2 s in 2004 C code;
    # pure Python at paper scale remains well under a minute per call).
    assert result.max_seconds() < 30.0
    if not is_tiny_scale:
        # Near-linear growth: doubling n must not blow time up
        # quadratically or worse.
        for series in result.timings.values():
            ns = [n for n, _ in series]
            ts = [t for _, t in series]
            growth = (ts[-1] + 1e-9) / (ts[0] + 1e-9)
            size_growth = ns[-1] / ns[0]
            assert growth < size_growth**2.5


def test_vectorized_core_speedup_vs_seed(benchmark):
    """Vectorized core >= 3x faster than the seed DEMT at n = 300.

    Same instances, warm caches, best-of-3 timings per scheduler; the
    schedules must also be placement-for-placement identical (the speedup
    may not buy any behavioral drift).  Runs at n = 300 regardless of
    REPRO_SCALE — the seed baseline is ~60 ms/instance, so even CI smoke
    affords it.

    ``REPRO_SPEEDUP_MIN`` overrides the asserted ratio: shared CI runners
    gate with head-room (see .github/workflows/tier1.yml) while the
    default 3.0 documents the local measurement (~3.3-3.6x).
    """
    import os

    threshold = float(os.environ.get("REPRO_SPEEDUP_MIN", "3.0"))
    n, m, reps = 300, 200, 3
    instances = [
        generate_workload(kind, n=n, m=m, seed=derive_rng(2004, "speedup", kind, r))
        for kind in FIGURE7_WORKLOADS
        for r in range(2)
    ]

    def best_of(scheduler_cls, inst):
        times = []
        for _ in range(reps):
            scheduler = scheduler_cls()
            t0 = time.perf_counter()
            scheduler.schedule(inst)
            times.append(time.perf_counter() - t0)
        return min(times)

    def measure():
        total_seed = total_new = 0.0
        for inst in instances:
            seed_sched = ReferenceDemtScheduler().schedule(inst)  # also warms caches
            new_sched = DemtScheduler().schedule(inst)
            assert all(
                p.start == new_sched[p.task.task_id].start
                and p.allotment == new_sched[p.task.task_id].allotment
                for p in seed_sched
            ), "vectorized core diverged from the seed schedule"
            total_seed += best_of(ReferenceDemtScheduler, inst)
            total_new += best_of(DemtScheduler, inst)
        return total_seed, total_new

    total_seed, total_new = benchmark.pedantic(measure, rounds=1, iterations=1)
    speedup = total_seed / total_new
    print()
    print(
        f"  DEMT n={n}: seed {total_seed * 1e3 / len(instances):.1f} ms/instance, "
        f"vectorized {total_new * 1e3 / len(instances):.1f} ms/instance "
        f"-> {speedup:.2f}x"
    )
    assert speedup >= threshold, (
        f"vectorized core only {speedup:.2f}x faster than seed "
        f"(threshold {threshold}x)"
    )


def _setup_seconds(builder, kind: str, n: int, m: int, reps: int) -> float:
    """Best-of-``reps`` campaign-setup time: generate + build the arrays
    the kernels consume (time matrix and weights)."""
    best = float("inf")
    for r in range(reps):
        rng = derive_rng(2004, "setup-bench", kind, n, r)
        t0 = time.perf_counter()
        inst = builder(kind, n=n, m=m, seed=rng)
        inst.times_matrix
        inst.weights
        best = min(best, time.perf_counter() - t0)
    return best


def test_columnar_setup_speedup(benchmark):
    """Columnar campaign setup >= 5x the task-by-task path at n = 2000.

    Measures the Figure-7 workload grid (weakly / cirne / highly) end to
    end: workload generation plus instance construction up to the arrays
    the scheduling kernels consume.  Instances must also be bit-for-bit
    identical (separately pinned by tests/workloads/test_columnar.py).

    ``REPRO_SETUP_SPEEDUP_MIN`` overrides the asserted ratio: shared CI
    runners gate with head-room while the default 5.0 documents the
    acceptance bar (locally ~6-7x).
    """
    threshold = float(os.environ.get("REPRO_SETUP_SPEEDUP_MIN", "5.0"))
    n, m, reps = 2000, 200, 3

    def measure():
        total_ref = total_new = 0.0
        for kind in FIGURE7_WORKLOADS:
            total_ref += _setup_seconds(generate_workload_reference, kind, n, m, reps)
            total_new += _setup_seconds(generate_workload, kind, n, m, reps)
        return total_ref, total_new

    total_ref, total_new = benchmark.pedantic(measure, rounds=1, iterations=1)
    speedup = total_ref / total_new
    print()
    print(
        f"  campaign setup n={n}: reference {1e3 * total_ref:.1f} ms, "
        f"columnar {1e3 * total_new:.1f} ms over {len(FIGURE7_WORKLOADS)} "
        f"workloads -> {speedup:.2f}x"
    )
    assert speedup >= threshold, (
        f"columnar setup only {speedup:.2f}x faster than the task-by-task "
        f"path (threshold {threshold}x)"
    )


def test_setup_scale_bench_emits_bench_pr2(benchmark):
    """Scale sweep n in {300, 1000, 2000, 5000}: emit + gate BENCH_PR2.json.

    Writes the measurement to ``$REPRO_BENCH_OUT`` (default:
    ``benchmarks/BENCH_PR2.new.json``), then compares against the
    checked-in ``benchmarks/BENCH_PR2.json`` baseline: the measured
    speedup at each n must stay above *half* the recorded one (>2x
    regression fails; ratios transfer across machines, raw milliseconds
    do not).  ``REPRO_BENCH_REFRESH=1`` rewrites the baseline itself
    (gate skipped) — the documented workflow after intentional perf work.
    """
    m, reps = 200, 2

    def measure():
        points = []
        for n in SETUP_BENCH_NS:
            per_kind = {}
            ref_total = new_total = 0.0
            for kind in FIGURE7_WORKLOADS:
                ref_s = _setup_seconds(generate_workload_reference, kind, n, m, reps)
                new_s = _setup_seconds(generate_workload, kind, n, m, reps)
                ref_total += ref_s
                new_total += new_s
                per_kind[kind] = {
                    "reference_ms": round(1e3 * ref_s, 3),
                    "columnar_ms": round(1e3 * new_s, 3),
                    "speedup": round(ref_s / new_s, 2),
                }
            points.append(
                {
                    "n": n,
                    "per_kind": per_kind,
                    "reference_ms_total": round(1e3 * ref_total, 3),
                    "columnar_ms_total": round(1e3 * new_total, 3),
                    "speedup": round(ref_total / new_total, 2),
                }
            )
        return points

    points = benchmark.pedantic(measure, rounds=1, iterations=1)
    doc = {
        "bench": "columnar-instance-plane-setup",
        "description": "campaign setup (generation + instance construction) "
        "per instance, best-of-reps, Figure-7 workload grid",
        "m": m,
        "workloads": list(FIGURE7_WORKLOADS),
        "points": points,
    }

    print()
    for p in points:
        print(
            f"  n={p['n']:>5}: reference {p['reference_ms_total']:8.1f} ms  "
            f"columnar {p['columnar_ms_total']:7.1f} ms  -> {p['speedup']:.2f}x"
        )

    # Overwriting the checked-in baseline is an explicit act
    # (REPRO_BENCH_REFRESH=1): a plain local run must gate against it, not
    # silently ratify a regression as the new baseline.  The baseline is
    # read *before* writing and the paths compared resolved, so no
    # spelling of REPRO_BENCH_OUT can turn the gate into a
    # self-comparison.
    refresh = os.environ.get("REPRO_BENCH_REFRESH") == "1"
    default_out = BENCH_PR2_PATH if refresh else BENCH_PR2_PATH.with_suffix(".new.json")
    out_path = Path(os.environ.get("REPRO_BENCH_OUT", default_out))
    refreshing_baseline = (
        out_path.resolve() == BENCH_PR2_PATH.resolve() and refresh
    )
    if out_path.resolve() == BENCH_PR2_PATH.resolve() and not refresh:
        raise AssertionError(
            "refusing to overwrite the checked-in BENCH_PR2.json baseline "
            "without REPRO_BENCH_REFRESH=1"
        )
    baseline = json.loads(BENCH_PR2_PATH.read_text()) if BENCH_PR2_PATH.exists() else None

    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"  wrote {out_path}")

    if baseline is not None and not refreshing_baseline:
        base_by_n = {p["n"]: p for p in baseline.get("points", [])}
        for p in points:
            base = base_by_n.get(p["n"])
            if base is None:
                continue
            floor = base["speedup"] / 2.0
            assert p["speedup"] >= floor, (
                f"setup speedup regression at n={p['n']}: measured "
                f"{p['speedup']:.2f}x vs baseline {base['speedup']:.2f}x "
                f"(floor {floor:.2f}x)"
            )
