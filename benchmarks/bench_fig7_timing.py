"""Figure 7 — DEMT scheduling wall-clock time vs number of tasks.

Paper headline (§4.2): "the execution time of our scheduling algorithm is
low (less than 2 seconds for the largest instances)" and grows about
linearly in n.  The 2004 numbers are C on a 2004 machine; what must
reproduce is the *shape* (near-linear growth, small absolute values) —
EXPERIMENTS.md records both scales side by side.
"""

from __future__ import annotations

from repro.experiments.figures import figure7
from repro.experiments.reporting import format_timing_table


def test_figure7_scheduling_time(benchmark, scale_config, is_tiny_scale):
    result = benchmark.pedantic(
        lambda: figure7(scale_config, repeats=3), rounds=1, iterations=1
    )
    print()
    print(format_timing_table(result.timings))

    # Scheduling stays fast at every scale (paper: < 2 s in 2004 C code;
    # pure Python at paper scale remains well under a minute per call).
    assert result.max_seconds() < 30.0
    if not is_tiny_scale:
        # Near-linear growth: doubling n must not blow time up
        # quadratically or worse.
        for series in result.timings.values():
            ns = [n for n, _ in series]
            ts = [t for _, t in series]
            growth = (ts[-1] + 1e-9) / (ts[0] + 1e-9)
            size_growth = ns[-1] / ns[0]
            assert growth < size_growth**2.5
