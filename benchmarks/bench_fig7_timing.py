"""Figure 7 — DEMT scheduling wall-clock time vs number of tasks.

Paper headline (§4.2): "the execution time of our scheduling algorithm is
low (less than 2 seconds for the largest instances)" and grows about
linearly in n.  The 2004 numbers are C on a 2004 machine; what must
reproduce is the *shape* (near-linear growth, small absolute values) —
EXPERIMENTS.md records both scales side by side.

This module also carries the vectorized-core headline measurement: DEMT
on the seed implementation (``ReferenceDemtScheduler``, the pre-migration
code preserved verbatim) vs the current one, at the paper-scale
``n = 300`` on the Figure-7 workloads — asserting the >= 3x speedup the
migration promised, on bit-for-bit identical schedules.
"""

from __future__ import annotations

import time

from repro.algorithms.demt import DemtScheduler
from repro.algorithms.reference import ReferenceDemtScheduler
from repro.experiments.figures import FIGURE7_WORKLOADS, figure7
from repro.experiments.reporting import format_timing_table
from repro.utils.rng import derive_rng
from repro.workloads.generator import generate_workload


def test_figure7_scheduling_time(benchmark, scale_config, is_tiny_scale):
    result = benchmark.pedantic(
        lambda: figure7(scale_config, repeats=3), rounds=1, iterations=1
    )
    print()
    print(format_timing_table(result.timings))

    # Scheduling stays fast at every scale (paper: < 2 s in 2004 C code;
    # pure Python at paper scale remains well under a minute per call).
    assert result.max_seconds() < 30.0
    if not is_tiny_scale:
        # Near-linear growth: doubling n must not blow time up
        # quadratically or worse.
        for series in result.timings.values():
            ns = [n for n, _ in series]
            ts = [t for _, t in series]
            growth = (ts[-1] + 1e-9) / (ts[0] + 1e-9)
            size_growth = ns[-1] / ns[0]
            assert growth < size_growth**2.5


def test_vectorized_core_speedup_vs_seed(benchmark):
    """Vectorized core >= 3x faster than the seed DEMT at n = 300.

    Same instances, warm caches, best-of-3 timings per scheduler; the
    schedules must also be placement-for-placement identical (the speedup
    may not buy any behavioral drift).  Runs at n = 300 regardless of
    REPRO_SCALE — the seed baseline is ~60 ms/instance, so even CI smoke
    affords it.

    ``REPRO_SPEEDUP_MIN`` overrides the asserted ratio: shared CI runners
    gate with head-room (see .github/workflows/tier1.yml) while the
    default 3.0 documents the local measurement (~3.3-3.6x).
    """
    import os

    threshold = float(os.environ.get("REPRO_SPEEDUP_MIN", "3.0"))
    n, m, reps = 300, 200, 3
    instances = [
        generate_workload(kind, n=n, m=m, seed=derive_rng(2004, "speedup", kind, r))
        for kind in FIGURE7_WORKLOADS
        for r in range(2)
    ]

    def best_of(scheduler_cls, inst):
        times = []
        for _ in range(reps):
            scheduler = scheduler_cls()
            t0 = time.perf_counter()
            scheduler.schedule(inst)
            times.append(time.perf_counter() - t0)
        return min(times)

    def measure():
        total_seed = total_new = 0.0
        for inst in instances:
            seed_sched = ReferenceDemtScheduler().schedule(inst)  # also warms caches
            new_sched = DemtScheduler().schedule(inst)
            assert all(
                p.start == new_sched[p.task.task_id].start
                and p.allotment == new_sched[p.task.task_id].allotment
                for p in seed_sched
            ), "vectorized core diverged from the seed schedule"
            total_seed += best_of(ReferenceDemtScheduler, inst)
            total_new += best_of(DemtScheduler, inst)
        return total_seed, total_new

    total_seed, total_new = benchmark.pedantic(measure, rounds=1, iterations=1)
    speedup = total_seed / total_new
    print()
    print(
        f"  DEMT n={n}: seed {total_seed * 1e3 / len(instances):.1f} ms/instance, "
        f"vectorized {total_new * 1e3 / len(instances):.1f} ms/instance "
        f"-> {speedup:.2f}x"
    )
    assert speedup >= threshold, (
        f"vectorized core only {speedup:.2f}x faster than seed "
        f"(threshold {threshold}x)"
    )
