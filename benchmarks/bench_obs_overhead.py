"""Observability overhead — the PR-9 acceptance bench.

The instrumentation plane (:mod:`repro.obs`) promises a **hard
zero-overhead disabled path**: every hook site is one module-attribute
load plus an ``is None`` check.  This bench pins that promise on the two
replay legs the ISSUE names:

* ``demt_20k`` — the n = 20k synthetic archive window with DEMT as the
  batch engine (the PR-6 headline workload);
* ``replay_100k`` — the n = 100k window with the cheap wspt engine (the
  PR-8 headline workload; engine time is small, so the replay path — the
  hook-dense code — dominates).

Per leg it measures best-of-2 wall-clock with observability *disabled*
and *enabled* (schedules asserted identical — tracing must not change a
single placement), counts the hooks the enabled run fired, and
microbenches the cost of one disabled-mode check.  The disabled-mode
overhead is then bounded *analytically*::

    overhead_pct = hook_calls x noop_check_cost / disabled_runtime

rather than by differencing two noisy end-to-end timings — at <= 3%
the difference of two runs is indistinguishable from scheduler noise on
a shared runner, while ``hook_calls`` is deterministic and the per-check
cost is measured over 2M iterations.  The loop body of the microbench
*includes* the loop bookkeeping, and one enabled-run ``hook_calls`` can
cover several sites sharing a single guard, so the bound is
conservative on both factors.  The gate is
``overhead_pct <= REPRO_OBS_OVERHEAD_MAX`` (default 3.0) per leg; the
enabled-mode ratio is recorded ungated (enabled runs buy telemetry with
time — that trade is the feature, not a regression).

Everything is written to ``BENCH_PR9.json`` via the shared harness
(``REPRO_BENCH_PR9_OUT`` overrides the path, ``REPRO_BENCH_REFRESH=1``
rewrites the checked-in baseline).
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from _harness import best_of, emit_bench_doc, placements as _placements

from repro import kernels, obs
from repro.algorithms.demt import schedule_demt
from repro.algorithms.wspt import schedule_wspt
from repro.simulator.online import BatchPolicy
from repro.workloads.trace import load_trace, synthesize_swf, trace_instance

BENCH_M = 64
BENCH_LOAD = 1.0

#: The two replay legs: (name, window size, offline engine).
LEGS = (
    ("demt_20k", 20_000, "demt", schedule_demt),
    ("replay_100k", 100_000, "wspt", schedule_wspt),
)

#: Default location of the checked-in benchmark record / baseline.
BENCH_PR9_PATH = Path(__file__).resolve().parent / "BENCH_PR9.json"

#: Iterations of the disabled-check microbench.
NOOP_ITERS = 2_000_000


def _noop_check_cost(iters: int = NOOP_ITERS) -> float:
    """Seconds per disabled-mode hook check (loop overhead included)."""
    t0 = time.perf_counter()
    for _ in range(iters):
        if obs.ACTIVE is not None:  # the exact guard every hook site runs
            raise AssertionError("obs unexpectedly enabled mid-bench")
    return (time.perf_counter() - t0) / iters


def test_obs_overhead_emits_bench_pr9(benchmark):
    """Measure, emit, and gate ``BENCH_PR9.json`` (see module docstring)."""
    assert obs.ACTIVE is None, "bench requires a disabled starting state"
    max_pct = float(os.environ.get("REPRO_OBS_OVERHEAD_MAX", "3.0"))

    def measure():
        per_call_s = _noop_check_cost()
        legs = []
        for name, n, engine_name, engine in LEGS:
            trace = load_trace(
                synthesize_swf(n, BENCH_M, seed=42, load=BENCH_LOAD)
            )

            def _replay():
                inst = trace_instance(trace, BENCH_M, "rigid", online=True)
                return BatchPolicy(engine).run(inst)

            plain, disabled_s = best_of(_replay, reps=2)

            obs.enable(fresh=True)
            try:
                traced, enabled_s = best_of(_replay, reps=2)
                state = obs.ACTIVE
                hook_calls = state.hook_calls
                spans = len(state.spans)
            finally:
                obs.disable()

            # Tracing must not move a single placement.
            assert _placements(traced.schedule) == _placements(plain.schedule)

            overhead_pct = hook_calls * per_call_s / disabled_s * 100.0
            legs.append(
                {
                    "name": name,
                    "n": n,
                    "engine": engine_name,
                    "disabled_s": round(disabled_s, 3),
                    "enabled_s": round(enabled_s, 3),
                    "enabled_over_disabled": round(enabled_s / disabled_s, 3),
                    "hook_calls": hook_calls,
                    "spans": spans,
                    "disabled_overhead_pct": round(overhead_pct, 4),
                }
            )
        return per_call_s, legs

    per_call_s, legs = benchmark.pedantic(measure, rounds=1, iterations=1)
    doc = {
        "bench": "obs-overhead",
        "description": "disabled-mode cost of the repro.obs instrumentation "
        "plane on the two headline replay legs (schedules asserted "
        "identical with tracing on and off): hook_calls from the enabled "
        "run x the microbenched per-check cost of the disabled guard, as "
        "a fraction of the disabled runtime; the enabled-mode ratio is "
        "recorded ungated",
        "m": BENCH_M,
        "load": BENCH_LOAD,
        "kernel_backend": kernels.backend_name(),
        "noop_check_ns": round(per_call_s * 1e9, 3),
        "gate_pct": max_pct,
        "legs": legs,
    }

    print()
    print(f"  disabled-mode check: {per_call_s * 1e9:.1f} ns")
    for leg in legs:
        print(
            f"  {leg['name']:>11}: disabled {leg['disabled_s']:7.3f} s  "
            f"enabled {leg['enabled_s']:7.3f} s "
            f"(x{leg['enabled_over_disabled']:.3f}, "
            f"{leg['hook_calls']:,} hooks, {leg['spans']:,} spans)  "
            f"disabled overhead {leg['disabled_overhead_pct']:.4f}%"
        )

    baseline, refreshing_baseline = emit_bench_doc(
        doc, BENCH_PR9_PATH, "REPRO_BENCH_PR9_OUT"
    )

    for leg in legs:
        assert leg["disabled_overhead_pct"] <= max_pct, (
            f"disabled-mode observability overhead "
            f"{leg['disabled_overhead_pct']:.4f}% on {leg['name']} exceeds "
            f"the {max_pct}% budget"
        )

    if baseline is not None and not refreshing_baseline:
        base_by_name = {leg["name"]: leg for leg in baseline.get("legs", [])}
        for leg in legs:
            base = base_by_name.get(leg["name"])
            if base is None:
                continue
            # The analytic bound may drift with runner speed; allow 2x
            # the recorded figure before calling it a regression (still
            # gated by the absolute budget above).
            ceiling = max(base["disabled_overhead_pct"] * 2.0, max_pct)
            assert leg["disabled_overhead_pct"] <= ceiling, (
                f"disabled-overhead regression on {leg['name']}: "
                f"{leg['disabled_overhead_pct']:.4f}% vs baseline "
                f"{base['disabled_overhead_pct']:.4f}%"
            )
