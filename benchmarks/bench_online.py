"""On-line batching bench (extension; §2.2 theory, measured).

Sweeps the arrival horizon and checks the §2.2 envelope: for arrivals
inside the off-line makespan the on-line batching costs at most ~2x, and
with everything released at t=0 it matches the off-line schedule exactly
(single batch).
"""

from __future__ import annotations

from repro.algorithms.demt import schedule_demt
from repro.experiments.online_eval import evaluate_online, format_online_table


def test_online_batching_sweep(benchmark, is_tiny_scale, exec_backend, exec_jobs):
    n, m, runs = (20, 8, 2) if is_tiny_scale else (60, 32, 4)
    points = benchmark.pedantic(
        lambda: evaluate_online(
            schedule_demt, n=n, m=m, runs=runs,
            backend=exec_backend, jobs=exec_jobs,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_online_table(points))

    by_frac = {p.horizon_fraction: p for p in points}
    # Off-line limit: one batch, ratio exactly 1.
    assert by_frac[0.0].mean_batches == 1.0
    assert by_frac[0.0].mean_ratio == 1.0
    # §2.2 envelope with slack for the arrival tail.
    assert by_frac[1.0].max_ratio < 2.5
    # Monotone trend: later arrivals cannot make the ratio smaller than
    # the off-line limit.
    assert all(p.mean_ratio >= 1.0 - 1e-9 for p in points)
