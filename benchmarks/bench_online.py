"""On-line plane benchmarks: the §2.2 sweep and the policy-replay bench.

Two measurements live here:

* ``test_online_batching_sweep`` — the arrival-horizon sweep checking the
  §2.2 envelope (for arrivals inside the off-line makespan the batch
  policy costs at most ~2x; everything at t=0 matches off-line exactly).
* ``test_policy_replay_emits_bench_pr5`` — the PR-5 acceptance bench:
  on-line replay of synthetic archive windows (20k / 100k jobs) through
  the **columnar** :class:`~repro.simulator.online.BatchPolicy` kernel vs
  the seed **object-path** :class:`~repro.simulator.reference.
  ReferenceBatchScheduler`, schedules asserted identical.  Both paths
  call the same off-line engine, so the headline number isolates the
  *batch path* (total minus time inside the engine): that is the code
  this PR rewrote, and it must be ``>= 3x`` faster at the 100k-job
  window (``REPRO_ONLINE_SPEEDUP_MIN`` overrides the floor; CI runs with
  head-room for noisy shared runners).  End-to-end totals and a
  policy-registry replay grid are recorded alongside in
  ``BENCH_PR5.json`` (``REPRO_BENCH_PR5_OUT`` overrides the path); the
  checked-in copy doubles as the regression baseline — a measured path
  speedup below *half* the recorded one fails.

Refreshing the baseline after intentional perf work::

    PYTHONPATH=src REPRO_BENCH_REFRESH=1 python -m pytest \
        benchmarks/bench_online.py -q -s
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.algorithms.demt import schedule_demt
from repro.algorithms.wspt import schedule_wspt
from repro.experiments.online_eval import evaluate_online, format_online_table
from repro.simulator.online import ZERO_CONFIG_POLICIES, BatchPolicy, get_policy
from repro.simulator.reference import ReferenceBatchScheduler
from repro.workloads.trace import load_trace, synthesize_swf, trace_instance

#: Replay window sizes (the acceptance bar requires >= 100k jobs).
REPLAY_NS = (20_000, 100_000)

#: Machine size and arrival load of the synthetic archives.
BENCH_M = 64
BENCH_LOAD = 1.0

#: Window of the full policy-registry grid (the immediate policies are
#: O(n^2)-ish baselines; the grid documents their cost, it does not race
#: them).
POLICY_GRID_N = 2_000

#: Default location of the checked-in benchmark record / baseline.
BENCH_PR5_PATH = Path(__file__).resolve().parent / "BENCH_PR5.json"


def test_online_batching_sweep(benchmark, is_tiny_scale, exec_backend, exec_jobs):
    n, m, runs = (20, 8, 2) if is_tiny_scale else (60, 32, 4)
    points = benchmark.pedantic(
        lambda: evaluate_online(
            schedule_demt, n=n, m=m, runs=runs,
            backend=exec_backend, jobs=exec_jobs,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_online_table(points))

    by_frac = {p.horizon_fraction: p for p in points}
    # Off-line limit: one batch, ratio exactly 1.
    assert by_frac[0.0].mean_batches == 1.0
    assert by_frac[0.0].mean_ratio == 1.0
    # §2.2 envelope with slack for the arrival tail.
    assert by_frac[1.0].max_ratio < 2.5
    # Monotone trend: later arrivals cannot make the ratio smaller than
    # the off-line limit.
    assert all(p.mean_ratio >= 1.0 - 1e-9 for p in points)


class _TimedEngine:
    """Wrap an off-line engine, accumulating the seconds spent inside it
    (both batch paths call the same engine; subtracting it isolates the
    wrapper)."""

    def __init__(self, fn):
        self.fn = fn
        self.seconds = 0.0

    def __call__(self, instance):
        t0 = time.perf_counter()
        out = self.fn(instance)
        self.seconds += time.perf_counter() - t0
        return out


def _placements(schedule):
    return sorted((p.task.task_id, p.start, p.allotment) for p in schedule)


def test_policy_replay_emits_bench_pr5(benchmark):
    """Measure, emit, and gate ``BENCH_PR5.json`` (see module docstring)."""

    def measure():
        windows = []
        for n in REPLAY_NS:
            trace = load_trace(synthesize_swf(n, BENCH_M, seed=42, load=BENCH_LOAD))

            col_engine = _TimedEngine(schedule_wspt)
            inst = trace_instance(trace, BENCH_M, "rigid", online=True)
            t0 = time.perf_counter()
            col = BatchPolicy(col_engine).run(inst)
            col_total = time.perf_counter() - t0

            obj_engine = _TimedEngine(schedule_wspt)
            inst = trace_instance(trace, BENCH_M, "rigid", online=True)
            t0 = time.perf_counter()
            obj = ReferenceBatchScheduler(obj_engine).run(inst)
            obj_total = time.perf_counter() - t0

            # The kernels must agree placement for placement.
            assert _placements(col.schedule) == _placements(obj.schedule)
            assert col.batch_starts == obj.batch_starts

            col_path = col_total - col_engine.seconds
            obj_path = obj_total - obj_engine.seconds
            windows.append(
                {
                    "n": n,
                    "batches": col.n_batches,
                    "columnar_total_s": round(col_total, 3),
                    "object_total_s": round(obj_total, 3),
                    "total_speedup": round(obj_total / col_total, 2),
                    "columnar_path_s": round(col_path, 3),
                    "object_path_s": round(obj_path, 3),
                    "path_speedup": round(obj_path / col_path, 2),
                }
            )

        # End-to-end with the paper's engine (DEMT dominates its own
        # batches; recorded so the full-pipeline trajectory is in-repo).
        trace = load_trace(
            synthesize_swf(REPLAY_NS[0], BENCH_M, seed=42, load=BENCH_LOAD)
        )

        def _best_of(runner, reps=2):
            best = float("inf")
            for _ in range(reps):
                inst = trace_instance(trace, BENCH_M, "rigid", online=True)
                t0 = time.perf_counter()
                runner.run(inst)
                best = min(best, time.perf_counter() - t0)
            return best

        demt_col = _best_of(BatchPolicy(schedule_demt))
        demt_obj = _best_of(ReferenceBatchScheduler(schedule_demt))
        demt = {
            "n": REPLAY_NS[0],
            "columnar_s": round(demt_col, 3),
            "object_s": round(demt_obj, 3),
            "speedup": round(demt_obj / demt_col, 2),
        }

        # The policy axis, replayed on one window under identical
        # arrivals (the ``reservation`` policy needs configuration and is
        # library-only).
        grid_trace = load_trace(
            synthesize_swf(POLICY_GRID_N, BENCH_M, seed=42, load=BENCH_LOAD)
        )
        policies = {}
        for name in ZERO_CONFIG_POLICIES:
            inst = trace_instance(grid_trace, BENCH_M, "rigid", online=True)
            t0 = time.perf_counter()
            res = get_policy(name, offline=schedule_wspt).run(inst)
            seconds = time.perf_counter() - t0
            policies[name] = {
                "seconds": round(seconds, 3),
                "makespan": res.schedule.makespan(),
                "batches": res.n_batches,
            }
        return windows, demt, policies

    windows, demt, policies = benchmark.pedantic(measure, rounds=1, iterations=1)
    doc = {
        "bench": "online-policy-plane",
        "description": "on-line replay of synthetic archive windows: columnar "
        "BatchPolicy kernel vs the seed object-path ReferenceBatchScheduler "
        "(identical schedules asserted; wspt engine, its time subtracted "
        "for the path_* figures), DEMT end-to-end, and the policy-registry "
        "replay grid",
        "m": BENCH_M,
        "load": BENCH_LOAD,
        "engine": "wspt",
        "windows": windows,
        "demt_end_to_end": demt,
        "policy_grid": {"n": POLICY_GRID_N, "policies": policies},
    }

    print()
    for w in windows:
        print(
            f"  replay n={w['n']:>7}: batch path object {w['object_path_s']:7.3f} s"
            f"  columnar {w['columnar_path_s']:7.3f} s  -> {w['path_speedup']:.2f}x"
            f"   (end-to-end {w['total_speedup']:.2f}x in {w['batches']} batches)"
        )
    print(
        f"  demt end-to-end n={demt['n']}: object {demt['object_s']:.2f} s "
        f"columnar {demt['columnar_s']:.2f} s -> {demt['speedup']:.2f}x"
    )
    for name, row in policies.items():
        print(
            f"  policy {name:<16} n={POLICY_GRID_N}: {row['seconds']:7.3f} s  "
            f"({row['batches']} batches)"
        )

    # The measurement is written *before* any gate fires, so the CI
    # artifact survives a failed floor (that record is exactly what a
    # flake diagnosis needs).
    refresh = os.environ.get("REPRO_BENCH_REFRESH") == "1"
    default_out = BENCH_PR5_PATH if refresh else BENCH_PR5_PATH.with_suffix(".new.json")
    out_path = Path(os.environ.get("REPRO_BENCH_PR5_OUT", default_out))
    refreshing_baseline = out_path.resolve() == BENCH_PR5_PATH.resolve() and refresh
    if out_path.resolve() == BENCH_PR5_PATH.resolve() and not refresh:
        raise AssertionError(
            "refusing to overwrite the checked-in BENCH_PR5.json baseline "
            "without REPRO_BENCH_REFRESH=1"
        )
    baseline = json.loads(BENCH_PR5_PATH.read_text()) if BENCH_PR5_PATH.exists() else None

    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"  wrote {out_path}")

    # Acceptance gate: the rewritten batch path must carry its weight at
    # archive scale.
    floor = float(os.environ.get("REPRO_ONLINE_SPEEDUP_MIN", "3.0"))
    at_100k = next(w for w in windows if w["n"] == REPLAY_NS[-1])
    assert at_100k["path_speedup"] >= floor, (
        f"columnar batch path speedup {at_100k['path_speedup']:.2f}x at "
        f"n={REPLAY_NS[-1]} below the {floor:.2f}x floor"
    )

    if baseline is not None and not refreshing_baseline:
        base_by_n = {w["n"]: w for w in baseline.get("windows", [])}
        for w in windows:
            base = base_by_n.get(w["n"])
            if base is None:
                continue
            regression_floor = base["path_speedup"] / 2.0
            assert w["path_speedup"] >= regression_floor, (
                f"batch-path speedup regression at n={w['n']}: measured "
                f"{w['path_speedup']:.2f}x vs baseline "
                f"{base['path_speedup']:.2f}x (floor {regression_floor:.2f}x)"
            )
