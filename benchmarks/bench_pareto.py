"""Pareto subsystem benchmarks: dominance kernel + end-to-end sweep.

The acceptance bar of the frontier subsystem: the vectorized
``O(n log n)`` dominance kernel (:func:`repro.pareto.front.pareto_mask`)
must beat the brute-force ``O(n^2)`` oracle
(:func:`repro.pareto.front.pareto_mask_reference`) by **>= 10x at 10k
points**.  The sweep runs at ``n in {10_000, 100_000}`` and is emitted as
``BENCH_PR4.json`` (``REPRO_BENCH_PR4_OUT`` overrides the path), with the
checked-in copy doubling as the regression baseline: CI fails when a
measured kernel *speedup* drops below half the recorded one (ratios
transfer across machines; raw milliseconds do not).

At 100k points the quadratic oracle costs ~100x its 10k time, so its
timing is extrapolated from the measured 10k point by default (recorded
with ``"extrapolated": true``); set ``REPRO_BENCH_FULL=1`` to measure it
directly.

Alongside the kernel sweep the file records an end-to-end trade-off sweep
on the Figure-7 workload grid at smoke scale (full variant set, serial
backend) so the whole pipeline's cost trajectory — instance generation,
scheduling every variant, dominance, indicators — is in-repo.

Refreshing the baseline after intentional perf work::

    PYTHONPATH=src REPRO_BENCH_REFRESH=1 python -m pytest \
        benchmarks/bench_pareto.py -q -s
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.experiments.config import SCALES
from repro.experiments.figures import FIGURE7_WORKLOADS
from repro.pareto.front import pareto_mask, pareto_mask_reference
from repro.pareto.sweep import resolve_sweep, sweep_tradeoffs

#: Kernel sweep sizes (the acceptance bar is pinned at the first).
KERNEL_NS = (10_000, 100_000)

#: Hard acceptance floor at KERNEL_NS[0] (the PR's stated bar).
MIN_SPEEDUP_AT_10K = 10.0

#: Default location of the checked-in benchmark record / baseline.
BENCH_PR4_PATH = Path(__file__).resolve().parent / "BENCH_PR4.json"


def _best_of(fn, reps: int = 3) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _cloud(n: int) -> np.ndarray:
    # A correlated cloud keeps the front size realistic (a few dozen
    # points) rather than degenerate; seeded per n for reproducibility.
    rng = np.random.default_rng(n)
    pts = rng.random((n, 2))
    return pts + 0.25 * pts[:, ::-1]


def test_pareto_bench_emits_bench_pr4(benchmark):
    """Measure, emit, and gate ``BENCH_PR4.json``."""
    full_oracle = os.environ.get("REPRO_BENCH_FULL") == "1"

    def measure():
        points = []
        oracle_10k_s = None
        for n in KERNEL_NS:
            cloud = _cloud(n)
            assert (pareto_mask(cloud) == pareto_mask_reference(cloud)).all() if n <= 10_000 else True
            kernel_s = _best_of(lambda: pareto_mask(cloud))
            extrapolated = n > KERNEL_NS[0] and not full_oracle
            if extrapolated:
                # O(n^2) scaling from the measured smallest point.
                oracle_s = oracle_10k_s * (n / KERNEL_NS[0]) ** 2
            else:
                oracle_s = _best_of(lambda: pareto_mask_reference(cloud))
            if n == KERNEL_NS[0]:
                oracle_10k_s = oracle_s
            points.append(
                {
                    "n": n,
                    "kernel_ms": round(1e3 * kernel_s, 4),
                    "oracle_ms": round(1e3 * oracle_s, 3),
                    "speedup": round(oracle_s / kernel_s, 1),
                    "extrapolated": extrapolated,
                }
            )

        # End-to-end sweep on the Figure-7 grid at smoke scale.
        cfg = SCALES["smoke"]
        n_variants = len(resolve_sweep("full"))
        t0 = time.perf_counter()
        cells = 0
        for kind in FIGURE7_WORKLOADS:
            result = sweep_tradeoffs(
                kind,
                "full",
                m=cfg.m,
                task_counts=cfg.task_counts,
                runs=cfg.runs,
                seed=cfg.seed,
            )
            cells += len(result.cells)
        sweep_s = time.perf_counter() - t0
        sweep = {
            "workloads": list(FIGURE7_WORKLOADS),
            "task_counts": list(cfg.task_counts),
            "runs": cfg.runs,
            "m": cfg.m,
            "variants": n_variants,
            "cells": cells,
            "seconds": round(sweep_s, 3),
        }
        return points, sweep

    points, sweep = benchmark.pedantic(measure, rounds=1, iterations=1)
    doc = {
        "bench": "pareto-frontier",
        "description": "vectorized dominance kernel vs brute-force O(n^2) "
        "oracle (best-of-reps; oracle extrapolated quadratically at the "
        "largest n unless REPRO_BENCH_FULL=1), plus an end-to-end "
        "trade-off sweep (full variant set) on the Figure-7 workload "
        "grid at smoke scale",
        "points": points,
        "sweep": sweep,
    }

    print()
    for p in points:
        tag = " (extrapolated oracle)" if p["extrapolated"] else ""
        print(
            f"  mask n={p['n']:>7}: oracle {p['oracle_ms']:10.1f} ms  "
            f"kernel {p['kernel_ms']:8.2f} ms  -> {p['speedup']:.0f}x{tag}"
        )
    print(
        f"  fig7-grid sweep: {sweep['cells']} cells x {sweep['variants']} "
        f"variants in {sweep['seconds']:.2f} s"
    )

    refresh = os.environ.get("REPRO_BENCH_REFRESH") == "1"
    default_out = BENCH_PR4_PATH if refresh else BENCH_PR4_PATH.with_suffix(".new.json")
    out_path = Path(os.environ.get("REPRO_BENCH_PR4_OUT", default_out))
    refreshing_baseline = out_path.resolve() == BENCH_PR4_PATH.resolve() and refresh
    if out_path.resolve() == BENCH_PR4_PATH.resolve() and not refresh:
        raise AssertionError(
            "refusing to overwrite the checked-in BENCH_PR4.json baseline "
            "without REPRO_BENCH_REFRESH=1"
        )
    baseline = json.loads(BENCH_PR4_PATH.read_text()) if BENCH_PR4_PATH.exists() else None

    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"  wrote {out_path}")

    # Hard acceptance floor, independent of any baseline.
    at_10k = next(p for p in points if p["n"] == KERNEL_NS[0])
    assert at_10k["speedup"] >= MIN_SPEEDUP_AT_10K, (
        f"dominance kernel speedup at n={KERNEL_NS[0]} is "
        f"{at_10k['speedup']:.1f}x, below the {MIN_SPEEDUP_AT_10K:.0f}x bar"
    )

    if baseline is not None and not refreshing_baseline:
        base_by_n = {p["n"]: p for p in baseline.get("points", [])}
        for p in points:
            base = base_by_n.get(p["n"])
            if base is None:
                continue
            floor = base["speedup"] / 2.0
            assert p["speedup"] >= floor, (
                f"dominance kernel speedup regression at n={p['n']}: measured "
                f"{p['speedup']:.1f}x vs baseline {base['speedup']:.1f}x "
                f"(floor {floor:.1f}x)"
            )
