"""Trace-replay benchmarks: columnar ingestion at archive scale.

The acceptance bar of the trace subsystem: loading an archive-sized log
must stay *columnar* — chunked ``np.loadtxt`` into numpy columns, no
per-job Python objects — which shows up as a large speedup over the
object parser (``read_swf``) that real archive tooling would use.  The
sweep runs at ``n in {20_000, 100_000}`` jobs and is emitted as
``BENCH_PR3.json`` (``REPRO_BENCH_PR3_OUT`` overrides the path), with the
checked-in copy doubling as the regression baseline: CI fails when the
measured load *speedup* at any ``n`` drops below half the recorded one
(ratios transfer across machines; raw milliseconds do not).

Alongside the headline sweep the file records, at 100k jobs, the
per-model moldability reconstruction times (pure array work on the
``(n, m)`` matrix), and a small end-to-end replay timing (columnar load →
reconstruction → on-line batch replay with DEMT) so the whole pipeline's
cost trajectory is in-repo.

Refreshing the baseline after intentional perf work::

    PYTHONPATH=src REPRO_BENCH_REFRESH=1 python -m pytest \
        benchmarks/bench_trace_replay.py -q -s
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.experiments.replay import replay_trace
from repro.io.swf import read_swf
from repro.workloads.trace import (
    MOLDABILITY_MODELS,
    load_trace,
    reconstruct_times,
    synthesize_swf,
)

#: Load-bench sweep sizes (the acceptance bar requires >= 100k jobs).
LOAD_BENCH_NS = (20_000, 100_000)

#: Machine size of the synthetic archive (kept moderate so the dense
#: (n, m) reconstruction matrices stay RAM-friendly at 100k jobs).
BENCH_M = 64

#: Jobs replayed end to end (on-line batch DEMT is the expensive part).
REPLAY_WINDOW = 600

#: Default location of the checked-in benchmark record / baseline.
BENCH_PR3_PATH = Path(__file__).resolve().parent / "BENCH_PR3.json"


def _best_of(fn, reps: int = 3) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_trace_bench_emits_bench_pr3(benchmark):
    """Measure, emit, and gate ``BENCH_PR3.json``.

    Writes the fresh measurement to ``$REPRO_BENCH_PR3_OUT`` (default:
    ``benchmarks/BENCH_PR3.new.json``, uploaded as a CI artifact), then
    gates the load speedup at each ``n`` against the checked-in baseline:
    a drop below *half* the recorded ratio fails.
    ``REPRO_BENCH_REFRESH=1`` rewrites the baseline itself (gate skipped).
    """

    def measure():
        points = []
        for n in LOAD_BENCH_NS:
            text = synthesize_swf(n, BENCH_M, seed=n)
            # Same rep count on both sides: an asymmetric best-of would
            # systematically inflate the gated speedup ratio with noise.
            columnar_s = _best_of(lambda: load_trace(text))
            object_s = _best_of(lambda: read_swf(text))
            trace = load_trace(text)
            assert trace.n == len(read_swf(text))
            points.append(
                {
                    "n": n,
                    "columnar_ms": round(1e3 * columnar_s, 3),
                    "object_ms": round(1e3 * object_s, 3),
                    "speedup": round(object_s / columnar_s, 2),
                }
            )

        big = load_trace(synthesize_swf(LOAD_BENCH_NS[-1], BENCH_M, seed=LOAD_BENCH_NS[-1]))
        models_ms = {
            model: round(
                1e3 * _best_of(lambda: reconstruct_times(big, BENCH_M, model), reps=2), 3
            )
            for model in MOLDABILITY_MODELS
        }

        window = big.window(0, REPLAY_WINDOW)
        t0 = time.perf_counter()
        result, = replay_trace(window, m=BENCH_M, models="downey", modes="batch")
        replay_s = time.perf_counter() - t0
        replay = {
            "n_jobs": window.n,
            "model": "downey",
            "batches": result.n_batches,
            "seconds": round(replay_s, 3),
        }
        return points, models_ms, replay

    points, models_ms, replay = benchmark.pedantic(measure, rounds=1, iterations=1)
    doc = {
        "bench": "trace-replay-plane",
        "description": "columnar SWF ingestion vs object parser (best-of-reps), "
        "per-model moldability reconstruction at the largest n, and an "
        "end-to-end on-line replay window (DEMT engine)",
        "m": BENCH_M,
        "points": points,
        "reconstruction_ms_at_100k": models_ms,
        "replay_window": replay,
    }

    print()
    for p in points:
        print(
            f"  load n={p['n']:>7}: object {p['object_ms']:9.1f} ms  "
            f"columnar {p['columnar_ms']:8.1f} ms  -> {p['speedup']:.2f}x"
        )
    print(f"  reconstruction at n={LOAD_BENCH_NS[-1]}: " + ", ".join(
        f"{k} {v:.0f} ms" for k, v in models_ms.items()))
    print(
        f"  replay window n={replay['n_jobs']} (downey/batch): "
        f"{replay['seconds']:.2f} s in {replay['batches']} batches"
    )

    refresh = os.environ.get("REPRO_BENCH_REFRESH") == "1"
    default_out = BENCH_PR3_PATH if refresh else BENCH_PR3_PATH.with_suffix(".new.json")
    out_path = Path(os.environ.get("REPRO_BENCH_PR3_OUT", default_out))
    refreshing_baseline = out_path.resolve() == BENCH_PR3_PATH.resolve() and refresh
    if out_path.resolve() == BENCH_PR3_PATH.resolve() and not refresh:
        raise AssertionError(
            "refusing to overwrite the checked-in BENCH_PR3.json baseline "
            "without REPRO_BENCH_REFRESH=1"
        )
    baseline = json.loads(BENCH_PR3_PATH.read_text()) if BENCH_PR3_PATH.exists() else None

    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"  wrote {out_path}")

    if baseline is not None and not refreshing_baseline:
        base_by_n = {p["n"]: p for p in baseline.get("points", [])}
        for p in points:
            base = base_by_n.get(p["n"])
            if base is None:
                continue
            floor = base["speedup"] / 2.0
            assert p["speedup"] >= floor, (
                f"columnar load speedup regression at n={p['n']}: measured "
                f"{p['speedup']:.2f}x vs baseline {base['speedup']:.2f}x "
                f"(floor {floor:.2f}x)"
            )
