"""Shared benchmark plumbing.

Scale selection: benchmarks honour ``REPRO_SCALE`` (``paper`` regenerates
§4.1 exactly; ``quick`` — the default here — runs a minutes-scale sweep;
``smoke`` is for CI).  Every figure bench prints the same rows the paper
plots, so ``pytest benchmarks/ --benchmark-only -s`` doubles as the
reproduction report.

Backend selection: ``REPRO_BACKEND=process`` fans every campaign's cells
out over the CPU cores through the :mod:`repro.experiments.engine`
executor (numbers are identical to the serial default; only wall-clock
changes).  ``REPRO_JOBS`` caps the worker count.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import resolve_scale


@pytest.fixture(scope="session")
def scale_config():
    """The campaign configuration for this benchmark session."""
    return resolve_scale(os.environ.get("REPRO_SCALE", "quick"))


@pytest.fixture(scope="session")
def is_tiny_scale():
    """True when running below 'quick' scale (skip statistical assertions)."""
    return os.environ.get("REPRO_SCALE", "quick") == "smoke"


@pytest.fixture(scope="session")
def exec_backend():
    """Cell executor name for campaign benches (``REPRO_BACKEND``)."""
    return os.environ.get("REPRO_BACKEND", "serial")


@pytest.fixture(scope="session")
def exec_jobs():
    """Worker count for the process backend (``REPRO_JOBS``)."""
    jobs = os.environ.get("REPRO_JOBS")
    return int(jobs) if jobs else None
