#!/usr/bin/env python
"""The bi-criteria trade-off, visualised (§1.3 / §2.2).

The paper's pitch: users want small completion times (sum w_i C_i), the
administrator wants a short, well-packed machine occupation (Cmax).  This
example scatters every algorithm in the (Cmax ratio, minsum ratio) plane
on each workload family to show DEMT's position: never the very best on a
single criterion, but on or near the Pareto front for *both* — which is
exactly its design goal.

Run:  python examples/bicriteria_tradeoff.py
"""

from __future__ import annotations

from repro import ALGORITHMS, generate_workload, lower_bounds, schedule_with
from repro.utils.ascii_plot import ascii_chart


def pareto_front(points: dict[str, tuple[float, float]]) -> list[str]:
    """Names of algorithms not dominated on (cmax, minsum)."""
    front = []
    for name, (cx, ms) in points.items():
        dominated = any(
            (ox <= cx and oms <= ms) and (ox < cx or oms < ms)
            for other, (ox, oms) in points.items()
            if other != name
        )
        if not dominated:
            front.append(name)
    return front


def main() -> None:
    m, n = 64, 120
    for kind in ("weakly_parallel", "highly_parallel", "mixed", "cirne"):
        inst = generate_workload(kind, n=n, m=m, seed=9)
        lbs = lower_bounds(inst)
        points: dict[str, tuple[float, float]] = {}
        for name in ALGORITHMS:
            s = schedule_with(name, inst)
            points[name] = (
                s.makespan() / lbs["cmax"],
                s.weighted_completion_sum() / lbs["minsum"],
            )

        print(f"=== {kind} (n={n}, m={m}) ===")
        for name, (cx, ms) in sorted(points.items(), key=lambda kv: kv[1]):
            print(f"  {name:<16} Cmax ratio {cx:6.3f}   minsum ratio {ms:6.3f}")
        front = pareto_front(points)
        print(f"  Pareto front: {', '.join(sorted(front))}")
        on_front = "DEMT" in front
        print(f"  DEMT on the bi-criteria front: {on_front}")
        print(
            ascii_chart(
                {name: [xy] for name, xy in points.items()},
                title=f"{kind}: Cmax ratio (x) vs minsum ratio (y)",
                width=60,
                height=14,
            )
        )


if __name__ == "__main__":
    main()
