#!/usr/bin/env python
"""The bi-criteria trade-off, visualised (§1.3 / §2.2).

The paper's pitch: users want small completion times (sum w_i C_i), the
administrator wants a short, well-packed machine occupation (Cmax).  This
example scatters every algorithm in the (Cmax ratio, minsum ratio) plane
on each workload family to show DEMT's position: never the very best on a
single criterion, but on or near the Pareto front for *both* — which is
exactly its design goal.

Non-domination is computed by the library's vectorized kernel
(:mod:`repro.pareto.front`); the second half of the example runs a proper
trade-off *sweep* — DEMT's knobs plus the registry, per-instance fronts,
quality indicators — through :func:`repro.pareto.sweep_tradeoffs`.

Run:  python examples/bicriteria_tradeoff.py
"""

from __future__ import annotations

from repro import ALGORITHMS, generate_workload, lower_bounds, schedule_with
from repro.pareto import pareto_indices, sweep_tradeoffs
from repro.utils.ascii_plot import ascii_chart, ascii_front


def pareto_front(points: dict[str, tuple[float, float]]) -> list[str]:
    """Names of algorithms not dominated on (cmax, minsum)."""
    names = list(points)
    cloud = [points[name] for name in names]
    return [names[i] for i in pareto_indices(cloud)]


def main() -> None:
    m, n = 64, 120
    for kind in ("weakly_parallel", "highly_parallel", "mixed", "cirne"):
        inst = generate_workload(kind, n=n, m=m, seed=9)
        lbs = lower_bounds(inst)
        points: dict[str, tuple[float, float]] = {}
        for name in ALGORITHMS:
            s = schedule_with(name, inst)
            points[name] = (
                s.makespan() / lbs["cmax"],
                s.weighted_completion_sum() / lbs["minsum"],
            )

        print(f"=== {kind} (n={n}, m={m}) ===")
        for name, (cx, ms) in sorted(points.items(), key=lambda kv: kv[1]):
            print(f"  {name:<16} Cmax ratio {cx:6.3f}   minsum ratio {ms:6.3f}")
        front = pareto_front(points)
        print(f"  Pareto front: {', '.join(sorted(front))}")
        on_front = "DEMT" in front
        print(f"  DEMT on the bi-criteria front: {on_front}")
        print(
            ascii_chart(
                {name: [xy] for name, xy in points.items()},
                title=f"{kind}: Cmax ratio (x) vs minsum ratio (y)",
                width=60,
                height=14,
            )
        )

    # ------------------------------------------------------------------ #
    # The same question, asked properly: a trade-off sweep.  DEMT's knobs
    # (shuffle count, merge threshold, intra-batch ordering, dual-guess
    # relaxation) trace a curve through the (Cmax, minsum) plane; the
    # registry algorithms anchor it.  Fronts are per-instance, indicators
    # are normalised by the lower bounds (ideal point (1, 1)).
    # ------------------------------------------------------------------ #
    print("=== trade-off sweep: DEMT knobs + registry (mixed, n=60) ===")
    result = sweep_tradeoffs("mixed", "full", m=m, task_counts=(60,), runs=3, seed=9)
    for row in result.variant_rows():
        print(
            f"  {row['spec']:<24} Cmax ratio {row['cmax_ratio']:6.3f}   "
            f"minsum ratio {row['minsum_ratio']:6.3f}   "
            f"on front {row['on_front']:4.0%}   eps+ {row['eps_add']:6.3f}"
        )
    summary = result.indicator_summary()
    print(
        f"  mean front size {summary['mean_front_size']:.2f}   "
        f"mean hypervolume {summary['mean_hypervolume']:.4f}"
    )
    cell = result.cells[0]
    print(
        ascii_front(
            cell.cloud,
            cell.front,
            title=f"sweep cell (n={cell.n}, r={cell.r}): "
            "Cmax ratio (x) vs minsum ratio (y)",
        )
    )


if __name__ == "__main__":
    main()
