#!/usr/bin/env python
"""Reproduce a slice of the paper's evaluation (Figures 3-6 style).

Runs the six algorithms over a sweep of task counts on one workload family
and prints the performance-ratio table plus the two ASCII figure panels —
the same information as one of the paper's figures, at a configurable
scale.

Run:  python examples/cluster_campaign.py [workload] [scale]
      python examples/cluster_campaign.py cirne quick
"""

from __future__ import annotations

import sys

from repro.experiments import resolve_scale, run_campaign
from repro.experiments.reporting import format_campaign_charts, format_campaign_table
from repro.workloads import WORKLOAD_KINDS


def main(argv: list[str]) -> int:
    workload = argv[1] if len(argv) > 1 else "cirne"
    scale = argv[2] if len(argv) > 2 else "smoke"
    if workload not in WORKLOAD_KINDS:
        print(f"unknown workload {workload!r}; choose from {', '.join(WORKLOAD_KINDS)}")
        return 2

    cfg = resolve_scale(scale)
    print(
        f"Campaign: workload={workload}, m={cfg.m}, "
        f"n in {cfg.task_counts}, {cfg.runs} runs/point"
    )
    result = run_campaign(workload, cfg, progress=True)
    print()
    print(format_campaign_table(result))
    print(format_campaign_charts(result))

    # The paper's two headline observations, computed live:
    demt_minsum = [p.for_algorithm("DEMT").minsum.average for p in result.points]
    demt_cmax = [p.for_algorithm("DEMT").cmax.average for p in result.points]
    print(f"DEMT minsum ratio: max {max(demt_minsum):.2f} (paper: never more than ~2.5)")
    print(f"DEMT Cmax   ratio: max {max(demt_cmax):.2f} (paper: almost always below ~2)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
