#!/usr/bin/env python
"""§5 extensions: mixed job types, reservations, and the FCFS baseline.

The paper's conclusion lists the practical problems left open: mixing
moldable, rigid and divisible-load jobs, and handling node reservations.
This example exercises the corresponding extensions:

1. generate a mixed-type workload and schedule it with DEMT;
2. compare with the FCFS / FCFS+EASY production baselines;
3. add a maintenance reservation and watch the schedule flow around it;
4. render everything as ASCII Gantt charts.

Run:  python examples/mixed_job_types.py
"""

from __future__ import annotations

from repro.algorithms.demt import schedule_demt
from repro.core.validation import validate_schedule
from repro.extensions import (
    FcfsBackfillScheduler,
    Reservation,
    ReservationScheduler,
    generate_mixed_types,
)
from repro.viz.gantt import gantt_chart, usage_chart


def main() -> None:
    m = 16
    inst, stats = generate_mixed_types(30, m, seed=21)
    print(
        f"Mixed workload: {stats.n_moldable} moldable, {stats.n_rigid} rigid, "
        f"{stats.n_divisible} divisible-load jobs on m={m}"
    )
    print()

    demt = schedule_demt(inst)
    validate_schedule(demt, inst)
    print("DEMT on the mixed workload:")
    print(f"  Cmax = {demt.makespan():.2f}   sum w_i C_i = {demt.weighted_completion_sum():.1f}")
    print(usage_chart(demt, width=60, height=6))

    for backfill in (False, True):
        fcfs = FcfsBackfillScheduler(backfill=backfill).schedule(inst)
        validate_schedule(fcfs, inst)
        name = "FCFS+EASY" if backfill else "FCFS     "
        print(
            f"{name}: Cmax = {fcfs.makespan():7.2f}   "
            f"sum w_i C_i = {fcfs.weighted_completion_sum():9.1f}"
        )
    print()

    # Maintenance: half the machine blocked early on.
    res = [Reservation(start=2.0, end=8.0, procs=m // 2)]
    reserved = ReservationScheduler(res).schedule(inst)
    validate_schedule(reserved, inst)
    print(f"With {m // 2} nodes reserved over [2, 8):")
    print(
        f"  Cmax = {reserved.makespan():.2f} "
        f"(vs {demt.makespan():.2f} without the reservation)"
    )
    print(usage_chart(reserved, width=60, height=6))

    print("Gantt chart of the reserved-machine schedule (first 16 processors):")
    print(gantt_chart(reserved, width=60, max_procs=16))


if __name__ == "__main__":
    main()
