#!/usr/bin/env python
"""On-line job submission through the pluggable policy registry (§2.2).

Simulates the production setting the paper targets (the Icluster2
front-end of Figure 1): jobs arrive over time and an on-line policy from
:data:`repro.simulator.ONLINE_POLICIES` decides how to run them.  The
default policy is the paper's batch framework (each batch scheduled
off-line by DEMT); the same arrival stream is then replayed under every
other registry policy, so the §1.2 production baselines (FCFS, EASY
backfilling) and the structural ablation (greedy-interval) are measured
beside the paper's wrapper on identical inputs.

Run:  python examples/online_submission.py
"""

from __future__ import annotations

import numpy as np

from repro import generate_workload, schedule_demt
from repro.core import Instance
from repro.simulator import ClusterSimulator, get_policy


def main() -> None:
    rng = np.random.default_rng(7)
    m, n = 32, 60

    # A morning's submissions: Poisson-ish arrivals of Cirne-Berman jobs.
    base = generate_workload("cirne", n=n, m=m, seed=3)
    releases = np.sort(rng.exponential(scale=0.6, size=n).cumsum() * 0.2)
    inst = Instance(
        [t.with_release(float(r)) for t, r in zip(base.tasks, releases)], m
    )
    print(f"{n} jobs arriving over [0, {releases[-1]:.2f}] on m={m} processors")

    result = get_policy("batch", offline=schedule_demt).run(inst)
    print(f"The framework executed {result.n_batches} batches:")
    for k, (start, content) in enumerate(
        zip(result.batch_starts, result.batch_contents)
    ):
        end = max(result.schedule[i].end for i in content)
        print(
            f"  batch {k:>2}: start {start:8.3f}  end {end:8.3f}  jobs {len(content):>3}"
        )
    print()

    sched = result.schedule
    flows = [
        sched[t.task_id].end - t.release for t in inst.tasks
    ]
    print(f"on-line makespan          : {sched.makespan():.3f}")
    print(f"mean / max job flow time  : {np.mean(flows):.3f} / {np.max(flows):.3f}")

    # Competitive accounting: compare with clairvoyant off-line DEMT (all
    # jobs known at t=0).  §2.2: batching costs at most a factor 2 on top
    # of the off-line approximation ratio.
    offline = schedule_demt(base)
    print(f"clairvoyant off-line Cmax : {offline.makespan():.3f}")
    print(
        f"on-line / off-line        : {sched.makespan() / offline.makespan():.3f}"
        "  (the 2-rho analysis allows up to ~2 + arrival horizon)"
    )

    # Replay on the simulator to show the batches never overlap on real
    # processors.
    trace = ClusterSimulator(m).execute(sched, inst)
    print(f"simulator replay OK, utilisation {100 * trace.utilization(m):.1f}%")

    # The same arrivals under every registry policy: the §1.2 baselines
    # and the structural ablation, directly comparable because the
    # instance (and therefore the clairvoyant bound) is identical.
    print()
    print("Same arrivals under every on-line policy:")
    for name in ("batch", "fcfs", "fcfs-backfill", "greedy-interval"):
        res = get_policy(name, offline=schedule_demt).run(inst)
        cmax = res.schedule.makespan()
        mean_flow = np.mean(
            [res.schedule[t.task_id].end - t.release for t in inst.tasks]
        )
        print(
            f"  {name:<16} Cmax {cmax:8.3f}  ratio "
            f"{cmax / offline.makespan():5.3f}  mean flow {mean_flow:7.3f}"
        )


if __name__ == "__main__":
    main()
