#!/usr/bin/env python
"""Regenerate a specific figure of the paper (thin CLI wrapper).

Equivalent to ``repro-experiments --figure N`` but kept as an example so
the per-experiment index of DESIGN.md has a runnable artefact, and to show
how to drive the harness programmatically (including CSV export of the
series for external plotting).

Run:  python examples/paper_figures.py --figure 3 [--scale smoke|quick|paper]
"""

from __future__ import annotations

import argparse

from repro.experiments.config import resolve_scale
from repro.experiments.export import campaign_to_csv
from repro.experiments.figures import FIGURES, figure7
from repro.experiments.reporting import (
    format_campaign_charts,
    format_campaign_table,
    format_timing_table,
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--figure", choices=list(FIGURES), required=True)
    parser.add_argument("--scale", default="smoke")
    parser.add_argument(
        "--csv", metavar="PATH", help="also write the series as CSV"
    )
    args = parser.parse_args()

    cfg = resolve_scale(args.scale)
    if args.figure == "7":
        result = figure7(cfg)
        print(format_timing_table(result.timings))
        return 0

    result = FIGURES[args.figure](cfg, progress=True)
    print(format_campaign_table(result))
    print(format_campaign_charts(result))
    if args.csv:
        with open(args.csv, "w") as fh:
            fh.write(campaign_to_csv(result))
        print(f"series written to {args.csv}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
