#!/usr/bin/env python
"""Quickstart: generate a workload, schedule it with DEMT, inspect results.

This walks the library's main surfaces in ~40 lines:

1. generate one of the paper's synthetic workloads;
2. schedule it with the bi-criteria DEMT algorithm;
3. compare against the baselines and the §3.3 lower bounds;
4. replay the winning schedule on the explicit cluster simulator.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ALGORITHMS,
    evaluate_schedule,
    generate_workload,
    schedule_demt,
    schedule_with,
)
from repro.simulator import ClusterSimulator


def main() -> None:
    # A medium instance of the paper's "realistic" workload family:
    # 120 moldable jobs on a 64-processor cluster.
    inst = generate_workload("cirne", n=120, m=64, seed=42)
    print(f"Instance: {inst.n} moldable tasks, m={inst.m} processors")
    print(f"  smallest possible task duration: {inst.tmin:.3f}")
    print(f"  area lower bound on Cmax:        {inst.min_total_work / inst.m:.3f}")
    print()

    # The paper's algorithm.
    sched = schedule_demt(inst)
    report = evaluate_schedule(sched, inst)
    print("DEMT (the paper's bi-criteria algorithm):")
    print(f"  Cmax        = {report['cmax']:9.3f}  (LB {report['cmax_lower_bound']:.3f}, ratio {report['cmax_ratio']:.3f})")
    print(f"  sum w_i C_i = {report['minsum']:9.3f}  (LB {report['minsum_lower_bound']:.3f}, ratio {report['minsum_ratio']:.3f})")
    print()

    # Every baseline of §4.1, on both criteria.
    print(f"{'algorithm':<16} {'Cmax':>10} {'sum w_i C_i':>14}")
    for name in ALGORITHMS:
        s = schedule_with(name, inst)
        print(f"{name:<16} {s.makespan():>10.3f} {s.weighted_completion_sum():>14.3f}")
    print()

    # Replay DEMT's schedule on the event-driven simulator: concrete
    # processor ids, utilisation, event log.
    trace = ClusterSimulator(inst.m).execute(sched, inst)
    print("Simulator replay of the DEMT schedule:")
    print(f"  makespan     : {trace.makespan:.3f} (matches: {abs(trace.makespan - sched.makespan()) < 1e-9})")
    print(f"  utilisation  : {100 * trace.utilization(inst.m):.1f}% of the m x Cmax rectangle")
    first_job = min(trace.processor_assignment)
    print(f"  e.g. job {first_job} ran on processors {trace.processor_assignment[first_job][:8]}")


if __name__ == "__main__":
    main()
