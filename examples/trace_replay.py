#!/usr/bin/env python
"""Replay a (synthetic) SWF cluster log through the trace-replay subsystem.

Workflow a production operator would run with a real Parallel Workloads
Archive log:

1. load an SWF trace into the columnar plane (here: synthesised from the
   Cirne model so the example is self-contained — substitute any archive
   file path);
2. lift the rigid logged jobs to moldable tasks with each reconstruction
   model, anchored at the logged ``(procs, run)`` point;
3. replay through the on-line batch framework with DEMT as the off-line
   engine, next to the clairvoyant off-line bound;
4. export the *simulated* execution back to SWF for archive tooling.

Run:  python examples/trace_replay.py
"""

from __future__ import annotations

import numpy as np

from repro import schedule_demt
from repro.experiments.replay import export_replay_swf, replay_trace
from repro.experiments.reporting import format_replay_table
from repro.io.swf import read_swf
from repro.simulator import ClusterSimulator
from repro.workloads.trace import load_trace, synthesize_swf, trace_instance


def main() -> None:
    m = 32
    text = synthesize_swf(n=40, m=m, seed=12, quirks=True)
    trace = load_trace(text)
    print(f"Loaded {trace.n} jobs (columnar), digest {trace.digest[:12]}, "
          f"arrival span {trace.span:.2f}")

    results = replay_trace(trace, models="all", modes=("batch", "clairvoyant"))
    print()
    print(format_replay_table(results))

    # Drill into one replay: simulate the schedule and report waits.
    inst = trace_instance(trace, m=m, model="downey")
    from repro.simulator import OnlineBatchScheduler

    result = OnlineBatchScheduler(schedule_demt).run(inst)
    sched = result.schedule
    trace_exec = ClusterSimulator(m).execute(sched, inst)
    waits = [
        trace_exec.log.start_of(t.task_id).time - t.release for t in inst.tasks
    ]
    print(f"downey/batch: mean wait {np.mean(waits):.2f}, "
          f"max wait {np.max(waits):.2f}, "
          f"utilisation {100 * trace_exec.utilization(m):.1f}%")

    out = export_replay_swf(trace, m=m, model="downey")
    reparsed = read_swf(out)
    print(f"exported simulated execution as SWF ({len(reparsed)} jobs, "
          "round-trips through the parser)")


if __name__ == "__main__":
    main()
