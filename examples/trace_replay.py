#!/usr/bin/env python
"""Replay a (synthetic) SWF cluster log through the on-line scheduler.

Workflow a production operator would run with a real Parallel Workloads
Archive log:

1. read an SWF trace (here: synthesised from the Cirne model so the
   example is self-contained — substitute any archive file);
2. build a rigid on-line instance from it;
3. replay it through the on-line batch framework with DEMT as the
   off-line engine;
4. export the *simulated* execution back to SWF for archive tooling.

Run:  python examples/trace_replay.py
"""

from __future__ import annotations

import numpy as np

from repro import generate_workload, schedule_demt
from repro.core import Instance
from repro.io.swf import read_swf, swf_to_instance, write_swf
from repro.simulator import ClusterSimulator, OnlineBatchScheduler


def synthesise_swf(n: int, m: int, seed: int) -> str:
    """Fabricate an SWF log from the Cirne workload (stand-in for a real
    archive file)."""
    rng = np.random.default_rng(seed)
    base = generate_workload("cirne", n=n, m=m, seed=seed)
    submits = np.sort(rng.exponential(1.0, size=n).cumsum())
    lines = ["; synthetic SWF log (Cirne model)", f"; MaxProcs: {m}"]
    for task, submit in zip(base.tasks, submits):
        # The "user" requests the allotment giving ~2x their best runtime.
        k = int(np.argmin(np.abs(task.times - 2 * task.min_time))) + 1
        lines.append(
            f"{task.task_id} {submit:.3f} -1 {task.p(k):.3f} {k} "
            "-1 -1 {k} -1 -1 1 -1 -1 -1 -1 -1 -1 -1".format(k=k)
        )
    return "\n".join(lines) + "\n"


def main() -> None:
    m = 32
    text = synthesise_swf(n=40, m=m, seed=12)
    jobs = read_swf(text)
    print(f"Parsed {len(jobs)} SWF jobs; first submit {jobs[0].submit:.2f}, "
          f"last {jobs[-1].submit:.2f}")

    inst = swf_to_instance(jobs, m=m, online=True)
    result = OnlineBatchScheduler(schedule_demt).run(inst)
    sched = result.schedule
    print(f"Replayed in {result.n_batches} batches; on-line Cmax {sched.makespan():.2f}")

    trace = ClusterSimulator(m).execute(sched, inst)
    waits = [
        trace.log.start_of(t.task_id).time - t.release for t in inst.tasks
    ]
    print(f"mean wait {np.mean(waits):.2f}, max wait {np.max(waits):.2f}")
    print(f"utilisation {100 * trace.utilization(m):.1f}%")

    out = write_swf(sched, m=m)
    reparsed = read_swf(out)
    print(f"exported simulated execution as SWF ({len(reparsed)} jobs, "
          "round-trips through the parser)")


if __name__ == "__main__":
    main()
