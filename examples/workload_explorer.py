#!/usr/bin/env python
"""Explore the §4.1 workload generators and the moldability model.

Shows, for each of the paper's four families, what the generated tasks
look like: sequential times, speedup curves (Downey curves for the
Cirne–Berman family, the recurrence profiles for the others), and how the
dual-approximation substrate allots processors to them.

Run:  python examples/workload_explorer.py
"""

from __future__ import annotations

import numpy as np

from repro import generate_workload
from repro.algorithms import dual_approximation
from repro.utils.ascii_plot import ascii_chart
from repro.workloads import WORKLOAD_KINDS


def describe_family(kind: str, m: int = 64, n: int = 80) -> None:
    inst = generate_workload(kind, n=n, m=m, seed=11)
    seqs = np.array([t.seq_time for t in inst])
    speedups = np.array([t.seq_time / t.min_time for t in inst])
    weights = np.array([t.weight for t in inst])
    print(f"--- {kind} (n={n}, m={m}) ---")
    print(
        f"  p(1):     mean {seqs.mean():6.2f}   min {seqs.min():6.2f}   max {seqs.max():6.2f}"
    )
    print(
        f"  speedup:  mean {speedups.mean():6.2f}   median {np.median(speedups):6.2f}"
        f"   max {speedups.max():6.2f}  (on {m} processors)"
    )
    print(f"  weights:  mean {weights.mean():6.2f}  (uniform 1..10 by construction)")

    dual = dual_approximation(inst)
    allots = np.array(list(dual.allotments.values()))
    print(
        f"  dual approximation: Cmax lower bound {dual.lower_bound:.2f}, "
        f"lambda* {dual.lam:.2f}"
    )
    print(
        f"  allotments at lambda*: mean {allots.mean():5.1f} procs, "
        f"{(allots == 1).mean() * 100:4.0f}% sequential, max {allots.max()}"
    )
    print()


def plot_speedup_curves() -> None:
    """Speedup vs processors for a few sampled tasks of each family."""
    m = 64
    series: dict[str, list[tuple[float, float]]] = {}
    for kind in ("highly_parallel", "weakly_parallel", "cirne"):
        inst = generate_workload(kind, n=1, m=m, seed=5)
        t = inst[0]
        series[kind] = [
            (k, t.seq_time / t.p(k)) for k in range(1, m + 1, 3)
        ]
    print(
        ascii_chart(
            series,
            title="speedup S(k) of one sampled task per family",
            y_label="speedup",
        )
    )


def main() -> None:
    for kind in WORKLOAD_KINDS:
        describe_family(kind)
    plot_speedup_curves()


if __name__ == "__main__":
    main()
