"""Setup shim so `pip install -e .` works with old setuptools (no wheel pkg)."""
from setuptools import setup

setup()
