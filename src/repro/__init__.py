"""repro — reproduction of Dutot, Eyraud, Mounié & Trystram (SPAA 2004).

*Bi-criteria Algorithm for Scheduling Jobs on Cluster Platforms.*

The library provides:

* a moldable-task scheduling model (:mod:`repro.core`),
* the paper's synthetic workload generators (:mod:`repro.workloads`),
* the DEMT bi-criteria algorithm and all baselines (:mod:`repro.algorithms`),
* the LP-relaxation and dual-approximation lower bounds (:mod:`repro.bounds`),
* an event-driven cluster simulator and on-line batch framework
  (:mod:`repro.simulator`),
* the experiment harness regenerating every figure of the paper
  (:mod:`repro.experiments`).

Quickstart
----------
>>> from repro import generate_workload, schedule_demt
>>> inst = generate_workload("highly_parallel", n=40, m=32, seed=1)
>>> sched = schedule_demt(inst)
>>> sched.makespan() > 0
True
"""

from repro._api import (
    ALGORITHMS,
    WORKLOADS,
    evaluate_schedule,
    generate_workload,
    lower_bounds,
    schedule_demt,
    schedule_with,
)
from repro.core import (
    Instance,
    MoldableTask,
    Schedule,
    ScheduledTask,
    makespan,
    validate_schedule,
    weighted_completion_sum,
)

__version__ = "1.0.0"

__all__ = [
    "generate_workload",
    "schedule_demt",
    "schedule_with",
    "evaluate_schedule",
    "lower_bounds",
    "ALGORITHMS",
    "WORKLOADS",
    "Instance",
    "MoldableTask",
    "Schedule",
    "ScheduledTask",
    "makespan",
    "weighted_completion_sum",
    "validate_schedule",
    "__version__",
]
