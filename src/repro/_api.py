"""High-level convenience API re-exported at the package root.

These helpers glue the layers together for the common workflows:

>>> from repro import generate_workload, schedule_demt, evaluate_schedule
>>> inst = generate_workload("cirne", n=50, m=32, seed=0)
>>> sched = schedule_demt(inst)
>>> report = evaluate_schedule(sched, inst)
>>> report["cmax_ratio"] >= 1.0
True
"""

from __future__ import annotations

from repro.algorithms.demt import schedule_demt
from repro.algorithms.dual_approx import dual_approximation
from repro.algorithms.registry import ALGORITHM_REGISTRY, get_algorithm
from repro.bounds.minsum_lp import minsum_lower_bound
from repro.core.instance import Instance
from repro.core.schedule import Schedule
from repro.workloads.generator import WORKLOAD_KINDS, generate_workload

__all__ = [
    "generate_workload",
    "schedule_demt",
    "schedule_with",
    "evaluate_schedule",
    "lower_bounds",
    "ALGORITHMS",
    "WORKLOADS",
]

#: Names accepted by :func:`schedule_with` (the paper's six algorithms).
ALGORITHMS: tuple[str, ...] = tuple(ALGORITHM_REGISTRY)

#: Names accepted by :func:`generate_workload`.
WORKLOADS: tuple[str, ...] = WORKLOAD_KINDS


def schedule_with(name: str, instance: Instance) -> Schedule:
    """Schedule ``instance`` with the algorithm registered as ``name``.

    >>> from repro import generate_workload, schedule_with
    >>> inst = generate_workload("mixed", n=10, m=8, seed=1)
    >>> schedule_with("SAF", inst).makespan() > 0
    True
    """
    return get_algorithm(name).schedule(instance)


def lower_bounds(instance: Instance) -> dict[str, float]:
    """Both §3.3 lower bounds for ``instance``.

    Returns ``{"cmax": ..., "minsum": ...}`` — the dual-approximation
    makespan bound and the LP-relaxation minsum bound.
    """
    dual = dual_approximation(instance)
    return {
        "cmax": dual.lower_bound,
        "minsum": minsum_lower_bound(instance, dual.lam).value,
    }


def evaluate_schedule(schedule: Schedule, instance: Instance) -> dict[str, float]:
    """Criteria and performance ratios of ``schedule`` on ``instance``.

    The returned mapping carries the two criteria, both lower bounds and
    the two performance ratios the paper's figures plot.
    """
    bounds = lower_bounds(instance)
    cmax = schedule.makespan()
    minsum = schedule.weighted_completion_sum()
    return {
        "cmax": cmax,
        "minsum": minsum,
        "cmax_lower_bound": bounds["cmax"],
        "minsum_lower_bound": bounds["minsum"],
        "cmax_ratio": cmax / bounds["cmax"] if bounds["cmax"] > 0 else float("nan"),
        "minsum_ratio": (
            minsum / bounds["minsum"] if bounds["minsum"] > 0 else float("nan")
        ),
    }
