"""Scheduling algorithms: the paper's DEMT contribution and all substrates.

Layout
------
* :mod:`repro.algorithms.knapsack` — weight-maximising knapsack selection
  (the batch-content selector of §3.2);
* :mod:`repro.algorithms.merge` — stacking of small sequential tasks by
  decreasing weight (§3.2);
* :mod:`repro.algorithms.dual_approx` — Mounié–Trystram two-shelf dual
  approximation of the optimal makespan (the paper's substrate [7]);
* :mod:`repro.algorithms.list_scheduling` — Graham list scheduling for
  moldable tasks with fixed allotments (used by compaction and baselines);
* :mod:`repro.algorithms.compaction` — naive shelf placement, pull-forward
  and full list compaction of batch schedules;
* :mod:`repro.algorithms.demt` — the bi-criteria algorithm itself;
* :mod:`repro.algorithms.gang`, :mod:`repro.algorithms.sequential`,
  :mod:`repro.algorithms.list_graham` — the §4.1 baselines.

Every scheduler exposes ``schedule(instance) -> Schedule`` plus a module
function; :data:`ALGORITHM_REGISTRY` maps the paper's algorithm names to
callables for the experiment harness.
"""

from repro.algorithms.knapsack import knapsack_select, KnapsackItem
from repro.algorithms.merge import merge_small_tasks, MergedStack
from repro.algorithms.dual_approx import dual_approximation, DualApproxResult
from repro.algorithms.list_scheduling import list_schedule, ListItem
from repro.algorithms.compaction import (
    shelf_placement,
    pull_forward,
    list_compaction,
)
from repro.algorithms.demt import DemtScheduler, schedule_demt
from repro.algorithms.gang import GangScheduler, schedule_gang
from repro.algorithms.sequential import SequentialScheduler, schedule_sequential
from repro.algorithms.list_graham import (
    ListGrahamScheduler,
    schedule_list_graham,
    LIST_ORDERINGS,
)
from repro.algorithms.registry import ALGORITHM_REGISTRY, get_algorithm

__all__ = [
    "knapsack_select",
    "KnapsackItem",
    "merge_small_tasks",
    "MergedStack",
    "dual_approximation",
    "DualApproxResult",
    "list_schedule",
    "ListItem",
    "shelf_placement",
    "pull_forward",
    "list_compaction",
    "DemtScheduler",
    "schedule_demt",
    "GangScheduler",
    "schedule_gang",
    "SequentialScheduler",
    "schedule_sequential",
    "ListGrahamScheduler",
    "schedule_list_graham",
    "LIST_ORDERINGS",
    "ALGORITHM_REGISTRY",
    "get_algorithm",
]
