"""Common scheduler interface.

Every algorithm in this package is usable in two equivalent ways:

* a *class* with a ``schedule(instance) -> Schedule`` method, carrying its
  tuning knobs as constructor arguments (handy for ablations);
* a module-level ``schedule_<name>(instance, **options)`` convenience
  function.

The experiment harness only relies on the :class:`Scheduler` protocol.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.core.instance import Instance
from repro.core.schedule import Schedule

__all__ = ["Scheduler"]


@runtime_checkable
class Scheduler(Protocol):
    """Anything that turns an :class:`Instance` into a :class:`Schedule`."""

    #: Human-readable name used in reports (matches the paper's legends).
    name: str

    def schedule(self, instance: Instance) -> Schedule:
        """Produce a feasible schedule for ``instance``."""
        ...
