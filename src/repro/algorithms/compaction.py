"""Batch-schedule compaction (§3.2).

DEMT first conceptually places each selected batch in its time window
``[t_j, t_{j+1}]``.  The paper then describes three successive refinements:

1. :func:`shelf_placement` — "we start all the selected tasks of one batch
   at the same time" (the naive schedule; kept for the ablation bench);
2. :func:`pull_forward` — "a straightforward improvement is to start a task
   at an earlier time if all the processors it uses are idle": tasks keep
   their batch order but each starts as early as the free-processor profile
   allows, without reordering;
3. :func:`list_compaction` — "a further improvement is to use a list
   algorithm with the batch ordering and a local ordering within the
   batches": full Graham list scheduling over the concatenated batch lists
   (tasks from a later batch may overtake a stalled earlier one, and the
   processor *sets* are re-derived from scratch).

All three take the same input: the per-batch lists of
:class:`~repro.algorithms.list_scheduling.ListItem` produced by the DEMT
selection loop, already locally ordered within each batch.
"""

from __future__ import annotations

from typing import Sequence

from repro.algorithms.list_scheduling import ListItem, list_schedule
from repro.core.schedule import Schedule

__all__ = ["shelf_placement", "pull_forward", "list_compaction"]


def shelf_placement(
    batches: Sequence[Sequence[ListItem]],
    batch_starts: Sequence[float],
    m: int,
) -> Schedule:
    """Naive placement: every item of batch ``j`` starts at ``batch_starts[j]``.

    Feasible by construction because the knapsack selection capped each
    batch's total allotment at ``m`` — provided every item's duration fits
    in its batch window, which the DEMT admissibility filter guarantees.
    """
    if len(batches) != len(batch_starts):
        raise ValueError(
            f"{len(batches)} batches but {len(batch_starts)} start times"
        )
    out = Schedule(m)
    for items, start in zip(batches, batch_starts):
        for it in items:
            _place_at(out, it, start)
    return out


def pull_forward(batches: Sequence[Sequence[ListItem]], m: int) -> Schedule:
    """Order-preserving compaction.

    Tasks are taken strictly in (batch, local) order; each starts at the
    earliest instant where enough processors are free *given the placements
    already made*.  No overtaking: a huge stalled task does not let smaller
    successors slip past it earlier than its own start.
    """
    out = Schedule(m)
    placed: list[tuple[float, float, int]] = []  # (start, end, allotment)
    for items in batches:
        for it in items:
            start = _earliest_fit(placed, it.allotment, it.duration, m)
            _place_at(out, it, start)
            placed.append((start, start + it.duration, it.allotment))
    return out


def list_compaction(batches: Sequence[Sequence[ListItem]], m: int) -> Schedule:
    """Full Graham list compaction with the batch ordering (the DEMT default)."""
    flat: list[ListItem] = [it for items in batches for it in items]
    return list_schedule(flat, m)


def _place_at(schedule: Schedule, item: ListItem, start: float) -> None:
    if item.stack:
        t = start
        for task in item.stack:
            schedule.add(task, t, 1)
            t += task.seq_time
    else:
        schedule.add(item.task, start, item.allotment)


def _earliest_fit(
    placed: list[tuple[float, float, int]],
    allotment: int,
    duration: float,
    m: int,
) -> float:
    """Earliest time where ``allotment`` processors stay free for ``duration``.

    Scans candidate start times (0 and every completion of an already
    placed task) and returns the first where the usage profile stays at
    most ``m - allotment`` over ``[t0, t0 + duration)`` — checking only the
    profile's breakpoints inside that window, since usage is piecewise
    constant between placed-task boundaries.
    """
    candidates = sorted({0.0, *(end for _, end, _ in placed)})
    for t0 in candidates:
        t1 = t0 + duration
        points = [t0, *(s for s, _, _ in placed if t0 < s < t1)]
        if all(
            sum(a for s, e, a in placed if s <= point < e) + allotment <= m
            for point in points
        ):
            return t0
    # Unreachable for allotment <= m: the candidate after the last
    # completion always fits.  Kept as a safe fallback.
    return max((end for _, end, _ in placed), default=0.0)  # pragma: no cover
