"""Batch-schedule compaction (§3.2).

DEMT first conceptually places each selected batch in its time window
``[t_j, t_{j+1}]``.  The paper then describes three successive refinements:

1. :func:`shelf_placement` — "we start all the selected tasks of one batch
   at the same time" (the naive schedule; kept for the ablation bench);
2. :func:`pull_forward` — "a straightforward improvement is to start a task
   at an earlier time if all the processors it uses are idle": tasks keep
   their batch order but each starts as early as the free-processor profile
   allows, without reordering;
3. :func:`list_compaction` — "a further improvement is to use a list
   algorithm with the batch ordering and a local ordering within the
   batches": full Graham list scheduling over the concatenated batch lists
   (tasks from a later batch may overtake a stalled earlier one).

All three take the same input: the per-batch lists of
:class:`~repro.algorithms.list_scheduling.ListItem` produced by the DEMT
selection loop, already locally ordered within each batch.

Both non-trivial refinements run on the vectorized core of
:mod:`repro.core.profile`: pull-forward maintains one incremental
:class:`~repro.core.profile.FreeProfile` instead of rescanning all prior
placements per task, and list compaction feeds the flat item list to the
:func:`~repro.core.profile.graham_starts` kernel.  For DEMT's shuffle
optimisation — which compacts the *same* items ten-plus times in different
batch orders — :func:`batch_arrays` / :func:`order_metrics` evaluate a
candidate order's ``(Cmax, sum w_i C_i)`` straight from the kernel's start
times, without materialising a :class:`~repro.core.schedule.Schedule` at
all; only the winning order is materialised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.algorithms.list_scheduling import ListItem, list_schedule
from repro.core.profile import FreeProfile, graham_starts
from repro.core.schedule import Schedule

__all__ = [
    "shelf_placement",
    "pull_forward",
    "list_compaction",
    "BatchArrays",
    "batch_arrays",
    "order_metrics",
]


def shelf_placement(
    batches: Sequence[Sequence[ListItem]],
    batch_starts: Sequence[float],
    m: int,
) -> Schedule:
    """Naive placement: every item of batch ``j`` starts at ``batch_starts[j]``.

    Feasible by construction because the knapsack selection capped each
    batch's total allotment at ``m`` — provided every item's duration fits
    in its batch window, which the DEMT admissibility filter guarantees.
    """
    if len(batches) != len(batch_starts):
        raise ValueError(
            f"{len(batches)} batches but {len(batch_starts)} start times"
        )
    out = Schedule(m)
    for items, start in zip(batches, batch_starts):
        for it in items:
            _place_at(out, it, start)
    return out


def pull_forward(batches: Sequence[Sequence[ListItem]], m: int) -> Schedule:
    """Order-preserving compaction.

    Tasks are taken strictly in (batch, local) order; each starts at the
    earliest instant where enough processors are free *given the placements
    already made*.  No overtaking: a huge stalled task does not let smaller
    successors slip past it earlier than its own start.
    """
    out = Schedule(m)
    profile = FreeProfile(m)
    for items in batches:
        for it in items:
            duration = it.duration
            start = profile.earliest_fit(it.allotment, duration)
            _place_at(out, it, start)
            profile.reserve(start, duration, it.allotment)
    return out


def list_compaction(batches: Sequence[Sequence[ListItem]], m: int) -> Schedule:
    """Full Graham list compaction with the batch ordering (the DEMT default)."""
    flat: list[ListItem] = [it for items in batches for it in items]
    return list_schedule(flat, m)


# ---------------------------------------------------------------------- #
# Metric-only fast path (DEMT shuffle loop)                              #
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class BatchArrays:
    """One batch flattened to the arrays the kernel and metrics need.

    ``weighted_offsets[i]`` is the weighted completion mass of item ``i``
    *relative to its own start*: ``w * p(k)`` for a plain task, and
    ``sum_j w_j * (cumulative end of stack element j)`` for a merged stack
    — so a placement at ``t`` contributes
    ``weight_sums[i] * t + weighted_offsets[i]`` to ``sum w_i C_i``.
    """

    allotments: np.ndarray
    durations: np.ndarray
    weight_sums: np.ndarray
    weighted_offsets: np.ndarray


def batch_arrays(items: Sequence[ListItem]) -> BatchArrays:
    """Precompute one batch's kernel/metric arrays (once per DEMT run)."""
    n = len(items)
    allot = np.empty(n, dtype=np.int64)
    dur = np.empty(n, dtype=np.float64)
    wsum = np.empty(n, dtype=np.float64)
    woff = np.empty(n, dtype=np.float64)
    for i, it in enumerate(items):
        allot[i] = it.allotment
        dur[i] = it.duration
        if it.stack:
            w = 0.0
            acc = 0.0
            end = 0.0
            for task in it.stack:
                end += task.seq_time
                w += task.weight
                acc += task.weight * end
            wsum[i] = w
            woff[i] = acc
        else:
            wsum[i] = it.task.weight
            woff[i] = it.task.weight * dur[i]
    return BatchArrays(allot, dur, wsum, woff)


def order_metrics(
    arrays: Sequence[BatchArrays],
    order: Sequence[int],
    m: int,
    *,
    cmax_cutoff: float | None = None,
) -> tuple[float, float] | None:
    """``(Cmax, sum w_i C_i)`` of ``list_compaction`` in batch order ``order``.

    Runs the Graham kernel on the concatenated arrays and reads both
    criteria off the start times — no :class:`Schedule` is built.  Returns
    ``None`` when ``cmax_cutoff`` is given and the makespan provably
    exceeds it (the shuffle loop's reject-fast path).
    """
    allot = np.concatenate([arrays[i].allotments for i in order])
    dur = np.concatenate([arrays[i].durations for i in order])
    result = graham_starts(allot, dur, m, cutoff=cmax_cutoff)
    if result is None:
        return None
    starts, _ = result
    cmax = float(np.max(starts + dur)) if starts.size else 0.0
    if cmax_cutoff is not None and cmax > cmax_cutoff:
        return None
    wsum = np.concatenate([arrays[i].weight_sums for i in order])
    woff = np.concatenate([arrays[i].weighted_offsets for i in order])
    # np.sum (pairwise) rather than a BLAS dot: candidate ranking must not
    # depend on which BLAS the platform links.
    minsum = float(np.sum(starts * wsum) + np.sum(woff))
    return cmax, minsum


def _place_at(schedule: Schedule, item: ListItem, start: float) -> None:
    if item.stack:
        t = start
        for task in item.stack:
            schedule.add(task, t, 1)
            t += task.seq_time
    else:
        schedule.add(item.task, start, item.allotment)
