"""DEMT — the paper's bi-criteria batch scheduling algorithm (§3.2).

The algorithm, following the pseudo-code of the paper:

1. Compute the approximate optimal makespan ``C*max`` with the
   dual-approximation algorithm (:mod:`repro.algorithms.dual_approx`).
2. Let ``t_min = min_{i,k} p_i(k)`` and ``K = floor(log2(C*max / t_min))``;
   define the geometric grid ``t_j = C*max / 2^(K-j)`` so that batch ``j``
   occupies the window ``[t_j, t_{j+1}]`` of length ``t_j`` (each batch
   doubles the previous one, the structure borrowed from Shmoys et al.).
3. For each batch ``j`` (and, as a robustness extension, further doubling
   batches until every task is placed):

   a. admissible tasks are those with some allotment meeting the batch
      length;
   b. small sequential tasks (``p(1) ≤ t_j / 2``) are merged by decreasing
      weight (:mod:`repro.algorithms.merge`);
   c. a weight-maximising knapsack (:mod:`repro.algorithms.knapsack`)
      selects the batch content under the ``m``-processor budget, each item
      priced at its minimal allotment for the batch length;
   d. selected tasks leave the pool.

4. The batched schedule is compacted with a Graham list algorithm in batch
   order (:mod:`repro.algorithms.compaction`), and
5. the batch order is shuffled several times, keeping the best compacted
   schedule ("this only leads to small improvements").

Within a batch, items are ordered by decreasing ``weight / duration``
(Smith ratio) — the paper only asks for "a local ordering within the
batches" without fixing one; the choice is benched in the ablations.

Overall complexity ``O(m n K)`` for the selection loop, as stated in the
paper, plus ``O(n^2)`` for each compaction pass.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
import numpy as np

from repro import obs
from repro.algorithms.compaction import (
    batch_arrays,
    list_compaction,
    order_metrics,
    pull_forward,
    shelf_placement,
)
from repro.algorithms.dual_approx import DualApproxResult, dual_approximation
from repro.algorithms.knapsack import knapsack_select_indices
from repro.algorithms.list_scheduling import ListItem
from repro.algorithms.merge import merge_small_tasks
from repro.core.allotment import minimal_allotments, minimal_allotments_for_tasks
from repro.core.instance import Instance
from repro.core.schedule import Schedule
from repro.core.task import MoldableTask
from repro.exceptions import SchedulingError
from repro.utils.rng import make_rng

__all__ = ["DemtScheduler", "DemtResult", "schedule_demt", "BATCH_ORDERINGS"]

#: Compaction strategies, in increasing refinement order (§3.2).
COMPACTION_MODES = ("shelf", "pull_forward", "list")

#: Intra-batch orderings (§3.2 only asks for "a local ordering within the
#: batches"; ``smith`` is the library's long-standing choice and the
#: others are swept by the Pareto trade-off subsystem).
BATCH_ORDERINGS = ("smith", "weight", "duration", "id")


@dataclass
class DemtResult:
    """Full trace of a DEMT run (useful for tests, ablations and plots)."""

    schedule: Schedule
    batches: list[list[ListItem]] = field(default_factory=list)
    batch_starts: list[float] = field(default_factory=list)
    cmax_estimate: float = 0.0
    t_grid: list[float] = field(default_factory=list)
    K: int = 0
    dual: DualApproxResult | None = None
    shuffle_improvement: float = 0.0  # relative minsum gain from shuffling


class DemtScheduler:
    """The bi-criteria batch algorithm of Dutot, Eyraud, Mounié & Trystram.

    Parameters
    ----------
    shuffle_rounds:
        Number of random batch-order shuffles tried after the first
        compaction (0 disables the optimisation; the paper shuffles
        "several times").
    compaction:
        ``"list"`` (paper's final choice), ``"pull_forward"`` or ``"shelf"``
        (the two intermediate refinements, kept for the ablation bench).
    small_threshold_factor:
        Fraction of the batch length under which a sequential task counts
        as *small* for the merge step (paper: one half).  This is the
        merge threshold knob of the trade-off sweeps.
    batch_ordering:
        Local ordering inside a batch: ``"smith"`` (decreasing
        weight/duration, the default), ``"weight"`` (decreasing weight),
        ``"duration"`` (shortest first) or ``"id"`` (submission order).
    guess_relaxation:
        Multiplier ``>= 1`` applied to the dual-approximation makespan
        guess ``C*max`` before the batch geometry is built.  ``1.0`` (the
        default) is the paper's algorithm; relaxing the guess widens the
        early batches, trading makespan for weighted completion time —
        one axis of the bi-criteria sweep.
    seed:
        RNG seed for the shuffle optimisation (deterministic by default).
    """

    name = "DEMT"

    def __init__(
        self,
        shuffle_rounds: int = 10,
        compaction: str = "list",
        small_threshold_factor: float = 0.5,
        batch_ordering: str = "smith",
        guess_relaxation: float = 1.0,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if compaction not in COMPACTION_MODES:
            raise ValueError(
                f"unknown compaction {compaction!r}; choose from {COMPACTION_MODES}"
            )
        if shuffle_rounds < 0:
            raise ValueError(f"shuffle_rounds must be >= 0, got {shuffle_rounds}")
        if batch_ordering not in BATCH_ORDERINGS:
            raise ValueError(
                f"unknown batch ordering {batch_ordering!r}; choose from {BATCH_ORDERINGS}"
            )
        if not guess_relaxation >= 1.0:
            raise ValueError(
                f"guess_relaxation must be >= 1.0, got {guess_relaxation}"
            )
        self.shuffle_rounds = shuffle_rounds
        self.compaction = compaction
        self.small_threshold_factor = small_threshold_factor
        self.batch_ordering = batch_ordering
        self.guess_relaxation = guess_relaxation
        self.seed = seed
        self._selection_cache: tuple | None = None

    # ------------------------------------------------------------------ #
    def schedule(self, instance: Instance) -> Schedule:
        """Return the compacted bi-criteria schedule."""
        return self.schedule_detailed(instance).schedule

    def schedule_detailed(self, instance: Instance) -> DemtResult:
        """Run the full pipeline and expose every intermediate artefact."""
        state = obs.ACTIVE
        if state is None:
            return self._schedule_detailed_impl(instance)
        with state.span("demt", "algorithm"):
            result = self._schedule_detailed_impl(instance)
        state.count("demt.batches", len(result.batches))
        return result

    def _schedule_detailed_impl(self, instance: Instance) -> DemtResult:
        if instance.n == 0:
            return DemtResult(schedule=Schedule(instance.m))

        dual = self._dual(instance)
        # Multiplying by the default 1.0 is exact in IEEE arithmetic, so
        # the un-relaxed path stays bit-identical to the paper's algorithm.
        cstar = dual.lam * self.guess_relaxation
        batches, starts, t_grid, K = self._select_batches(instance, cstar)
        schedule = self._compact(batches, starts, instance.m)

        improvement = 0.0
        if self.shuffle_rounds > 0 and len(batches) > 1 and self.compaction == "list":
            schedule, improvement = self._shuffle_optimise(batches, instance.m, schedule)

        return DemtResult(
            schedule=schedule,
            batches=batches,
            batch_starts=starts,
            cmax_estimate=cstar,
            t_grid=t_grid,
            K=K,
            dual=dual,
            shuffle_improvement=improvement,
        )

    def _dual(self, instance: Instance) -> DualApproxResult:
        """Makespan-estimate hook (the reference scheduler swaps in the
        seed's implementation here for differential benchmarking)."""
        return dual_approximation(instance)

    # ------------------------------------------------------------------ #
    # Phase 1: batch geometry and content selection                      #
    # ------------------------------------------------------------------ #
    def _select_batches(
        self, instance: Instance, cstar: float
    ) -> tuple[list[list[ListItem]], list[float], list[float], int]:
        tmin = instance.tmin
        if not (cstar > 0 and np.isfinite(cstar)):  # pragma: no cover - defensive
            raise SchedulingError(f"invalid C*max estimate {cstar}")
        K = max(0, int(math.floor(math.log2(cstar / tmin))))
        # t_j = cstar / 2^(K-j); batch j spans [t_j, t_{j+1}], length t_j.
        t_grid = [cstar / 2 ** (K - j) for j in range(K + 2)]

        remaining: dict[int, MoldableTask] = {t.task_id: t for t in instance.tasks}
        batches: list[list[ListItem]] = []
        starts: list[float] = []

        # Share the instance's padded (n, m) time matrix with every batch's
        # admissibility sweep (row-sliced per pool) instead of restacking
        # the shrinking pool's vectors each round.
        self._selection_cache = (
            instance.times_matrix,
            dict(zip(instance.task_ids.tolist(), range(instance.n))),
        )
        try:
            j = 0
            # Extension beyond the paper's `for j = 0..K`: keep doubling until
            # every task is placed (the knapsack may not fit all of them in the
            # nominal K+1 batches when the machine is narrow).
            max_batches = K + 2 + instance.n
            # The doubling exponent is clamped so `length` stays finite
            # however many extension rounds a narrow machine needs: by then
            # every task is admissible anyway, and an infinite length
            # poisons the merge threshold and the shelf starts.  The clamp
            # must bound the *product*, not just the exponent: with
            # t_grid[-1] above ~2e37 even small exponents overflowed the
            # old `t_grid[-1] * 2.0 ** min(j - K - 1, 900)` form, so the
            # extension saturates at the largest finite doubling instead
            # (ldexp is exact, bit-identical to the multiply when finite).
            t_last = t_grid[-1]
            k_max = min(900, 1024 - math.frexp(t_last)[1]) if math.isfinite(t_last) else 900
            while remaining and j < max_batches:
                length = (
                    t_grid[j]
                    if j < len(t_grid)
                    else math.ldexp(t_last, min(j - K - 1, k_max))
                )
                start = length  # window is [t_j, t_{j+1}] and t_j == length
                selected = self._select_one_batch(
                    list(remaining.values()), length, instance.m
                )
                if selected:
                    batches.append(selected)
                    starts.append(start)
                    for it in selected:
                        for task in it.stack or (it.task,):
                            del remaining[task.task_id]
                j += 1
        finally:
            self._selection_cache = None
        if remaining:  # pragma: no cover - defensive
            raise SchedulingError(
                f"batch selection left {len(remaining)} tasks unplaced"
            )
        return batches, starts, t_grid, K

    def _select_one_batch(
        self, tasks: list[MoldableTask], length: float, m: int
    ) -> list[ListItem]:
        # (a) admissibility: some allotment meets the batch length.  One
        # vectorised sweep over the pool's time vectors replaces a
        # per-task minimal_allotment call (the seed's selection hot spot).
        cache = getattr(self, "_selection_cache", None)
        if cache is not None:
            matrix, rowmap = cache
            allots = minimal_allotments(
                matrix[[rowmap[t.task_id] for t in tasks]], length
            )
        else:
            allots = minimal_allotments_for_tasks(tasks, length, m)
        admissible = [t for t, a in zip(tasks, allots) if a]
        if not admissible:
            return []
        allot_by_id = {t.task_id: int(a) for t, a in zip(tasks, allots) if a}
        # (b) merge small sequential tasks by decreasing weight.
        stacks, rest = merge_small_tasks(
            admissible, length, small_threshold_factor=self.small_threshold_factor
        )
        # (c) price every knapsack item at its minimal allotment (stacks
        # first, then plain tasks — the DP processes them in this order).
        # Columnar: the knapsack gets flat arrays and ListItems are built
        # only for the *selected* items — the pool can be 10-100x larger
        # than the batch, so materialising a candidate object per pool
        # member every round was the selection loop's dominant allocation.
        ns = len(stacks)
        cand_allots = np.ones(ns + len(rest), dtype=np.int64)
        cand_weights = np.empty(ns + len(rest), dtype=np.float64)
        for k, stack in enumerate(stacks):
            cand_weights[k] = stack.weight
        for k, task in enumerate(rest):
            cand_allots[ns + k] = allot_by_id[task.task_id]
            cand_weights[ns + k] = task.weight
        selected, _, _ = knapsack_select_indices(cand_allots, cand_weights, m)
        chosen = [
            ListItem(stacks[i].tasks[0], 1, stack=stacks[i].tasks)
            if i < ns
            else ListItem(rest[i - ns], allot_by_id[rest[i - ns].task_id])
            for i in selected
        ]
        # (d) local ordering inside the batch (default: Smith ratio).
        chosen.sort(key=_BATCH_SORT_KEYS[self.batch_ordering])
        return chosen

    # ------------------------------------------------------------------ #
    # Phase 2: compaction and shuffle optimisation                       #
    # ------------------------------------------------------------------ #
    def _compact(
        self,
        batches: list[list[ListItem]],
        starts: list[float],
        m: int,
    ) -> Schedule:
        state = obs.ACTIVE
        if state is not None:
            state.count("demt.compaction_passes")
        if self.compaction == "shelf":
            return shelf_placement(batches, starts, m)
        if self.compaction == "pull_forward":
            return pull_forward(batches, m)
        return list_compaction(batches, m)

    def _shuffle_optimise(
        self,
        batches: list[list[ListItem]],
        m: int,
        baseline: Schedule,
    ) -> tuple[Schedule, float]:
        """Shuffle the batch order, keep the best compacted schedule.

        "Best" is the smallest ``sum w_i C_i`` among candidates whose
        makespan does not exceed the baseline's — the bi-criteria spirit of
        the paper (the shuffle must not trade one criterion away for the
        other).

        Candidate orders are scored through the metric-only kernel path
        (:func:`~repro.algorithms.compaction.order_metrics`); only the
        winning order is materialised into a schedule.
        """
        rng = make_rng(self.seed)
        arrays = [batch_arrays(b) for b in batches]
        base_minsum = baseline.weighted_completion_sum()
        best_minsum = base_minsum
        base_cmax = baseline.makespan()
        cutoff = base_cmax * (1 + 1e-12)
        best_order: np.ndarray | None = None
        order = np.arange(len(batches))
        state = obs.ACTIVE
        if state is not None:
            state.count("demt.shuffle_candidates", self.shuffle_rounds)
        for _ in range(self.shuffle_rounds):
            rng.shuffle(order)
            metrics = order_metrics(arrays, order, m, cmax_cutoff=cutoff)
            if metrics is not None and metrics[1] < best_minsum:
                best_minsum = metrics[1]
                best_order = order.copy()
        if best_order is None:
            return baseline, 0.0
        best = list_compaction([batches[i] for i in best_order], m)
        # Recompute the winner's minsum from the materialised schedule so
        # the reported gain uses the same summation as every other metric
        # (the kernel-side dot product can differ in the last few ulps).
        exact = best.weighted_completion_sum()
        if exact >= base_minsum:  # pragma: no cover - ulp-level tie
            return baseline, 0.0
        return best, (base_minsum - exact) / max(base_minsum, 1e-300)


def _item_weight(item: ListItem) -> float:
    if item.stack:
        return sum(t.weight for t in item.stack)
    return item.task.weight


#: Sort keys of the intra-batch orderings (ties broken by task id so every
#: ordering stays deterministic).
_BATCH_SORT_KEYS = {
    "smith": lambda it: (-_item_weight(it) / it.duration, it.task.task_id),
    "weight": lambda it: (-_item_weight(it), it.task.task_id),
    "duration": lambda it: (it.duration, it.task.task_id),
    "id": lambda it: (it.task.task_id,),
}


def schedule_demt(
    instance: Instance,
    *,
    shuffle_rounds: int = 10,
    compaction: str = "list",
    small_threshold_factor: float = 0.5,
    batch_ordering: str = "smith",
    guess_relaxation: float = 1.0,
    seed: int | np.random.Generator | None = 0,
) -> Schedule:
    """Functional form of :class:`DemtScheduler` (the paper's algorithm)."""
    return DemtScheduler(
        shuffle_rounds=shuffle_rounds,
        compaction=compaction,
        small_threshold_factor=small_threshold_factor,
        batch_ordering=batch_ordering,
        guess_relaxation=guess_relaxation,
        seed=seed,
    ).schedule(instance)
