"""Dual approximation of the optimal makespan (paper substrate [7]).

The best known off-line makespan algorithm for moldable tasks (Mounié,
Rapine, Trystram; Dutot, Mounié, Trystram, *Handbook of Scheduling* ch. 26)
is a **dual approximation**: guess a target ``λ``; either *certify* that no
schedule of makespan ``≤ λ`` exists, or build a schedule of length
``≤ 3λ/2``.  A binary search on ``λ`` then sandwiches the optimum.

Feasibility test for a guess ``λ`` (all conditions are *necessary* for a
schedule of makespan ``≤ λ`` to exist, so a rejection is a certified lower
bound):

1. every task must have an allotment with ``p_i(k) ≤ λ``;
2. consider the optimal schedule's partition of tasks into *big* ones
   (duration ``> λ/2``) and *small* ones (duration ``≤ λ/2``):

   * every big task is running at instant ``λ/2``, so the big tasks'
     allotments sum to ``≤ m``; each big task consumes at least its minimal
     allotment for deadline ``λ`` and contributes at least its minimal area
     under deadline ``λ``;
   * every small task contributes at least its minimal area under deadline
     ``λ/2``;
   * the total work is at most ``m λ``.

   Minimising total work over all big/small assignments that respect the
   width budget (a binary-choice knapsack,
   :func:`repro.algorithms.knapsack.knapsack_min_work`) therefore yields a
   value ``W*``; ``W* > m λ`` certifies infeasibility.

Construction for an accepted ``λ``: big-shelf tasks start at time 0 with
their minimal allotments (their widths fit in ``m`` by the knapsack); the
small-shelf tasks are list-scheduled behind them in decreasing-duration
order.  For monotonic workloads this lands within the expected ``3λ/2``
envelope in practice; the class is also reused by DEMT (for its
``C*max`` estimate) and by the List-Graham baselines (for their allotments
and the shelf ordering).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.algorithms.knapsack import knapsack_min_work, knapsack_min_work_value
from repro.algorithms.list_scheduling import ListItem, list_schedule
from repro.core.allotment import minimal_allotments, minimal_area_allotments
from repro.core.instance import Instance
from repro.core.schedule import Schedule
from repro.exceptions import SchedulingError

__all__ = ["DualApproxResult", "dual_approximation", "feasibility_check"]


@dataclass(frozen=True)
class DualApproxResult:
    """Outcome of the dual-approximation binary search.

    Attributes
    ----------
    lower_bound:
        Certified lower bound on the optimal makespan: every ``λ`` below it
        fails a necessary feasibility condition.
    lam:
        The accepted target ``λ*`` (the paper's "approximate C*max" that
        seeds the DEMT batch geometry).  ``lam / lower_bound ≤ 1 + rel_tol``.
    allotments:
        Mapping ``task_id -> k`` chosen at ``λ*`` (big-shelf tasks get their
        minimal allotment for ``λ*``, small-shelf tasks for ``λ*/2``).
    big_shelf:
        Ids of tasks placed on the big shelf at ``λ*`` (duration class
        ``(λ/2, λ]``); the complement went to the small shelf.
    schedule:
        A feasible schedule built from the two-shelf partition.  Built
        lazily on first access: the heaviest consumers of this class (DEMT,
        the List-Graham baselines, the lower bounds) only read ``lam`` /
        ``allotments`` and never pay for the construction.
    """

    lower_bound: float
    lam: float
    allotments: dict[int, int]
    big_shelf: frozenset[int]
    _instance: "Instance | None" = None
    _prebuilt: "Schedule | None" = None

    @cached_property
    def schedule(self) -> Schedule:
        if self._prebuilt is not None:
            return self._prebuilt
        assert self._instance is not None
        return _build_two_shelf_schedule(self._instance, self.allotments, self.big_shelf)

    @property
    def makespan(self) -> float:
        return self.schedule.makespan()


def feasibility_check(instance: Instance, lam: float) -> tuple[bool, np.ndarray, np.ndarray]:
    """Necessary-condition test for "a schedule of makespan ``≤ lam`` exists".

    Returns ``(feasible, in_big, allot)`` where, for an accepted ``lam``,
    ``in_big`` is the boolean big-shelf assignment minimising total work and
    ``allot`` the per-task allotments of that assignment.  For a rejected
    ``lam`` the arrays are empty.
    """
    if lam <= 0:
        return False, np.empty(0, dtype=bool), np.empty(0, dtype=np.int64)
    tm = instance.times_matrix
    m = instance.m

    g_big = minimal_allotments(tm, lam)  # 0 = cannot meet lam at all
    if (g_big == 0).any():
        return False, np.empty(0, dtype=bool), np.empty(0, dtype=np.int64)
    g_small = minimal_allotments(tm, lam / 2.0)  # 0 = cannot be a small task
    am = instance.areas_matrix
    work_big = minimal_area_allotments(tm, lam, areas_matrix=am)
    work_small = minimal_area_allotments(tm, lam / 2.0, areas_matrix=am)

    in_big, total = knapsack_min_work(
        work_a=work_big,
        cost_a=g_big.astype(np.float64),
        work_b=work_small,
        m=m,
    )
    if not np.isfinite(total) or total > m * lam * (1 + 1e-12):
        return False, np.empty(0, dtype=bool), np.empty(0, dtype=np.int64)
    allot = np.where(in_big, g_big, g_small).astype(np.int64)
    return True, in_big, allot


def _is_feasible(instance: Instance, lam: float) -> bool:
    """Boolean-only :func:`feasibility_check` (no assignment reconstruction).

    Same tests, same dynamic-program float sequence — the binary search
    probes through this and reconstructs once at the accepted ``λ*``.
    """
    if lam <= 0:
        return False
    tm = instance.times_matrix
    m = instance.m

    g_big = minimal_allotments(tm, lam)
    if (g_big == 0).any():
        return False
    am = instance.areas_matrix
    work_big = minimal_area_allotments(tm, lam, areas_matrix=am)
    work_small = minimal_area_allotments(tm, lam / 2.0, areas_matrix=am)

    # Sum bounds decide most probes without the knapsack: the optimum W*
    # satisfies sum(work_big) <= W* <= sum(work_small) (work_big is the
    # elementwise min since a looser deadline never costs area).  The 1e-9
    # guard band keeps decisions identical to the DP's despite its
    # different float summation order (ulp-level differences).
    budget = m * lam * (1 + 1e-12)
    lower = float(np.sum(work_big))
    if lower > budget * (1 + 1e-9):
        return False
    upper = float(np.sum(work_small))
    if np.isfinite(upper) and upper <= budget * (1 - 1e-9):
        return True

    total = knapsack_min_work_value(
        work_a=work_big,
        cost_a=g_big.astype(np.float64),
        work_b=work_small,
        m=m,
    )
    return np.isfinite(total) and total <= budget


def dual_approximation(
    instance: Instance,
    *,
    rel_tol: float = 1e-3,
    max_iter: int = 80,
) -> DualApproxResult:
    """Binary search on ``λ`` + two-shelf construction.

    ``rel_tol`` controls the gap between the certified lower bound and the
    accepted ``λ*``; the default (0.1%) is far below the algorithmic
    approximation factors at play.
    """
    if instance.n == 0:
        return DualApproxResult(0.0, 0.0, {}, frozenset(), _prebuilt=Schedule(instance.m))

    # Closed-form certified lower bounds: tallest unavoidable task and the
    # area argument.  Both are also implied by feasibility_check, but they
    # give the search a tight floor for free.
    lo = max(instance.max_min_time, instance.min_total_work / instance.m)

    # Probe with the value-only test; the accepted λ* is rechecked once in
    # full below to reconstruct the shelf assignment (deterministic, so
    # this splits the seed's combined probe without changing any outcome).
    if not _is_feasible(instance, lo):
        # Grow until accepted (geometric; must terminate because for lam >=
        # max sequential/min time everything fits on one shelf).
        hi = lo * 2.0
        for _ in range(max_iter):
            if _is_feasible(instance, hi):
                break
            lo = hi
            hi *= 2.0
        else:  # pragma: no cover - defensive
            raise SchedulingError("dual approximation did not find a feasible lambda")
        # Shrink the bracket [lo, hi].
        for _ in range(max_iter):
            if hi - lo <= rel_tol * lo:
                break
            mid = 0.5 * (lo + hi)
            if _is_feasible(instance, mid):
                hi = mid
            else:
                lo = mid
        lam = hi
    else:
        # The closed-form bound itself passes the test: accept it directly
        # (searching below `lo` is pointless — it is already certified).
        lam = lo

    feasible, in_big, allot = feasibility_check(instance, lam)
    if not feasible:  # pragma: no cover - probe and full check agree
        raise SchedulingError(f"accepted lambda {lam} failed the full check")

    # Built from the id vector, not the task objects: bounds-only cells on
    # array-backed instances never materialise a single MoldableTask.
    ids = instance.task_ids
    allotments = {int(tid): int(allot[i]) for i, tid in enumerate(ids.tolist())}
    big_ids = frozenset(int(tid) for tid in ids[in_big].tolist())
    return DualApproxResult(
        lower_bound=float(lo),
        lam=float(lam),
        allotments=allotments,
        big_shelf=big_ids,
        _instance=instance,
    )


def _build_two_shelf_schedule(
    instance: Instance, allotments: dict[int, int], big_shelf: frozenset[int]
) -> Schedule:
    """Materialise the accepted partition into a feasible schedule.

    Big-shelf tasks are listed first (they anchor at time 0 because their
    total width fits in ``m``), then small-shelf tasks in decreasing
    duration; Graham list scheduling slots the small tasks into the gaps
    left by the staggered big-shelf completions.
    """
    big_items = [
        ListItem(t, allotments[t.task_id])
        for t in instance.tasks
        if t.task_id in big_shelf
    ]
    small_items = [
        ListItem(t, allotments[t.task_id])
        for t in instance.tasks
        if t.task_id not in big_shelf
    ]
    # Big shelf: widest first so the shelf packs left-to-right deterministically.
    big_items.sort(key=lambda it: (-it.allotment, it.task.task_id))
    # Small shelf: longest processing time first (LPT keeps the tail short).
    small_items.sort(key=lambda it: (-it.duration, it.task.task_id))
    return list_schedule(big_items + small_items, instance.m)
