"""Dual approximation of the optimal makespan (paper substrate [7]).

The best known off-line makespan algorithm for moldable tasks (Mounié,
Rapine, Trystram; Dutot, Mounié, Trystram, *Handbook of Scheduling* ch. 26)
is a **dual approximation**: guess a target ``λ``; either *certify* that no
schedule of makespan ``≤ λ`` exists, or build a schedule of length
``≤ 3λ/2``.  A binary search on ``λ`` then sandwiches the optimum.

Feasibility test for a guess ``λ`` (all conditions are *necessary* for a
schedule of makespan ``≤ λ`` to exist, so a rejection is a certified lower
bound):

1. every task must have an allotment with ``p_i(k) ≤ λ``;
2. consider the optimal schedule's partition of tasks into *big* ones
   (duration ``> λ/2``) and *small* ones (duration ``≤ λ/2``):

   * every big task is running at instant ``λ/2``, so the big tasks'
     allotments sum to ``≤ m``; each big task consumes at least its minimal
     allotment for deadline ``λ`` and contributes at least its minimal area
     under deadline ``λ``;
   * every small task contributes at least its minimal area under deadline
     ``λ/2``;
   * the total work is at most ``m λ``.

   Minimising total work over all big/small assignments that respect the
   width budget (a binary-choice knapsack,
   :func:`repro.algorithms.knapsack.knapsack_min_work`) therefore yields a
   value ``W*``; ``W* > m λ`` certifies infeasibility.

Construction for an accepted ``λ``: big-shelf tasks start at time 0 with
their minimal allotments (their widths fit in ``m`` by the knapsack); the
small-shelf tasks are list-scheduled behind them in decreasing-duration
order.  For monotonic workloads this lands within the expected ``3λ/2``
envelope in practice; the class is also reused by DEMT (for its
``C*max`` estimate) and by the List-Graham baselines (for their allotments
and the shelf ordering).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro import obs
from repro.algorithms.knapsack import knapsack_min_work, knapsack_min_work_value
from repro.algorithms.list_scheduling import ListItem, list_schedule
from repro.core.allotment import minimal_allotments, minimal_area_allotments
from repro.core.instance import Instance
from repro.core.schedule import Schedule
from repro.core.validation import TIME_EPS
from repro.exceptions import SchedulingError

__all__ = ["DualApproxResult", "dual_approximation", "feasibility_check"]

#: Guard bands of the feasibility tests, derived from the library-wide
#: time-comparison epsilon so a retuned :data:`TIME_EPS` moves every layer
#: together (they were hardcoded ``1e-12``/``1e-9`` literals before and
#: got missed by the TIME_EPS unification).  ``TIME_EPS / 1000.0`` is
#: *exactly* ``1e-12`` in IEEE double (the ``* 1e-3`` form is not), so the
#: derived constants are bit-identical to the old literals.
#:
#: * ``_BUDGET_EPS`` widens the work budget ``m·λ`` — the knapsack's total
#:   is a long float sum, and a probe must not flip infeasible over
#:   rounding in the last few ulps.
#: * ``_SUM_GUARD`` pads the closed-form sum bounds that decide most
#:   probes without running the DP: their one-shot ``np.sum`` uses a
#:   different pairwise order than the DP's accumulation, so only
#:   decisions clear of the band are taken without it.
_BUDGET_EPS = TIME_EPS / 1000.0
_SUM_GUARD = TIME_EPS

#: Doubling guesses evaluated per sweep while growing the bracket.
_GROWTH_CHUNK = 8


@dataclass(frozen=True)
class DualApproxResult:
    """Outcome of the dual-approximation binary search.

    Attributes
    ----------
    lower_bound:
        Certified lower bound on the optimal makespan: every ``λ`` below it
        fails a necessary feasibility condition.
    lam:
        The accepted target ``λ*`` (the paper's "approximate C*max" that
        seeds the DEMT batch geometry).  ``lam / lower_bound ≤ 1 + rel_tol``.
    allotments:
        Mapping ``task_id -> k`` chosen at ``λ*`` (big-shelf tasks get their
        minimal allotment for ``λ*``, small-shelf tasks for ``λ*/2``).
    big_shelf:
        Ids of tasks placed on the big shelf at ``λ*`` (duration class
        ``(λ/2, λ]``); the complement went to the small shelf.
    schedule:
        A feasible schedule built from the two-shelf partition.  Built
        lazily on first access: the heaviest consumers of this class (DEMT,
        the List-Graham baselines, the lower bounds) only read ``lam`` /
        ``allotments`` and never pay for the construction.
    """

    lower_bound: float
    lam: float
    allotments: dict[int, int]
    big_shelf: frozenset[int]
    _instance: "Instance | None" = None
    _prebuilt: "Schedule | None" = None

    @cached_property
    def schedule(self) -> Schedule:
        if self._prebuilt is not None:
            return self._prebuilt
        assert self._instance is not None
        return _build_two_shelf_schedule(self._instance, self.allotments, self.big_shelf)

    @property
    def makespan(self) -> float:
        return self.schedule.makespan()


def feasibility_check(instance: Instance, lam: float) -> tuple[bool, np.ndarray, np.ndarray]:
    """Necessary-condition test for "a schedule of makespan ``≤ lam`` exists".

    Returns ``(feasible, in_big, allot)`` where, for an accepted ``lam``,
    ``in_big`` is the boolean big-shelf assignment minimising total work and
    ``allot`` the per-task allotments of that assignment.  For a rejected
    ``lam`` the arrays are empty.
    """
    if lam <= 0:
        return False, np.empty(0, dtype=bool), np.empty(0, dtype=np.int64)
    tm = instance.times_matrix
    m = instance.m

    g_big = minimal_allotments(tm, lam)  # 0 = cannot meet lam at all
    if (g_big == 0).any():
        return False, np.empty(0, dtype=bool), np.empty(0, dtype=np.int64)
    g_small = minimal_allotments(tm, lam / 2.0)  # 0 = cannot be a small task
    am = instance.areas_matrix
    work_big = minimal_area_allotments(tm, lam, areas_matrix=am)
    work_small = minimal_area_allotments(tm, lam / 2.0, areas_matrix=am)

    in_big, total = knapsack_min_work(
        work_a=work_big,
        cost_a=g_big.astype(np.float64),
        work_b=work_small,
        m=m,
    )
    if not np.isfinite(total) or total > m * lam * (1.0 + _BUDGET_EPS):
        return False, np.empty(0, dtype=bool), np.empty(0, dtype=np.int64)
    allot = np.where(in_big, g_big, g_small).astype(np.int64)
    return True, in_big, allot


def _decide(
    m: int,
    lam: float,
    g_big: np.ndarray,
    work_big: np.ndarray,
    work_small: np.ndarray,
) -> bool:
    """Value-only feasibility decision from precomputed per-λ vectors.

    Same tests, same dynamic-program float sequence as
    :func:`feasibility_check` — the binary search probes through this and
    reconstructs once at the accepted ``λ*``.
    """
    if lam <= 0:
        return False
    if (g_big == 0).any():
        return False
    # Sum bounds decide most probes without the knapsack: the optimum W*
    # satisfies sum(work_big) <= W* <= sum(work_small) (work_big is the
    # elementwise min since a looser deadline never costs area).  The
    # guard band keeps decisions identical to the DP's despite its
    # different float summation order (ulp-level differences).
    budget = m * lam * (1.0 + _BUDGET_EPS)
    lower = float(np.sum(work_big))
    if lower > budget * (1.0 + _SUM_GUARD):
        return False
    upper = float(np.sum(work_small))
    if np.isfinite(upper) and upper <= budget * (1.0 - _SUM_GUARD):
        return True

    total = knapsack_min_work_value(
        work_a=work_big,
        cost_a=g_big.astype(np.float64),
        work_b=work_small,
        m=m,
    )
    return np.isfinite(total) and total <= budget


def _batch_feasible(instance: Instance, lams: list[float]) -> list[bool]:
    """Value-only feasibility for several targets in one vectorised sweep.

    The admissibility and minimal-area scans run once over a λ-axis
    instead of once per guess; the per-λ decision then reads row ``l`` of
    the λ-major ``(L, n)`` results.  Rows are C-contiguous, so the row
    sums and the DP inputs see exactly the floats the one-λ-at-a-time
    path produced — probe outcomes are decision-for-decision identical.
    """
    state = obs.ACTIVE
    if state is None:
        return _batch_feasible_impl(instance, lams)
    state.count("dual.probes", len(lams))
    state.observe("dual.probe_batch", len(lams))
    with state.span("dual.batch_feasible", "kernel"):
        return _batch_feasible_impl(instance, lams)


def _batch_feasible_impl(instance: Instance, lams: list[float]) -> list[bool]:
    lam_arr = np.asarray(lams, dtype=np.float64)
    tm = instance.times_matrix
    m = instance.m
    am = instance.areas_matrix
    g_big = minimal_allotments(tm, lam_arr)
    work_big = minimal_area_allotments(tm, lam_arr, areas_matrix=am)
    work_small = minimal_area_allotments(tm, lam_arr / 2.0, areas_matrix=am)
    return [
        _decide(m, lam, g_big[l], work_big[l], work_small[l])
        for l, lam in enumerate(lam_arr.tolist())
    ]


def _is_feasible(instance: Instance, lam: float) -> bool:
    """Boolean-only :func:`feasibility_check` (no assignment reconstruction)."""
    return _batch_feasible(instance, [lam])[0]


def dual_approximation(
    instance: Instance,
    *,
    rel_tol: float = 1e-3,
    max_iter: int = 80,
) -> DualApproxResult:
    """Binary search on ``λ`` + two-shelf construction.

    ``rel_tol`` controls the gap between the certified lower bound and the
    accepted ``λ*``; the default (0.1%) is far below the algorithmic
    approximation factors at play.
    """
    state = obs.ACTIVE
    if state is None:
        return _dual_approximation_impl(instance, rel_tol=rel_tol, max_iter=max_iter)
    with state.span("dual_approximation", "algorithm"):
        return _dual_approximation_impl(instance, rel_tol=rel_tol, max_iter=max_iter)


def _dual_approximation_impl(
    instance: Instance,
    *,
    rel_tol: float,
    max_iter: int,
) -> DualApproxResult:
    if instance.n == 0:
        return DualApproxResult(0.0, 0.0, {}, frozenset(), _prebuilt=Schedule(instance.m))

    # Closed-form certified lower bounds: tallest unavoidable task and the
    # area argument.  Both are also implied by feasibility_check, but they
    # give the search a tight floor for free.
    lo = max(instance.max_min_time, instance.min_total_work / instance.m)

    # Probe with the value-only test; the accepted λ* is rechecked once in
    # full below to reconstruct the shelf assignment (deterministic, so
    # this splits the seed's combined probe without changing any outcome).
    #
    # Probes are issued in vectorised batches and the sequential decision
    # tree is replayed over the results, so the bracket evolution, the
    # max_iter accounting and the accepted λ* are bit-identical to the
    # one-probe-at-a-time search.  First sweep: the closed-form floor plus
    # a chunk of doubling guesses (built by repeated doubling, the exact
    # floats the sequential growth loop would form).
    cands = [lo]
    h = lo * 2.0
    for _ in range(_GROWTH_CHUNK):
        cands.append(h)
        h *= 2.0
    feas = _batch_feasible(instance, cands)
    if feas[0]:
        # The closed-form bound itself passes the test: accept it directly
        # (searching below `lo` is pointless — it is already certified).
        lam = lo
    else:
        # Growth: first accepted doubling wins; each inspected guess
        # counts against max_iter exactly like a sequential probe.
        first = None
        consumed = 0
        k = 1
        while first is None:
            while k < len(cands):
                if consumed >= max_iter:  # pragma: no cover - defensive
                    raise SchedulingError(
                        "dual approximation did not find a feasible lambda"
                    )
                consumed += 1
                if feas[k]:
                    first = k
                    break
                k += 1
            if first is None:
                ext = []
                for _ in range(_GROWTH_CHUNK):
                    ext.append(h)
                    h *= 2.0
                feas.extend(_batch_feasible(instance, ext))
                cands.extend(ext)
        lo = cands[first - 1]
        hi = cands[first]
        # Shrink the bracket [lo, hi]: three midpoints per sweep cover two
        # sequential bisection steps — m2 is the immediate midpoint and
        # m1/m3 the exact expressions the follow-up step computes after an
        # accept/reject of m2 (0.5*(lo+m2) and 0.5*(m2+hi)).  Termination
        # is re-tested before every consumed probe, as the sequential loop
        # tests it before every iteration.
        iters = 0
        while iters < max_iter and hi - lo > rel_tol * lo:
            m2 = 0.5 * (lo + hi)
            m1 = 0.5 * (lo + m2)
            m3 = 0.5 * (m2 + hi)
            f2, f1, f3 = _batch_feasible(instance, [m2, m1, m3])
            if f2:
                hi = m2
                nxt_mid, nxt_f = m1, f1
            else:
                lo = m2
                nxt_mid, nxt_f = m3, f3
            iters += 1
            if iters >= max_iter or hi - lo <= rel_tol * lo:
                break
            if nxt_f:
                hi = nxt_mid
            else:
                lo = nxt_mid
            iters += 1
        lam = hi

    feasible, in_big, allot = feasibility_check(instance, lam)
    if not feasible:  # pragma: no cover - probe and full check agree
        raise SchedulingError(f"accepted lambda {lam} failed the full check")

    # Built from the id vector, not the task objects: bounds-only cells on
    # array-backed instances never materialise a single MoldableTask.
    ids = instance.task_ids
    allotments = {int(tid): int(allot[i]) for i, tid in enumerate(ids.tolist())}
    big_ids = frozenset(int(tid) for tid in ids[in_big].tolist())
    return DualApproxResult(
        lower_bound=float(lo),
        lam=float(lam),
        allotments=allotments,
        big_shelf=big_ids,
        _instance=instance,
    )


def _build_two_shelf_schedule(
    instance: Instance, allotments: dict[int, int], big_shelf: frozenset[int]
) -> Schedule:
    """Materialise the accepted partition into a feasible schedule.

    Big-shelf tasks are listed first (they anchor at time 0 because their
    total width fits in ``m``), then small-shelf tasks in decreasing
    duration; Graham list scheduling slots the small tasks into the gaps
    left by the staggered big-shelf completions.
    """
    big_items = [
        ListItem(t, allotments[t.task_id])
        for t in instance.tasks
        if t.task_id in big_shelf
    ]
    small_items = [
        ListItem(t, allotments[t.task_id])
        for t in instance.tasks
        if t.task_id not in big_shelf
    ]
    # Big shelf: widest first so the shelf packs left-to-right deterministically.
    big_items.sort(key=lambda it: (-it.allotment, it.task.task_id))
    # Small shelf: longest processing time first (LPT keeps the tail short).
    small_items.sort(key=lambda it: (-it.duration, it.task.task_id))
    return list_schedule(big_items + small_items, instance.m)
