"""Gang scheduling baseline (§4.1).

"Each task is scheduled on all processors.  The tasks are sorted using the
ratio of the weight over the execution time.  This algorithm is optimal for
instances with linear speedup."

Each task occupies the whole machine, so the schedule is a single sequence;
ordering by decreasing ``w_i / p_i`` is Smith's rule on the equivalent
single machine, which is exactly why Gang is minsum-optimal when speedup is
linear (then the machine behaves like one processor that is ``m`` times
faster and the areas are allotment-independent).

Tasks that cannot use all ``m`` processors (shorter vectors, forbidden
allotments) run on their *fastest* feasible allotment instead — they still
block the whole machine, faithfully to the gang discipline.
"""

from __future__ import annotations

import numpy as np

from repro.core.instance import Instance
from repro.core.schedule import Schedule

__all__ = ["GangScheduler", "schedule_gang"]


class GangScheduler:
    """The Gang baseline; see module docstring."""

    name = "Gang"

    def schedule(self, instance: Instance) -> Schedule:
        tm = instance.times_matrix
        out = Schedule(instance.m)
        if instance.n == 0:
            return out
        # Fastest feasible allotment per task (the whole machine for tasks
        # that can use it).
        k_fast = np.argmin(tm, axis=1) + 1
        durations = tm[np.arange(instance.n), k_fast - 1]
        ratio = instance.weights / durations
        order = sorted(
            range(instance.n),
            key=lambda i: (-ratio[i], instance.tasks[i].task_id),
        )
        now = 0.0
        for i in order:
            out.add(instance.tasks[i], now, int(k_fast[i]))
            now += float(durations[i])
        return out


def schedule_gang(instance: Instance) -> Schedule:
    """Functional form of :class:`GangScheduler`."""
    return GangScheduler().schedule(instance)
