"""Weight-maximising knapsack selection (§3.2).

The DEMT batch loop selects, among the tasks admissible in the current
batch, a subset of maximal total weight whose allotments fit on the ``m``
processors.  The paper writes the recurrence

    W(i, j) = max( W(i-1, j), W(i-1, j - allot_i) + w_i )

with ``W`` initialised to ``-inf`` for ``j < 0`` and ``0`` otherwise; the
largest ``W(n, ·)`` is the maximal weight schedulable in the batch.  The
complexity is ``O(n m)``.

This module implements exactly that dynamic program (vectorised over the
capacity axis) plus the choice reconstruction the paper leaves implicit.
The hot DP loops are dispatched through :mod:`repro.kernels` (pure-NumPy
fallback, optional compiled cffi/numba backends — all bit-identical).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import kernels, obs

__all__ = [
    "KnapsackItem",
    "KnapsackResult",
    "knapsack_select",
    "knapsack_select_indices",
]


@dataclass(frozen=True)
class KnapsackItem:
    """One selectable unit: a task (or a merged stack of small tasks).

    Attributes
    ----------
    key:
        Caller-defined identifier (task id or stack index).
    allotment:
        Processors consumed if selected (``>= 1``).
    weight:
        Value added to the objective if selected (``> 0``).
    """

    key: object
    allotment: int
    weight: float

    def __post_init__(self) -> None:
        if self.allotment < 1:
            raise ValueError(f"item {self.key!r}: allotment must be >= 1, got {self.allotment}")
        if not math.isfinite(self.weight) or self.weight < 0:
            raise ValueError(f"item {self.key!r}: weight must be finite and >= 0")


@dataclass(frozen=True)
class KnapsackResult:
    """Outcome of :func:`knapsack_select`."""

    selected: tuple[KnapsackItem, ...]
    total_weight: float
    used_processors: int

    @property
    def selected_keys(self) -> tuple[object, ...]:
        return tuple(item.key for item in self.selected)


def knapsack_select(items: Sequence[KnapsackItem], m: int) -> KnapsackResult:
    """Maximise total weight of items whose allotments sum to at most ``m``.

    Exact 0/1 knapsack with integer capacity (the allotment axis), solved by
    the paper's ``O(n m)`` dynamic program.  Ties are broken toward using
    *fewer* processors, which leaves room for the compaction step to pull
    later batches forward.

    >>> items = [KnapsackItem("a", 2, 5.0), KnapsackItem("b", 2, 4.0),
    ...          KnapsackItem("c", 3, 6.0)]
    >>> res = knapsack_select(items, m=4)
    >>> sorted(res.selected_keys)
    ['a', 'b']
    >>> res.total_weight
    9.0
    """
    if m < 0:
        raise ValueError(f"capacity must be non-negative, got {m}")
    n = len(items)
    if n == 0 or m == 0:
        return KnapsackResult((), 0.0, 0)
    chosen_idx, total, used = knapsack_select_indices(
        [it.allotment for it in items], [it.weight for it in items], m
    )
    chosen = tuple(items[i] for i in chosen_idx)
    return KnapsackResult(chosen, total, used)


def knapsack_select_indices(
    allotments: Sequence[int], weights: Sequence[float], m: int
) -> tuple[list[int], float, int]:
    """Array-level core of :func:`knapsack_select`.

    Takes parallel allotment/weight sequences and returns
    ``(selected indices, total weight, used processors)`` — the DEMT batch
    loop calls this directly so the hot path skips item-object overhead.
    """
    n = len(allotments)
    if n == 0 or m == 0:
        return [], 0.0, 0
    allot_arr = np.ascontiguousarray(allotments, dtype=np.int64)
    weight_arr = np.ascontiguousarray(weights, dtype=np.float64)
    # Short-circuit: when every item fits simultaneously, the optimum is
    # "take everything" — the common case for DEMT's late batches, whose
    # shrinking pools stop filling the machine.  Restricted to strictly
    # positive weights, where it provably matches the DP (a zero-weight
    # item never survives the DP's strict-improvement test, and with
    # positive weights the DP's reconstruction keeps every item).  The
    # total is accumulated in index order, exactly like the DP rows, so
    # the reported weight is bit-identical.
    if bool(np.all(weight_arr > 0)):  # False for NaN too: fall to the DP
        used = int(allot_arr.sum())
        if used <= m:
            total = 0.0
            for w in weight_arr.tolist():
                total += w
            return list(range(n)), float(total), used
    # DP + reconstruction through the kernel layer (bit-identical across
    # backends; see repro.kernels).  The reconstruction picks the smallest
    # capacity achieving the maximal weight — fewest processors used for
    # the same weight — with an *exact* `best[q] >= total` comparison: a
    # tolerance would accept a capacity whose optimum is a strictly
    # lighter selection when item weights differ by less than it, and the
    # reconstruction would then not reproduce the reported total.
    return kernels.knapsack_select_core(allot_arr, weight_arr, m)


def knapsack_min_work(
    work_a: np.ndarray,
    cost_a: np.ndarray,
    work_b: np.ndarray,
    m: int,
) -> tuple[np.ndarray, float]:
    """Binary-choice knapsack *minimising* work (dual-approximation helper).

    Each task ``i`` either goes to option A — consuming ``cost_a[i]``
    processors of a shared budget ``m`` and contributing ``work_a[i]`` — or
    to option B — consuming no budget and contributing ``work_b[i]``
    (``+inf`` when option B is unavailable, which forces A).

    Returns ``(in_a, total_work)`` where ``in_a`` is a boolean vector of the
    optimal assignment.  ``total_work = +inf`` when no assignment fits (some
    forced-A tasks exceed the budget).

    This is the knapsack at the heart of the Mounié–Trystram two-shelf
    feasibility test: A = big shelf (duration ≤ λ), B = small shelf
    (duration ≤ λ/2); minimising total work while respecting the big-shelf
    width decides whether λ can possibly be beaten.
    """
    n = work_a.size
    if not (cost_a.size == n and work_b.size == n):
        raise ValueError("work_a, cost_a and work_b must have the same length")
    if m < 0:
        raise ValueError(f"capacity must be non-negative, got {m}")
    # This reconstructing DP runs in-module (the value-only variant goes
    # through the kernel dispatch, which tallies itself).
    state = obs.ACTIVE
    if state is not None:
        state.count("kernel.min_work_calls")
        state.count("kernel.dp_cells", n * (m + 1))

    INF = np.inf
    # dp[q] = min work with big-shelf width exactly <= q.  The row loop is
    # inherently sequential, so the speed comes from reusing two scratch
    # buffers (no allocations inside the loop) and from collapsing the
    # select into an elementwise minimum: take_a = via_a < via_b makes
    # np.where(take_a, via_a, via_b) exactly min(via_a, via_b).
    dp = np.zeros(m + 1)
    choice = np.zeros((n, m + 1), dtype=bool)  # True = option A
    via_a = np.empty(m + 1)
    via_b = np.empty(m + 1)
    for i in range(n):
        a_cost = int(cost_a[i])
        if work_a[i] >= work_b[i]:
            # Option A can never strictly win: dp is non-increasing in the
            # capacity, so via_a(q) = dp(q - c) + work_a >= dp(q) + work_b
            # = via_b(q).  The row collapses to a constant shift (and the
            # strict `<` of the full update leaves choice[i] all False).
            np.add(dp, work_b[i], out=dp)
            continue
        np.add(dp, work_b[i], out=via_b)
        if a_cost <= m and np.isfinite(work_a[i]):
            via_a[:a_cost] = INF
            np.add(dp[: m + 1 - a_cost], work_a[i], out=via_a[a_cost:])
        else:
            via_a[:] = INF
        np.less(via_a, via_b, out=choice[i])
        np.minimum(via_a, via_b, out=dp)

    total = float(dp[m])
    if not np.isfinite(total):
        return np.zeros(n, dtype=bool), INF
    # Reconstruct from capacity m.
    q = m
    in_a = np.zeros(n, dtype=bool)
    for i in range(n - 1, -1, -1):
        if choice[i, q]:
            in_a[i] = True
            q -= int(cost_a[i])
    return in_a, total


def knapsack_min_work_value(
    work_a: np.ndarray,
    cost_a: np.ndarray,
    work_b: np.ndarray,
    m: int,
) -> float:
    """Objective value of :func:`knapsack_min_work`, without reconstruction.

    Same dynamic program, same float operations in the same order (so
    feasibility decisions based on the value are identical), but no choice
    matrix — the dual-approximation binary search only needs the value for
    all but its final, accepted probe.  Runs through the kernel layer.
    """
    n = work_a.size
    if not (cost_a.size == n and work_b.size == n):
        raise ValueError("work_a, cost_a and work_b must have the same length")
    if m < 0:
        raise ValueError(f"capacity must be non-negative, got {m}")
    return kernels.knapsack_min_work_value_core(
        np.ascontiguousarray(work_a, dtype=np.float64),
        # float -> int64 truncates toward zero, same as the old int(c).
        np.ascontiguousarray(cost_a, dtype=np.int64),
        np.ascontiguousarray(work_b, dtype=np.float64),
        m,
    )
