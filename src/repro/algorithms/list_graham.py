"""List-Graham baselines (§4.1).

"All the 3 algorithms are multiprocessor list scheduling [11].  Every task
is alloted using the number of processors selected by [7]."  The allotments
come from the dual-approximation result; only the list *order* changes:

* ``shelf`` — "keep the order of [7], listing first tasks of the large
  shelf, then the tasks of the small shelf, then the small tasks": big-shelf
  tasks, then non-sequential small-shelf tasks, then the small sequential
  tasks (``p(1) ≤ λ/2``); each group longest-first;
* ``lptf`` — weighted largest processing time first: "a classical variant,
  with a very good behavior for Cmax criterion, but the tasks are in fact
  sorted using the ratio between weight and their execution time".  The
  order consistent with both halves of that sentence (an LPT-flavoured,
  Cmax-oriented list that is *not* minsum-optimised — its plotted minsum
  ratios are among the worst) is *largest weighted processing time first*,
  i.e. decreasing ``p_i(k_i) / w_i``.  The opposite reading (decreasing
  ``w_i / p_i``) is Smith's rule, which would make LPTF the best minsum
  baseline and contradict the published figures;
* ``saf`` — smallest area first: increasing ``k_i · p_i(k_i)``, "almost
  the opposite of LPTF", aimed at the ``sum w_i C_i`` criterion.

The paper plots them as "List Scheduling", "LPTF" and "SAF".
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.algorithms.dual_approx import DualApproxResult, dual_approximation
from repro.algorithms.list_scheduling import ListItem, list_schedule
from repro.core.instance import Instance
from repro.core.schedule import Schedule

__all__ = ["ListGrahamScheduler", "schedule_list_graham", "LIST_ORDERINGS"]

#: The three published orderings.
LIST_ORDERINGS: tuple[str, ...] = ("shelf", "lptf", "saf")


class ListGrahamScheduler:
    """Graham list scheduling with dual-approximation allotments.

    Parameters
    ----------
    ordering:
        One of :data:`LIST_ORDERINGS`.
    dual:
        Optionally a precomputed :class:`DualApproxResult` for the instance
        (the experiment harness shares one across the three orderings and
        the lower bound; when omitted it is computed on the fly).
    """

    def __init__(self, ordering: str = "shelf", dual: DualApproxResult | None = None):
        if ordering not in LIST_ORDERINGS:
            raise ValueError(
                f"unknown ordering {ordering!r}; choose from {LIST_ORDERINGS}"
            )
        self.ordering = ordering
        self.dual = dual
        self.name = {"shelf": "List Scheduling", "lptf": "LPTF", "saf": "SAF"}[ordering]

    def schedule(self, instance: Instance) -> Schedule:
        if instance.n == 0:
            return Schedule(instance.m)
        dual = self.dual if self.dual is not None else dual_approximation(instance)
        items = [
            ListItem(task, dual.allotments[task.task_id]) for task in instance.tasks
        ]
        key = _ORDER_KEYS[self.ordering](dual)
        items.sort(key=key)
        return list_schedule(items, instance.m)


def _shelf_key(dual: DualApproxResult) -> Callable[[ListItem], tuple]:
    lam = dual.lam

    def key(it: ListItem) -> tuple:
        tid = it.task.task_id
        if tid in dual.big_shelf:
            group = 0
        elif it.task.seq_time <= lam / 2.0 and np.isfinite(it.task.seq_time):
            group = 2  # the "small tasks" of the MT scheme
        else:
            group = 1
        return (group, -it.duration, tid)

    return key


def _lptf_key(dual: DualApproxResult) -> Callable[[ListItem], tuple]:
    def key(it: ListItem) -> tuple:
        return (-it.duration / it.task.weight, it.task.task_id)

    return key


def _saf_key(dual: DualApproxResult) -> Callable[[ListItem], tuple]:
    def key(it: ListItem) -> tuple:
        return (it.allotment * it.duration, it.task.task_id)

    return key


_ORDER_KEYS = {"shelf": _shelf_key, "lptf": _lptf_key, "saf": _saf_key}


def schedule_list_graham(
    instance: Instance,
    ordering: str = "shelf",
    dual: DualApproxResult | None = None,
) -> Schedule:
    """Functional form of :class:`ListGrahamScheduler`."""
    return ListGrahamScheduler(ordering, dual).schedule(instance)
