"""Graham list scheduling for moldable tasks with *fixed* allotments.

Given a priority-ordered list of ``(task, allotment)`` pairs, the scheduler
never leaves processors idle while some listed task fits: at every event
(time 0 and every task completion) it scans the remaining list in order and
starts each task whose allotment fits in the currently free processors.
This is the classical multiprocessor list scheduling of Garey & Graham
(paper ref [11]) extended to multi-processor tasks, and it is the engine
behind

* the compaction step of DEMT (§3.2 — "a list algorithm with the batch
  ordering"), and
* the three List-Graham baselines of §4.1 (shelf order, weighted LPTF,
  SAF).

The simulation itself is delegated to the vectorized kernel
:func:`repro.core.profile.graham_starts`; this module owns the
``ListItem`` abstraction (tasks and merged stacks) and the materialisation
of kernel start times into a :class:`~repro.core.schedule.Schedule`.  The
output is bit-for-bit identical to the seed's pending-list rescan
(``repro.algorithms.reference.reference_list_schedule``), which the
differential suite pins down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.profile import graham_starts
from repro.core.schedule import Schedule
from repro.core.task import MoldableTask
from repro.exceptions import SchedulingError

__all__ = ["ListItem", "list_schedule"]


@dataclass(frozen=True)
class ListItem:
    """One entry of the priority list.

    ``stack`` optionally carries tasks to run back-to-back *inside* the
    item's reservation (used when a merged stack of small sequential tasks
    is scheduled as a single allotment-1 unit).  When ``stack`` is empty the
    item is the single ``task``.
    """

    task: MoldableTask
    allotment: int
    stack: tuple[MoldableTask, ...] = ()

    @property
    def duration(self) -> float:
        if self.stack:
            return sum(t.seq_time for t in self.stack)
        return self.task.p(self.allotment)


def list_schedule(
    items: Sequence[ListItem],
    m: int,
    *,
    schedule: Schedule | None = None,
    start_time: float = 0.0,
) -> Schedule:
    """Run Graham list scheduling over ``items`` on ``m`` processors.

    Parameters
    ----------
    items:
        Priority-ordered work list.  Earlier items are preferred whenever
        several fit.
    m:
        Machine size.  Every allotment must be ``<= m``.
    schedule:
        Optional schedule to append to (must use the same ``m``); placements
        already present are *not* considered to occupy processors — callers
        schedule into a fresh machine unless they pass ``start_time`` beyond
        the existing horizon.
    start_time:
        Time before which nothing may start (used by the on-line batch
        framework to anchor a batch after the previous one).

    Returns the (possibly shared) :class:`Schedule` with all items placed.
    """
    out = schedule if schedule is not None else Schedule(m)
    if not items:
        return out
    allotments = np.array([it.allotment for it in items], dtype=np.int64)
    durations = np.array([it.duration for it in items], dtype=np.float64)
    for it, allot, dur in zip(items, allotments, durations):
        if allot > m:
            raise SchedulingError(
                f"task {it.task.task_id}: allotment {allot} exceeds m={m}"
            )
        if not np.isfinite(dur):
            raise SchedulingError(
                f"task {it.task.task_id}: infinite duration for allotment {allot}"
            )
    starts, order = graham_starts(allotments, durations, m, start_time=start_time)
    # Materialise in chronological placement order — the insertion order the
    # event simulation naturally produces, preserved so metric summations
    # match the seed implementation exactly.
    for idx in order:
        _place(out, items[idx], float(starts[idx]))
    return out


def _place(schedule: Schedule, item: ListItem, start: float) -> None:
    """Materialise an item (task or stack) into the schedule."""
    if item.stack:
        t = start
        for task in item.stack:
            schedule.add(task, t, 1)
            t += task.seq_time
    else:
        schedule.add(item.task, start, item.allotment)
