"""Merging of small sequential tasks (§3.2).

Before the knapsack selection of a batch of length ``t``, the paper stacks
tasks that "can be run in less than half the batch size on one processor":
several such tasks are executed back-to-back on a single processor inside
the batch, so the knapsack sees them as *one* item of allotment 1 whose
weight is the sum of the stacked weights.  To pack as much weight as
possible the stacking is done "by decreasing weight order".

The stack building is a greedy first-fit by decreasing weight: tasks are
appended to the current stack while the accumulated sequential time stays
within the batch length ``t``; a task that does not fit opens a new stack.
Because every candidate lasts at most ``t/2``, every stack except possibly
the last holds at least two tasks — that is the point of the merge: weight
density per processor goes up.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.task import MoldableTask

__all__ = ["MergedStack", "merge_small_tasks"]


@dataclass(frozen=True)
class MergedStack:
    """A pile of sequential tasks run back-to-back on one processor.

    ``tasks`` are ordered as they will execute (decreasing weight, so the
    heaviest completes first — the right order for ``sum w_i C_i`` by the
    classical exchange argument at equal processing slots).
    """

    tasks: tuple[MoldableTask, ...]

    @property
    def duration(self) -> float:
        """Total sequential time of the stack."""
        return sum(t.seq_time for t in self.tasks)

    @property
    def weight(self) -> float:
        """Aggregated knapsack weight."""
        return sum(t.weight for t in self.tasks)

    @property
    def task_ids(self) -> tuple[int, ...]:
        return tuple(t.task_id for t in self.tasks)

    def __len__(self) -> int:
        return len(self.tasks)


def merge_small_tasks(
    tasks: Sequence[MoldableTask],
    batch_length: float,
    *,
    small_threshold_factor: float = 0.5,
) -> tuple[list[MergedStack], list[MoldableTask]]:
    """Stack small sequential tasks; return ``(stacks, untouched)``.

    Parameters
    ----------
    tasks:
        Candidate tasks for the current batch.
    batch_length:
        The batch length ``t``; a task is *small* when
        ``p(1) <= small_threshold_factor * t``.
    small_threshold_factor:
        The paper uses one half ("less than half the batch size").  Exposed
        for the ablation benchmarks.

    Returns
    -------
    stacks:
        Maximal-weight-first stacks of small tasks, each of total duration
        ``<= batch_length``.  Singleton stacks may appear (a small task that
        did not combine with others); they are still knapsack items of
        allotment 1.
    untouched:
        Tasks that are not small; the caller gives them their regular
        minimal allotment for the batch.
    """
    if batch_length <= 0:
        raise ValueError(f"batch length must be positive, got {batch_length}")
    if not 0 < small_threshold_factor <= 1:
        raise ValueError(
            f"small_threshold_factor must lie in (0, 1], got {small_threshold_factor}"
        )
    threshold = small_threshold_factor * batch_length
    # A task with no sequential mode (p(1) = +inf: rigid jobs wider than
    # one processor) can never be stacked, whatever the threshold — an
    # infinite threshold (overlong doubling rounds) must not sweep it in.
    small: list[MoldableTask] = []
    untouched: list[MoldableTask] = []
    for t in tasks:
        is_small = t.seq_time <= threshold and math.isfinite(t.seq_time)
        (small if is_small else untouched).append(t)

    small.sort(key=lambda t: (-t.weight, t.task_id))
    stacks: list[MergedStack] = []
    current: list[MoldableTask] = []
    current_time = 0.0
    for task in small:
        if current and current_time + task.seq_time > batch_length:
            stacks.append(MergedStack(tuple(current)))
            current = []
            current_time = 0.0
        current.append(task)
        current_time += task.seq_time
    if current:
        stacks.append(MergedStack(tuple(current)))
    return stacks, untouched
