"""Seed (pre-vectorization) scheduling implementations, kept as oracles.

When the ``O(n^2)`` per-pass rescans of the seed release were replaced by
the vectorized core of :mod:`repro.core.profile`, the originals moved here
verbatim instead of being deleted.  They are *specifications*: slow,
obviously-correct Python that the fast path must match bit-for-bit.

Used by

* ``tests/properties/`` — the differential suite runs both paths on a
  randomized corpus and asserts identical placements;
* ``benchmarks/bench_fig7_timing.py`` — :class:`ReferenceDemtScheduler`
  is the baseline of the vectorized-core speedup measurement.

Nothing in the library's production paths imports this module.
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np

from repro.algorithms.list_scheduling import ListItem, _place
from repro.core.schedule import Schedule
from repro.exceptions import SchedulingError
from repro.utils.rng import make_rng

__all__ = [
    "reference_list_schedule",
    "reference_pull_forward",
    "reference_list_compaction",
    "reference_earliest_fit",
    "ReferenceDemtScheduler",
]


def reference_list_schedule(
    items: Sequence[ListItem],
    m: int,
    *,
    schedule: Schedule | None = None,
    start_time: float = 0.0,
) -> Schedule:
    """The seed's Graham list scheduling (rescan of the pending list)."""
    for it in items:
        if it.allotment > m:
            raise SchedulingError(
                f"task {it.task.task_id}: allotment {it.allotment} exceeds m={m}"
            )
        if not np.isfinite(it.duration):
            raise SchedulingError(
                f"task {it.task.task_id}: infinite duration for allotment {it.allotment}"
            )

    out = schedule if schedule is not None else Schedule(m)
    pending: list[ListItem] = list(items)
    free = m
    now = float(start_time)
    running: list[tuple[float, int]] = []  # (end_time, allotment) min-heap

    while pending:
        started_any = True
        while started_any:
            started_any = False
            for idx, it in enumerate(pending):
                if it.allotment <= free:
                    _place(out, it, now)
                    heapq.heappush(running, (now + it.duration, it.allotment))
                    free -= it.allotment
                    del pending[idx]
                    started_any = True
                    break
        if not pending:
            break
        if not running:  # pragma: no cover - defensive
            raise SchedulingError("list scheduling deadlocked (item larger than machine?)")
        end, allot = heapq.heappop(running)
        free += allot
        now = end
        while running and running[0][0] <= now:
            _, a = heapq.heappop(running)
            free += a
    return out


def reference_earliest_fit(
    placed: list[tuple[float, float, int]],
    allotment: int,
    duration: float,
    m: int,
) -> float:
    """The seed's quadratic earliest-fit over a list of placements."""
    candidates = sorted({0.0, *(end for _, end, _ in placed)})
    for t0 in candidates:
        t1 = t0 + duration
        points = [t0, *(s for s, _, _ in placed if t0 < s < t1)]
        if all(
            sum(a for s, e, a in placed if s <= point < e) + allotment <= m
            for point in points
        ):
            return t0
    return max((end for _, end, _ in placed), default=0.0)  # pragma: no cover


def reference_pull_forward(
    batches: Sequence[Sequence[ListItem]], m: int
) -> Schedule:
    """The seed's order-preserving compaction (full profile rescans)."""
    out = Schedule(m)
    placed: list[tuple[float, float, int]] = []
    for items in batches:
        for it in items:
            start = reference_earliest_fit(placed, it.allotment, it.duration, m)
            _place(out, it, start)
            placed.append((start, start + it.duration, it.allotment))
    return out


def reference_list_compaction(
    batches: Sequence[Sequence[ListItem]], m: int
) -> Schedule:
    """The seed's full Graham list compaction with the batch ordering."""
    flat: list[ListItem] = [it for items in batches for it in items]
    return reference_list_schedule(flat, m)


def reference_minimal_area_allotments(
    times_matrix: np.ndarray, deadline: float
) -> np.ndarray:
    """The seed's per-deadline area-matrix rebuild."""
    n, m = times_matrix.shape
    ks = np.arange(1, m + 1, dtype=np.float64)
    areas = np.where(times_matrix <= deadline, times_matrix * ks, np.inf)
    return areas.min(axis=1)


def reference_knapsack_min_work(
    work_a: np.ndarray,
    cost_a: np.ndarray,
    work_b: np.ndarray,
    m: int,
) -> tuple[np.ndarray, float]:
    """The seed's min-work knapsack (fresh allocations every row)."""
    n = work_a.size
    if not (cost_a.size == n and work_b.size == n):
        raise ValueError("work_a, cost_a and work_b must have the same length")
    if m < 0:
        raise ValueError(f"capacity must be non-negative, got {m}")

    INF = np.inf
    dp = np.full(m + 1, 0.0)
    choice = np.zeros((n, m + 1), dtype=bool)  # True = option A
    for i in range(n):
        a_cost = int(cost_a[i])
        via_b = dp + work_b[i]
        if a_cost <= m and np.isfinite(work_a[i]):
            via_a = np.full(m + 1, INF)
            via_a[a_cost:] = dp[: m + 1 - a_cost] + work_a[i]
        else:
            via_a = np.full(m + 1, INF)
        take_a = via_a < via_b
        choice[i] = take_a
        dp = np.where(take_a, via_a, via_b)

    total = float(dp[m])
    if not np.isfinite(total):
        return np.zeros(n, dtype=bool), INF
    q = m
    in_a = np.zeros(n, dtype=bool)
    for i in range(n - 1, -1, -1):
        if choice[i, q]:
            in_a[i] = True
            q -= int(cost_a[i])
    return in_a, total


def reference_feasibility_check(instance, lam):
    """The seed's necessary-condition test for "makespan <= lam exists"."""
    from repro.core.allotment import minimal_allotments

    if lam <= 0:
        return False, np.empty(0, dtype=bool), np.empty(0, dtype=np.int64)
    tm = instance.times_matrix
    m = instance.m

    g_big = minimal_allotments(tm, lam)
    if (g_big == 0).any():
        return False, np.empty(0, dtype=bool), np.empty(0, dtype=np.int64)
    g_small = minimal_allotments(tm, lam / 2.0)
    work_big = reference_minimal_area_allotments(tm, lam)
    work_small = reference_minimal_area_allotments(tm, lam / 2.0)

    in_big, total = reference_knapsack_min_work(
        work_a=work_big,
        cost_a=g_big.astype(np.float64),
        work_b=work_small,
        m=m,
    )
    if not np.isfinite(total) or total > m * lam * (1 + 1e-12):
        return False, np.empty(0, dtype=bool), np.empty(0, dtype=np.int64)
    allot = np.where(in_big, g_big, g_small).astype(np.int64)
    return True, in_big, allot


def reference_dual_approximation(instance, *, rel_tol=1e-3, max_iter=80):
    """The seed's binary search + two-shelf construction, end to end."""
    from repro.algorithms.dual_approx import DualApproxResult

    if instance.n == 0:
        return DualApproxResult(0.0, 0.0, {}, frozenset(), _prebuilt=Schedule(instance.m))

    lo = max(instance.max_min_time, instance.min_total_work / instance.m)

    feasible, in_big, allot = reference_feasibility_check(instance, lo)
    if not feasible:
        hi = lo * 2.0
        for _ in range(max_iter):
            feasible, in_big, allot = reference_feasibility_check(instance, hi)
            if feasible:
                break
            lo = hi
            hi *= 2.0
        else:  # pragma: no cover - defensive
            raise SchedulingError("dual approximation did not find a feasible lambda")
        for _ in range(max_iter):
            if hi - lo <= rel_tol * lo:
                break
            mid = 0.5 * (lo + hi)
            ok, ib, al = reference_feasibility_check(instance, mid)
            if ok:
                hi, in_big, allot = mid, ib, al
            else:
                lo = mid
        lam = hi
    else:
        lam = lo

    tasks = instance.tasks
    big_items = [
        ListItem(tasks[i], int(allot[i])) for i in range(len(tasks)) if in_big[i]
    ]
    small_items = [
        ListItem(tasks[i], int(allot[i])) for i in range(len(tasks)) if not in_big[i]
    ]
    big_items.sort(key=lambda it: (-it.allotment, it.task.task_id))
    small_items.sort(key=lambda it: (-it.duration, it.task.task_id))
    schedule = reference_list_schedule(big_items + small_items, instance.m)
    allotments = {t.task_id: int(allot[i]) for i, t in enumerate(instance.tasks)}
    big_ids = frozenset(t.task_id for i, t in enumerate(instance.tasks) if in_big[i])
    return DualApproxResult(
        lower_bound=float(lo),
        lam=float(lam),
        allotments=allotments,
        big_shelf=big_ids,
        _prebuilt=schedule,
    )


# Imported late to avoid a cycle (demt imports compaction at module load).
from repro.algorithms.demt import DemtScheduler  # noqa: E402


class ReferenceDemtScheduler(DemtScheduler):
    """DEMT running entirely on the seed's implementations.

    Seed dual approximation, seed per-task admissibility scan, seed
    compaction and seed shuffle loop — the full pre-vectorization
    behavior, for differential tests and as the baseline of the speedup
    benchmark in ``benchmarks/bench_fig7_timing.py``.
    """

    name = "DEMT(reference)"

    def _dual(self, instance):
        return reference_dual_approximation(instance)

    def _select_one_batch(self, tasks, length, m):
        from repro.algorithms.knapsack import KnapsackItem, knapsack_select
        from repro.algorithms.merge import merge_small_tasks
        from repro.core.allotment import minimal_allotment

        admissible = [t for t in tasks if minimal_allotment(t, length, m=m) is not None]
        if not admissible:
            return []
        stacks, rest = merge_small_tasks(
            admissible, length, small_threshold_factor=self.small_threshold_factor
        )
        items = []
        payload = {}
        for s_idx, stack in enumerate(stacks):
            key = ("stack", s_idx)
            items.append(KnapsackItem(key, 1, stack.weight))
            payload[key] = ListItem(stack.tasks[0], 1, stack=stack.tasks)
        for task in rest:
            key = ("task", task.task_id)
            allot = minimal_allotment(task, length, m=m)
            assert allot is not None
            items.append(KnapsackItem(key, allot, task.weight))
            payload[key] = ListItem(task, allot)

        result = knapsack_select(items, m)
        chosen = [payload[k] for k in result.selected_keys]
        chosen.sort(
            key=lambda it: (
                -(sum(t.weight for t in it.stack) if it.stack else it.task.weight)
                / it.duration,
                it.task.task_id,
            )
        )
        return chosen

    def _compact(self, batches, starts, m):
        if self.compaction == "shelf":
            from repro.algorithms.compaction import shelf_placement

            return shelf_placement(batches, starts, m)
        if self.compaction == "pull_forward":
            return reference_pull_forward(batches, m)
        return reference_list_compaction(batches, m)

    def _shuffle_optimise(self, batches, m, baseline):
        rng = make_rng(self.seed)
        best = baseline
        best_minsum = baseline.weighted_completion_sum()
        base_cmax = baseline.makespan()
        order = np.arange(len(batches))
        for _ in range(self.shuffle_rounds):
            rng.shuffle(order)
            candidate = reference_list_compaction([batches[i] for i in order], m)
            if candidate.makespan() <= base_cmax * (1 + 1e-12):
                minsum = candidate.weighted_completion_sum()
                if minsum < best_minsum:
                    best, best_minsum = candidate, minsum
        gain = (baseline.weighted_completion_sum() - best_minsum) / max(
            baseline.weighted_completion_sum(), 1e-300
        )
        return best, gain
