"""Name → scheduler registry matching the paper's figure legends.

The six algorithms plotted in Figures 3-6:

========  =====================================================
Name      Implementation
========  =====================================================
DEMT      :class:`repro.algorithms.demt.DemtScheduler`
Gang      :class:`repro.algorithms.gang.GangScheduler`
Sequential:class:`repro.algorithms.sequential.SequentialScheduler`
List      :class:`repro.algorithms.list_graham.ListGrahamScheduler` (shelf)
LPTF      :class:`repro.algorithms.list_graham.ListGrahamScheduler` (lptf)
SAF       :class:`repro.algorithms.list_graham.ListGrahamScheduler` (saf)
========  =====================================================
"""

from __future__ import annotations

from typing import Callable

from repro.algorithms.base import Scheduler
from repro.algorithms.demt import DemtScheduler
from repro.algorithms.gang import GangScheduler
from repro.algorithms.list_graham import ListGrahamScheduler
from repro.algorithms.sequential import SequentialScheduler

__all__ = ["ALGORITHM_REGISTRY", "get_algorithm", "PAPER_ALGORITHMS"]

def _fcfs() -> Scheduler:
    from repro.extensions.fcfs import FcfsBackfillScheduler

    return FcfsBackfillScheduler(backfill=False)


def _fcfs_easy() -> Scheduler:
    from repro.extensions.fcfs import FcfsBackfillScheduler

    return FcfsBackfillScheduler(backfill=True)


def _greedy_interval() -> Scheduler:
    from repro.extensions.greedy_interval import GreedyIntervalScheduler

    return GreedyIntervalScheduler()


def _wspt() -> Scheduler:
    from repro.algorithms.wspt import WsptScheduler

    return WsptScheduler()


#: Factories for fresh scheduler objects, keyed by the paper's names (the
#: first six) plus the extension baselines of repro.extensions.
ALGORITHM_REGISTRY: dict[str, Callable[[], Scheduler]] = {
    "DEMT": DemtScheduler,
    "Gang": GangScheduler,
    "Sequential": SequentialScheduler,
    "List Scheduling": lambda: ListGrahamScheduler("shelf"),
    "LPTF": lambda: ListGrahamScheduler("lptf"),
    "SAF": lambda: ListGrahamScheduler("saf"),
    "FCFS": _fcfs,
    "FCFS+EASY": _fcfs_easy,
    "GreedyInterval": _greedy_interval,
    "WSPT": _wspt,
}

#: The exact set plotted in Figures 3-6, in legend order.
PAPER_ALGORITHMS: tuple[str, ...] = (
    "DEMT",
    "Gang",
    "Sequential",
    "List Scheduling",
    "SAF",
    "LPTF",
)


def get_algorithm(name: str) -> Scheduler:
    """Instantiate the scheduler registered under ``name``.

    >>> get_algorithm("DEMT").name
    'DEMT'
    """
    try:
        factory = ALGORITHM_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; available: {', '.join(ALGORITHM_REGISTRY)}"
        ) from None
    return factory()
