"""Sequential baseline (§4.1).

"Each task is scheduled on a single processor.  A list algorithm is used,
scheduling large processing time first (LPTF)."

Every task gets allotment 1 and the classical LPT list order; Graham list
scheduling then fills the ``m`` processors greedily.  Rigid tasks that
cannot run on one processor fall back to their *minimal feasible*
allotment (the library supports them even though the paper's workloads are
all 1-feasible).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.list_scheduling import ListItem, list_schedule
from repro.core.instance import Instance
from repro.core.schedule import Schedule

__all__ = ["SequentialScheduler", "schedule_sequential"]


class SequentialScheduler:
    """The Sequential (1 processor per task, LPTF) baseline."""

    name = "Sequential"

    def schedule(self, instance: Instance) -> Schedule:
        items: list[ListItem] = []
        for row, task in enumerate(instance.tasks):
            if np.isfinite(task.seq_time):
                allot = 1
            else:
                # Smallest allotment with a finite time (rigid-task support).
                finite = np.isfinite(instance.times_matrix[row])
                allot = int(np.argmax(finite)) + 1
            items.append(ListItem(task, allot))
        items.sort(key=lambda it: (-it.duration, it.task.task_id))
        return list_schedule(items, instance.m)


def schedule_sequential(instance: Instance) -> Schedule:
    """Functional form of :class:`SequentialScheduler`."""
    return SequentialScheduler().schedule(instance)
