"""WSPT — weighted shortest processing time, a modern minsum baseline.

Not one of the paper's six algorithms: WSPT (Smith's rule) is *the*
classical order for ``sum w_i C_i`` on identical machines — decreasing
``w_i / p_i``.  It is included as an extra comparator because it is
exactly the opposite reading of the paper's ambiguous LPTF sentence (see
:mod:`repro.algorithms.list_graham`), and our reproduction found it to be
a genuinely strong minsum heuristic at heavy load: on the highly-parallel
workload at ``n = 2m`` it overtakes DEMT (EXPERIMENTS.md, delta 2).

Allotments come from the dual approximation, like the other list
baselines; only the order differs.
"""

from __future__ import annotations

from repro.algorithms.dual_approx import DualApproxResult, dual_approximation
from repro.algorithms.list_scheduling import ListItem, list_schedule
from repro.core.instance import Instance
from repro.core.schedule import Schedule

__all__ = ["WsptScheduler", "schedule_wspt"]


class WsptScheduler:
    """Graham list scheduling in Smith order (decreasing ``w/p``)."""

    name = "WSPT"

    def __init__(self, dual: DualApproxResult | None = None) -> None:
        self.dual = dual

    def schedule(self, instance: Instance) -> Schedule:
        if instance.n == 0:
            return Schedule(instance.m)
        dual = self.dual if self.dual is not None else dual_approximation(instance)
        items = [
            ListItem(task, dual.allotments[task.task_id]) for task in instance.tasks
        ]
        items.sort(key=lambda it: (-it.task.weight / it.duration, it.task.task_id))
        return list_schedule(items, instance.m)


def schedule_wspt(instance: Instance, dual: DualApproxResult | None = None) -> Schedule:
    """Functional form of :class:`WsptScheduler`."""
    return WsptScheduler(dual).schedule(instance)
