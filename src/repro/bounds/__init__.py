"""Lower bounds used to assess the algorithms (§3.3).

* :mod:`repro.bounds.cmax` — makespan lower bounds: the area and
  critical-path closed forms and the certified dual-approximation bound;
* :mod:`repro.bounds.minsum_lp` — the paper's new LP-relaxation lower
  bound on ``sum w_i C_i`` (interval-indexed surface relaxation);
* :mod:`repro.bounds.exact` — exhaustive reference solvers for tiny
  instances, used by the test suite to certify that the bounds really are
  bounds (and to gauge their tightness).
"""

from repro.bounds.cmax import (
    area_lower_bound,
    critical_path_lower_bound,
    cmax_lower_bound,
)
from repro.bounds.minsum_lp import MinsumBound, minsum_lower_bound
from repro.bounds.exact import ExactResult, exact_reference

__all__ = [
    "area_lower_bound",
    "critical_path_lower_bound",
    "cmax_lower_bound",
    "MinsumBound",
    "minsum_lower_bound",
    "ExactResult",
    "exact_reference",
]
