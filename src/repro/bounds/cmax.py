"""Makespan lower bounds.

The paper (§3.3): "For Cmax a good lower bound may easily be obtained by
dual approximation [7]."  Three bounds live here, in increasing strength:

* :func:`critical_path_lower_bound` — ``max_i min_k p_i(k)``: no schedule
  beats the fastest execution of its slowest task;
* :func:`area_lower_bound` — ``(sum_i min_k k p_i(k)) / m``: the machine
  cannot absorb more than ``m`` units of work per unit of time;
* :func:`cmax_lower_bound` — the certified bound from the binary search of
  :func:`repro.algorithms.dual_approx.dual_approximation`: every ``λ``
  below it violates a *necessary* feasibility condition (which subsumes
  both closed forms and adds the two-shelf knapsack argument).

The experiment harness divides measured makespans by
:func:`cmax_lower_bound`, exactly as the paper's figures do.
"""

from __future__ import annotations

from repro.algorithms.dual_approx import DualApproxResult, dual_approximation
from repro.core.instance import Instance

__all__ = ["area_lower_bound", "critical_path_lower_bound", "cmax_lower_bound"]


def critical_path_lower_bound(instance: Instance) -> float:
    """``max_i min_k p_i(k)`` (0.0 for an empty instance)."""
    if instance.n == 0:
        return 0.0
    return instance.max_min_time


def area_lower_bound(instance: Instance) -> float:
    """Total minimal work divided by the machine size."""
    if instance.n == 0:
        return 0.0
    return instance.min_total_work / instance.m


def cmax_lower_bound(
    instance: Instance, dual: DualApproxResult | None = None
) -> float:
    """Certified makespan lower bound via dual approximation.

    Pass a precomputed ``dual`` result to avoid re-running the binary
    search (the experiment harness shares it with the List-Graham
    baselines).
    """
    if instance.n == 0:
        return 0.0
    if dual is None:
        dual = dual_approximation(instance)
    return dual.lower_bound
