"""Exhaustive reference solvers for tiny instances.

These are *test oracles*: they certify on small inputs that

* the LP bound of :mod:`repro.bounds.minsum_lp` never exceeds the optimal
  ``sum w_i C_i``;
* the dual-approximation bound of :mod:`repro.bounds.cmax` never exceeds
  the optimal makespan;
* the heuristics are not wildly off the optimum.

The search enumerates every allotment vector and every task permutation,
placing tasks greedily at their earliest feasible start *in permutation
order*.  For the class of schedules we need (off-line, no release dates),
some optimal schedule for each criterion is of this "earliest-fit in some
order with some allotments" form:

* any feasible schedule can be canonicalised order-by-start-time; placing
  tasks in that order at their earliest feasible start only moves
  completions earlier, so it never worsens either criterion.

Complexity is ``O(m^n · n! · n^2)`` — usable for ``n <= 5`` or so, which
is exactly what the property tests need.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.core.instance import Instance
from repro.core.schedule import Schedule
from repro.exceptions import ModelError

__all__ = ["ExactResult", "exact_reference"]

#: Hard cap on instance size; the search is factorial.
MAX_EXACT_TASKS = 7


@dataclass(frozen=True)
class ExactResult:
    """Optimal values (and witnessing schedules) for both criteria."""

    cmax: float
    minsum: float
    cmax_schedule: Schedule
    minsum_schedule: Schedule


def exact_reference(instance: Instance) -> ExactResult:
    """Exhaustively compute optimal ``Cmax`` and ``sum w_i C_i``.

    Raises
    ------
    ModelError
        If the instance exceeds :data:`MAX_EXACT_TASKS` tasks (the search
        would not terminate in reasonable time).
    """
    n, m = instance.n, instance.m
    if n > MAX_EXACT_TASKS:
        raise ModelError(
            f"exact search limited to {MAX_EXACT_TASKS} tasks, got {n}"
        )
    if n == 0:
        empty = Schedule(m)
        return ExactResult(0.0, 0.0, empty, Schedule(m))

    tm = instance.times_matrix
    feasible_allots = [
        [k for k in range(1, m + 1) if np.isfinite(tm[i, k - 1])] for i in range(n)
    ]

    best_cmax = np.inf
    best_minsum = np.inf
    best_cmax_sched: Schedule | None = None
    best_minsum_sched: Schedule | None = None

    for allots in itertools.product(*feasible_allots):
        durations = [float(tm[i, allots[i] - 1]) for i in range(n)]
        for perm in itertools.permutations(range(n)):
            placements = _earliest_fit_order(perm, allots, durations, m)
            cmax = max(s + durations[i] for i, s in placements.items())
            minsum = sum(
                instance.tasks[i].weight * (s + durations[i])
                for i, s in placements.items()
            )
            if cmax < best_cmax - 1e-12:
                best_cmax = cmax
                best_cmax_sched = _materialise(instance, placements, allots)
            if minsum < best_minsum - 1e-12:
                best_minsum = minsum
                best_minsum_sched = _materialise(instance, placements, allots)

    assert best_cmax_sched is not None and best_minsum_sched is not None
    return ExactResult(
        cmax=float(best_cmax),
        minsum=float(best_minsum),
        cmax_schedule=best_cmax_sched,
        minsum_schedule=best_minsum_sched,
    )


def _earliest_fit_order(
    perm: tuple[int, ...],
    allots: tuple[int, ...],
    durations: list[float],
    m: int,
) -> dict[int, float]:
    """Place tasks in ``perm`` order at their earliest feasible start."""
    placed: list[tuple[float, float, int]] = []  # (start, end, width)
    starts: dict[int, float] = {}
    for i in perm:
        w, d = allots[i], durations[i]
        candidates = sorted({0.0, *(e for _, e, _ in placed)})
        start = None
        for t0 in candidates:
            t1 = t0 + d
            points = [t0, *(s for s, _, _ in placed if t0 < s < t1)]
            if all(
                sum(ww for s, e, ww in placed if s <= p < e) + w <= m
                for p in points
            ):
                start = t0
                break
        assert start is not None  # last candidate always fits
        placed.append((start, start + d, w))
        starts[i] = start
    return starts


def _materialise(
    instance: Instance, starts: dict[int, float], allots: tuple[int, ...]
) -> Schedule:
    sched = Schedule(instance.m)
    for i, start in starts.items():
        sched.add(instance.tasks[i], start, allots[i])
    return sched
