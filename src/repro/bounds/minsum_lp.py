"""LP-relaxation lower bound on ``sum w_i C_i`` (§3.3 — the paper's new bound).

Formulation
-----------
The time horizon is divided into geometric intervals.  With ``x_{i,j} = 1``
iff task ``i`` ends within interval ``I_j``, the paper states:

    minimise    sum_{i,j} w_i t_j x_{i,j}
    subject to  sum_j x_{i,j} >= 1                          (each task ends)
                sum_{l<=j} sum_i S_{i,l} x_{i,l} <= m t_{j+1}   (surface)
                x_{i,j} in {0,1}   (relaxed to [0,1])

where ``S_{i,j}`` is the minimal area task ``i`` can occupy if it ends by
``t_{j+1}`` (``+inf`` if impossible, which simply forbids the variable).
Every feasible schedule induces a feasible ``x`` whose objective does not
exceed its minsum, so the LP optimum — and a fortiori the relaxed optimum —
lower-bounds the optimal ``sum w_i C_i``.

Three strictness refinements to the published text (recorded in DESIGN.md):

* a **leading interval** ``(0, t_0]`` — the paper's grid starts at
  ``t_0 > 0``, and a task completing before ``t_0`` would otherwise be
  charged ``w t_0 > w C_i``, breaking the bound;
* an **open last interval** ``(t_{K+1}, inf)`` with no surface constraint —
  an optimal *minsum* schedule may exceed the makespan-based horizon, and
  without this interval such schedules would have no image in the LP;
* **per-task objective coefficients**: a task ending within interval
  ``(a, b]`` satisfies ``C_i >= a`` *and* ``C_i >= min_{k: p_i(k) <= b}
  p_i(k)`` (it cannot finish faster than its fastest allotment able to meet
  the interval), so the coefficient is ``w_i * max(a, fastest_i(b))``
  instead of the paper's plain ``w_i a``.  This keeps the leading interval
  from being free and tightens every early interval, while remaining a
  valid lower bound.

The LP is solved with HiGHS through :func:`scipy.optimize.linprog` on a
sparse constraint matrix: ``n (K+3)`` variables and ``n + K + 2``
constraints, milliseconds even at ``n = 400``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.optimize import linprog, milp, Bounds, LinearConstraint

from repro.core.allotment import minimal_area_allotments
from repro.core.instance import Instance
from repro.exceptions import SolverError

__all__ = ["MinsumBound", "minsum_lower_bound", "build_time_grid"]


@dataclass(frozen=True)
class MinsumBound:
    """Result of the LP (or ILP) relaxation.

    Attributes
    ----------
    value:
        The lower bound on ``sum w_i C_i``.
    boundaries:
        Interval boundaries ``0 = b_0 < b_1 < ... < b_J`` (the last interval
        extends beyond ``b_J`` to infinity).
    x:
        The optimal relaxed assignment, shape ``(n, J+1)`` — column ``j``
        is the mass of "task ends in interval j".  Useful for diagnostics.
    integral:
        ``True`` when solved as an ILP (exact interval-indexed bound)
        rather than its LP relaxation.
    """

    value: float
    boundaries: np.ndarray
    x: np.ndarray
    integral: bool = False


def build_time_grid(instance: Instance, cmax_estimate: float) -> np.ndarray:
    """Geometric boundaries ``t_0 .. t_{K+1}`` as defined in §3.2.

    ``K = floor(log2(C*max / t_min))`` and ``t_j = C*max / 2^(K-j)``, so the
    grid runs from just above the smallest possible task duration up to
    twice the makespan estimate, doubling at each step.
    """
    tmin = instance.tmin
    if cmax_estimate <= 0 or not np.isfinite(cmax_estimate):
        raise ValueError(f"invalid C*max estimate {cmax_estimate}")
    K = max(0, int(math.floor(math.log2(cmax_estimate / tmin))))
    return np.array([cmax_estimate / 2 ** (K - j) for j in range(K + 2)])


def minsum_lower_bound(
    instance: Instance,
    cmax_estimate: float | None = None,
    *,
    integral: bool = False,
) -> MinsumBound:
    """Compute the §3.3 lower bound on the weighted completion-time sum.

    Parameters
    ----------
    instance:
        The scheduling instance.
    cmax_estimate:
        The makespan estimate anchoring the grid (the paper reuses the
        dual-approximation value; when omitted it is computed here).
    integral:
        Solve the integer program instead of its relaxation.  The paper
        notes the relaxed bound "might be weaker, but is much faster to
        compute"; the ILP variant quantifies that gap in the ablations.
    """
    if instance.n == 0:
        return MinsumBound(0.0, np.array([0.0]), np.zeros((0, 1)), integral)
    if cmax_estimate is None:
        from repro.algorithms.dual_approx import dual_approximation

        cmax_estimate = dual_approximation(instance).lam

    grid = build_time_grid(instance, cmax_estimate)
    # Interval structure: boundaries b = [0, t_0, ..., t_{K+1}] and a final
    # open interval.  Interval j (0-based) = (b_j, b_{j+1}] for j < J-1,
    # and (b_{J-1}, inf) for j = J-1.  Objective coefficient of interval j
    # is its lower boundary b_j.
    b = np.concatenate([[0.0], grid])
    J = b.size  # number of intervals (last one open-ended)
    n, m = instance.n, instance.m
    tm = instance.times_matrix
    weights = instance.weights

    # S[i, j]: minimal area of task i if it ends by the interval's upper
    # boundary; the open last interval uses the unconstrained minimum.
    # fastest[i, j]: the fastest duration among allotments meeting the same
    # deadline (drives the refined objective coefficients).
    S = np.empty((n, J))
    fastest = np.empty((n, J))
    for j in range(J - 1):
        S[:, j] = minimal_area_allotments(tm, b[j + 1])
        fastest[:, j] = np.where(tm <= b[j + 1], tm, np.inf).min(axis=1)
    ks = np.arange(1, m + 1, dtype=np.float64)
    S[:, J - 1] = (tm * ks).min(axis=1)
    fastest[:, J - 1] = tm.min(axis=1)

    allowed = np.isfinite(S)
    # Variable layout: flat index v = i * J + j, only for allowed pairs.
    var_index = -np.ones((n, J), dtype=np.int64)
    flat_allowed = np.argwhere(allowed)
    for v, (i, j) in enumerate(flat_allowed):
        var_index[i, j] = v
    n_vars = flat_allowed.shape[0]

    c = np.array(
        [weights[i] * max(b[j], fastest[i, j]) for i, j in flat_allowed]
    )

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    rhs: list[float] = []
    row = 0
    # Coverage: -sum_j x_{i,j} <= -1 for each task.
    for i in range(n):
        for j in range(J):
            v = var_index[i, j]
            if v >= 0:
                rows.append(row)
                cols.append(int(v))
                vals.append(-1.0)
        rhs.append(-1.0)
        row += 1
    # Surface: for each bounded interval j, cumulative area <= m * b_{j+1}.
    for j in range(J - 1):
        for l in range(j + 1):
            for i in range(n):
                v = var_index[i, l]
                if v >= 0:
                    rows.append(row)
                    cols.append(int(v))
                    vals.append(float(S[i, l]))
        rhs.append(float(m * b[j + 1]))
        row += 1

    A = sparse.coo_matrix((vals, (rows, cols)), shape=(row, n_vars)).tocsr()
    rhs_arr = np.array(rhs)

    if integral:
        res = milp(
            c=c,
            constraints=LinearConstraint(A, -np.inf, rhs_arr),
            integrality=np.ones(n_vars),
            bounds=Bounds(0, 1),
        )
        if not res.success:  # pragma: no cover - solver hiccup
            raise SolverError(f"MILP failed: {res.message}")
        x_flat = res.x
        value = float(res.fun)
    else:
        res = linprog(
            c,
            A_ub=A,
            b_ub=rhs_arr,
            bounds=(0.0, 1.0),
            method="highs",
        )
        if not res.success:  # pragma: no cover - solver hiccup
            raise SolverError(f"LP failed: {res.message}")
        x_flat = res.x
        value = float(res.fun)

    x = np.zeros((n, J))
    for v, (i, j) in enumerate(flat_allowed):
        x[i, j] = x_flat[v]
    return MinsumBound(value=value, boundaries=b, x=x, integral=integral)
