"""Core modelling layer: moldable tasks, instances, schedules and criteria.

This package is the substrate every algorithm in :mod:`repro.algorithms`
builds on.  It deliberately contains *no* scheduling policy — only the
vocabulary of the problem studied by Dutot et al. (SPAA 2004):

* :class:`~repro.core.task.MoldableTask` — a parallel task whose processing
  time is a function ``p(k)`` of the number of processors it is allotted;
* :class:`~repro.core.instance.Instance` — ``n`` tasks plus ``m`` identical
  processors, all available at time 0 (the paper's off-line setting);
* :class:`~repro.core.schedule.Schedule` — a set of (task, start time,
  allotment) decisions, with feasibility validation and criteria evaluation.
"""

from repro.core.task import MoldableTask, rigid_task, sequential_task
from repro.core.instance import Instance
from repro.core.schedule import Schedule, ScheduledTask
from repro.core.allotment import (
    minimal_allotment,
    minimal_allotments,
    minimal_area_allotment,
    minimal_area_allotments,
)
from repro.core.metrics import (
    makespan,
    weighted_completion_sum,
    completion_sum,
    total_work,
    utilization,
    max_stretch,
)
from repro.core.validation import validate_schedule, is_feasible, TIME_EPS

__all__ = [
    "TIME_EPS",
    "MoldableTask",
    "rigid_task",
    "sequential_task",
    "Instance",
    "Schedule",
    "ScheduledTask",
    "minimal_allotment",
    "minimal_allotments",
    "minimal_area_allotment",
    "minimal_area_allotments",
    "makespan",
    "weighted_completion_sum",
    "completion_sum",
    "total_work",
    "utilization",
    "max_stretch",
    "validate_schedule",
    "is_feasible",
]
