"""Canonical allotment selection.

Two selection rules recur throughout the paper:

* the **minimal allotment for a deadline** ``t`` — the smallest ``k`` with
  ``p(k) <= t`` (the paper's ``allot_i``, used by the knapsack selection and
  by the dual-approximation shelves).  For monotonic tasks the smallest
  feasible ``k`` is also the one of smallest work, i.e. the cheapest way to
  meet the deadline.
* the **minimal-area allotment under a deadline** — ``argmin_k k * p(k)``
  subject to ``p(k) <= t`` (the quantity ``S_{i,j}`` of the lower-bound LP,
  §3.3).  Identical to the former for monotonic tasks, but kept separate so
  non-monotonic inputs are still handled exactly.

Both come in scalar (one task) and vectorised (whole instance) flavours; the
vectorised forms operate on the ``(n, m)`` processing-time matrix exposed by
:class:`repro.core.instance.Instance` and are the hot path of the LP bound.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.task import MoldableTask

__all__ = [
    "minimal_allotment",
    "minimal_allotments",
    "minimal_allotments_for_tasks",
    "minimal_area_allotment",
    "minimal_area_allotments",
]


def minimal_allotment(task: MoldableTask, deadline: float, m: int | None = None) -> int | None:
    """Smallest ``k <= m`` with ``p(k) <= deadline``, or ``None`` if none.

    >>> from repro.core.task import MoldableTask
    >>> t = MoldableTask(0, [10.0, 6.0, 4.5])
    >>> minimal_allotment(t, 6.0)
    2
    >>> minimal_allotment(t, 1.0) is None
    True
    """
    limit = task.max_procs if m is None else min(m, task.max_procs)
    times = task.times[:limit]
    ok = times <= deadline
    if not ok.any():
        return None
    return int(np.argmax(ok)) + 1


def minimal_allotments(
    times_matrix: np.ndarray, deadline: float | np.ndarray
) -> np.ndarray:
    """Vectorised :func:`minimal_allotment` over an ``(n, m)`` time matrix.

    ``deadline`` is a scalar or a 1-D λ-axis of length ``L``.  Returns an
    ``(n,)`` int array for a scalar — ``0`` encodes "no feasible allotment"
    (instead of ``None``) so the result stays a flat array — or an
    ``(L, n)`` λ-major array whose row ``l`` is bit-identical to the scalar
    call at ``deadline[l]`` (the dual approximation probes several λ
    guesses per sweep through this).
    """
    if np.ndim(deadline) > 0:
        lam = np.asarray(deadline, dtype=np.float64)
        ok = times_matrix[None, :, :] <= lam[:, None, None]
        any_ok = ok.any(axis=2)
        allot = ok.argmax(axis=2) + 1
        allot[~any_ok] = 0
        return allot.astype(np.int64)
    ok = times_matrix <= deadline
    any_ok = ok.any(axis=1)
    # argmax returns 0 for all-False rows; mask those to 0 afterwards.
    allot = ok.argmax(axis=1) + 1
    allot[~any_ok] = 0
    return allot.astype(np.int64)


def minimal_allotments_for_tasks(
    tasks: Sequence[MoldableTask], deadline: float, m: int
) -> np.ndarray:
    """Vectorised :func:`minimal_allotment` over a task *list*.

    Unlike :func:`minimal_allotments` this builds the time matrix itself,
    so batch loops over shrinking pools (DEMT's selection) get one numpy
    sweep per batch instead of one ``minimal_allotment`` call per task.
    Returns an ``(n,)`` int array; ``0`` encodes "no feasible allotment".
    """
    if not tasks:
        return np.zeros(0, dtype=np.int64)
    lengths = {t.times.size for t in tasks}
    if len(lengths) == 1:
        matrix = np.stack([t.times for t in tasks])[:, :m]
    else:  # mixed vector lengths: pad with +inf (never feasible)
        width = min(m, max(lengths))
        matrix = np.full((len(tasks), width), np.inf)
        for row, t in enumerate(tasks):
            k = min(t.times.size, width)
            matrix[row, :k] = t.times[:k]
    return minimal_allotments(matrix, deadline)


def minimal_area_allotment(
    task: MoldableTask, deadline: float, m: int | None = None
) -> tuple[int, float] | None:
    """Allotment of minimal area meeting ``deadline``; ``None`` if impossible.

    Returns ``(k, area)`` with ``area = k * p(k)`` minimal among feasible
    ``k``.  This is the per-task quantity ``S_{i,j}`` of the paper's LP
    lower bound.
    """
    limit = task.max_procs if m is None else min(m, task.max_procs)
    times = task.times[:limit]
    ks = np.arange(1, limit + 1, dtype=np.float64)
    feasible = times <= deadline
    if not feasible.any():
        return None
    areas = np.where(feasible, ks * times, np.inf)
    k = int(np.argmin(areas)) + 1
    return k, float(areas[k - 1])


def minimal_area_allotments(
    times_matrix: np.ndarray,
    deadline: float | np.ndarray,
    *,
    areas_matrix: np.ndarray | None = None,
) -> np.ndarray:
    """Vectorised minimal feasible area per task (``+inf`` if infeasible).

    ``times_matrix`` is the ``(n, m)`` matrix of ``p_i(k)``; the result is an
    ``(n,)`` float array of ``S_{i, j}`` values for the interval whose upper
    end is ``deadline``.  ``deadline`` may also be a 1-D λ-axis of length
    ``L``, giving an ``(L, n)`` λ-major result whose rows match the scalar
    calls bit-for-bit (the per-row min reduces the same ``m``-slices in the
    same order).  Callers probing many deadlines (the dual approximation's
    binary search) pass the precomputed ``Instance.areas_matrix`` to skip
    rebuilding the ``k * p_i(k)`` product.
    """
    if areas_matrix is None:
        n, m = times_matrix.shape
        ks = np.arange(1, m + 1, dtype=np.float64)
        areas_matrix = times_matrix * ks
    if np.ndim(deadline) > 0:
        lam = np.asarray(deadline, dtype=np.float64)
        return np.min(
            np.broadcast_to(areas_matrix, (lam.size,) + areas_matrix.shape),
            axis=2,
            where=times_matrix[None, :, :] <= lam[:, None, None],
            initial=np.inf,
        )
    return np.min(
        areas_matrix, axis=1, where=times_matrix <= deadline, initial=np.inf
    )
