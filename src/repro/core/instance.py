"""Problem instances: ``n`` moldable tasks and ``m`` identical processors.

The off-line model of the paper (§3.2): all tasks available at time 0, fully
described by their processing-time vectors and weights.

Two representations back the same interface:

* **Object-backed** (the original): constructed from a sequence of
  :class:`~repro.core.task.MoldableTask`; the dense ``(n, m)`` matrix the
  vectorised kernels consume is derived lazily from the task vectors.
* **Array-backed** (the columnar plane): constructed zero-copy from the
  ``(n, m)`` time matrix and the weight/release vectors via
  :meth:`Instance.from_arrays`; the :class:`MoldableTask` *objects* are
  derived lazily, and only where a consumer genuinely needs them (schedule
  placements, batch merging).  Vectorised generators and the experiment
  engine use this path so campaign setup never pays per-object costs.

Either way the instance is immutable and every derived quantity is cached.
"""

from __future__ import annotations

from functools import cached_property
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core.task import MoldableTask
from repro.exceptions import InvalidInstanceError

__all__ = ["Instance"]


class Instance:
    """An immutable scheduling instance.

    Parameters
    ----------
    tasks:
        The moldable tasks.  Task ids must be unique; they need not be
        contiguous (sub-instances built by batch algorithms keep original
        ids).
    m:
        Number of identical processors of the cluster.

    Raises
    ------
    InvalidInstanceError
        If ids collide, ``m < 1``, or some task cannot run on ``<= m``
        processors at all (it could never be scheduled).
    """

    __slots__ = ("m", "_tasks", "__dict__")

    def __init__(self, tasks: Sequence[MoldableTask] | Iterable[MoldableTask], m: int) -> None:
        tasks = tuple(tasks)
        if m < 1:
            raise InvalidInstanceError(f"cluster must have at least 1 processor, got m={m}")
        ids = [t.task_id for t in tasks]
        if len(set(ids)) != len(ids):
            dupes = sorted({i for i in ids if ids.count(i) > 1})
            raise InvalidInstanceError(f"duplicate task ids: {dupes}")
        for t in tasks:
            if not np.isfinite(t.times[: min(m, t.max_procs)]).any():
                raise InvalidInstanceError(
                    f"task {t.task_id} has no feasible allotment within m={m} processors"
                )
        self._tasks = tasks
        self.m = int(m)

    # ------------------------------------------------------------------ #
    # Columnar construction                                              #
    # ------------------------------------------------------------------ #
    @classmethod
    def from_arrays(
        cls,
        times_matrix: np.ndarray,
        weights: np.ndarray | None = None,
        releases: np.ndarray | None = None,
        m: int | None = None,
        *,
        task_ids: np.ndarray | None = None,
        validate: bool = True,
    ) -> "Instance":
        """Zero-copy instance from the dense ``(n, m)`` representation.

        Parameters
        ----------
        times_matrix:
            ``(n, m)`` float array of ``p_i(k)``; ``+inf`` marks forbidden
            allotments.  Like every array argument here, it is adopted
            without copying — and marked **read-only in place** — whenever
            it already is a C-contiguous array of the target dtype
            (float64; int64 for ``task_ids``); otherwise a converted copy
            is frozen and the caller's array stays untouched.  Callers who
            need to keep mutating what they pass in should pass a copy.
        weights:
            ``(n,)`` positive weights (default: all ones).
        releases:
            ``(n,)`` non-negative release dates (default: all zeros).
        m:
            Number of processors; defaults to ``times_matrix.shape[1]``
            and must equal it (the columnar plane stores exactly the
            cluster-width matrix).
        task_ids:
            ``(n,)`` unique integer ids (default: ``0 .. n-1``).
        validate:
            Vectorised validation of all of the above.  Generators that
            produce admissible data by construction may skip it.

        The corresponding :class:`MoldableTask` objects are materialised
        lazily on first access to :attr:`tasks` (or any API built on it).
        """
        times_matrix = np.ascontiguousarray(times_matrix, dtype=np.float64)
        if times_matrix.ndim != 2:
            raise InvalidInstanceError(
                f"times_matrix must be 2-D (n, m), got shape {times_matrix.shape}"
            )
        n, width = times_matrix.shape
        m = width if m is None else int(m)
        if m < 1:
            raise InvalidInstanceError(f"cluster must have at least 1 processor, got m={m}")
        if m != width:
            raise InvalidInstanceError(
                f"times_matrix width {width} does not match m={m}; the columnar "
                f"plane stores exactly the (n, m) cluster matrix"
            )
        weights = (
            np.ones(n) if weights is None else np.ascontiguousarray(weights, dtype=np.float64)
        )
        releases = (
            np.zeros(n) if releases is None else np.ascontiguousarray(releases, dtype=np.float64)
        )
        task_ids = (
            np.arange(n, dtype=np.int64)
            if task_ids is None
            else np.ascontiguousarray(task_ids, dtype=np.int64)
        )
        if weights.shape != (n,) or releases.shape != (n,) or task_ids.shape != (n,):
            raise InvalidInstanceError(
                f"weights/releases/task_ids must all have shape ({n},), got "
                f"{weights.shape}/{releases.shape}/{task_ids.shape}"
            )

        if validate:
            if np.isnan(times_matrix).any():
                raise InvalidInstanceError("times_matrix contains NaN")
            finite = np.isfinite(times_matrix)
            bad_rows = np.flatnonzero(~finite.any(axis=1))
            if bad_rows.size:
                raise InvalidInstanceError(
                    f"tasks {task_ids[bad_rows[:5]].tolist()} have no feasible "
                    f"allotment within m={m} processors"
                )
            if (times_matrix[finite] <= 0).any():
                raise InvalidInstanceError("processing times must be strictly positive")
            if not np.isfinite(weights).all() or (weights <= 0).any():
                raise InvalidInstanceError("weights must be positive finite numbers")
            if not np.isfinite(releases).all() or (releases < 0).any():
                raise InvalidInstanceError("release dates must be non-negative")
            if np.unique(task_ids).size != n:
                raise InvalidInstanceError("duplicate task ids in task_ids")

        for arr in (times_matrix, weights, releases, task_ids):
            arr.setflags(write=False)

        inst = object.__new__(cls)
        inst.m = m
        inst._tasks = None
        inst.__dict__.update(
            times_matrix=times_matrix,
            weights=weights,
            releases=releases,
            task_ids=task_ids,
        )
        return inst

    # ------------------------------------------------------------------ #
    # Container protocol                                                 #
    # ------------------------------------------------------------------ #
    @property
    def tasks(self) -> tuple[MoldableTask, ...]:
        """The task objects (materialised lazily for array-backed instances)."""
        if self._tasks is None:
            tm = self.times_matrix
            self._tasks = tuple(
                MoldableTask._trusted(int(tid), tm[i], float(w), float(rel))
                for i, (tid, w, rel) in enumerate(
                    zip(self.task_ids.tolist(), self.weights.tolist(), self.releases.tolist())
                )
            )
        return self._tasks

    @property
    def n(self) -> int:
        """Number of tasks."""
        return len(self.weights) if self._tasks is None else len(self._tasks)

    def __len__(self) -> int:
        return self.n

    def __iter__(self) -> Iterator[MoldableTask]:
        return iter(self.tasks)

    def __getitem__(self, idx: int) -> MoldableTask:
        return self.tasks[idx]

    def task_by_id(self, task_id: int) -> MoldableTask:
        """Look up a task by identifier (O(1) after the first call)."""
        try:
            return self._id_index[task_id]
        except KeyError:
            raise KeyError(f"no task with id {task_id} in instance") from None

    @cached_property
    def _id_index(self) -> dict[int, MoldableTask]:
        return {t.task_id: t for t in self.tasks}

    # ------------------------------------------------------------------ #
    # Derived matrices and bounds                                        #
    # ------------------------------------------------------------------ #
    @cached_property
    def times_matrix(self) -> np.ndarray:
        """Dense ``(n, m)`` matrix of ``p_i(k)``; ``+inf`` where undefined.

        Array-backed instances store this directly (their primary
        representation).  For object-backed instances it is built from the
        task vectors in one vectorised pad/stack: vectors shorter than
        ``m`` are padded with ``+inf`` (the task cannot use more
        processors), longer ones truncated (the cluster has no more
        processors to give).
        """
        n, m = self.n, self.m
        tasks = self._tasks
        if n == 0:
            out = np.full((0, m), np.inf)
            out.setflags(write=False)
            return out
        sizes = {t.times.size for t in tasks}
        if len(sizes) == 1:
            width = sizes.pop()
            stacked = np.stack([t.times for t in tasks])
            if width >= m:
                out = np.ascontiguousarray(stacked[:, :m])
            else:
                out = np.full((n, m), np.inf)
                out[:, :width] = stacked
        else:
            # Heterogeneous vector lengths: scatter the concatenated
            # (truncated) vectors through a column mask — no Python row
            # loop, one pass over the data.
            widths = np.fromiter(
                (min(t.times.size, m) for t in tasks), dtype=np.int64, count=n
            )
            out = np.full((n, m), np.inf)
            mask = np.arange(m) < widths[:, None]
            out[mask] = np.concatenate([t.times[:m] for t in tasks])
        out.setflags(write=False)
        return out

    @cached_property
    def areas_matrix(self) -> np.ndarray:
        """Dense ``(n, m)`` matrix of areas ``k * p_i(k)`` (``+inf`` where
        the allotment is forbidden).

        Cached because the dual-approximation binary search evaluates
        masked area minima at every probe; rebuilding the product there
        dominated the search's cost.
        """
        ks = np.arange(1, self.m + 1, dtype=np.float64)
        out = self.times_matrix * ks
        out.setflags(write=False)
        return out

    @cached_property
    def weights(self) -> np.ndarray:
        """``(n,)`` vector of task weights."""
        out = np.array([t.weight for t in self._tasks], dtype=np.float64)
        out.setflags(write=False)
        return out

    @cached_property
    def releases(self) -> np.ndarray:
        """``(n,)`` vector of release dates (zeros for off-line instances)."""
        out = np.array([t.release for t in self._tasks], dtype=np.float64)
        out.setflags(write=False)
        return out

    @cached_property
    def task_ids(self) -> np.ndarray:
        """``(n,)`` vector of task identifiers, in instance order."""
        out = np.array([t.task_id for t in self._tasks], dtype=np.int64)
        out.setflags(write=False)
        return out

    @cached_property
    def tmin(self) -> float:
        """Smallest processing time over all tasks and allotments.

        This is the paper's ``t_min = min_{i,j} p_i(j)`` used to size the
        smallest useful batch.
        """
        return float(np.min(self.times_matrix))

    @cached_property
    def max_min_time(self) -> float:
        """``max_i min_k p_i(k)`` — no schedule can finish before this."""
        return float(np.max(np.min(self.times_matrix, axis=1)))

    @cached_property
    def min_total_work(self) -> float:
        """Sum over tasks of the minimal achievable area.

        ``min_total_work / m`` is the classic area lower bound on the
        makespan.
        """
        ks = np.arange(1, self.m + 1, dtype=np.float64)
        areas = self.times_matrix * ks
        return float(np.min(areas, axis=1).sum())

    @cached_property
    def max_release(self) -> float:
        """Latest release date (0 for pure off-line instances)."""
        releases = self.releases
        if releases.size == 0:
            return 0.0
        return float(releases.max())

    def is_offline(self) -> bool:
        """``True`` iff every task is available at time 0."""
        return self.max_release == 0.0

    # ------------------------------------------------------------------ #
    # Sub-instances                                                      #
    # ------------------------------------------------------------------ #
    def restrict(self, task_ids: Iterable[int]) -> "Instance":
        """Sub-instance keeping only ``task_ids`` (same machine).

        Batch algorithms use this to hand a batch's content to a substrate
        algorithm without renumbering tasks.  Array-backed instances
        restrict by row selection (no task objects are materialised);
        object-backed ones keep their original task objects.
        """
        wanted = set(task_ids)
        if self._tasks is None:
            ids = self.task_ids
            keep = np.fromiter((int(i) in wanted for i in ids), dtype=bool, count=ids.size)
            missing = wanted - {int(i) for i in ids[keep]}
            if missing:
                raise KeyError(f"task ids not in instance: {sorted(missing)}")
            return Instance.from_arrays(
                self.times_matrix[keep],
                self.weights[keep],
                self.releases[keep],
                self.m,
                task_ids=ids[keep],
                validate=False,
            )
        kept = [t for t in self._tasks if t.task_id in wanted]
        missing = wanted - {t.task_id for t in kept}
        if missing:
            raise KeyError(f"task ids not in instance: {sorted(missing)}")
        return Instance(kept, self.m)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Instance(n={self.n}, m={self.m})"
