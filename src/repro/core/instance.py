"""Problem instances: ``n`` moldable tasks and ``m`` identical processors.

The off-line model of the paper (§3.2): all tasks available at time 0, fully
described by their processing-time vectors and weights.  The instance also
precomputes the dense ``(n, m)`` matrix of processing times used by the
vectorised allotment helpers and by the LP lower bound.
"""

from __future__ import annotations

from functools import cached_property
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core.task import MoldableTask
from repro.exceptions import InvalidInstanceError

__all__ = ["Instance"]


class Instance:
    """An immutable scheduling instance.

    Parameters
    ----------
    tasks:
        The moldable tasks.  Task ids must be unique; they need not be
        contiguous (sub-instances built by batch algorithms keep original
        ids).
    m:
        Number of identical processors of the cluster.

    Raises
    ------
    InvalidInstanceError
        If ids collide, ``m < 1``, or some task cannot run on ``<= m``
        processors at all (it could never be scheduled).
    """

    __slots__ = ("tasks", "m", "__dict__")

    def __init__(self, tasks: Sequence[MoldableTask] | Iterable[MoldableTask], m: int) -> None:
        tasks = tuple(tasks)
        if m < 1:
            raise InvalidInstanceError(f"cluster must have at least 1 processor, got m={m}")
        ids = [t.task_id for t in tasks]
        if len(set(ids)) != len(ids):
            dupes = sorted({i for i in ids if ids.count(i) > 1})
            raise InvalidInstanceError(f"duplicate task ids: {dupes}")
        for t in tasks:
            if not np.isfinite(t.times[: min(m, t.max_procs)]).any():
                raise InvalidInstanceError(
                    f"task {t.task_id} has no feasible allotment within m={m} processors"
                )
        self.tasks = tasks
        self.m = int(m)

    # ------------------------------------------------------------------ #
    # Container protocol                                                 #
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Number of tasks."""
        return len(self.tasks)

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self) -> Iterator[MoldableTask]:
        return iter(self.tasks)

    def __getitem__(self, idx: int) -> MoldableTask:
        return self.tasks[idx]

    def task_by_id(self, task_id: int) -> MoldableTask:
        """Look up a task by identifier (O(1) after the first call)."""
        try:
            return self._id_index[task_id]
        except KeyError:
            raise KeyError(f"no task with id {task_id} in instance") from None

    @cached_property
    def _id_index(self) -> dict[int, MoldableTask]:
        return {t.task_id: t for t in self.tasks}

    # ------------------------------------------------------------------ #
    # Derived matrices and bounds                                        #
    # ------------------------------------------------------------------ #
    @cached_property
    def times_matrix(self) -> np.ndarray:
        """Dense ``(n, m)`` matrix of ``p_i(k)``; ``+inf`` where undefined.

        Tasks whose vector is shorter than ``m`` are padded with ``+inf``
        (they simply cannot use more processors); vectors longer than ``m``
        are truncated (the cluster has no more processors to give).
        """
        out = np.full((self.n, self.m), np.inf)
        for row, task in enumerate(self.tasks):
            k = min(task.max_procs, self.m)
            out[row, :k] = task.times[:k]
        out.setflags(write=False)
        return out

    @cached_property
    def areas_matrix(self) -> np.ndarray:
        """Dense ``(n, m)`` matrix of areas ``k * p_i(k)`` (``+inf`` where
        the allotment is forbidden).

        Cached because the dual-approximation binary search evaluates
        masked area minima at every probe; rebuilding the product there
        dominated the search's cost.
        """
        ks = np.arange(1, self.m + 1, dtype=np.float64)
        out = self.times_matrix * ks
        out.setflags(write=False)
        return out

    @cached_property
    def weights(self) -> np.ndarray:
        """``(n,)`` vector of task weights."""
        out = np.array([t.weight for t in self.tasks], dtype=np.float64)
        out.setflags(write=False)
        return out

    @cached_property
    def tmin(self) -> float:
        """Smallest processing time over all tasks and allotments.

        This is the paper's ``t_min = min_{i,j} p_i(j)`` used to size the
        smallest useful batch.
        """
        return float(np.min(self.times_matrix))

    @cached_property
    def max_min_time(self) -> float:
        """``max_i min_k p_i(k)`` — no schedule can finish before this."""
        return float(np.max(np.min(self.times_matrix, axis=1)))

    @cached_property
    def min_total_work(self) -> float:
        """Sum over tasks of the minimal achievable area.

        ``min_total_work / m`` is the classic area lower bound on the
        makespan.
        """
        ks = np.arange(1, self.m + 1, dtype=np.float64)
        areas = self.times_matrix * ks
        return float(np.min(areas, axis=1).sum())

    @cached_property
    def max_release(self) -> float:
        """Latest release date (0 for pure off-line instances)."""
        if not self.tasks:
            return 0.0
        return max(t.release for t in self.tasks)

    def is_offline(self) -> bool:
        """``True`` iff every task is available at time 0."""
        return self.max_release == 0.0

    # ------------------------------------------------------------------ #
    # Sub-instances                                                      #
    # ------------------------------------------------------------------ #
    def restrict(self, task_ids: Iterable[int]) -> "Instance":
        """Sub-instance keeping only ``task_ids`` (same machine).

        Batch algorithms use this to hand a batch's content to a substrate
        algorithm without renumbering tasks.
        """
        wanted = set(task_ids)
        kept = [t for t in self.tasks if t.task_id in wanted]
        missing = wanted - {t.task_id for t in kept}
        if missing:
            raise KeyError(f"task ids not in instance: {sorted(missing)}")
        return Instance(kept, self.m)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Instance(n={self.n}, m={self.m})"
