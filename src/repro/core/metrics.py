"""Criteria and derived statistics on schedules.

The two criteria the paper optimises jointly (§2.2):

* :func:`makespan` — ``Cmax = max_i C_i`` (system-administrator view);
* :func:`weighted_completion_sum` — ``sum_i w_i C_i`` (user view, "minsum").

Plus auxiliary statistics used by the experiment analysis (utilisation,
total work, stretch).  All functions are read-only and accept any
:class:`~repro.core.schedule.Schedule`.
"""

from __future__ import annotations

import numpy as np

from repro.core.schedule import Schedule

__all__ = [
    "makespan",
    "completion_sum",
    "weighted_completion_sum",
    "total_work",
    "utilization",
    "max_stretch",
    "mean_weighted_flow",
]


def makespan(schedule: Schedule) -> float:
    """Latest completion time ``Cmax`` (0.0 for an empty schedule)."""
    return schedule.makespan()


def completion_sum(schedule: Schedule) -> float:
    """Unweighted sum of completion times ``sum_i C_i``."""
    return float(sum(p.end for p in schedule))


def weighted_completion_sum(schedule: Schedule) -> float:
    """Weighted sum of completion times ``sum_i w_i C_i``."""
    return schedule.weighted_completion_sum()


def total_work(schedule: Schedule) -> float:
    """Total Gantt area ``sum_i k_i * p_i(k_i)`` consumed by the schedule."""
    return float(sum(p.work for p in schedule))


def utilization(schedule: Schedule) -> float:
    """Fraction of the ``m x Cmax`` rectangle actually busy (0 if empty).

    The complement of the paper's "idle time" that the administrator wants
    low (§2.1).
    """
    cmax = schedule.makespan()
    if cmax <= 0:
        return 0.0
    return total_work(schedule) / (schedule.m * cmax)


def max_stretch(schedule: Schedule) -> float:
    """Largest slowdown ``C_i / p_i(min-time allotment)`` over tasks.

    A fairness-flavoured statistic; 1.0 means every task ran as if alone on
    the machine.  Useful in the analysis of the on-line extension.
    """
    worst = 0.0
    for p in schedule:
        ref = p.task.min_time
        if ref > 0:
            worst = max(worst, (p.end - p.task.release) / ref)
    return worst


def mean_weighted_flow(schedule: Schedule) -> float:
    """Average of ``w_i (C_i - r_i)`` — equals minsum/n for off-line inputs."""
    if len(schedule) == 0:
        return 0.0
    return float(
        np.mean([p.task.weight * (p.end - p.task.release) for p in schedule])
    )
