"""Event-based free-processor profile — the vectorized scheduling core.

Every placement engine in the library ultimately answers two questions
about a partially built schedule:

1. *Graham question* — at the current event time, which is the first task
   of the priority list that fits in the free processors?  (Asked by
   :func:`repro.algorithms.list_scheduling.list_schedule` and therefore by
   DEMT's list compaction, the List-Graham baselines, WSPT, Sequential and
   the dual-approximation shelf construction.)
2. *Profile question* — what is the earliest instant at which ``k``
   processors stay free for ``d`` time units?  (Asked by DEMT's
   pull-forward compaction and by the FCFS/EASY-backfilling extension.)

The seed implementation answered both by rescanning Python lists of
placements from scratch — ``O(n)`` per query, ``O(n^2)`` per schedule, and
``O(n^2)`` *per compaction pass* in DEMT's shuffle loop.  This module
replaces those rescans with two shared primitives:

* :func:`graham_starts` — the Graham list-scheduling kernel over flat numpy
  arrays of allotments and durations.  It exploits the classical burst
  property (between two completion events the free count only decreases,
  so one forward pass over the pending list is equivalent to the textbook
  restart-from-the-head loop) and scans with vectorised comparisons.  The
  start times it produces are *bit-for-bit identical* to the seed
  implementation, which the differential suite in ``tests/properties/``
  pins down.
* :class:`FreeProfile` — an incrementally maintained usage step function
  (sorted event-time array + per-interval usage counts) answering
  ``earliest_fit`` queries with vectorised violation lookups instead of a
  quadratic candidate × breakpoint rescan.

Both primitives deal in plain numbers, not tasks, so callers stay free to
map items to tasks, merged stacks, or rigid jobs however they like.
"""

from __future__ import annotations

import numpy as np

from repro import kernels, obs
from repro.exceptions import SchedulingError

__all__ = ["FreeProfile", "graham_starts"]


def graham_starts(
    allotments: np.ndarray,
    durations: np.ndarray,
    m: int,
    *,
    start_time: float = 0.0,
    cutoff: float | None = None,
) -> tuple[np.ndarray, list[int]] | None:
    """Graham list scheduling over parallel arrays; returns start times.

    Parameters
    ----------
    allotments, durations:
        Per-item processor counts and processing times, in priority order
        (earlier items are preferred whenever several fit).
    m:
        Machine size; every allotment must be ``<= m`` (the caller checks —
        the kernel would deadlock and raise otherwise).
    start_time:
        Time before which nothing may start.
    cutoff:
        Optional early-exit bound: as soon as the event clock passes
        ``cutoff`` the kernel returns ``None`` (the final makespan is then
        certainly ``> cutoff``).  Used by DEMT's shuffle loop to discard
        candidate orders that cannot beat the incumbent makespan.

    Returns
    -------
    ``(starts, order)`` where ``starts[i]`` is item ``i``'s start time and
    ``order`` lists item indices in chronological placement order (ties in
    priority order) — the insertion order the seed implementation produced,
    which callers preserve so downstream float summations stay identical.

    The event loop itself lives in :mod:`repro.kernels` (pure-NumPy
    fallback, optional compiled cffi/numba backends, all bit-identical).
    """
    n = len(allotments)
    if n == 0:
        return np.empty(0, dtype=np.float64), []
    state = obs.ACTIVE
    if state is not None:
        state.count("profile.graham_starts")
    return kernels.graham_starts_core(allotments, durations, m, float(start_time), cutoff)


class FreeProfile:
    """Incremental processor-usage step function over ``[0, +inf)``.

    The profile is stored as a sorted breakpoint array ``times`` (always
    starting at 0) and a usage array where ``usage[i]`` holds on
    ``[times[i], times[i+1])`` — the last interval extends to infinity.
    All reservations are finite, so the trailing usage is always 0 and an
    ``earliest_fit`` query always has an answer.

    Intervals are half-open: a reservation ending at ``t`` frees its
    processors for one starting at ``t`` — the same convention as
    :mod:`repro.core.validation`.

    Storage is amortised: the breakpoint and usage arrays are
    over-allocated (capacity doubling) and grown in place with tail
    shifts, so ``B`` reservations cost ``O(B)`` amortised appends plus the
    shifts instead of the two fresh ``np.insert`` copies per reservation
    the seed paid (``O(B^2)`` profile growth).  Reservation *starts* must
    be ``>= 0``: the profile's domain begins at 0, and a negative start
    used to read the trailing interval's usage through Python's negative
    indexing — now it is rejected explicitly.
    """

    __slots__ = ("m", "_times", "_usage", "_size")

    _INITIAL_CAPACITY = 16

    def __init__(self, m: int) -> None:
        if m < 1:
            raise ValueError(f"profile needs m >= 1 processors, got {m}")
        self.m = int(m)
        self._times = np.zeros(self._INITIAL_CAPACITY, dtype=np.float64)
        self._usage = np.zeros(self._INITIAL_CAPACITY, dtype=np.int64)
        self._size = 1  # live prefix length of both buffers

    # ------------------------------------------------------------------ #
    # Queries                                                            #
    # ------------------------------------------------------------------ #
    def usage_at(self, t: float) -> int:
        """Processors in use at instant ``t`` (half-open intervals)."""
        if t < 0:
            return 0
        i = int(np.searchsorted(self._times[: self._size], t, side="right")) - 1
        return int(self._usage[i])

    def earliest_fit(
        self, allotment: int, duration: float, *, not_before: float = 0.0
    ) -> float:
        """Earliest ``t0 >= not_before`` with ``allotment`` processors free
        over the whole window ``[t0, t0 + duration)``.

        The earliest feasible start is either ``not_before`` itself or a
        breakpoint where usage drops, so scanning breakpoint candidates is
        exact — and matches the seed's completion-time candidate scan.
        """
        if allotment > self.m:
            raise SchedulingError(
                f"allotment {allotment} exceeds machine size m={self.m}"
            )
        times, usage = self._times[: self._size], self._usage[: self._size]
        i0 = int(np.searchsorted(times, not_before, side="right")) - 1
        if i0 < 0:  # not_before precedes time 0
            i0 = 0
        ok = usage[i0:] + allotment <= self.m
        cand = np.nonzero(ok)[0]
        if cand.size == 0:  # pragma: no cover - trailing usage is always 0
            raise SchedulingError("free profile has no feasible interval")
        viol = np.nonzero(~ok)[0]
        t_cand = np.maximum(times[cand + i0], not_before)
        # First violating interval at/after each candidate; feasible iff it
        # opens no earlier than the window's end (half-open window).
        pos = np.searchsorted(viol, cand)
        feasible = pos == viol.size
        clipped = np.minimum(pos, max(viol.size - 1, 0))
        if viol.size:
            feasible |= times[viol[clipped] + i0] >= t_cand + duration
        first = int(np.argmax(feasible))
        if not feasible[first]:  # pragma: no cover - last interval is free
            raise SchedulingError("free profile has no feasible window")
        return float(t_cand[first])

    # ------------------------------------------------------------------ #
    # Updates                                                            #
    # ------------------------------------------------------------------ #
    def _insert_breakpoint(self, i: int, t: float) -> None:
        """Open a breakpoint at position ``i`` (amortised in-place shift)."""
        size = self._size
        if size == self._times.size:  # grow: capacity doubling
            self._times = np.concatenate([self._times, np.empty_like(self._times)])
            self._usage = np.concatenate([self._usage, np.empty_like(self._usage)])
        times, usage = self._times, self._usage
        times[i + 1 : size + 1] = times[i:size]
        usage[i + 1 : size + 1] = usage[i:size]
        times[i] = t
        usage[i] = usage[i - 1] if i > 0 else 0
        self._size = size + 1

    def reserve(self, start: float, duration: float, allotment: int) -> None:
        """Occupy ``allotment`` processors over ``[start, start + duration)``.

        Incremental insertion: two ``searchsorted`` + at most two breakpoint
        insertions into the over-allocated buffers, then a range add.  The
        caller is responsible for having checked capacity (normally via
        :meth:`earliest_fit`).  ``start`` must be ``>= 0`` — the profile's
        domain starts at 0 (a negative start has no interval to inherit
        usage from; the seed silently read the *trailing* interval there).
        """
        if duration <= 0:
            return
        if start < 0:
            raise SchedulingError(f"reservation start must be >= 0, got {start}")
        end = start + duration
        live = self._times[: self._size]
        i = int(np.searchsorted(live, start))
        if i == live.size or live[i] != start:
            # times[0] == 0.0 <= start, so i >= 1 and usage[i-1] is the
            # genuine preceding interval (never a wrapped trailing read).
            self._insert_breakpoint(i, start)
        live = self._times[: self._size]
        j = int(np.searchsorted(live, end))
        if j == live.size or live[j] != end:
            self._insert_breakpoint(j, end)
        self._usage[i:j] += allotment

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        size = self._size
        peak = int(self._usage[:size].max()) if size else 0
        return f"FreeProfile(m={self.m}, breakpoints={size}, peak={peak})"
