"""Event-based free-processor profile — the vectorized scheduling core.

Every placement engine in the library ultimately answers two questions
about a partially built schedule:

1. *Graham question* — at the current event time, which is the first task
   of the priority list that fits in the free processors?  (Asked by
   :func:`repro.algorithms.list_scheduling.list_schedule` and therefore by
   DEMT's list compaction, the List-Graham baselines, WSPT, Sequential and
   the dual-approximation shelf construction.)
2. *Profile question* — what is the earliest instant at which ``k``
   processors stay free for ``d`` time units?  (Asked by DEMT's
   pull-forward compaction and by the FCFS/EASY-backfilling extension.)

The seed implementation answered both by rescanning Python lists of
placements from scratch — ``O(n)`` per query, ``O(n^2)`` per schedule, and
``O(n^2)`` *per compaction pass* in DEMT's shuffle loop.  This module
replaces those rescans with two shared primitives:

* :func:`graham_starts` — the Graham list-scheduling kernel over flat numpy
  arrays of allotments and durations.  It exploits the classical burst
  property (between two completion events the free count only decreases,
  so one forward pass over the pending list is equivalent to the textbook
  restart-from-the-head loop) and scans with vectorised comparisons.  The
  start times it produces are *bit-for-bit identical* to the seed
  implementation, which the differential suite in ``tests/properties/``
  pins down.
* :class:`FreeProfile` — an incrementally maintained usage step function
  (sorted event-time array + per-interval usage counts) answering
  ``earliest_fit`` queries with vectorised violation lookups instead of a
  quadratic candidate × breakpoint rescan.

Both primitives deal in plain numbers, not tasks, so callers stay free to
map items to tasks, merged stacks, or rigid jobs however they like.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right

import numpy as np

from repro.exceptions import SchedulingError

__all__ = ["FreeProfile", "graham_starts"]


def graham_starts(
    allotments: np.ndarray,
    durations: np.ndarray,
    m: int,
    *,
    start_time: float = 0.0,
    cutoff: float | None = None,
) -> tuple[np.ndarray, list[int]] | None:
    """Graham list scheduling over parallel arrays; returns start times.

    Parameters
    ----------
    allotments, durations:
        Per-item processor counts and processing times, in priority order
        (earlier items are preferred whenever several fit).
    m:
        Machine size; every allotment must be ``<= m`` (the caller checks —
        the kernel would deadlock and raise otherwise).
    start_time:
        Time before which nothing may start.
    cutoff:
        Optional early-exit bound: as soon as the event clock passes
        ``cutoff`` the kernel returns ``None`` (the final makespan is then
        certainly ``> cutoff``).  Used by DEMT's shuffle loop to discard
        candidate orders that cannot beat the incumbent makespan.

    Returns
    -------
    ``(starts, order)`` where ``starts[i]`` is item ``i``'s start time and
    ``order`` lists item indices in chronological placement order (ties in
    priority order) — the insertion order the seed implementation produced,
    which callers preserve so downstream float summations stay identical.
    """
    n = len(allotments)
    if n == 0:
        return np.empty(0, dtype=np.float64), []
    # The event loop runs on plain Python scalars: element reads/writes on
    # numpy arrays cost ~100ns each, which dominates at this granularity.
    dlist = np.asarray(durations, dtype=np.float64).tolist()
    alist = np.asarray(allotments).tolist() if not isinstance(allotments, list) else allotments
    starts = [0.0] * n

    # Pending items are bucketed by allotment value, each bucket keeping
    # its items in priority order.  "First pending item with allotment
    # <= free" is then the minimum of the bucket heads over the distinct
    # values <= free — a bisect plus a C-level min over a short list,
    # instead of rescanning the pending list.
    buckets: dict[int, list[int]] = {}
    for idx, a in enumerate(alist):
        buckets.setdefault(a, []).append(idx)
    values = sorted(buckets)  # distinct allotment values, ascending
    slot_of = {a: s for s, a in enumerate(values)}
    bucket_lists = [buckets[a] for a in values]
    cursors = [0] * len(values)
    heads = [b[0] for b in bucket_lists]  # per-slot next pending index (n = empty)

    order: list[int] = []
    free = int(m)
    now = float(start_time)
    heap: list[tuple[float, int]] = []  # (end_time, allotment) min-heap
    placed = 0

    while placed < n:
        # Burst phase: the free count only shrinks between two completion
        # events, so repeatedly taking the head of the cheapest-index
        # fitting bucket reproduces the textbook restart-from-the-head scan.
        while free > 0:
            cut = bisect_right(values, free)
            if cut == 0:
                break
            idx = heads[0] if cut == 1 else min(heads[:cut])
            if idx == n:
                break
            starts[idx] = now
            order.append(idx)
            a = alist[idx]
            heapq.heappush(heap, (now + dlist[idx], a))
            free -= a
            placed += 1
            slot = slot_of[a]
            bucket = bucket_lists[slot]
            cursor = cursors[slot] + 1
            cursors[slot] = cursor
            heads[slot] = bucket[cursor] if cursor < len(bucket) else n
        if placed == n:
            break
        if not heap:  # pragma: no cover - defensive; free == m yet nothing fits
            raise SchedulingError("graham kernel deadlocked (item larger than machine?)")
        # Advance to the next completion (plus simultaneous ones).
        end, allot = heapq.heappop(heap)
        free += allot
        now = end
        while heap and heap[0][0] <= now:
            _, a = heapq.heappop(heap)
            free += a
        if cutoff is not None and now > cutoff:
            return None
    return np.asarray(starts, dtype=np.float64), order


class FreeProfile:
    """Incremental processor-usage step function over ``[0, +inf)``.

    The profile is stored as a sorted breakpoint array ``times`` (always
    starting at 0) and a usage array where ``usage[i]`` holds on
    ``[times[i], times[i+1])`` — the last interval extends to infinity.
    All reservations are finite, so the trailing usage is always 0 and an
    ``earliest_fit`` query always has an answer.

    Intervals are half-open: a reservation ending at ``t`` frees its
    processors for one starting at ``t`` — the same convention as
    :mod:`repro.core.validation`.
    """

    __slots__ = ("m", "_times", "_usage")

    def __init__(self, m: int) -> None:
        if m < 1:
            raise ValueError(f"profile needs m >= 1 processors, got {m}")
        self.m = int(m)
        self._times = np.zeros(1, dtype=np.float64)
        self._usage = np.zeros(1, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Queries                                                            #
    # ------------------------------------------------------------------ #
    def usage_at(self, t: float) -> int:
        """Processors in use at instant ``t`` (half-open intervals)."""
        if t < 0:
            return 0
        i = int(np.searchsorted(self._times, t, side="right")) - 1
        return int(self._usage[i])

    def earliest_fit(
        self, allotment: int, duration: float, *, not_before: float = 0.0
    ) -> float:
        """Earliest ``t0 >= not_before`` with ``allotment`` processors free
        over the whole window ``[t0, t0 + duration)``.

        The earliest feasible start is either ``not_before`` itself or a
        breakpoint where usage drops, so scanning breakpoint candidates is
        exact — and matches the seed's completion-time candidate scan.
        """
        if allotment > self.m:
            raise SchedulingError(
                f"allotment {allotment} exceeds machine size m={self.m}"
            )
        times, usage = self._times, self._usage
        i0 = int(np.searchsorted(times, not_before, side="right")) - 1
        if i0 < 0:  # not_before precedes time 0
            i0 = 0
        ok = usage[i0:] + allotment <= self.m
        cand = np.nonzero(ok)[0]
        if cand.size == 0:  # pragma: no cover - trailing usage is always 0
            raise SchedulingError("free profile has no feasible interval")
        viol = np.nonzero(~ok)[0]
        t_cand = np.maximum(times[cand + i0], not_before)
        # First violating interval at/after each candidate; feasible iff it
        # opens no earlier than the window's end (half-open window).
        pos = np.searchsorted(viol, cand)
        feasible = pos == viol.size
        clipped = np.minimum(pos, max(viol.size - 1, 0))
        if viol.size:
            feasible |= times[viol[clipped] + i0] >= t_cand + duration
        first = int(np.argmax(feasible))
        if not feasible[first]:  # pragma: no cover - last interval is free
            raise SchedulingError("free profile has no feasible window")
        return float(t_cand[first])

    # ------------------------------------------------------------------ #
    # Updates                                                            #
    # ------------------------------------------------------------------ #
    def reserve(self, start: float, duration: float, allotment: int) -> None:
        """Occupy ``allotment`` processors over ``[start, start + duration)``.

        Incremental insertion: two ``searchsorted`` + at most two breakpoint
        insertions, then a range add — ``O(breakpoints)`` instead of a full
        rebuild.  The caller is responsible for having checked capacity
        (normally via :meth:`earliest_fit`).
        """
        if duration <= 0:
            return
        end = start + duration
        times, usage = self._times, self._usage
        i = int(np.searchsorted(times, start))
        if i == times.size or times[i] != start:
            times = np.insert(times, i, start)
            usage = np.insert(usage, i, usage[i - 1])
        j = int(np.searchsorted(times, end))
        if j == times.size or times[j] != end:
            times = np.insert(times, j, end)
            usage = np.insert(usage, j, usage[j - 1])
        usage[i:j] += allotment
        self._times, self._usage = times, usage

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        peak = int(self._usage.max()) if self._usage.size else 0
        return f"FreeProfile(m={self.m}, breakpoints={self._times.size}, peak={peak})"
