"""Schedules: the output of every algorithm in the library.

A schedule is a set of decisions ``(task, start, allotment)``.  Because the
cluster is homogeneous and allocations need not be contiguous, feasibility
only requires that at every instant the total allotment of running tasks is
at most ``m`` (a *count-feasible* schedule).  Count-feasibility implies an
explicit processor assignment exists without migration — at any task's start
the running tasks hold at most ``m - k`` processors, so ``k`` free ones can
be picked greedily; :meth:`Schedule.assign_processors` materialises one such
assignment for the simulator and for Gantt rendering.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.core.task import MoldableTask
from repro.exceptions import InvalidScheduleError

__all__ = ["ScheduledTask", "Schedule"]


@dataclass(frozen=True)
class ScheduledTask:
    """One scheduling decision.

    Attributes
    ----------
    task:
        The moldable task being placed.
    start:
        Start time (``>= 0``; ``>= task.release`` in on-line settings).
    allotment:
        Number of processors ``k`` the task runs on for its whole duration.
    duration:
        Processing time ``p(allotment)`` — derived, precomputed once (the
        metric sweeps read it per placement, and ``p()`` is not free).
    end:
        Completion time ``C_i = start + p(allotment)`` — derived likewise.
    """

    task: MoldableTask
    start: float
    allotment: int
    duration: float = field(init=False)
    end: float = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "duration", self.task.p(self.allotment))
        object.__setattr__(self, "end", self.start + self.duration)

    @classmethod
    def _trusted(
        cls, task: MoldableTask, start: float, allotment: int, duration: float
    ) -> "ScheduledTask":
        """Construct from an already-derived duration, skipping ``p()``.

        The on-line batch kernel shifts whole sub-schedules whose durations
        are already known; re-deriving ``p(allotment)`` per placement was a
        measurable fraction of replay time.  ``duration`` must equal
        ``task.p(allotment)`` — callers shift validated placements, they do
        not invent new ones.
        """
        obj = object.__new__(cls)
        object.__setattr__(obj, "task", task)
        object.__setattr__(obj, "start", start)
        object.__setattr__(obj, "allotment", allotment)
        object.__setattr__(obj, "duration", duration)
        object.__setattr__(obj, "end", start + duration)
        return obj

    @property
    def work(self) -> float:
        """Gantt area ``allotment * duration``."""
        return self.allotment * self.duration

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ScheduledTask(id={self.task.task_id}, start={self.start:.3g}, "
            f"k={self.allotment}, end={self.end:.3g})"
        )


class Schedule:
    """An (immutable once built) collection of :class:`ScheduledTask`.

    The class is a thin, well-tested container: algorithms create one with
    :meth:`add` calls and then freeze it implicitly by handing it out.
    Criteria (`makespan`, weighted completion sum, ...) live in
    :mod:`repro.core.metrics`; validation lives in
    :mod:`repro.core.validation`.
    """

    def __init__(self, m: int, placements: Iterable[ScheduledTask] = ()) -> None:
        if m < 1:
            raise InvalidScheduleError(f"schedule needs m >= 1 processors, got {m}")
        self.m = int(m)
        self._placements: list[ScheduledTask] = list(placements)
        self._by_id: dict[int, ScheduledTask] = {}
        for p in self._placements:
            if p.task.task_id in self._by_id:
                raise InvalidScheduleError(f"task {p.task.task_id} scheduled twice")
            self._by_id[p.task.task_id] = p

    # ------------------------------------------------------------------ #
    # Construction                                                       #
    # ------------------------------------------------------------------ #
    def add(self, task: MoldableTask, start: float, allotment: int) -> ScheduledTask:
        """Place ``task`` at ``start`` on ``allotment`` processors.

        Raises
        ------
        InvalidScheduleError
            If the task is already placed, the allotment is out of range or
            forbidden (``p(k) = +inf``), or the start time is negative.
        """
        if task.task_id in self._by_id:
            raise InvalidScheduleError(f"task {task.task_id} scheduled twice")
        if allotment < 1 or allotment > self.m:
            raise InvalidScheduleError(
                f"task {task.task_id}: allotment {allotment} outside [1, {self.m}]"
            )
        if start < 0:
            raise InvalidScheduleError(
                f"task {task.task_id}: negative start time {start}"
            )
        placement = ScheduledTask(task, float(start), int(allotment))
        if not math.isfinite(placement.duration):
            raise InvalidScheduleError(
                f"task {task.task_id}: allotment {allotment} is forbidden (p=inf)"
            )
        self._placements.append(placement)
        self._by_id[task.task_id] = placement
        self.__dict__.pop("_events", None)  # invalidate caches
        return placement

    def extend(self, placements: Iterable[ScheduledTask]) -> None:
        """Add several placements (same checks as :meth:`add`)."""
        for p in placements:
            self.add(p.task, p.start, p.allotment)

    def _place_trusted(
        self, task: MoldableTask, start: float, allotment: int, duration: float
    ) -> ScheduledTask:
        """Append a placement whose validity the caller guarantees.

        Used by the on-line batch kernel to shift placements of an
        already-built batch schedule: the allotment/duration were checked
        when the batch schedule was constructed, the shift keeps starts
        non-negative, and task ids are unique across batches by
        construction.  Skipping the per-placement checks (and the ``p()``
        re-derivation) is what makes columnar replay cheap.
        """
        placement = ScheduledTask._trusted(task, start, allotment, duration)
        self._placements.append(placement)
        self._by_id[task.task_id] = placement
        self.__dict__.pop("_events", None)
        return placement

    # ------------------------------------------------------------------ #
    # Container protocol                                                 #
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._placements)

    def __iter__(self) -> Iterator[ScheduledTask]:
        return iter(self._placements)

    def __contains__(self, task_id: int) -> bool:
        return task_id in self._by_id

    def __getitem__(self, task_id: int) -> ScheduledTask:
        try:
            return self._by_id[task_id]
        except KeyError:
            raise KeyError(f"task {task_id} not scheduled") from None

    @property
    def placements(self) -> Sequence[ScheduledTask]:
        """All placements, in insertion order."""
        return tuple(self._placements)

    def task_ids(self) -> set[int]:
        """Ids of all scheduled tasks."""
        return set(self._by_id)

    # ------------------------------------------------------------------ #
    # Derived quantities                                                 #
    # ------------------------------------------------------------------ #
    def completion_times(self) -> dict[int, float]:
        """Mapping ``task_id -> C_i``."""
        return {tid: p.end for tid, p in self._by_id.items()}

    def makespan(self) -> float:
        """``Cmax = max_i C_i`` (0 for an empty schedule)."""
        if not self._placements:
            return 0.0
        return max(p.end for p in self._placements)

    def weighted_completion_sum(self) -> float:
        """``sum_i w_i * C_i`` — the paper's minsum criterion."""
        return float(sum(p.task.weight * p.end for p in self._placements))

    def max_usage(self) -> int:
        """Peak number of processors simultaneously in use."""
        profile = self.usage_profile()
        if profile.size == 0:
            return 0
        return int(profile.max())

    def usage_profile(self) -> np.ndarray:
        """Processor usage between consecutive events.

        Returns the usage over each interval of the event timeline (one
        entry per gap between consecutive distinct start/end times).
        """
        events = self._events
        return events[1]

    @cached_property
    def _events(self) -> tuple[np.ndarray, np.ndarray]:
        """(timeline, usage) — usage[i] holds between timeline[i] and [i+1]."""
        if not self._placements:
            return np.array([]), np.array([], dtype=np.int64)
        starts = np.array([p.start for p in self._placements])
        ends = np.array([p.end for p in self._placements])
        allot = np.array([p.allotment for p in self._placements], dtype=np.int64)
        timeline = np.unique(np.concatenate([starts, ends]))
        # +k at start, -k at end, cumulative over the timeline.
        delta = np.zeros(timeline.size, dtype=np.int64)
        si = np.searchsorted(timeline, starts)
        ei = np.searchsorted(timeline, ends)
        np.add.at(delta, si, allot)
        np.add.at(delta, ei, -allot)
        usage = np.cumsum(delta)
        return timeline, usage

    # ------------------------------------------------------------------ #
    # Explicit processor assignment                                      #
    # ------------------------------------------------------------------ #
    def assign_processors(self) -> dict[int, tuple[int, ...]]:
        """Assign concrete processor ids ``0..m-1`` to every placement.

        Greedy sweep in start-time order; succeeds for every count-feasible
        schedule (see module docstring).  Raises
        :class:`InvalidScheduleError` if the schedule over-subscribes the
        machine (so it doubles as a feasibility check).
        """
        free: list[int] = list(range(self.m))  # ids currently free (sorted-ish)
        # Event sweep: process ends before starts at equal times.
        releases: list[tuple[float, int]] = []  # (end_time, placement_idx) heap-like
        order = sorted(range(len(self._placements)), key=lambda i: (self._placements[i].start, i))
        assignment: dict[int, tuple[int, ...]] = {}
        import heapq

        heap: list[tuple[float, int]] = []
        held: dict[int, tuple[int, ...]] = {}
        for idx in order:
            p = self._placements[idx]
            while heap and heap[0][0] <= p.start + 1e-12:
                _, done = heapq.heappop(heap)
                free.extend(held.pop(done))
            if len(free) < p.allotment:
                raise InvalidScheduleError(
                    f"schedule over-subscribes the machine at t={p.start:.6g}: "
                    f"task {p.task.task_id} needs {p.allotment}, only {len(free)} free"
                )
            free.sort()
            procs = tuple(free[: p.allotment])
            del free[: p.allotment]
            held[idx] = procs
            heapq.heappush(heap, (p.end, idx))
            assignment[p.task.task_id] = procs
        return assignment

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Schedule(m={self.m}, tasks={len(self)}, Cmax={self.makespan():.4g})"
