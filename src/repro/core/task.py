"""Moldable parallel tasks.

A *moldable* task (Feitelson's classification, ref [8] of the paper) may be
run on any number of processors ``k``; the number is chosen by the scheduler
*before* execution and never changes afterwards.  The task is fully described
by its processing-time vector ``p(1), ..., p(m)`` and a weight ``w`` used by
the ``sum w_i C_i`` criterion.

Representation choices
----------------------
* ``times[k-1]`` stores ``p(k)`` (numpy ``float64``).  A value of ``+inf``
  means "this task cannot run on k processors", which lets the same class
  model *rigid* tasks (exactly one finite entry) and minimum-allocation
  constraints (a finite tail) without special cases downstream.
* Tasks are immutable value objects; derived quantities (minimal time,
  work vector) are cached lazily.

The paper's generators always produce *monotonic* tasks — ``p`` is
non-increasing and the work ``k * p(k)`` is non-decreasing in ``k`` — but no
algorithm here relies on monotony for *correctness*; it only matters for the
approximation guarantees of the dual-approximation substrate.
"""

from __future__ import annotations

from functools import cached_property
from typing import Sequence

import numpy as np

from repro.exceptions import InvalidTaskError

__all__ = ["MoldableTask", "rigid_task", "sequential_task"]


class MoldableTask:
    """An independent moldable job.

    Parameters
    ----------
    task_id:
        Identifier, unique within an :class:`~repro.core.instance.Instance`.
    times:
        Processing times ``p(k)`` for ``k = 1 .. len(times)`` processors.
        Entries must be positive; ``+inf`` marks forbidden allotments.
        At least one entry must be finite.
    weight:
        Priority weight ``w`` (strictly positive).  The paper draws it
        uniformly from ``[1, 10]``.
    release:
        Release date (0 in the off-line model of the paper; used by the
        on-line batch framework of :mod:`repro.simulator.online`).
    """

    __slots__ = ("task_id", "times", "weight", "release", "__dict__")

    def __init__(
        self,
        task_id: int,
        times: Sequence[float] | np.ndarray,
        weight: float = 1.0,
        release: float = 0.0,
    ) -> None:
        arr = np.asarray(times, dtype=np.float64)
        if arr.ndim != 1 or arr.size == 0:
            raise InvalidTaskError(
                f"task {task_id}: processing-time vector must be 1-D and non-empty, "
                f"got shape {arr.shape}"
            )
        if np.isnan(arr).any():
            raise InvalidTaskError(f"task {task_id}: processing times contain NaN")
        finite = np.isfinite(arr)
        if not finite.any():
            raise InvalidTaskError(
                f"task {task_id}: no finite processing time (task can never run)"
            )
        if (arr[finite] <= 0).any():
            raise InvalidTaskError(
                f"task {task_id}: processing times must be strictly positive"
            )
        if not np.isfinite(weight) or weight <= 0:
            raise InvalidTaskError(
                f"task {task_id}: weight must be a positive finite number, got {weight}"
            )
        if not np.isfinite(release) or release < 0:
            raise InvalidTaskError(
                f"task {task_id}: release date must be non-negative, got {release}"
            )
        arr.setflags(write=False)
        self.task_id = int(task_id)
        self.times = arr
        self.weight = float(weight)
        self.release = float(release)

    @classmethod
    def _trusted(
        cls,
        task_id: int,
        times: np.ndarray,
        weight: float,
        release: float,
    ) -> "MoldableTask":
        """Construct without validation from already-validated data.

        The columnar :meth:`Instance.from_arrays` plane validates whole
        arrays at once; materialising its task objects through the regular
        constructor would re-pay per-object validation for data that is
        admissible by construction.  ``times`` must be a read-only float64
        view (rows of the instance's times matrix are).
        """
        obj = object.__new__(cls)
        obj.task_id = task_id
        obj.times = times
        obj.weight = weight
        obj.release = release
        return obj

    # ------------------------------------------------------------------ #
    # Basic queries                                                      #
    # ------------------------------------------------------------------ #
    @property
    def max_procs(self) -> int:
        """Largest number of processors the vector describes."""
        return int(self.times.size)

    def p(self, k: int) -> float:
        """Processing time on ``k`` processors (``+inf`` if forbidden).

        ``k`` larger than the vector length is also ``+inf``: the paper's
        model never speeds a task up beyond its described allotments.
        """
        if k < 1:
            raise InvalidTaskError(f"task {self.task_id}: allotment must be >= 1, got {k}")
        if k > self.times.size:
            return float("inf")
        return float(self.times[k - 1])

    def work(self, k: int) -> float:
        """Area ``k * p(k)`` occupied on a Gantt chart by allotment ``k``."""
        return k * self.p(k)

    @cached_property
    def seq_time(self) -> float:
        """Sequential processing time ``p(1)`` (``+inf`` for rigid tasks)."""
        return float(self.times[0])

    @cached_property
    def min_time(self) -> float:
        """Fastest achievable processing time over all allotments."""
        return float(np.min(self.times))

    @cached_property
    def min_work(self) -> float:
        """Smallest achievable area over all allotments.

        For monotonic tasks this is the sequential work ``p(1)``; kept
        general so rigid tasks are handled uniformly.
        """
        ks = np.arange(1, self.times.size + 1, dtype=np.float64)
        return float(np.min(ks * self.times))

    @cached_property
    def work_vector(self) -> np.ndarray:
        """Vector of areas ``k * p(k)`` for ``k = 1 .. max_procs``."""
        ks = np.arange(1, self.times.size + 1, dtype=np.float64)
        out = ks * self.times
        out.setflags(write=False)
        return out

    def speedup(self, k: int) -> float:
        """``p(1) / p(k)`` — 0.0 when ``p(1)`` is infinite (rigid tasks)."""
        p1, pk = self.seq_time, self.p(k)
        if not np.isfinite(p1) or not np.isfinite(pk):
            return 0.0
        return p1 / pk

    def efficiency(self, k: int) -> float:
        """Parallel efficiency ``speedup(k) / k`` (1.0 = perfect scaling)."""
        return self.speedup(k) / k

    @cached_property
    def speedup_vector(self) -> np.ndarray:
        """``p(1) / p(k)`` for every ``k`` (0 where either is infinite)."""
        with np.errstate(invalid="ignore"):
            out = np.where(
                np.isfinite(self.times) & np.isfinite(self.seq_time),
                self.seq_time / self.times,
                0.0,
            )
        out.setflags(write=False)
        return out

    # ------------------------------------------------------------------ #
    # Structure predicates and transforms                                #
    # ------------------------------------------------------------------ #
    def is_monotonic(self, *, rtol: float = 1e-9) -> bool:
        """``True`` iff times are non-increasing *and* work is non-decreasing.

        This is the "monotonic task" assumption of the paper (§4.1: "this
        method generates monotonic tasks, which have decreasing execution
        times and increasing work with k").  ``+inf`` entries are ignored
        for the work check (a forbidden allotment has no work).
        """
        t = self.times
        tol = 1 + rtol
        finite = np.isfinite(t)
        # Times non-increasing (inf may only appear as a prefix for rigid-ish
        # tasks; any inf after a finite entry breaks monotony).
        first_finite = int(np.argmax(finite))
        if not finite[first_finite:].all():
            return False
        tf = t[first_finite:]
        if (tf[1:] > tf[:-1] * tol).any():
            return False
        wf = self.work_vector[first_finite:]
        return not (wf[1:] < wf[:-1] / tol).any()

    def monotonized(self) -> "MoldableTask":
        """Return a copy whose time vector is forced monotonic.

        Times are replaced by their running minimum (never slower on more
        processors), then each ``p(k)`` is raised to ``work(k-1)/k`` when
        needed so the work stays non-decreasing.  Generators use this to
        clean up sampled speedup curves; the transform is idempotent.
        """
        t = np.array(self.times, dtype=np.float64)
        finite = np.isfinite(t)
        first = int(np.argmax(finite))
        t[first:] = np.minimum.accumulate(t[first:])
        # Enforce non-decreasing work in a single forward pass.
        prev_work = (first + 1) * t[first]
        for k in range(first + 2, t.size + 1):
            w = k * t[k - 1]
            if w < prev_work:
                t[k - 1] = prev_work / k
                w = prev_work
            prev_work = w
        return MoldableTask(self.task_id, t, self.weight, self.release)

    def with_release(self, release: float) -> "MoldableTask":
        """Copy of this task with a different release date."""
        return MoldableTask(self.task_id, self.times, self.weight, release)

    def with_id(self, task_id: int) -> "MoldableTask":
        """Copy of this task with a different identifier."""
        return MoldableTask(task_id, self.times, self.weight, self.release)

    # ------------------------------------------------------------------ #
    # Dunder plumbing                                                    #
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MoldableTask(id={self.task_id}, m={self.max_procs}, "
            f"p1={self.seq_time:.3g}, w={self.weight:.3g})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MoldableTask):
            return NotImplemented
        return (
            self.task_id == other.task_id
            and self.weight == other.weight
            and self.release == other.release
            and np.array_equal(self.times, other.times)
        )

    def __hash__(self) -> int:
        return hash((self.task_id, self.weight, self.release, self.times.tobytes()))


def sequential_task(
    task_id: int, time: float, weight: float = 1.0, m: int = 1, release: float = 0.0
) -> MoldableTask:
    """A task with no parallelism at all: ``p(k) = time`` for every ``k``.

    With constant times the work grows linearly with ``k``, so any sensible
    algorithm allots one processor.  ``m`` controls the vector length.
    """
    return MoldableTask(task_id, np.full(m, float(time)), weight, release)


def rigid_task(
    task_id: int,
    procs: int,
    time: float,
    weight: float = 1.0,
    m: int | None = None,
    release: float = 0.0,
) -> MoldableTask:
    """A rigid job: runs on exactly ``procs`` processors, forbidden elsewhere.

    Encoded as a moldable task whose vector is ``+inf`` everywhere except
    index ``procs``.  This is how the mixed rigid/moldable extension of the
    paper's §5 is modelled.
    """
    size = procs if m is None else m
    if procs < 1 or procs > size:
        raise InvalidTaskError(
            f"task {task_id}: rigid allotment {procs} outside [1, {size}]"
        )
    times = np.full(size, np.inf)
    times[procs - 1] = float(time)
    return MoldableTask(task_id, times, weight, release)
