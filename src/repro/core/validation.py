"""Schedule feasibility validation.

Every algorithm's test suite runs its output through
:func:`validate_schedule`.  The checks encode the problem definition of §2:

1. every task of the instance is scheduled exactly once;
2. allotments are integers in ``[1, m]`` with a finite processing time;
3. start times are non-negative and respect release dates;
4. at every instant the total allotment of running tasks is ``<= m``
   (count-feasibility, which for identical processors without contiguity
   implies an explicit processor assignment exists — see
   :mod:`repro.core.schedule`).

Validation is exact up to a small absolute tolerance on the time axis to
absorb floating-point noise from compaction arithmetic.
"""

from __future__ import annotations

import numpy as np

from repro.core.instance import Instance
from repro.core.schedule import Schedule
from repro.exceptions import InvalidScheduleError

__all__ = ["validate_schedule", "is_feasible", "TIME_EPS"]

#: Absolute slack on time comparisons (floating-point dust, not semantics).
#: This is *the* time epsilon of the library: the validator, the event log,
#: the discrete-event engine and the on-line policy kernel all compare
#: timestamps against this one constant, so "simultaneous" means the same
#: thing in every layer (two events within TIME_EPS of each other are one
#: instant).  Import it from :mod:`repro.core` rather than redefining a
#: local tolerance.
TIME_EPS = 1e-9


def validate_schedule(
    schedule: Schedule,
    instance: Instance,
    *,
    require_all_tasks: bool = True,
    check_releases: bool = True,
) -> None:
    """Raise :class:`InvalidScheduleError` on the first violated constraint.

    Parameters
    ----------
    schedule, instance:
        The schedule under test and the instance it claims to solve.
    require_all_tasks:
        When ``True`` (default) the schedule must place *exactly* the
        instance's tasks.  Batch algorithms validating a partial schedule
        can pass ``False`` (placed tasks must still belong to the instance).
    check_releases:
        Enforce ``start >= release`` (disable for off-line algorithms that
        legitimately ignore release dates).
    """
    if schedule.m != instance.m:
        raise InvalidScheduleError(
            f"schedule built for m={schedule.m} but instance has m={instance.m}"
        )

    instance_ids = {t.task_id for t in instance}
    scheduled_ids = schedule.task_ids()
    foreign = scheduled_ids - instance_ids
    if foreign:
        raise InvalidScheduleError(f"schedule places unknown task ids {sorted(foreign)}")
    if require_all_tasks:
        missing = instance_ids - scheduled_ids
        if missing:
            raise InvalidScheduleError(f"tasks never scheduled: {sorted(missing)}")

    for p in schedule:
        if p.allotment < 1 or p.allotment > instance.m:
            raise InvalidScheduleError(
                f"task {p.task.task_id}: allotment {p.allotment} outside [1, {instance.m}]"
            )
        if not np.isfinite(p.duration):
            raise InvalidScheduleError(
                f"task {p.task.task_id}: infinite duration for allotment {p.allotment}"
            )
        if p.start < -TIME_EPS:
            raise InvalidScheduleError(
                f"task {p.task.task_id}: negative start {p.start}"
            )
        if check_releases and p.start < p.task.release - TIME_EPS:
            raise InvalidScheduleError(
                f"task {p.task.task_id}: starts at {p.start} before release "
                f"{p.task.release}"
            )

    _check_capacity(schedule)


def _check_capacity(schedule: Schedule) -> None:
    """Sweep the event timeline and verify usage never exceeds ``m``."""
    placements = schedule.placements
    if not placements:
        return
    starts = np.array([p.start for p in placements])
    ends = np.array([p.end for p in placements])
    allot = np.array([p.allotment for p in placements], dtype=np.int64)

    # Merge events; at equal times process ends before starts (half-open
    # intervals [start, end) — a task ending at t frees its processors for a
    # task starting at t).
    events = np.concatenate(
        [
            np.stack([starts, np.ones_like(starts), allot.astype(np.float64)], axis=1),
            np.stack([ends, np.zeros_like(ends), -allot.astype(np.float64)], axis=1),
        ]
    )
    # Collapse time values within tolerance so that start==end comparisons
    # are robust to floating point noise introduced by compaction.
    order = np.lexsort((events[:, 1], events[:, 0]))
    events = events[order]
    usage = 0.0
    i = 0
    n_events = events.shape[0]
    while i < n_events:
        t = events[i, 0]
        # Apply all events within TIME_EPS of t, ends first (already sorted
        # by the (time, kind) lexsort since kind 0 < kind 1).
        j = i
        while j < n_events and events[j, 0] <= t + TIME_EPS:
            usage += events[j, 2]
            j += 1
        if usage > schedule.m + 1e-6:
            raise InvalidScheduleError(
                f"machine over-subscribed at t={t:.6g}: usage {usage:.6g} > m={schedule.m}"
            )
        i = j


def is_feasible(schedule: Schedule, instance: Instance, **kwargs: bool) -> bool:
    """Boolean wrapper around :func:`validate_schedule`."""
    try:
        validate_schedule(schedule, instance, **kwargs)
    except InvalidScheduleError:
        return False
    return True
