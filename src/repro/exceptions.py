"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class.  The hierarchy distinguishes *modelling* errors
(malformed tasks or instances), *scheduling* errors (an algorithm produced or
was asked to produce something impossible) and *infeasibility* signals used by
the dual-approximation machinery.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ModelError",
    "InvalidTaskError",
    "InvalidInstanceError",
    "SchedulingError",
    "InvalidScheduleError",
    "InfeasibleError",
    "SolverError",
]


class ReproError(Exception):
    """Base class of every exception raised by the :mod:`repro` library."""


class ModelError(ReproError):
    """A task, instance or workload specification is malformed."""


class InvalidTaskError(ModelError):
    """A moldable task violates a structural requirement.

    Examples: empty processing-time vector, non-positive processing time,
    non-positive weight.
    """


class InvalidInstanceError(ModelError):
    """An instance is malformed (e.g. tasks longer than the machine allows)."""


class SchedulingError(ReproError):
    """An algorithm could not produce a schedule for a valid instance."""


class InvalidScheduleError(SchedulingError):
    """A schedule violates feasibility (capacity, allotment or time bounds).

    Raised by :func:`repro.core.validation.validate_schedule`; the message
    carries the first violated constraint for debuggability.
    """


class InfeasibleError(SchedulingError):
    """A target (e.g. a dual-approximation guess ``lambda``) is infeasible."""


class SolverError(ReproError):
    """An external numerical solver (LP/MILP) failed to converge."""
