"""Experiment harness regenerating every figure of the paper's §4.

* :mod:`repro.experiments.config` — campaign parameters and the
  ``REPRO_SCALE`` environment knob (``paper`` / ``quick`` / ``smoke``);
* :mod:`repro.experiments.engine` — execution backends (serial /
  process-pool) and the per-cell result cache;
* :mod:`repro.experiments.runner` — runs one (workload, n) point or a full
  campaign: every algorithm against both lower bounds, 40 seeded runs,
  dispatched as independent cells through an engine backend;
* :mod:`repro.experiments.aggregate` — ratio-of-sums aggregation (Jain,
  ref [15]) plus min/max envelopes, as plotted in Figures 3-6, and the
  attainment-surface aggregation of per-instance Pareto fronts;
* :mod:`repro.experiments.figures` — one driver per figure (3-7) plus the
  ablation studies;
* :mod:`repro.experiments.reporting` — ASCII tables and charts of the
  series the paper plots;
* :mod:`repro.experiments.cli` — the ``repro-experiments`` entry point.
"""

from repro.experiments.config import ExperimentConfig, resolve_scale, SCALES
from repro.experiments.engine import (
    CellCache,
    PersistentCellCache,
    SerialBackend,
    ProcessBackend,
    resolve_backend,
    resolve_cache,
)
from repro.experiments.aggregate import attainment_surface
from repro.experiments.runner import (
    AlgorithmPointStats,
    PointResult,
    CampaignResult,
    run_cells,
    run_pareto_cells,
    run_point,
    run_campaign,
)
from repro.experiments.figures import (
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    FIGURES,
)
from repro.experiments.replay import (
    ReplayResult,
    replay_trace,
    export_replay_swf,
    REPLAY_MODES,
    REPLAY_ENGINES,
)
from repro.experiments.reporting import (
    format_campaign_table,
    format_front_table,
    format_indicator_table,
    format_replay_table,
    format_timing_table,
)

__all__ = [
    "ExperimentConfig",
    "resolve_scale",
    "SCALES",
    "CellCache",
    "PersistentCellCache",
    "SerialBackend",
    "ProcessBackend",
    "resolve_backend",
    "resolve_cache",
    "AlgorithmPointStats",
    "PointResult",
    "CampaignResult",
    "run_cells",
    "run_pareto_cells",
    "run_point",
    "run_campaign",
    "attainment_surface",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "FIGURES",
    "ReplayResult",
    "replay_trace",
    "export_replay_swf",
    "REPLAY_MODES",
    "REPLAY_ENGINES",
    "format_campaign_table",
    "format_front_table",
    "format_indicator_table",
    "format_replay_table",
    "format_timing_table",
]
