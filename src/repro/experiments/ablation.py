"""Ablation studies of DEMT's design choices (DESIGN.md §3, A1-A4).

The paper motivates each ingredient qualitatively; these drivers quantify
them on the paper's workloads:

* **A1 — batch selection**: exact knapsack vs a greedy by decreasing
  weight density (what §3.2's "smart selection" buys);
* **A2 — small-task merging**: merge on vs off;
* **A3 — compaction ladder**: naive shelves vs pull-forward vs full list
  compaction (the paper's three refinement steps);
* **A4 — shuffle rounds**: 0 / few / many batch-order shuffles.

Each driver returns ``{variant_name: (mean minsum ratio, mean cmax
ratio)}`` over a handful of seeded instances, where ratios are against the
standard lower bounds — directly printable by the benchmark harness.

Variants are described as picklable scheduler *factories* (classes or
:func:`functools.partial` of classes), so the per-run evaluation can be
fanned out over the :mod:`~repro.experiments.engine` process backend:
``ablate_shuffle(backend="process")`` runs each seeded instance's variant
sweep in its own worker with identical numbers to the serial loop.
"""

from __future__ import annotations

from functools import partial
from typing import Callable

from repro.algorithms.demt import DemtScheduler
from repro.algorithms.dual_approx import dual_approximation
from repro.bounds.minsum_lp import minsum_lower_bound
from repro.experiments.aggregate import ratio_of_sums
from repro.experiments.engine import resolve_backend
from repro.utils.rng import derive_rng
from repro.workloads.generator import generate_workload

__all__ = [
    "ablate_selection",
    "ablate_merge",
    "ablate_compaction",
    "ablate_shuffle",
    "ABLATIONS",
]


def _ablation_cell(args: tuple) -> tuple[float, float, dict[str, tuple[float, float]]]:
    """Worker: one seeded instance, all variants, plus its lower bounds.

    Returns ``(cmax_lb, minsum_lb, {variant: (minsum, cmax)})``.
    """
    kind, n, m, seed, r, variant_items = args
    inst = generate_workload(kind, n=n, m=m, seed=derive_rng(seed, kind, n, r))
    dual = dual_approximation(inst)
    cmax_lb = dual.lower_bound
    minsum_lb = minsum_lower_bound(inst, dual.lam).value
    measured: dict[str, tuple[float, float]] = {}
    for name, factory in variant_items:
        sched = factory().schedule(inst)
        measured[name] = (sched.weighted_completion_sum(), sched.makespan())
    return cmax_lb, minsum_lb, measured


def _evaluate_variants(
    variants: dict[str, Callable[[], object]],
    *,
    kind: str = "cirne",
    n: int = 100,
    m: int = 64,
    runs: int = 5,
    seed: int = 7,
    backend: object = None,
    jobs: int | None = None,
) -> dict[str, tuple[float, float]]:
    """Run each variant over shared instances; aggregate both ratios."""
    backend_obj = resolve_backend(backend, jobs)
    variant_items = tuple(variants.items())
    cells = [(kind, n, m, seed, r, variant_items) for r in range(runs)]
    outputs = backend_obj.map(_ablation_cell, cells)

    minsums: dict[str, list[float]] = {v: [] for v in variants}
    cmaxes: dict[str, list[float]] = {v: [] for v in variants}
    minsum_lbs: list[float] = []
    cmax_lbs: list[float] = []
    for cmax_lb, minsum_lb, measured in outputs:
        cmax_lbs.append(cmax_lb)
        minsum_lbs.append(minsum_lb)
        for name, (minsum, cmax) in measured.items():
            minsums[name].append(minsum)
            cmaxes[name].append(cmax)
    return {
        name: (
            ratio_of_sums(minsums[name], minsum_lbs),
            ratio_of_sums(cmaxes[name], cmax_lbs),
        )
        for name in variants
    }


class _GreedySelectionDemt(DemtScheduler):
    """DEMT with the knapsack swapped for first-fit by weight density."""

    def _select_one_batch(self, tasks, length, m):  # type: ignore[override]
        from repro.algorithms.list_scheduling import ListItem
        from repro.algorithms.merge import merge_small_tasks
        from repro.core.allotment import minimal_allotment

        admissible = [t for t in tasks if minimal_allotment(t, length, m=m) is not None]
        if not admissible:
            return []
        stacks, rest = merge_small_tasks(admissible, length)
        candidates: list[ListItem] = [
            ListItem(s.tasks[0], 1, stack=s.tasks) for s in stacks
        ] + [ListItem(t, minimal_allotment(t, length, m=m)) for t in rest]
        # Greedy: highest weight per processor first, first-fit into m.
        def density(it: ListItem) -> float:
            w = sum(t.weight for t in it.stack) if it.stack else it.task.weight
            return w / it.allotment

        candidates.sort(key=lambda it: (-density(it), it.task.task_id))
        chosen, used = [], 0
        for it in candidates:
            if used + it.allotment <= m:
                chosen.append(it)
                used += it.allotment
        chosen.sort(
            key=lambda it: (
                -(sum(t.weight for t in it.stack) if it.stack else it.task.weight)
                / it.duration,
                it.task.task_id,
            )
        )
        return chosen


def ablate_selection(**kw: object) -> dict[str, tuple[float, float]]:
    """A1: exact knapsack vs greedy weight-density batch filling."""
    return _evaluate_variants(
        {"knapsack": DemtScheduler, "greedy": _GreedySelectionDemt},
        **kw,
    )


def ablate_merge(**kw: object) -> dict[str, tuple[float, float]]:
    """A2: small-sequential-task merging on vs off.

    "Off" is emulated with a tiny threshold factor: no task ever counts as
    small, so nothing merges.
    """
    return _evaluate_variants(
        {
            "merge_on": DemtScheduler,
            "merge_off": partial(DemtScheduler, small_threshold_factor=1e-12),
        },
        **kw,
    )


def ablate_compaction(**kw: object) -> dict[str, tuple[float, float]]:
    """A3: the paper's compaction ladder (shelf -> pull-forward -> list)."""
    return _evaluate_variants(
        {
            mode: partial(DemtScheduler, compaction=mode, shuffle_rounds=0)
            for mode in ("shelf", "pull_forward", "list")
        },
        **kw,
    )


def ablate_shuffle(**kw: object) -> dict[str, tuple[float, float]]:
    """A4: number of batch-order shuffle rounds."""
    return _evaluate_variants(
        {
            f"shuffle_{rounds}": partial(DemtScheduler, shuffle_rounds=rounds)
            for rounds in (0, 5, 20)
        },
        **kw,
    )


#: Name -> driver registry for the ablation bench.
ABLATIONS = {
    "selection": ablate_selection,
    "merge": ablate_merge,
    "compaction": ablate_compaction,
    "shuffle": ablate_shuffle,
}
