"""Ablation studies of DEMT's design choices (DESIGN.md §3, A1-A4).

The paper motivates each ingredient qualitatively; these drivers quantify
them on the paper's workloads:

* **A1 — batch selection**: exact knapsack vs a greedy by decreasing
  weight density (what §3.2's "smart selection" buys);
* **A2 — small-task merging**: merge on vs off;
* **A3 — compaction ladder**: naive shelves vs pull-forward vs full list
  compaction (the paper's three refinement steps);
* **A4 — shuffle rounds**: 0 / few / many batch-order shuffles.

Each driver returns ``{variant_name: (mean minsum ratio, mean cmax
ratio)}`` over a handful of seeded instances, where ratios are against the
standard lower bounds — directly printable by the benchmark harness.

Variants are described as picklable scheduler *factories* (classes or
:func:`functools.partial` of classes), so the per-run evaluation can be
fanned out over the :mod:`~repro.experiments.engine` process backend:
``ablate_shuffle(backend="process")`` runs each seeded instance's variant
sweep in its own worker with identical numbers to the serial loop.
"""

from __future__ import annotations

from functools import partial
from typing import Callable

from repro.algorithms.demt import DemtScheduler
from repro.algorithms.dual_approx import dual_approximation
from repro.bounds.minsum_lp import minsum_lower_bound
from repro.experiments.aggregate import ratio_of_sums
from repro.experiments.engine import (
    CellBounds,
    CellKey,
    CellRecord,
    resolve_backend,
    resolve_cache,
)
from repro.utils.rng import derive_rng
from repro.workloads.generator import generate_workload

__all__ = [
    "ablate_selection",
    "ablate_merge",
    "ablate_compaction",
    "ablate_shuffle",
    "ABLATIONS",
]


def _ablation_cell(args: tuple) -> tuple[float | None, float | None, dict[str, tuple[float, float]]]:
    """Worker: one seeded instance, the *missing* variants, plus bounds.

    Returns ``(cmax_lb, minsum_lb, {variant: (minsum, cmax)})``; the
    bounds are ``None`` when the caller already had them cached.
    """
    kind, n, m, seed, r, variant_items, need_bounds = args
    inst = generate_workload(kind, n=n, m=m, seed=derive_rng(seed, kind, n, r))
    cmax_lb = minsum_lb = None
    if need_bounds:
        dual = dual_approximation(inst)
        cmax_lb = dual.lower_bound
        minsum_lb = minsum_lower_bound(inst, dual.lam).value
    measured: dict[str, tuple[float, float]] = {}
    for name, factory in variant_items:
        sched = factory().schedule(inst)
        measured[name] = (sched.weighted_completion_sum(), sched.makespan())
    return cmax_lb, minsum_lb, measured


def _evaluate_variants(
    variants: dict[str, Callable[[], object]],
    *,
    kind: str = "cirne",
    n: int = 100,
    m: int = 64,
    runs: int = 5,
    seed: int = 7,
    backend: object = None,
    jobs: int | None = None,
    cache: object = None,
) -> dict[str, tuple[float, float]]:
    """Run each variant over shared instances; aggregate both ratios.

    With a ``cache`` (a :class:`~repro.experiments.engine.CellCache` or a
    directory path), measured variants are memoised under the cell key
    ``(seed, kind, n, m, r, "ablate:<variant>")`` and the per-instance
    bounds under the standard bounds key — the latter is *shared* with the
    campaign runner, since both derive the instance from
    ``derive_rng(seed, kind, n, r)`` and compute the same two bounds.
    """
    backend_obj = resolve_backend(backend, jobs)
    cache = resolve_cache(cache)
    variant_items = tuple(variants.items())

    have: dict[tuple[int, str], tuple[float, float]] = {}
    bounds_by_r: dict[int, tuple[float, float]] = {}
    work: list[tuple] = []
    work_rs: list[int] = []
    for r in range(runs):
        missing = list(variant_items)
        if cache is not None:
            missing = []
            for name, factory in variant_items:
                rec = cache.get_record(CellKey(seed, kind, n, m, r, f"ablate:{name}"))
                if rec is None:
                    missing.append((name, factory))
                else:
                    have[(r, name)] = (rec.minsum, rec.cmax)
            b = cache.get_bounds((seed, kind, n, m, r))
            if b is not None:
                bounds_by_r[r] = (b.cmax_lb, b.minsum_lb)
        if missing or r not in bounds_by_r:
            work.append((kind, n, m, seed, r, tuple(missing), r not in bounds_by_r))
            work_rs.append(r)

    outputs = backend_obj.map(_ablation_cell, work)
    for r, (cmax_lb, minsum_lb, measured) in zip(work_rs, outputs):
        if cmax_lb is not None:
            bounds_by_r[r] = (cmax_lb, minsum_lb)
            if cache is not None:
                cache.put_bounds(
                    (seed, kind, n, m, r),
                    CellBounds(cmax_lb=cmax_lb, minsum_lb=minsum_lb),
                )
        for name, (minsum, cmax) in measured.items():
            have[(r, name)] = (minsum, cmax)
            if cache is not None:
                cache.put_record(
                    CellKey(seed, kind, n, m, r, f"ablate:{name}"),
                    CellRecord(cmax=cmax, minsum=minsum, seconds=0.0),
                )

    cmax_lbs = [bounds_by_r[r][0] for r in range(runs)]
    minsum_lbs = [bounds_by_r[r][1] for r in range(runs)]
    return {
        name: (
            ratio_of_sums([have[(r, name)][0] for r in range(runs)], minsum_lbs),
            ratio_of_sums([have[(r, name)][1] for r in range(runs)], cmax_lbs),
        )
        for name in variants
    }


class _GreedySelectionDemt(DemtScheduler):
    """DEMT with the knapsack swapped for first-fit by weight density."""

    def _select_one_batch(self, tasks, length, m):  # type: ignore[override]
        from repro.algorithms.list_scheduling import ListItem
        from repro.algorithms.merge import merge_small_tasks
        from repro.core.allotment import minimal_allotment

        admissible = [t for t in tasks if minimal_allotment(t, length, m=m) is not None]
        if not admissible:
            return []
        stacks, rest = merge_small_tasks(admissible, length)
        candidates: list[ListItem] = [
            ListItem(s.tasks[0], 1, stack=s.tasks) for s in stacks
        ] + [ListItem(t, minimal_allotment(t, length, m=m)) for t in rest]
        # Greedy: highest weight per processor first, first-fit into m.
        def density(it: ListItem) -> float:
            w = sum(t.weight for t in it.stack) if it.stack else it.task.weight
            return w / it.allotment

        candidates.sort(key=lambda it: (-density(it), it.task.task_id))
        chosen, used = [], 0
        for it in candidates:
            if used + it.allotment <= m:
                chosen.append(it)
                used += it.allotment
        chosen.sort(
            key=lambda it: (
                -(sum(t.weight for t in it.stack) if it.stack else it.task.weight)
                / it.duration,
                it.task.task_id,
            )
        )
        return chosen


def ablate_selection(**kw: object) -> dict[str, tuple[float, float]]:
    """A1: exact knapsack vs greedy weight-density batch filling."""
    return _evaluate_variants(
        {"knapsack": DemtScheduler, "greedy": _GreedySelectionDemt},
        **kw,
    )


def ablate_merge(**kw: object) -> dict[str, tuple[float, float]]:
    """A2: small-sequential-task merging on vs off.

    "Off" is emulated with a tiny threshold factor: no task ever counts as
    small, so nothing merges.
    """
    return _evaluate_variants(
        {
            "merge_on": DemtScheduler,
            "merge_off": partial(DemtScheduler, small_threshold_factor=1e-12),
        },
        **kw,
    )


def ablate_compaction(**kw: object) -> dict[str, tuple[float, float]]:
    """A3: the paper's compaction ladder (shelf -> pull-forward -> list)."""
    return _evaluate_variants(
        {
            mode: partial(DemtScheduler, compaction=mode, shuffle_rounds=0)
            for mode in ("shelf", "pull_forward", "list")
        },
        **kw,
    )


def ablate_shuffle(**kw: object) -> dict[str, tuple[float, float]]:
    """A4: number of batch-order shuffle rounds."""
    return _evaluate_variants(
        {
            f"shuffle_{rounds}": partial(DemtScheduler, shuffle_rounds=rounds)
            for rounds in (0, 5, 20)
        },
        **kw,
    )


#: Name -> driver registry for the ablation bench.
ABLATIONS = {
    "selection": ablate_selection,
    "merge": ablate_merge,
    "compaction": ablate_compaction,
    "shuffle": ablate_shuffle,
}
