"""Ratio aggregation following Jain's methodology (paper ref [15]).

§4.2: "The average of the competitive ratio is computed by dividing the sum
of the execution times over the sum of the lower bounds for every point."
That is the *ratio of sums*, not the mean of per-run ratios — it weights
runs by their magnitude and is robust to tiny-denominator runs.  The
figures additionally plot the min and max per-run ratios, reproduced here
as an envelope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["RatioStats", "ratio_of_sums", "aggregate_ratios"]


@dataclass(frozen=True)
class RatioStats:
    """Aggregated performance ratios for one (algorithm, point) pair."""

    average: float  # ratio of sums (Jain)
    minimum: float  # min per-run ratio
    maximum: float  # max per-run ratio

    def __post_init__(self) -> None:
        if not (self.minimum <= self.maximum + 1e-12):
            raise ValueError(
                f"min ratio {self.minimum} exceeds max ratio {self.maximum}"
            )


def ratio_of_sums(values: Sequence[float], bounds: Sequence[float]) -> float:
    """``sum(values) / sum(bounds)`` with validation.

    >>> ratio_of_sums([2.0, 4.0], [1.0, 2.0])
    2.0
    """
    values = np.asarray(values, dtype=np.float64)
    bounds = np.asarray(bounds, dtype=np.float64)
    if values.shape != bounds.shape:
        raise ValueError(f"shape mismatch: {values.shape} vs {bounds.shape}")
    if values.size == 0:
        raise ValueError("cannot aggregate zero runs")
    denom = float(bounds.sum())
    if denom <= 0:
        raise ValueError(f"non-positive lower-bound sum {denom}")
    return float(values.sum()) / denom


def aggregate_ratios(values: Sequence[float], bounds: Sequence[float]) -> RatioStats:
    """Full Figure-3-style statistics: ratio-of-sums average + min/max."""
    values = np.asarray(values, dtype=np.float64)
    bounds = np.asarray(bounds, dtype=np.float64)
    avg = ratio_of_sums(values, bounds)
    if (bounds <= 0).any():
        raise ValueError("per-run lower bounds must be positive")
    per_run = values / bounds
    return RatioStats(
        average=avg,
        minimum=float(per_run.min()),
        maximum=float(per_run.max()),
    )
