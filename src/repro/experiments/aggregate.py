"""Ratio aggregation following Jain's methodology (paper ref [15]).

§4.2: "The average of the competitive ratio is computed by dividing the sum
of the execution times over the sum of the lower bounds for every point."
That is the *ratio of sums*, not the mean of per-run ratios — it weights
runs by their magnitude and is robust to tiny-denominator runs.  The
figures additionally plot the min and max per-run ratios, reproduced here
as an envelope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["RatioStats", "ratio_of_sums", "aggregate_ratios", "attainment_surface"]


@dataclass(frozen=True)
class RatioStats:
    """Aggregated performance ratios for one (algorithm, point) pair."""

    average: float  # ratio of sums (Jain)
    minimum: float  # min per-run ratio
    maximum: float  # max per-run ratio

    def __post_init__(self) -> None:
        if not (self.minimum <= self.maximum + 1e-12):
            raise ValueError(
                f"min ratio {self.minimum} exceeds max ratio {self.maximum}"
            )


def ratio_of_sums(values: Sequence[float], bounds: Sequence[float]) -> float:
    """``sum(values) / sum(bounds)`` with validation.

    >>> ratio_of_sums([2.0, 4.0], [1.0, 2.0])
    2.0
    """
    values = np.asarray(values, dtype=np.float64)
    bounds = np.asarray(bounds, dtype=np.float64)
    if values.shape != bounds.shape:
        raise ValueError(f"shape mismatch: {values.shape} vs {bounds.shape}")
    if values.size == 0:
        raise ValueError("cannot aggregate zero runs")
    denom = float(bounds.sum())
    if denom <= 0:
        raise ValueError(f"non-positive lower-bound sum {denom}")
    return float(values.sum()) / denom


def aggregate_ratios(values: Sequence[float], bounds: Sequence[float]) -> RatioStats:
    """Full Figure-3-style statistics: ratio-of-sums average + min/max."""
    values = np.asarray(values, dtype=np.float64)
    bounds = np.asarray(bounds, dtype=np.float64)
    avg = ratio_of_sums(values, bounds)
    if (bounds <= 0).any():
        raise ValueError("per-run lower bounds must be positive")
    per_run = values / bounds
    return RatioStats(
        average=avg,
        minimum=float(per_run.min()),
        maximum=float(per_run.max()),
    )


def attainment_surface(
    fronts: Sequence, level: float | str = "mean"
) -> tuple[np.ndarray, np.ndarray]:
    """Aggregate per-instance Pareto fronts into one attainment surface.

    Each front is an ``(k, 2)`` staircase (minimised objectives).  Every
    front defines a step function ``y_f(x) = min{y : (x', y') in f,
    x' <= x}``; the attainment surface aggregates those step functions
    point-wise over the fronts — the *mean attainment surface* for
    ``level="mean"`` (the Pareto analogue of averaging one figure curve
    over its 40 runs), or the empirical ``level``-quantile for a float in
    ``(0, 1]`` (``0.5`` is the median attainment surface of Fonseca &
    Fleming's attainment-function methodology).

    Returns ``(xs, ys)``: the union of the fronts' x-coordinates
    restricted to where *every* front is defined (to the right of the
    largest per-front minimum x), and the aggregated y at each.  Empty
    input — or an empty common region — yields two empty arrays.
    """
    if isinstance(level, str):
        if level != "mean":
            raise ValueError(f"level must be 'mean' or a quantile in (0, 1], got {level!r}")
    elif not 0 < level <= 1:
        raise ValueError(f"quantile level must lie in (0, 1], got {level}")
    stacked = [np.asarray(f, dtype=np.float64).reshape(-1, 2) for f in fronts]
    stacked = [f for f in stacked if f.shape[0]]
    if not stacked:
        return np.empty(0), np.empty(0)

    xs = np.unique(np.concatenate([f[:, 0] for f in stacked]))
    xs = xs[xs >= max(float(f[:, 0].min()) for f in stacked)]
    if xs.size == 0:  # pragma: no cover - only via inconsistent inputs
        return np.empty(0), np.empty(0)

    ys = np.empty((len(stacked), xs.size), dtype=np.float64)
    for i, f in enumerate(stacked):
        order = np.argsort(f[:, 0], kind="stable")
        fx = f[order, 0]
        fy = np.minimum.accumulate(f[order, 1])
        idx = np.searchsorted(fx, xs, side="right") - 1
        ys[i] = fy[idx]
    agg = ys.mean(axis=0) if level == "mean" else np.quantile(ys, level, axis=0)
    return xs, agg
