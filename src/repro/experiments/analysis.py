"""Statistical analysis utilities for campaign results.

The paper reports min/average/max over 40 runs; modern reproduction
practice adds uncertainty quantification.  This module provides:

* :func:`bootstrap_ratio_ci` — a percentile bootstrap confidence interval
  for the ratio-of-sums statistic (which has no closed-form CI because
  numerator and denominator are dependent across runs);
* :func:`convergence_profile` — how the ratio-of-sums estimate stabilises
  as runs accumulate, to judge whether 40 runs/point (the paper's choice)
  suffices;
* :func:`compare_algorithms` — a paired bootstrap test of "A beats B" on
  a shared set of runs (shared instances make the comparison paired by
  construction, which is much tighter than comparing the aggregates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.experiments.aggregate import ratio_of_sums
from repro.utils.rng import make_rng

__all__ = [
    "BootstrapCI",
    "bootstrap_ratio_ci",
    "convergence_profile",
    "compare_algorithms",
]


@dataclass(frozen=True)
class BootstrapCI:
    """A percentile bootstrap confidence interval for a ratio."""

    estimate: float
    low: float
    high: float
    confidence: float

    def __post_init__(self) -> None:
        if not (self.low <= self.estimate <= self.high):
            raise ValueError(
                f"inconsistent CI: [{self.low}, {self.high}] vs estimate {self.estimate}"
            )

    @property
    def width(self) -> float:
        return self.high - self.low


def bootstrap_ratio_ci(
    values: Sequence[float],
    bounds: Sequence[float],
    *,
    confidence: float = 0.95,
    n_boot: int = 2000,
    seed: int | np.random.Generator | None = 0,
) -> BootstrapCI:
    """Percentile bootstrap CI for ``sum(values) / sum(bounds)``.

    Runs are resampled jointly (value and bound of a run stay paired), so
    the dependence between numerator and denominator is preserved.
    """
    values = np.asarray(values, dtype=np.float64)
    bounds = np.asarray(bounds, dtype=np.float64)
    if values.shape != bounds.shape or values.size == 0:
        raise ValueError("values and bounds must be equal-length and non-empty")
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    rng = make_rng(seed)
    estimate = ratio_of_sums(values, bounds)
    n = values.size
    idx = rng.integers(0, n, size=(n_boot, n))
    boot_num = values[idx].sum(axis=1)
    boot_den = bounds[idx].sum(axis=1)
    ratios = boot_num / boot_den
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(ratios, [alpha, 1.0 - alpha])
    # Guard against degenerate resampling on tiny n.
    low = min(float(low), estimate)
    high = max(float(high), estimate)
    return BootstrapCI(estimate=estimate, low=low, high=high, confidence=confidence)


def convergence_profile(
    values: Sequence[float], bounds: Sequence[float]
) -> list[tuple[int, float]]:
    """Prefix ratio-of-sums after 1, 2, ..., n runs.

    A flat tail means the chosen number of runs suffices; the paper's 40
    runs/point can be judged directly from this curve.
    """
    values = np.asarray(values, dtype=np.float64)
    bounds = np.asarray(bounds, dtype=np.float64)
    if values.shape != bounds.shape or values.size == 0:
        raise ValueError("values and bounds must be equal-length and non-empty")
    num = np.cumsum(values)
    den = np.cumsum(bounds)
    if (den <= 0).any():
        raise ValueError("cumulative lower bounds must stay positive")
    return [(k + 1, float(num[k] / den[k])) for k in range(values.size)]


def compare_algorithms(
    values_a: Sequence[float],
    values_b: Sequence[float],
    bounds: Sequence[float],
    *,
    n_boot: int = 2000,
    seed: int | np.random.Generator | None = 0,
) -> float:
    """Paired bootstrap probability that algorithm A's ratio < B's.

    ``values_a[i]`` and ``values_b[i]`` must come from the *same* instance
    (shared run ``i``), with ``bounds[i]`` its lower bound.  Returns the
    fraction of bootstrap resamples in which A's ratio-of-sums is strictly
    smaller — ``> 0.975`` is strong evidence that A beats B at the 5%
    level.
    """
    a = np.asarray(values_a, dtype=np.float64)
    b = np.asarray(values_b, dtype=np.float64)
    lb = np.asarray(bounds, dtype=np.float64)
    if not (a.shape == b.shape == lb.shape) or a.size == 0:
        raise ValueError("inputs must be equal-length and non-empty")
    rng = make_rng(seed)
    n = a.size
    idx = rng.integers(0, n, size=(n_boot, n))
    ra = a[idx].sum(axis=1) / lb[idx].sum(axis=1)
    rb = b[idx].sum(axis=1) / lb[idx].sum(axis=1)
    return float(np.mean(ra < rb))
