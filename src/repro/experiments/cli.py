"""Command-line entry point: ``repro-experiments``.

Examples
--------
Regenerate Figure 6 at the paper's scale::

    repro-experiments --figure 6 --scale paper

Quick look at every figure (default scale is ``quick``; override with the
``REPRO_SCALE`` environment variable)::

    repro-experiments --figure all

Run the ablations::

    repro-experiments --ablation all

Scale a paper-sized campaign across every core::

    repro-experiments --figure 6 --scale paper --backend process

Numbers are byte-identical across backends (each cell derives its own RNG
stream); only wall-clock changes.

Make campaign results durable — a repeated run, an added algorithm, or an
extended sweep only pays for unseen cells::

    repro-experiments --figure all --cache-dir .repro-cache
    repro-experiments --figure all --cache-dir .repro-cache   # all hits

Evaluate the on-line batch wrapper (arrival-horizon sweep)::

    repro-experiments --online --cache-dir .repro-cache

Replay a Parallel Workloads Archive log (or the synthetic fixtures under
``tests/data/traces``) through the on-line batch framework — every
moldability model, DEMT off-line engine, batch + clairvoyant modes::

    repro-experiments replay trace.swf --model all
    repro-experiments --backend process --cache-dir .repro-cache \
        replay trace.swf --model downey --window 0:5000 --export replayed.swf

Replay the same arrivals under every on-line policy of the registry
(batch framework, FCFS, EASY backfilling, greedy-interval) and print the
(Cmax, mean flow) Pareto front of the policy axis::

    repro-experiments replay trace.swf --mode all --front

Sweep the bi-criteria trade-off (DEMT knobs + the algorithm registry) and
print per-instance Pareto fronts with quality indicators — synthetic
families and SWF trace windows alike::

    repro-experiments pareto mixed cirne --indicators --charts
    repro-experiments --cache-dir .repro-cache \
        pareto trace:log.swf --model downey --window 0:200 --sweep demt-knobs

Run a robustness campaign — inject runtime misestimation, machine
failures and adversarial arrivals into the on-line simulation, compare
nominal vs degraded makespans per off-line engine, and mark the engines
on the (nominal, degraded) Pareto front.  The campaign engine retries
crashed cells and quarantines poison ones instead of aborting::

    repro-experiments robustness mixed --noise lognormal:0.4 \
        --failures exp:30:5 --engines demt gang
    repro-experiments --backend process robustness mixed \
        --scenario 'overestimate:4|exp:50:5|bursty:4' --retries 3
"""

from __future__ import annotations

import argparse
import os
import sys

from repro import obs
from repro.experiments.ablation import ABLATIONS
from repro.experiments.config import SCALES, resolve_scale
from repro.experiments.engine import BACKENDS, resolve_cache
from repro.experiments.figures import FIGURES, figure7
from repro.experiments.reporting import (
    format_campaign_charts,
    format_campaign_table,
    format_replay_table,
    format_timing_table,
)
from repro.utils.log import configure as _configure_logging, get_logger

__all__ = ["main"]

#: CLI status lines (``[cache]`` / ``[export]`` / ``[trace]``) go through
#: the ``repro`` logging namespace at INFO — on stdout, byte-identical to
#: the prints they replaced, and silenced by ``--quiet``.
_logger = get_logger("repro.cli")


def _positive_int(value: str) -> int:
    jobs = int(value)
    if jobs < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {jobs}")
    return jobs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the figures of Dutot et al. (SPAA 2004).",
    )
    parser.add_argument(
        "--figure",
        choices=[*FIGURES, "all"],
        help="which figure to regenerate (3-7, or 'all')",
    )
    parser.add_argument(
        "--ablation",
        choices=[*ABLATIONS, "all"],
        help="run an ablation study instead of / in addition to figures",
    )
    parser.add_argument(
        "--scale",
        choices=list(SCALES),
        default=None,
        help="campaign scale (default: $REPRO_SCALE or 'quick')",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the campaign seed"
    )
    parser.add_argument(
        "--charts", action="store_true", help="also render ASCII charts"
    )
    parser.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default=None,
        help="cell executor: 'serial' (default), 'thread' (zero-copy "
        "threads; parallel when the compiled kernels release the GIL) or "
        "'process' (all cores); defaults to $REPRO_BACKEND or 'serial'",
    )
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        help="workers for --backend thread/process (default: usable cpus)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persistent cell cache directory: campaign results are "
        "journalled there and re-runs only pay for unseen cells",
    )
    parser.add_argument(
        "--online",
        action="store_true",
        help="also run the on-line batch-scheduling evaluation (DEMT "
        "off-line engine, arrival-horizon sweep)",
    )
    parser.add_argument(
        "--trace",
        dest="trace_out",
        default=None,
        metavar="FILE",
        help="write a trace of the run: Chrome-trace JSON (load in "
        "chrome://tracing or Perfetto), or JSONL when FILE ends in "
        ".jsonl ($REPRO_TRACE overrides when the flag is absent)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the metrics summary (counters, histograms, span "
        "flame) after the run",
    )
    verbosity = parser.add_mutually_exclusive_group()
    verbosity.add_argument(
        "--verbose",
        action="store_true",
        help="debug-level diagnostics on the repro.* logging namespace",
    )
    verbosity.add_argument(
        "--quiet",
        action="store_true",
        help="suppress status lines ([cache]/[export]/[trace]); "
        "warnings and tables still print",
    )

    # Subcommands (optional — the flag-driven figure/ablation interface
    # above keeps working unchanged).
    from repro.experiments.replay import REPLAY_ENGINES
    from repro.pareto.sweep import SWEEPS
    from repro.workloads.trace import MOLDABILITY_MODELS

    sub = parser.add_subparsers(
        dest="command", metavar="{replay,pareto,robustness}"
    )
    replay = sub.add_parser(
        "replay",
        help="replay an SWF trace through the on-line batch framework",
        description="Replay a Parallel Workloads Archive log: columnar "
        "ingestion, moldability reconstruction, on-line batch scheduling, "
        "and (optionally) SWF re-export of the simulated execution.",
    )
    replay.add_argument("trace", help="path to the SWF log")
    replay.add_argument(
        "--model",
        nargs="+",
        default=["rigid"],
        choices=[*MOLDABILITY_MODELS, "all"],
        help="moldability reconstruction model(s) (default: rigid)",
    )
    from repro.experiments.replay import REPLAY_MODES

    replay.add_argument(
        "--mode",
        choices=[*REPLAY_MODES, "both", "all"],
        default="both",
        help="replay mode: 'clairvoyant', an on-line policy (batch, fcfs, "
        "fcfs-backfill, greedy-interval), 'both' (= batch + clairvoyant, "
        "with the on-line/clairvoyant ratio) or 'all' (every mode)",
    )
    replay.add_argument(
        "--front",
        action="store_true",
        help="also sweep every on-line policy and print the "
        "(Cmax, mean flow) Pareto front of the policy axis",
    )
    replay.add_argument(
        "--engine",
        choices=list(REPLAY_ENGINES),
        default="demt",
        help="off-line engine inside the batch framework (default: demt)",
    )
    replay.add_argument(
        "--m", type=_positive_int, default=None,
        help="machine size (default: the log's MaxProcs header)",
    )
    replay.add_argument(
        "--window",
        default=None,
        metavar="OFFSET:COUNT",
        help="replay only COUNT jobs starting at row OFFSET",
    )
    replay.add_argument(
        "--export",
        default=None,
        metavar="OUT.swf",
        help="also write the simulated execution (batch mode, first "
        "model) back out as an SWF log",
    )
    replay.add_argument(
        "--validate",
        action="store_true",
        help="feasibility-check every replayed schedule",
    )
    # The executor flags again, so they may also follow the subcommand
    # (SUPPRESS: only overwrite the top-level value when actually given).
    replay.add_argument(
        "--backend", choices=list(BACKENDS), default=argparse.SUPPRESS,
        help=argparse.SUPPRESS,
    )
    replay.add_argument(
        "--jobs", type=_positive_int, default=argparse.SUPPRESS,
        help=argparse.SUPPRESS,
    )
    replay.add_argument(
        "--cache-dir", default=argparse.SUPPRESS, help=argparse.SUPPRESS
    )
    _add_obs_flags(replay)

    pareto = sub.add_parser(
        "pareto",
        help="sweep the bi-criteria trade-off and print Pareto fronts",
        description="Trade-off sweep: run a set of scheduler variants "
        "(DEMT knob deviations plus the algorithm registry) over seeded "
        "campaign instances or an SWF trace window, compute per-instance "
        "Pareto fronts in ratio space, and report front membership and "
        "quality indicators.",
    )
    pareto.add_argument(
        "source",
        nargs="*",
        default=["mixed"],
        help="workload kind(s) and/or 'trace:<path>' specs (default: mixed)",
    )
    pareto.add_argument(
        "--sweep",
        choices=list(SWEEPS),
        default="full",
        help="variant set (default: full = registry + DEMT knob deviations)",
    )
    pareto.add_argument(
        "--n",
        type=_positive_int,
        nargs="+",
        default=None,
        help="task counts per synthetic source (default: the scale's smallest)",
    )
    pareto.add_argument(
        "--runs",
        type=_positive_int,
        default=3,
        help="instances per (source, n) point (default: 3)",
    )
    pareto.add_argument(
        "--m", type=_positive_int, default=None,
        help="machine size (default: the scale's m; traces: MaxProcs header)",
    )
    pareto.add_argument(
        "--model",
        choices=list(MOLDABILITY_MODELS),
        default="downey",
        help="moldability reconstruction for trace sources (default: downey)",
    )
    pareto.add_argument(
        "--window",
        default=None,
        metavar="OFFSET:COUNT",
        help="window restriction for trace sources",
    )
    pareto.add_argument(
        "--indicators",
        action="store_true",
        help="also print per-cell front-quality indicators",
    )
    pareto.add_argument(
        "--validate",
        action="store_true",
        help="feasibility-check every swept schedule",
    )
    # The top-level --charts flag again, so it may follow the subcommand.
    pareto.add_argument(
        "--charts", action="store_true", default=argparse.SUPPRESS,
        help=argparse.SUPPRESS,
    )
    pareto.add_argument(
        "--backend", choices=list(BACKENDS), default=argparse.SUPPRESS,
        help=argparse.SUPPRESS,
    )
    pareto.add_argument(
        "--jobs", type=_positive_int, default=argparse.SUPPRESS,
        help=argparse.SUPPRESS,
    )
    pareto.add_argument(
        "--cache-dir", default=argparse.SUPPRESS, help=argparse.SUPPRESS
    )
    _add_obs_flags(pareto)

    from repro.faults.campaign import ROBUSTNESS_ENGINES

    robust = sub.add_parser(
        "robustness",
        help="fault-injection campaign: nominal vs degraded makespans",
        description="Robustness campaign: run seeded workload cells "
        "through the faulty on-line batch policy — scheduling on "
        "noise-perturbed estimates, surviving machine failures, under "
        "synthetic arrival patterns — and compare each off-line engine's "
        "nominal and degraded makespans.  Cells whose worker crashes are "
        "retried with backoff; poison cells are quarantined and marked "
        "in the table instead of aborting the campaign.",
    )
    robust.add_argument(
        "kind",
        nargs="?",
        default="mixed",
        help="workload family for the seeded cells (default: mixed)",
    )
    robust.add_argument(
        "--scenario",
        default="",
        metavar="NOISE|FAIL|ARRIVE",
        help="combined fault spec, e.g. 'lognormal:0.4|exp:50:5|bursty:4' "
        "(the three flags below override individual axes)",
    )
    robust.add_argument(
        "--noise",
        default=None,
        help="misestimation model: none, lognormal[:sigma], "
        "overestimate[:fmax]; append @SEED to reseed",
    )
    robust.add_argument(
        "--failures",
        default=None,
        help="machine-failure process: none or exp:MTBF:MTTR[@SEED]",
    )
    robust.add_argument(
        "--arrivals",
        default=None,
        help="arrival pattern: none, poisson[:load], bursty[:waves[:load]], "
        "adversarial",
    )
    robust.add_argument(
        "--engines",
        nargs="+",
        default=["demt"],
        choices=[*ROBUSTNESS_ENGINES, "all"],
        help="off-line engines to compare (default: demt)",
    )
    robust.add_argument(
        "--n",
        type=_positive_int,
        nargs="+",
        default=None,
        help="task counts (default: the scale's smallest)",
    )
    robust.add_argument(
        "--runs",
        type=_positive_int,
        default=3,
        help="instances per task count (default: 3)",
    )
    robust.add_argument(
        "--m", type=_positive_int, default=None,
        help="machine size (default: the scale's m)",
    )
    robust.add_argument(
        "--validate",
        action="store_true",
        help="feasibility-check every realized schedule against the truth",
    )
    robust.add_argument(
        "--retries",
        type=int,
        default=2,
        help="extra attempts per crashed cell before quarantine (default: 2)",
    )
    robust.add_argument(
        "--backoff",
        type=float,
        default=0.05,
        help="base retry backoff in seconds, doubled per attempt (default: 0.05)",
    )
    robust.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill and retry any cell attempt exceeding this wall-clock budget",
    )
    robust.add_argument(
        "--backend", choices=list(BACKENDS), default=argparse.SUPPRESS,
        help=argparse.SUPPRESS,
    )
    robust.add_argument(
        "--jobs", type=_positive_int, default=argparse.SUPPRESS,
        help=argparse.SUPPRESS,
    )
    robust.add_argument(
        "--cache-dir", default=argparse.SUPPRESS, help=argparse.SUPPRESS
    )
    _add_obs_flags(robust)
    return parser


def _add_obs_flags(sub: argparse.ArgumentParser) -> None:
    """The observability flags again, so they may follow the subcommand
    (SUPPRESS: only overwrite the top-level value when actually given)."""
    sub.add_argument(
        "--trace", dest="trace_out", default=argparse.SUPPRESS,
        metavar="FILE", help=argparse.SUPPRESS,
    )
    sub.add_argument(
        "--metrics", action="store_true", default=argparse.SUPPRESS,
        help=argparse.SUPPRESS,
    )


def _parse_window(spec: str | None) -> tuple[int, int] | None:
    if spec is None:
        return None
    try:
        offset, count = spec.split(":")
        window = (int(offset), int(count))
    except ValueError:
        raise SystemExit(f"--window must be OFFSET:COUNT, got {spec!r}")
    if window[0] < 0 or window[1] < 1:
        raise SystemExit(f"--window needs OFFSET >= 0 and COUNT >= 1, got {spec!r}")
    return window


def _run_replay(args, exec_kw: dict, cache) -> int:
    from repro.experiments.engine import CellCache
    from repro.experiments.replay import (
        REPLAY_ENGINES,
        export_replay_swf,
        replay_trace,
    )
    from repro.workloads.trace import MOLDABILITY_MODELS, load_trace

    try:
        trace = load_trace(args.trace)
    except OSError as exc:  # missing/unreadable path: clean one-line exit
        raise SystemExit(f"replay: cannot read trace: {exc}")
    except ValueError as exc:  # unparseable log
        raise SystemExit(f"replay: {exc}")
    models = list(MOLDABILITY_MODELS) if "all" in args.model else args.model
    modes = ("batch", "clairvoyant") if args.mode == "both" else args.mode
    offline = REPLAY_ENGINES[args.engine]
    window = _parse_window(args.window)
    if (args.front or args.export) and cache is None:
        # The front sweep and the export each replay cells the table
        # below needs again; an in-memory cache turns those into hits
        # even without --cache-dir.
        cache = CellCache()
    if args.front:
        from repro.experiments.reporting import format_policy_front_table
        from repro.pareto.sweep import sweep_online_policies

        front = sweep_online_policies(
            trace,
            "all",
            engines=args.engine,
            m=args.m,
            model=models[0],
            window=window,
            validate=args.validate,
            cache=cache,
            **exec_kw,
        )
        print(format_policy_front_table(front))
    if args.export:
        # Export first: its batch run seeds the cell cache, so the table
        # below serves that cell as a hit instead of re-scheduling it.
        text = export_replay_swf(
            trace, m=args.m, model=models[0], offline=offline, window=window,
            validate=args.validate, cache=cache,
        )
        with open(args.export, "w", encoding="utf-8") as fh:
            fh.write(text)
        _logger.info(
            "[export] simulated execution (%s/batch) written to %s",
            models[0], args.export,
        )
    results = replay_trace(
        trace,
        m=args.m,
        models=models,
        modes=modes,
        offline=offline,
        window=window,
        validate=args.validate,
        cache=cache,
        **exec_kw,
    )
    print(format_replay_table(results))
    return 0


def _run_pareto(args, cfg, exec_kw: dict, cache) -> int:
    from repro.pareto.sweep import sweep_tradeoffs
    from repro.experiments.reporting import (
        format_front_charts,
        format_front_table,
        format_indicator_table,
    )

    window = _parse_window(args.window)
    task_counts = tuple(args.n) if args.n else (min(cfg.task_counts),)
    for source in args.source:
        try:
            result = sweep_tradeoffs(
                source,
                args.sweep,
                m=args.m if args.m is not None else (
                    None if source.startswith("trace:") else cfg.m
                ),
                task_counts=task_counts,
                runs=args.runs,
                seed=cfg.seed,
                model=args.model,
                window=window,
                validate=args.validate,
                cache=cache,
                **exec_kw,
            )
        except OSError as exc:  # trace:<path> missing/unreadable
            raise SystemExit(f"pareto: cannot read trace: {exc}")
        except ValueError as exc:  # bad source/sweep spec: clean CLI error
            raise SystemExit(f"pareto: {exc}")
        print(format_front_table(result))
        if args.indicators:
            print(format_indicator_table(result))
        if args.charts:
            print(format_front_charts(result))
    return 0


def _run_robustness(args, cfg, exec_kw: dict, cache) -> int:
    from repro.exceptions import ModelError
    from repro.experiments.engine import RetryPolicy
    from repro.experiments.reporting import format_robustness_table
    from repro.faults.campaign import (
        ROBUSTNESS_ENGINES,
        parse_scenario,
        run_robustness_campaign,
    )

    try:
        scenario = parse_scenario(
            args.scenario,
            noise=args.noise,
            failures=args.failures,
            arrivals=args.arrivals,
        )
    except ModelError as exc:
        raise SystemExit(f"robustness: {exc}")
    try:
        policy = RetryPolicy(
            retries=args.retries, backoff=args.backoff, timeout=args.cell_timeout
        )
    except ValueError as exc:
        raise SystemExit(f"robustness: {exc}")
    engines = (
        ROBUSTNESS_ENGINES if "all" in args.engines else tuple(args.engines)
    )
    task_counts = tuple(args.n) if args.n else (min(cfg.task_counts),)
    try:
        result = run_robustness_campaign(
            args.kind,
            task_counts,
            args.runs,
            scenario,
            engines=engines,
            seed=cfg.seed,
            m=args.m if args.m is not None else cfg.m,
            validate=args.validate,
            cache=cache,
            policy=policy,
            **exec_kw,
        )
    except (ModelError, ValueError) as exc:  # bad kind/spec: clean CLI error
        raise SystemExit(f"robustness: {exc}")
    print(format_robustness_table(result))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    command = getattr(args, "command", None)
    if not args.figure and not args.ablation and not args.online and not command:
        build_parser().print_help()
        return 2

    _configure_logging(verbose=args.verbose, quiet=args.quiet)
    trace_out = args.trace_out or os.environ.get("REPRO_TRACE") or None
    state = obs.enable() if (trace_out or args.metrics) else None
    try:
        if state is None:
            code = _dispatch(args, command)
        else:
            with state.span("campaign", "campaign"):
                code = _dispatch(args, command)
    finally:
        if state is not None:
            obs.disable()
    if state is not None:
        from repro.obs.export import metrics_summary, write_trace

        if trace_out:
            path = write_trace(state, trace_out)
            _logger.info(
                "[trace] %d spans written to %s", len(state.spans), path
            )
        if args.metrics:
            print(metrics_summary(state))
    return code


def _dispatch(args, command: str | None) -> int:
    cfg = resolve_scale(args.scale)
    if args.seed is not None:
        cfg = cfg.scaled(seed=args.seed)

    backend = args.backend or os.environ.get("REPRO_BACKEND") or "serial"
    if backend not in BACKENDS:
        raise SystemExit(
            f"repro-experiments: unknown backend {backend!r} "
            f"($REPRO_BACKEND?); available: {', '.join(BACKENDS)}"
        )
    exec_kw = dict(backend=backend, jobs=args.jobs)
    try:
        cache = resolve_cache(args.cache_dir)
    except OSError as exc:  # unusable cache dir: clean one-line exit
        raise SystemExit(
            f"repro-experiments: cache dir {args.cache_dir!r} is unusable: {exc}"
        )
    cached_kw = dict(exec_kw, cache=cache)

    if command == "replay":
        # Flag-driven sections (--figure/--ablation/--online) still run
        # below when combined with the subcommand.
        _run_replay(args, exec_kw, cache)

    if command == "pareto":
        _run_pareto(args, cfg, exec_kw, cache)

    if command == "robustness":
        _run_robustness(args, cfg, exec_kw, cache)

    if args.figure:
        wanted = list(FIGURES) if args.figure == "all" else [args.figure]
        for fig_id in wanted:
            print(f"=== Figure {fig_id} ===")
            if fig_id == "7":
                # Figure 7 measures wall-clock; caching would falsify it.
                result = figure7(cfg, **exec_kw)
                print(format_timing_table(result.timings))
            else:
                result = FIGURES[fig_id](cfg, progress=True, **cached_kw)
                print(format_campaign_table(result))
                if args.charts:
                    print(format_campaign_charts(result))

    if args.ablation:
        wanted = list(ABLATIONS) if args.ablation == "all" else [args.ablation]
        for name in wanted:
            print(f"=== Ablation: {name} ===")
            for variant, (minsum_r, cmax_r) in ABLATIONS[name](**cached_kw).items():
                print(f"  {variant:<16} minsum ratio {minsum_r:6.3f}   cmax ratio {cmax_r:6.3f}")
            print()

    if args.online:
        from repro.algorithms.demt import schedule_demt
        from repro.experiments.online_eval import evaluate_online, format_online_table

        print("=== On-line batch evaluation (DEMT off-line engine) ===")
        points = evaluate_online(schedule_demt, **cached_kw)
        print(format_online_table(points))

    if cache is not None:
        _logger.info(
            "[cache] %d cells (%d hits / %d misses this run) in %s",
            len(cache), cache.hits, cache.misses, args.cache_dir,
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
