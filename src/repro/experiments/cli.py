"""Command-line entry point: ``repro-experiments``.

Examples
--------
Regenerate Figure 6 at the paper's scale::

    repro-experiments --figure 6 --scale paper

Quick look at every figure (default scale is ``quick``; override with the
``REPRO_SCALE`` environment variable)::

    repro-experiments --figure all

Run the ablations::

    repro-experiments --ablation all

Scale a paper-sized campaign across every core::

    repro-experiments --figure 6 --scale paper --backend process

Numbers are byte-identical across backends (each cell derives its own RNG
stream); only wall-clock changes.

Make campaign results durable — a repeated run, an added algorithm, or an
extended sweep only pays for unseen cells::

    repro-experiments --figure all --cache-dir .repro-cache
    repro-experiments --figure all --cache-dir .repro-cache   # all hits

Evaluate the on-line batch wrapper (arrival-horizon sweep)::

    repro-experiments --online --cache-dir .repro-cache
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.ablation import ABLATIONS
from repro.experiments.config import SCALES, resolve_scale
from repro.experiments.engine import BACKENDS, resolve_cache
from repro.experiments.figures import FIGURES, figure7
from repro.experiments.reporting import (
    format_campaign_charts,
    format_campaign_table,
    format_timing_table,
)

__all__ = ["main"]


def _positive_int(value: str) -> int:
    jobs = int(value)
    if jobs < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {jobs}")
    return jobs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the figures of Dutot et al. (SPAA 2004).",
    )
    parser.add_argument(
        "--figure",
        choices=[*FIGURES, "all"],
        help="which figure to regenerate (3-7, or 'all')",
    )
    parser.add_argument(
        "--ablation",
        choices=[*ABLATIONS, "all"],
        help="run an ablation study instead of / in addition to figures",
    )
    parser.add_argument(
        "--scale",
        choices=list(SCALES),
        default=None,
        help="campaign scale (default: $REPRO_SCALE or 'quick')",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the campaign seed"
    )
    parser.add_argument(
        "--charts", action="store_true", help="also render ASCII charts"
    )
    parser.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default="serial",
        help="cell executor: 'serial' (default) or 'process' (all cores)",
    )
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        help="worker processes for --backend process (default: cpu count)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persistent cell cache directory: campaign results are "
        "journalled there and re-runs only pay for unseen cells",
    )
    parser.add_argument(
        "--online",
        action="store_true",
        help="also run the on-line batch-scheduling evaluation (DEMT "
        "off-line engine, arrival-horizon sweep)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if not args.figure and not args.ablation and not args.online:
        build_parser().print_help()
        return 2

    cfg = resolve_scale(args.scale)
    if args.seed is not None:
        cfg = cfg.scaled(seed=args.seed)

    exec_kw = dict(backend=args.backend, jobs=args.jobs)
    cache = resolve_cache(args.cache_dir)
    cached_kw = dict(exec_kw, cache=cache)

    if args.figure:
        wanted = list(FIGURES) if args.figure == "all" else [args.figure]
        for fig_id in wanted:
            print(f"=== Figure {fig_id} ===")
            if fig_id == "7":
                # Figure 7 measures wall-clock; caching would falsify it.
                result = figure7(cfg, **exec_kw)
                print(format_timing_table(result.timings))
            else:
                result = FIGURES[fig_id](cfg, progress=True, **cached_kw)
                print(format_campaign_table(result))
                if args.charts:
                    print(format_campaign_charts(result))

    if args.ablation:
        wanted = list(ABLATIONS) if args.ablation == "all" else [args.ablation]
        for name in wanted:
            print(f"=== Ablation: {name} ===")
            for variant, (minsum_r, cmax_r) in ABLATIONS[name](**cached_kw).items():
                print(f"  {variant:<16} minsum ratio {minsum_r:6.3f}   cmax ratio {cmax_r:6.3f}")
            print()

    if args.online:
        from repro.algorithms.demt import schedule_demt
        from repro.experiments.online_eval import evaluate_online, format_online_table

        print("=== On-line batch evaluation (DEMT off-line engine) ===")
        points = evaluate_online(schedule_demt, **cached_kw)
        print(format_online_table(points))

    if cache is not None:
        print(
            f"[cache] {len(cache)} cells ({cache.hits} hits / {cache.misses} misses "
            f"this run) in {args.cache_dir}"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
