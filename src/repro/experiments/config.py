"""Campaign configuration.

The paper's setting (§4.1): a cluster of **200 processors**, task counts
from **25 to 400**, **40 runs** per point, six algorithms, ratios against
the LP / dual-approximation lower bounds.

Because the full campaign takes a few CPU-minutes, the scale is selectable
— ``paper`` reproduces §4.1 exactly, ``quick`` is a minutes-scale sanity
sweep, ``smoke`` is for CI.  The ``REPRO_SCALE`` environment variable picks
the default used by the benchmarks and the CLI.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

from repro.algorithms.registry import PAPER_ALGORITHMS

__all__ = ["ExperimentConfig", "SCALES", "resolve_scale"]

#: The paper's four experimental workload families, in figure order.
PAPER_WORKLOADS: tuple[str, ...] = (
    "weakly_parallel",
    "highly_parallel",
    "mixed",
    "cirne",
)


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters of one simulation campaign.

    Attributes mirror §4.1; ``seed`` keys the whole campaign (every run
    derives its own independent stream from it, so single points can be
    recomputed in isolation).
    """

    m: int = 200
    task_counts: tuple[int, ...] = (25, 50, 100, 150, 200, 250, 300, 350, 400)
    runs: int = 40
    algorithms: tuple[str, ...] = PAPER_ALGORITHMS
    seed: int = 2004

    def __post_init__(self) -> None:
        if self.m < 1:
            raise ValueError(f"m must be >= 1, got {self.m}")
        if self.runs < 1:
            raise ValueError(f"runs must be >= 1, got {self.runs}")
        if not self.task_counts:
            raise ValueError("task_counts must not be empty")

    def scaled(self, **overrides: object) -> "ExperimentConfig":
        """Copy with overrides (convenience for notebooks/tests)."""
        return replace(self, **overrides)


#: Predefined scales.  ``paper`` is §4.1 verbatim.
SCALES: dict[str, ExperimentConfig] = {
    "paper": ExperimentConfig(),
    "quick": ExperimentConfig(
        m=64,
        task_counts=(25, 50, 100, 200),
        runs=8,
    ),
    "smoke": ExperimentConfig(
        m=16,
        task_counts=(10, 25),
        runs=2,
    ),
}


def resolve_scale(name: str | None = None) -> ExperimentConfig:
    """Config for ``name``, or for ``$REPRO_SCALE`` (default ``quick``).

    >>> resolve_scale("paper").m
    200
    """
    if name is None:
        name = os.environ.get("REPRO_SCALE", "quick")
    try:
        return SCALES[name]
    except KeyError:
        raise ValueError(
            f"unknown scale {name!r}; available: {', '.join(SCALES)}"
        ) from None
