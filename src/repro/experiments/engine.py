"""Campaign execution engine: cell families, backends, and the result cache.

A *cell* is the smallest independently reproducible unit of a campaign:
one measurement on one instance, addressed by
``(seed, kind, n, m, r, algorithm)``.  A :class:`CellFamily` declares what
a cell of one campaign type *is* — its key schema, its worker (measure
function) and its record assembly — and :func:`execute_cells` drives every
family through the same machinery: cache lookups, backend dispatch and
journalling.  The figure campaigns, the Pareto sweeps, the on-line
arrival sweeps and the trace replays are all families of this one
protocol.  Because a cell's result is a pure function of its key (instances
derive from stateless RNG streams or content-addressed traces), a cell's
result does not depend on which other cells ran, in which order, or in
which process — which is what makes the two execution backends
interchangeable:

* :class:`SerialBackend` — a plain in-process loop (the default; zero
  overhead, exact for tests);
* :class:`ThreadBackend` — a :class:`concurrent.futures.ThreadPoolExecutor`
  fan-out inside one process.  Zero-copy: tasks and results never pickle,
  no shared-memory staging, no per-worker kernel warmup.  Real parallelism
  comes from the compiled kernel layer releasing the GIL
  (:mod:`repro.kernels`; pinned by ``tests/kernels/test_gil_release.py``),
  so kernel-bound cells overlap while the Python glue interleaves.
* :class:`ProcessBackend` — a :class:`concurrent.futures.ProcessPoolExecutor`
  fan-out over CPU cores.  Workers receive plain picklable argument tuples
  and return plain records; numbers are guaranteed identical to the serial
  backend (only the wall-clock ``seconds`` measurements differ).

Both backends optionally take a :class:`RetryPolicy`, which turns them
crash-tolerant: failed cell attempts are retried with exponential backoff
and deterministic jitter, a cell still failing after its attempt budget is
**quarantined** (recorded as a :class:`CellFailure` instead of aborting
the campaign — surfaced as :attr:`CellOutcome.error`), each attempt is
bounded by a per-cell timeout (process backend; a hung worker is killed
with its pool), and a pool that keeps dying degrades gracefully to
in-process execution.  Because cell results are pure functions of their
keys, a record produced on a retry is bit-identical to a first-try record
— crash-tolerance never changes the numbers.

The :class:`CellCache` memoises per-cell records and per-instance lower
bounds, so repeated campaigns — sweeps over algorithm subsets, ablations
re-using the same instances, figure regeneration after adding one point —
only pay for cells they have not seen.  :class:`PersistentCellCache`
extends it with an append-only on-disk journal, making those savings
durable across processes: re-running a campaign, adding one algorithm, or
extending a sweep by one ``n``-point in a *fresh* process only pays for
unseen cells.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import threading
import time
from collections import deque
from concurrent.futures import (
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    TimeoutError as FutureTimeout,
)
from concurrent.futures.process import BrokenProcessPool
from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Hashable, Iterable

from repro import obs
from repro.utils.log import get_logger
from repro.utils.shm import SharedColumnar

__all__ = [
    "SharedColumnar",
    "CellKey",
    "CellRecord",
    "CellBounds",
    "CellCache",
    "PersistentCellCache",
    "CellFamily",
    "CellOutcome",
    "CellFailure",
    "RetryPolicy",
    "execute_cells",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "default_worker_count",
    "resolve_backend",
    "resolve_cache",
    "BACKENDS",
]


def default_worker_count() -> int:
    """Number of CPUs actually usable by this process.

    ``os.cpu_count()`` reports the machine's CPUs, ignoring CPU affinity
    (taskset, cgroup cpusets, SLURM bindings) — a campaign pinned to 4 of
    64 cores would oversubscribe itself 16x.  Prefer the affinity mask
    where the platform exposes it; fall back to ``cpu_count`` elsewhere.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return len(getaffinity(0)) or 1
        except OSError:  # pragma: no cover - platform quirk
            pass
    return os.cpu_count() or 1


@dataclass(frozen=True)
class CellKey:
    """Address of one (instance, algorithm) measurement."""

    seed: int
    kind: str
    n: int
    m: int
    r: int
    algorithm: str

    @property
    def bounds_key(self) -> tuple:
        """Key of the per-instance lower bounds (algorithm-independent)."""
        return (self.seed, self.kind, self.n, self.m, self.r)


@dataclass(frozen=True, eq=False)
class CellRecord:
    """One algorithm's measurements on one instance.

    ``validated`` records whether the schedule behind these numbers went
    through :func:`repro.core.validation.validate_schedule`; a cache
    lookup under ``validate=True`` refuses records measured without it.
    ``batches`` is only meaningful for on-line cells (trace replay, the
    batch framework): the number of batches the run executed; off-line
    cells leave it 0.  ``crashes`` counts the simulated crash-and-restart
    evictions behind the measurement (:mod:`repro.faults`); fault-free
    cells leave it 0.

    **Equality excludes** ``seconds``: a record is a pure function of its
    cell key *except* for the wall-clock measurement, which legitimately
    differs between serial and process backends, between machines, and
    between runs.  The serial-vs-process bit-identity guarantee (and the
    tests pinning it) compare records with ``==``; the journal's
    write-skip (:meth:`PersistentCellCache.put_record`) likewise treats a
    re-measurement that only moved the clock as already known.
    """

    cmax: float
    minsum: float
    seconds: float
    validated: bool = False
    batches: int = 0
    crashes: int = 0

    def _identity(self) -> tuple:
        return (self.cmax, self.minsum, self.validated, self.batches, self.crashes)

    def __eq__(self, other: object):
        if not isinstance(other, CellRecord):
            return NotImplemented
        return self._identity() == other._identity()

    def __hash__(self) -> int:
        return hash(self._identity())


@dataclass(frozen=True)
class CellBounds:
    """Per-instance lower bounds shared by every algorithm's ratios."""

    cmax_lb: float
    minsum_lb: float


class CellCache:
    """In-memory memo of cell records and instance bounds.

    Purely additive; campaigns can share one across calls.  ``hits`` /
    ``misses`` count record lookups (for tests and progress reporting).
    """

    def __init__(self) -> None:
        self._records: dict[CellKey, CellRecord] = {}
        self._bounds: dict[tuple, CellBounds] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._records)

    def get_record(
        self, key: CellKey, *, require_validated: bool = False
    ) -> CellRecord | None:
        """Look up a record; optionally refuse ones measured without
        schedule validation (they count as misses and get re-measured)."""
        rec = self._records.get(key)
        if rec is not None and require_validated and not rec.validated:
            rec = None
        if rec is None:
            self.misses += 1
        else:
            self.hits += 1
        return rec

    def put_record(self, key: CellKey, record: CellRecord) -> None:
        self._records[key] = record

    def get_bounds(self, bounds_key: tuple) -> CellBounds | None:
        return self._bounds.get(bounds_key)

    def put_bounds(self, bounds_key: tuple, bounds: CellBounds) -> None:
        self._bounds[bounds_key] = bounds

    def clear(self) -> None:
        self._records.clear()
        self._bounds.clear()
        self.hits = 0
        self.misses = 0


class PersistentCellCache(CellCache):
    """A :class:`CellCache` backed by an append-only JSONL journal.

    Layout: ``cache_dir`` holds one or more ``*.jsonl`` shard files, one
    JSON document per line::

        {"t": "cell", "k": [seed, kind, n, m, r, algorithm],
         "cmax": ..., "minsum": ..., "seconds": ..., "validated": ...}
        {"t": "bounds", "k": [seed, kind, n, m, r],
         "cmax_lb": ..., "minsum_lb": ...}

    Properties that make it safe in practice:

    * **Loading merges every shard** (later lines win), and unparseable or
      truncated lines — a crashed writer, a half-synced file — are skipped,
      not fatal: at worst a cell is re-measured.  ``loaded`` / ``dropped``
      count the salvaged and discarded lines of the merge, so callers can
      report exactly what a mid-write crash cost.
    * **Writes go to a per-process shard** (``cells-<pid>.jsonl``), so two
      campaigns sharing a directory never interleave within one file.  The
      process *backend* needs no extra care: workers return plain records
      and only the coordinating process touches the cache.  Within one
      process the shard is shared by every thread, so the check-then-append
      path is serialised by a lock — concurrent campaigns on the thread
      backend (or campaigns driven from multiple user threads) cannot
      interleave half-written lines or double-journal a record.
    * **Floats round-trip exactly** (``json`` uses ``repr`` precision), so
      aggregates recomputed from cache equal the original run bit for bit.
    * **Appends are flushed per line**; :meth:`compact` folds all shards
      into a single ``cells.jsonl`` to keep reload time proportional to
      the number of distinct cells.
    """

    def __init__(self, cache_dir: str | os.PathLike) -> None:
        super().__init__()
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._shard = self.cache_dir / f"cells-{os.getpid()}.jsonl"
        self._fh = None
        #: Serialises the check-then-append path across threads sharing
        #: this process's shard (thread backend, multi-threaded drivers).
        self._lock = threading.Lock()
        self.loaded = self._load()

    # -- journal I/O --------------------------------------------------- #
    def _shard_files(self) -> list[Path]:
        """All shards, oldest first (mtime, then name), so that replaying
        'later lines win' resolves duplicate keys toward the most recent
        measurement — e.g. a ``validated=True`` re-measurement from a new
        process must shadow an old unvalidated record, whatever the pids
        happen to sort like lexically."""
        return sorted(
            self.cache_dir.glob("*.jsonl"),
            key=lambda p: (p.stat().st_mtime, p.name),
        )

    def _load(self) -> int:
        """Merge every shard into memory; return the number of loaded rows.

        Sets :attr:`dropped` to the number of non-empty lines that could
        not be salvaged (truncated tails, half-written documents).
        """
        rows = 0
        self.dropped = 0
        self._loaded_files = self._shard_files()
        for path in self._loaded_files:
            try:
                text = path.read_text()
            except OSError:  # pragma: no cover - unreadable shard
                continue
            for line in text.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                    if doc["t"] == "cell":
                        seed, kind, n, m, r, algorithm = doc["k"]
                        key = CellKey(
                            int(seed), str(kind), int(n), int(m), int(r), str(algorithm)
                        )
                        self._records[key] = CellRecord(
                            cmax=float(doc["cmax"]),
                            minsum=float(doc["minsum"]),
                            seconds=float(doc["seconds"]),
                            validated=bool(doc["validated"]),
                            batches=int(doc.get("batches", 0)),
                            crashes=int(doc.get("crashes", 0)),
                        )
                    elif doc["t"] == "bounds":
                        seed, kind, n, m, r = doc["k"]
                        self._bounds[(int(seed), str(kind), int(n), int(m), int(r))] = (
                            CellBounds(
                                cmax_lb=float(doc["cmax_lb"]),
                                minsum_lb=float(doc["minsum_lb"]),
                            )
                        )
                    else:
                        continue
                    rows += 1
                except (ValueError, KeyError, TypeError):
                    self.dropped += 1
                    continue  # corrupt/foreign line: tolerate, re-measure
        return rows

    def _append(self, doc: dict) -> None:
        if self._fh is None:
            self._fh = open(self._shard, "a", encoding="utf-8")
        self._fh.write(json.dumps(doc, separators=(",", ":")) + "\n")
        self._fh.flush()

    # -- write-through puts -------------------------------------------- #
    @staticmethod
    def _cell_doc(key: CellKey, record: CellRecord) -> dict:
        doc = {
            "t": "cell",
            "k": [key.seed, key.kind, key.n, key.m, key.r, key.algorithm],
            "cmax": record.cmax,
            "minsum": record.minsum,
            "seconds": record.seconds,
            "validated": record.validated,
        }
        if record.batches:  # only on-line cells carry a batch count
            doc["batches"] = record.batches
        if record.crashes:  # only faulty cells carry a crash count
            doc["crashes"] = record.crashes
        return doc

    def put_record(self, key: CellKey, record: CellRecord) -> None:
        with self._lock:
            known = self._records.get(key)
            super().put_record(key, record)
            if known != record:
                self._append(self._cell_doc(key, record))

    def put_bounds(self, bounds_key: tuple, bounds: CellBounds) -> None:
        with self._lock:
            known = self._bounds.get(bounds_key)
            super().put_bounds(bounds_key, bounds)
            if known != bounds:
                self._append(
                    {
                        "t": "bounds",
                        "k": list(bounds_key),
                        "cmax_lb": bounds.cmax_lb,
                        "minsum_lb": bounds.minsum_lb,
                    }
                )

    # -- maintenance ---------------------------------------------------- #
    def compact(self) -> int:
        """Fold the shards into one deduplicated ``cells.jsonl``.

        Returns the number of rows written.  The shards are re-read from
        disk first (picking up rows other processes appended since this
        cache was opened), and only the files that were merged are
        removed — a shard created *after* the re-read survives untouched.
        A writer appending to a merged shard in the instant between the
        re-read and the unlink can still lose those rows, so run
        compaction when no campaign is live against the directory.
        """
        self.close()
        self._records.clear()
        self._bounds.clear()
        self._load()  # fresh disk state, including other processes' shards
        merged = list(self._loaded_files)
        target = self.cache_dir / "cells.jsonl"
        tmp = self.cache_dir / "cells.jsonl.tmp"
        rows = 0
        with open(tmp, "w", encoding="utf-8") as fh:
            for bkey, bounds in sorted(self._bounds.items(), key=lambda kv: repr(kv[0])):
                fh.write(
                    json.dumps(
                        {
                            "t": "bounds",
                            "k": list(bkey),
                            "cmax_lb": bounds.cmax_lb,
                            "minsum_lb": bounds.minsum_lb,
                        },
                        separators=(",", ":"),
                    )
                    + "\n"
                )
                rows += 1
            for key, rec in sorted(self._records.items(), key=lambda kv: repr(kv[0])):
                fh.write(
                    json.dumps(self._cell_doc(key, rec), separators=(",", ":")) + "\n"
                )
                rows += 1
        for path in merged:
            if path != target:
                path.unlink(missing_ok=True)
        tmp.replace(target)
        return rows

    def close(self) -> None:
        """Flush and close this process's shard (idempotent)."""
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self.close()
        except Exception:
            pass


def resolve_cache(
    cache: "CellCache | str | os.PathLike | None",
) -> CellCache | None:
    """Normalise a cache spec: an instance, a directory path, or ``None``.

    A string/path builds (and loads) a :class:`PersistentCellCache` on that
    directory — the ``--cache-dir`` CLI plumbing.
    """
    if cache is None or isinstance(cache, CellCache):
        return cache
    if isinstance(cache, (str, os.PathLike)):
        return PersistentCellCache(cache)
    raise TypeError(f"cache must be a CellCache, a directory path, or None, got {cache!r}")


# ---------------------------------------------------------------------- #
# Cell families                                                          #
# ---------------------------------------------------------------------- #
class CellFamily:
    """Declarative description of one cell family.

    A *cell family* is a kind of independently reproducible measurement —
    the figure campaigns, the Pareto sweeps, the on-line arrival sweeps and
    the trace replays are each one family.  A family declares three things
    and inherits every piece of orchestration (cache lookups, validated-
    record policy, serial/process dispatch, journalling) from
    :func:`execute_cells`:

    ``worker``
        The measure function: a **module-level** (hence picklable)
        callable taking the argument tuple built by :meth:`make_task` and
        returning ``(bounds, {name: CellRecord})`` where ``bounds`` is a
        :class:`CellBounds` (or ``None`` for families without bounds, or
        when the bounds were already cached).
    ``record_key`` / ``bounds_key``
        The key schema: how a ``(cell, name)`` pair maps onto the global
        :class:`CellKey` namespace, and (for families whose instances
        carry certified lower bounds) which algorithm-independent key the
        bounds live under.  The base implementation of :meth:`bounds_key`
        returns ``None`` — "this family records no bounds".
    ``make_task``
        Record assembly on the dispatch side: how one cell plus the names
        still missing from the cache becomes the worker's plain picklable
        argument tuple.

    Cells themselves are any hashable coordinates the family chooses —
    ``(kind, n, r)`` for campaigns, ``(model, mode)`` for replays,
    ``(fraction, r)`` for the on-line sweep.
    """

    #: Human-readable family name (progress reporting, tests).
    name: str = "abstract"
    #: Module-level worker function; see the class docstring.
    worker: Callable[[tuple], "tuple[CellBounds | None, dict[str, CellRecord]]"]

    def record_key(self, cell: Hashable, name: str) -> CellKey:
        """The :class:`CellKey` addressing ``name``'s record on ``cell``."""
        raise NotImplementedError

    def bounds_key(self, cell: Hashable) -> tuple | None:
        """Key of the cell's shared lower bounds (``None``: no bounds)."""
        return None

    def make_task(
        self, cell: Hashable, names: tuple, validate: bool, need_bounds: bool
    ) -> tuple:
        """The worker's argument tuple for measuring ``names`` on ``cell``."""
        raise NotImplementedError

    def dispatch(self, backend) -> "object":
        """Context manager wrapped around task building and dispatch.

        :func:`execute_cells` enters it before the first :meth:`make_task`
        call and exits it after ``backend.map`` returns.  The default is a
        no-op.  Families whose tasks share a large columnar payload
        override it to stage the columns in shared memory
        (:class:`~repro.utils.shm.SharedColumnar`) while the process
        backend fans out, so the payload crosses to the workers once
        through the OS instead of once per task through pickle — see
        :class:`~repro.experiments.replay.ReplayCellFamily`.
        """
        return nullcontext()


@dataclass(frozen=True)
class CellOutcome:
    """Everything :func:`execute_cells` knows about one finished cell.

    ``error`` is ``None`` for healthy cells; a quarantined cell (every
    attempt of a :class:`RetryPolicy` failed) carries the final failure
    message here, keeps whatever records were already cached, and never
    aborts the rest of the campaign.
    """

    bounds: CellBounds | None
    records: dict[str, CellRecord]
    #: Names whose records came from the cache (the rest were measured).
    cached: frozenset[str] = field(default_factory=frozenset)
    #: Quarantine message (``None``: the cell executed normally).
    error: str | None = None

    def __iter__(self):
        """Unpack as ``(bounds, records)`` — the historical result shape."""
        return iter((self.bounds, self.records))


# ---------------------------------------------------------------------- #
# Crash tolerance                                                        #
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class RetryPolicy:
    """Crash-tolerance knobs of a backend.

    A cell attempt that raises (or whose worker process dies) is retried
    up to ``retries`` more times; the delay before attempt ``a`` is
    ``backoff * 2**(a-1)``, scaled by a deterministic jitter in
    ``[1, 1.5)`` derived from the cell index — no RNG state, so two runs
    of the same campaign back off identically.  A cell that exhausts its
    ``1 + retries`` attempts is *quarantined*: its slot in the backend's
    result list becomes a :class:`CellFailure` and the campaign carries
    on.  ``timeout`` bounds one attempt's wall-clock seconds; enforcement
    is backend-specific — the process backend kills the hung worker with
    its pool, the thread backend *marks-and-abandons* (threads cannot be
    killed; see :class:`ThreadBackend`), and the serial backend cannot
    preempt at all and ignores it.
    """

    retries: int = 2
    backoff: float = 0.05
    timeout: float | None = None

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")

    @property
    def attempts(self) -> int:
        return 1 + self.retries

    def delay(self, attempt: int, index: int) -> float:
        """Backoff before retry ``attempt`` (1-based) of cell ``index``."""
        jitter = 1.0 + ((index * 2654435761 + attempt * 40503) % 1024) / 2048
        return self.backoff * (2.0 ** (attempt - 1)) * jitter


@dataclass(frozen=True)
class CellFailure:
    """Terminal failure of one cell: quarantined, not fatal.

    Takes the cell's slot in ``backend.map``'s result list;
    :func:`execute_cells` converts it into :attr:`CellOutcome.error`.
    """

    message: str
    attempts: int = 1

    def __str__(self) -> str:
        return self.message


#: Engine diagnostics logger.  Retry/quarantine messages are emitted at
#: WARNING, which the ``repro`` namespace handlers route to stderr byte
#: for byte as the old ``print(..., file=sys.stderr)`` — CI smoke steps
#: grep them there.
_logger = get_logger("repro.engine")


def _log(message: str) -> None:
    """Engine diagnostics go to stderr (CI greps for retry/quarantine)."""
    _logger.warning("[engine] %s", message)


def _maybe_inject_crash() -> None:
    """Deliberate crash hook for fault-injection tests and CI smoke.

    When ``REPRO_INJECT_CRASH`` names a directory, the first
    ``REPRO_INJECT_CRASH_COUNT`` (default 1) guarded worker calls —
    across every process sharing the directory — claim a marker file
    atomically and die: a worker process hard-exits (simulating a kill),
    an in-process call raises.  Subsequent calls run normally, so a
    retried attempt succeeds.
    """
    marker_dir = os.environ.get("REPRO_INJECT_CRASH")
    if not marker_dir:
        return
    count = int(os.environ.get("REPRO_INJECT_CRASH_COUNT", "1"))
    for i in range(count):
        try:
            fd = os.open(
                os.path.join(marker_dir, f"crash-{i}"),
                os.O_CREAT | os.O_EXCL | os.O_WRONLY,
            )
        except FileExistsError:
            continue
        os.close(fd)
        import multiprocessing

        if multiprocessing.parent_process() is not None:
            os._exit(23)  # a pool worker: die like a real crash
        raise RuntimeError("injected crash (REPRO_INJECT_CRASH)")


def _guarded_call(fn: Callable, item: object):
    """One resilient cell attempt (module-level: picklable for pools)."""
    _maybe_inject_crash()
    return fn(item)


def _attempts_in_process(
    fn: Callable, item: object, index: int, attempt: int, policy: RetryPolicy
):
    """Run one cell in-process under the retry policy, from ``attempt``."""
    while True:
        try:
            return _guarded_call(fn, item)
        except Exception as exc:
            attempt += 1
            state = obs.ACTIVE
            if attempt >= policy.attempts:
                _log(f"cell {index} quarantined after {attempt} attempts: {exc}")
                if state is not None:
                    state.count("cells.quarantined")
                return CellFailure(str(exc), attempts=attempt)
            if state is not None:
                state.count("cells.retries")
            delay = policy.delay(attempt, index)
            _log(
                f"cell {index} failed (attempt {attempt}/{policy.attempts}): "
                f"{exc}; retrying in {delay:.2f}s"
            )
            time.sleep(delay)


# ---------------------------------------------------------------------- #
# Worker-side observability transport                                    #
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class _ObsPayload:
    """A worker's result plus its observability snapshot, riding back
    through the pool's pickle channel as one object."""

    result: object
    snapshot: dict


class _ObsTask:
    """Picklable wrapper around a family worker that captures the worker
    process's spans and counters.

    In the coordinating process (serial backend, or the degraded
    in-process tail of a broken pool) the call passes straight through —
    the parent's live :data:`repro.obs.ACTIVE` state records everything
    in-line, correctly nested under the campaign spans.

    In a pool worker the test is ``multiprocessing.parent_process()``:
    on fork-start platforms the child *inherits* a non-``None``
    ``obs.ACTIVE`` copy from the parent, so "is ACTIVE None" cannot
    distinguish the two.  The worker installs a **fresh** state, runs the
    cell, and returns an :class:`_ObsPayload` whose snapshot the parent
    merges under its dispatch span (:func:`execute_cells` unwraps it).
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable):
        self.fn = fn

    def __call__(self, item):
        if multiprocessing.parent_process() is None:
            return self.fn(item)
        state = obs.enable(fresh=True)
        try:
            result = self.fn(item)
        finally:
            obs.disable()
        return _ObsPayload(result, state.snapshot())


def execute_cells(
    family: CellFamily,
    cells: "Iterable[Hashable]",
    names: "Iterable[str]",
    *,
    validate: bool = False,
    backend: object = None,
    jobs: int | None = None,
    cache: "CellCache | str | os.PathLike | None" = None,
    policy: "RetryPolicy | None" = None,
) -> "dict[Hashable, CellOutcome]":
    """Measure every ``(cell, name)`` pair of one family, uniformly.

    This is the single execution path behind every campaign driver: cache
    lookups decide the work list, the backend runs ``family.worker`` over
    it (serially or across processes), and results merge back into the
    cache.  Guarantees, identical for every family:

    * **Backend equivalence** — serial and process backends produce
      bit-identical records (workers receive plain picklable tuples and
      derive everything from them; only wall-clock fields can differ
      between *fresh* measurements).
    * **Validated-record policy** — a ``validate=True`` call only accepts
      cached records that were themselves measured under validation;
      anything else is re-measured.
    * **Zero re-execution** — with a warm cache (in-memory or a
      :class:`PersistentCellCache` directory) a repeated call measures
      nothing: every record is served as a hit.
    * **Shared bounds** — families whose cells carry instance-level lower
      bounds (``bounds_key`` not ``None``) read and journal them under
      that key, so different families over the same instances share one
      bounds computation.
    * **Quarantine, not abort** — with a :class:`RetryPolicy` (the
      ``policy`` argument, attached to the resolved backend), a cell
      whose every attempt failed yields a :class:`CellOutcome` carrying
      :attr:`~CellOutcome.error` (plus any cached records) instead of
      raising; healthy cells are unaffected.

    With observability enabled (:data:`repro.obs.ACTIVE`), the whole call
    runs under a ``cells:<family>`` span, workers' spans and counters are
    merged back under it (process backend: each worker snapshot lands on
    its own timeline lane, anchored at the dispatch span's start — see
    :class:`_ObsTask`), and cache hits/misses, measured cells and
    quarantines are counted.  None of this changes a single record bit.
    """
    state = obs.ACTIVE
    if state is None:
        return _execute_cells_impl(
            family, cells, names,
            validate=validate, backend=backend, jobs=jobs,
            cache=cache, policy=policy, obs_span=None,
        )
    with state.span("cells:" + family.name, "cell") as span:
        return _execute_cells_impl(
            family, cells, names,
            validate=validate, backend=backend, jobs=jobs,
            cache=cache, policy=policy, obs_span=span,
        )


def _execute_cells_impl(
    family: CellFamily,
    cells: "Iterable[Hashable]",
    names: "Iterable[str]",
    *,
    validate: bool,
    backend: object,
    jobs: int | None,
    cache: "CellCache | str | os.PathLike | None",
    policy: "RetryPolicy | None",
    obs_span,
) -> "dict[Hashable, CellOutcome]":
    backend = resolve_backend(backend, jobs, policy)
    cache = resolve_cache(cache)
    names = tuple(names)
    results: dict[Hashable, CellOutcome] = {}
    work: list[tuple] = []
    work_cells: list[Hashable] = []
    cached_parts: dict[Hashable, dict[str, CellRecord]] = {}
    obs_state = obs.ACTIVE
    hits0 = cache.hits if cache is not None else 0
    misses0 = cache.misses if cache is not None else 0
    worker = family.worker if obs_state is None else _ObsTask(family.worker)

    with family.dispatch(backend):
        for cell in cells:
            have: dict[str, CellRecord] = {}
            missing: list[str] = []
            bkey = family.bounds_key(cell)
            bounds = None
            if cache is not None:
                for name in names:
                    rec = cache.get_record(
                        family.record_key(cell, name), require_validated=validate
                    )
                    if rec is None:
                        missing.append(name)
                    else:
                        have[name] = rec
                if bkey is not None:
                    bounds = cache.get_bounds(bkey)
            else:
                missing = list(names)
            if not missing and (bkey is None or bounds is not None):
                results[cell] = CellOutcome(bounds, have, frozenset(have))
                continue
            cached_parts[cell] = have
            work_cells.append(cell)
            work.append(
                family.make_task(
                    cell, tuple(missing), validate, bkey is not None and bounds is None
                )
            )

        if obs_state is not None and obs_span is not None:
            # Root spans opened on thread-backend worker threads graft
            # under this dispatch span (their own tid lanes), mirroring
            # where merged process-worker snapshots land.
            prev_graft = obs_state.thread_graft
            obs_state.thread_graft = obs_span.sid
            try:
                outputs = backend.map(worker, work)
            finally:
                obs_state.thread_graft = prev_graft
        else:
            outputs = backend.map(worker, work)

    if obs_state is not None and cache is not None:
        state_hits = cache.hits - hits0
        state_misses = cache.misses - misses0
        if state_hits:
            obs_state.count("cells.cache_hit", state_hits)
        if state_misses:
            obs_state.count("cells.cache_miss", state_misses)

    for cell, output in zip(work_cells, outputs):
        if isinstance(output, _ObsPayload):
            # Worker-side spans/counters ride back with the result; graft
            # them under this call's span, anchored where it started.
            if obs_state is not None:
                if obs_span is not None:
                    obs_state.merge(output.snapshot, obs_span.sid, obs_span.t0)
                else:  # pragma: no cover - obs disabled mid-call
                    obs_state.merge(output.snapshot, -1, obs_state.t0)
            output = output.result
        if isinstance(output, CellFailure):
            results[cell] = CellOutcome(
                None,
                dict(cached_parts[cell]),
                frozenset(cached_parts[cell]),
                error=str(output),
            )
            continue
        fresh_bounds, fresh_records = output
        bkey = family.bounds_key(cell)
        bounds = fresh_bounds
        if bounds is None and bkey is not None:
            # The bounds were cached while some records were not.
            assert cache is not None
            bounds = cache.get_bounds(bkey)
        records = dict(cached_parts[cell])
        records.update(fresh_records)
        if obs_state is not None and fresh_records:
            obs_state.count("cells.measured", len(fresh_records))
        if cache is not None:
            if bkey is not None:
                cache.put_bounds(bkey, bounds)
            for name, rec in fresh_records.items():
                cache.put_record(family.record_key(cell, name), rec)
        results[cell] = CellOutcome(
            bounds, records, frozenset(cached_parts[cell])
        )
    return results


class SerialBackend:
    """Run cells in-process, in order (deterministic, no pickling needed).

    With a :class:`RetryPolicy`, each cell runs under the in-process
    retry/quarantine loop (per-cell ``timeout`` cannot be enforced
    without preemption and is ignored); without one, the historical
    plain loop — any worker exception propagates.
    """

    name = "serial"

    def __init__(self, policy: "RetryPolicy | None" = None) -> None:
        self.policy = policy

    def map(self, fn: Callable, items: Iterable) -> list:
        if self.policy is None:
            return [fn(item) for item in items]
        return [
            _attempts_in_process(fn, item, i, 0, self.policy)
            for i, item in enumerate(items)
        ]


class ThreadBackend:
    """Fan cells out over a thread pool inside this process.

    Zero-copy by construction: ``fn`` and the items are shared objects —
    nothing pickles, nothing stages through shared memory, and there is
    no per-worker warmup (the process's imports, JIT artifacts and kernel
    backend selection are already live).  Real parallelism comes from the
    compiled kernel layer releasing the GIL (:mod:`repro.kernels` with
    the ``cffi``/``numba`` backends; NumPy ufuncs release it too), so
    kernel-bound cells overlap; pure-Python cell families still
    interleave correctly, just without speedup.  Result order matches
    item order; records are bit-identical to the serial backend because
    workers derive everything from their argument tuples.

    With a :class:`RetryPolicy` the fan-out is crash-tolerant with the
    same retry/backoff/quarantine arithmetic as the process backend, with
    one necessary difference — **timeout marks-and-abandons**: a thread
    cannot be killed, so an attempt that exceeds ``policy.timeout`` is
    marked failed (counted under ``cells.timeouts``, retried or
    quarantined exactly like a process-backend timeout) while the
    abandoned thread keeps running to completion in the background with
    its eventual result discarded.  A *hung* (never-returning) worker
    therefore leaks its thread until process exit — use the process
    backend when workers are untrusted enough to hang forever.  Unlike a
    pool of processes, the pool itself cannot die: there is no
    pool-death/degrade-to-serial path here.
    """

    name = "thread"

    def __init__(
        self, jobs: int | None = None, policy: "RetryPolicy | None" = None
    ) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs if jobs is not None else default_worker_count()
        self.policy = policy

    def map(self, fn: Callable, items: Iterable) -> list:
        items = list(items)
        if self.policy is not None:
            return self._resilient_map(fn, items)
        if len(items) <= 1 or self.jobs == 1:
            return [fn(item) for item in items]
        with ThreadPoolExecutor(max_workers=min(self.jobs, len(items))) as pool:
            return list(pool.map(fn, items))

    # -- crash-tolerant fan-out ----------------------------------------- #
    def _resilient_map(self, fn: Callable, items: list) -> list:
        """Submit-based fan-out with retry, timeout and quarantine.

        Same invariants as :meth:`ProcessBackend._resilient_map` — every
        item ends with exactly one result (worker return value or
        :class:`CellFailure`) in item order — minus the pool-death
        machinery (threads share this process; the pool cannot break).
        A timed-out attempt is registered as failed and its future
        abandoned; retries are resubmitted to a fresh pool so abandoned
        threads cannot starve them of workers.
        """
        policy = self.policy
        results: dict[int, object] = {}
        pending: deque[tuple[int, int]] = deque((i, 0) for i in range(len(items)))

        while pending:
            batch = list(pending)
            pending.clear()
            pool = ThreadPoolExecutor(max_workers=min(self.jobs, len(batch)))
            futures = [(i, attempt, pool.submit(_guarded_call, fn, items[i]))
                       for i, attempt in batch]
            try:
                for i, attempt, fut in futures:
                    try:
                        results[i] = fut.result(timeout=policy.timeout)
                    except FutureTimeout:
                        # Mark-and-abandon: the thread keeps running; its
                        # eventual result is discarded.
                        _register_failure(
                            policy, pending, results, i, attempt,
                            "cell attempt timed out",
                        )
                    except Exception as exc:  # worker raised
                        _register_failure(
                            policy, pending, results, i, attempt, str(exc)
                        )
            finally:
                # Don't wait: abandoned (timed-out) threads may still be
                # running; unstarted futures of this batch were all
                # consumed above, so cancel_futures is a no-op safety net.
                pool.shutdown(wait=False, cancel_futures=True)

        return [results[i] for i in range(len(items))]


class ProcessBackend:
    """Fan cells out over a process pool.

    ``fn`` and every item must be picklable (the campaign workers are
    module-level functions taking plain tuples).  Result order matches
    item order, so aggregation is deterministic regardless of completion
    order; a single-item batch short-circuits to an in-process call.

    With a :class:`RetryPolicy` the fan-out is crash-tolerant (see
    :meth:`_resilient_map`): worker deaths and per-cell timeouts cost a
    retry instead of the campaign, and a pool that dies twice degrades
    to in-process execution of whatever is left.
    """

    name = "process"

    #: Pool deaths tolerated before degrading to in-process execution.
    max_pool_deaths = 2

    def __init__(
        self, jobs: int | None = None, policy: "RetryPolicy | None" = None
    ) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs if jobs is not None else default_worker_count()
        self.policy = policy

    def map(self, fn: Callable, items: Iterable) -> list:
        items = list(items)
        if self.policy is not None:
            return self._resilient_map(fn, items)
        if len(items) <= 1 or self.jobs == 1:
            return [fn(item) for item in items]
        workers = min(self.jobs, len(items))
        chunksize = max(1, len(items) // (4 * workers))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items, chunksize=chunksize))

    # -- crash-tolerant fan-out ----------------------------------------- #
    def _resilient_map(self, fn: Callable, items: list) -> list:
        """Submit-based fan-out with retry, timeout and quarantine.

        Invariants: every item ends up with exactly one result (a worker
        return value or a :class:`CellFailure`) in item order; a pool
        death (``BrokenProcessPool``, or a timeout — the hung worker is
        killed with its pool) penalises only the cell whose future
        surfaced it, and requeues the other unfinished cells at their
        current attempt count; after :attr:`max_pool_deaths` deaths the
        remainder runs in-process, where attribution is exact.
        """
        policy = self.policy
        results: dict[int, object] = {}
        pending: deque[tuple[int, int]] = deque((i, 0) for i in range(len(items)))
        pool_deaths = 0

        while pending:
            if pool_deaths >= self.max_pool_deaths or self.jobs == 1:
                if pool_deaths:
                    _log(
                        f"process pool died {pool_deaths} times; degrading to "
                        f"serial execution of {len(pending)} remaining cells"
                    )
                while pending:
                    i, attempt = pending.popleft()
                    results[i] = _attempts_in_process(
                        fn, items[i], i, attempt, policy
                    )
                break

            batch = list(pending)
            pending.clear()
            pool = ProcessPoolExecutor(max_workers=min(self.jobs, len(batch)))
            futures = [(i, attempt, pool.submit(_guarded_call, fn, items[i]))
                       for i, attempt in batch]
            died = False
            try:
                for pos, (i, attempt, fut) in enumerate(futures):
                    if died:
                        # The pool is gone: salvage finished futures, requeue
                        # the rest at their current attempt count.
                        if fut.done() and fut.exception() is None:
                            results[i] = fut.result()
                        else:
                            pending.append((i, attempt))
                        continue
                    try:
                        results[i] = fut.result(timeout=policy.timeout)
                    except FutureTimeout:
                        _kill_pool(pool)
                        died = True
                        pool_deaths += 1
                        _register_failure(
                            policy, pending, results, i, attempt,
                            "cell attempt timed out",
                        )
                    except BrokenProcessPool:
                        died = True
                        pool_deaths += 1
                        _register_failure(
                            policy, pending, results, i, attempt,
                            "worker process died (pool broken)",
                        )
                    except Exception as exc:  # worker raised; pool is healthy
                        _register_failure(
                            policy, pending, results, i, attempt, str(exc)
                        )
            finally:
                pool.shutdown(wait=False, cancel_futures=True)

        return [results[i] for i in range(len(items))]


def _register_failure(
    policy: RetryPolicy,
    pending: "deque[tuple[int, int]]",
    results: dict,
    index: int,
    attempt: int,
    message: str,
) -> None:
    """One failed attempt: retry with backoff, or quarantine.

    Shared by the process and thread backends so the retry arithmetic,
    the quarantine threshold, the obs counter keys and the stderr
    messages (CI greps them) stay identical across backends.
    """
    attempt += 1
    state = obs.ACTIVE
    if state is not None and message == "cell attempt timed out":
        state.count("cells.timeouts")
    if attempt >= policy.attempts:
        _log(f"cell {index} quarantined after {attempt} attempts: {message}")
        if state is not None:
            state.count("cells.quarantined")
        results[index] = CellFailure(message, attempts=attempt)
        return
    if state is not None:
        state.count("cells.retries")
    delay = policy.delay(attempt, index)
    _log(
        f"cell {index} failed (attempt {attempt}/{policy.attempts}): "
        f"{message}; retrying in {delay:.2f}s"
    )
    time.sleep(delay)
    pending.append((index, attempt))


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Hard-kill a pool's workers (a hung cell cannot be cancelled)."""
    processes = getattr(pool, "_processes", None) or {}
    for proc in list(processes.values()):
        try:
            proc.kill()
        except Exception:  # pragma: no cover - already dead
            pass


#: Backend name -> factory.
BACKENDS: dict[str, Callable[..., object]] = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}


def resolve_backend(
    backend: object = None,
    jobs: int | None = None,
    policy: "RetryPolicy | None" = None,
):
    """Normalise a backend spec: name, instance, or ``None`` (serial).

    ``policy`` attaches a :class:`RetryPolicy` when the spec names a
    backend to build (an already-constructed instance is passed through
    unchanged, keeping whatever policy it was built with).

    >>> resolve_backend().name
    'serial'
    >>> resolve_backend("process", jobs=2).jobs
    2
    """
    if backend is None:
        return SerialBackend(policy)
    if isinstance(backend, str):
        try:
            factory = BACKENDS[backend]
        except KeyError:
            raise ValueError(
                f"unknown backend {backend!r}; available: {', '.join(BACKENDS)}"
            ) from None
        return factory(policy) if factory is SerialBackend else factory(jobs, policy)
    if hasattr(backend, "map"):
        return backend
    raise TypeError(f"backend must be a name or expose .map(), got {backend!r}")
