"""Campaign execution engine: backends, cells, and the result cache.

A *cell* is the smallest independently reproducible unit of a campaign:
one algorithm run on one generated instance, addressed by
``(seed, kind, n, m, r, algorithm)``.  Because every instance is generated
from the stateless :func:`repro.utils.rng.derive_rng` stream keyed by
``(seed, kind, n, r)``, a cell's result does not depend on which other
cells ran, in which order, or in which process — which is what makes the
two execution backends interchangeable:

* :class:`SerialBackend` — a plain in-process loop (the default; zero
  overhead, exact for tests);
* :class:`ProcessBackend` — a :class:`concurrent.futures.ProcessPoolExecutor`
  fan-out over CPU cores.  Workers receive plain picklable argument tuples
  and return plain records; numbers are guaranteed identical to the serial
  backend (only the wall-clock ``seconds`` measurements differ).

The :class:`CellCache` memoises per-cell records and per-instance lower
bounds, so repeated campaigns — sweeps over algorithm subsets, ablations
re-using the same instances, figure regeneration after adding one point —
only pay for cells they have not seen.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable

__all__ = [
    "CellKey",
    "CellRecord",
    "CellBounds",
    "CellCache",
    "SerialBackend",
    "ProcessBackend",
    "resolve_backend",
    "BACKENDS",
]


@dataclass(frozen=True)
class CellKey:
    """Address of one (instance, algorithm) measurement."""

    seed: int
    kind: str
    n: int
    m: int
    r: int
    algorithm: str

    @property
    def bounds_key(self) -> tuple:
        """Key of the per-instance lower bounds (algorithm-independent)."""
        return (self.seed, self.kind, self.n, self.m, self.r)


@dataclass(frozen=True)
class CellRecord:
    """One algorithm's measurements on one instance.

    ``validated`` records whether the schedule behind these numbers went
    through :func:`repro.core.validation.validate_schedule`; a cache
    lookup under ``validate=True`` refuses records measured without it.
    """

    cmax: float
    minsum: float
    seconds: float
    validated: bool = False


@dataclass(frozen=True)
class CellBounds:
    """Per-instance lower bounds shared by every algorithm's ratios."""

    cmax_lb: float
    minsum_lb: float


class CellCache:
    """In-memory memo of cell records and instance bounds.

    Purely additive; campaigns can share one across calls.  ``hits`` /
    ``misses`` count record lookups (for tests and progress reporting).
    """

    def __init__(self) -> None:
        self._records: dict[CellKey, CellRecord] = {}
        self._bounds: dict[tuple, CellBounds] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._records)

    def get_record(
        self, key: CellKey, *, require_validated: bool = False
    ) -> CellRecord | None:
        """Look up a record; optionally refuse ones measured without
        schedule validation (they count as misses and get re-measured)."""
        rec = self._records.get(key)
        if rec is not None and require_validated and not rec.validated:
            rec = None
        if rec is None:
            self.misses += 1
        else:
            self.hits += 1
        return rec

    def put_record(self, key: CellKey, record: CellRecord) -> None:
        self._records[key] = record

    def get_bounds(self, bounds_key: tuple) -> CellBounds | None:
        return self._bounds.get(bounds_key)

    def put_bounds(self, bounds_key: tuple, bounds: CellBounds) -> None:
        self._bounds[bounds_key] = bounds

    def clear(self) -> None:
        self._records.clear()
        self._bounds.clear()
        self.hits = 0
        self.misses = 0


class SerialBackend:
    """Run cells in-process, in order (deterministic, no pickling needed)."""

    name = "serial"

    def map(self, fn: Callable, items: Iterable) -> list:
        return [fn(item) for item in items]


class ProcessBackend:
    """Fan cells out over a process pool.

    ``fn`` and every item must be picklable (the campaign workers are
    module-level functions taking plain tuples).  Result order matches
    item order, so aggregation is deterministic regardless of completion
    order; a single-item batch short-circuits to an in-process call.
    """

    name = "process"

    def __init__(self, jobs: int | None = None) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)

    def map(self, fn: Callable, items: Iterable) -> list:
        items = list(items)
        if len(items) <= 1 or self.jobs == 1:
            return [fn(item) for item in items]
        workers = min(self.jobs, len(items))
        chunksize = max(1, len(items) // (4 * workers))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items, chunksize=chunksize))


#: Backend name -> factory.
BACKENDS: dict[str, Callable[..., object]] = {
    "serial": SerialBackend,
    "process": ProcessBackend,
}


def resolve_backend(backend: object = None, jobs: int | None = None):
    """Normalise a backend spec: name, instance, or ``None`` (serial).

    >>> resolve_backend().name
    'serial'
    >>> resolve_backend("process", jobs=2).jobs
    2
    """
    if backend is None:
        return SerialBackend()
    if isinstance(backend, str):
        try:
            factory = BACKENDS[backend]
        except KeyError:
            raise ValueError(
                f"unknown backend {backend!r}; available: {', '.join(BACKENDS)}"
            ) from None
        return factory(jobs) if factory is ProcessBackend else factory()
    if hasattr(backend, "map"):
        return backend
    raise TypeError(f"backend must be a name or expose .map(), got {backend!r}")
