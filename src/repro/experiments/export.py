"""Campaign result export (CSV / JSON).

Campaign runs at paper scale take minutes; exporting lets the raw series
be archived with the repository and re-plotted by external tools without
rerunning.  CSV columns are one row per (n, algorithm, criterion):

    workload,n,algorithm,criterion,average,minimum,maximum,mean_seconds

JSON preserves the full nested structure including the per-run lower
bounds (needed to recompute ratio statistics or bootstrap CIs later).
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any

from repro.experiments.aggregate import RatioStats
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    AlgorithmPointStats,
    CampaignResult,
    PointResult,
)

__all__ = ["campaign_to_csv", "campaign_to_json", "campaign_from_json"]

_FORMAT = "repro-campaign"
_VERSION = 1


def campaign_to_csv(result: CampaignResult) -> str:
    """Flatten a campaign to CSV text (one row per point/algorithm/criterion)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(
        [
            "workload",
            "n",
            "algorithm",
            "criterion",
            "average",
            "minimum",
            "maximum",
            "mean_seconds",
        ]
    )
    for point in result.points:
        for s in point.stats:
            for criterion, stats in (("minsum", s.minsum), ("cmax", s.cmax)):
                writer.writerow(
                    [
                        result.workload,
                        point.n,
                        s.algorithm,
                        criterion,
                        f"{stats.average:.6f}",
                        f"{stats.minimum:.6f}",
                        f"{stats.maximum:.6f}",
                        f"{s.mean_seconds:.6f}",
                    ]
                )
    return buf.getvalue()


def campaign_to_json(result: CampaignResult, *, indent: int | None = None) -> str:
    """Serialise a campaign (lossless, including per-run bounds)."""
    doc: dict[str, Any] = {
        "format": _FORMAT,
        "version": _VERSION,
        "workload": result.workload,
        "config": {
            "m": result.config.m,
            "task_counts": list(result.config.task_counts),
            "runs": result.config.runs,
            "algorithms": list(result.config.algorithms),
            "seed": result.config.seed,
        },
        "points": [
            {
                "n": p.n,
                "cmax_bounds": list(p.cmax_bounds),
                "minsum_bounds": list(p.minsum_bounds),
                "stats": [
                    {
                        "algorithm": s.algorithm,
                        "cmax": [s.cmax.average, s.cmax.minimum, s.cmax.maximum],
                        "minsum": [
                            s.minsum.average,
                            s.minsum.minimum,
                            s.minsum.maximum,
                        ],
                        "mean_seconds": s.mean_seconds,
                    }
                    for s in p.stats
                ],
            }
            for p in result.points
        ],
    }
    return json.dumps(doc, indent=indent)


def campaign_from_json(text: str) -> CampaignResult:
    """Inverse of :func:`campaign_to_json`."""
    doc = json.loads(text)
    if doc.get("format") != _FORMAT:
        raise ValueError(f"not a campaign document (format={doc.get('format')!r})")
    if doc.get("version") != _VERSION:
        raise ValueError(f"unsupported campaign version {doc.get('version')!r}")
    cfg = ExperimentConfig(
        m=doc["config"]["m"],
        task_counts=tuple(doc["config"]["task_counts"]),
        runs=doc["config"]["runs"],
        algorithms=tuple(doc["config"]["algorithms"]),
        seed=doc["config"]["seed"],
    )
    points = []
    for p in doc["points"]:
        stats = tuple(
            AlgorithmPointStats(
                algorithm=s["algorithm"],
                cmax=RatioStats(*s["cmax"]),
                minsum=RatioStats(*s["minsum"]),
                mean_seconds=s["mean_seconds"],
            )
            for s in p["stats"]
        )
        points.append(
            PointResult(
                workload=doc["workload"],
                n=p["n"],
                stats=stats,
                cmax_bounds=tuple(p["cmax_bounds"]),
                minsum_bounds=tuple(p["minsum_bounds"]),
            )
        )
    return CampaignResult(workload=doc["workload"], config=cfg, points=tuple(points))
