"""Per-figure experiment drivers.

Each ``figureN`` function regenerates the data behind the corresponding
figure of the paper:

* Figure 3 — weakly parallel workload (DEMT's worst case);
* Figure 4 — highly parallel workload (DEMT's best case on minsum);
* Figure 5 — mixed small-weak / large-high workload (SAF's best case);
* Figure 6 — Cirne–Berman workload (the "realistic" setting);
* Figure 7 — DEMT scheduling wall-clock time vs n on three workloads.

Figures 1 and 2 of the paper are schematics (platform and algorithm
principle), not experiments.

All drivers take an :class:`~repro.experiments.config.ExperimentConfig`;
``resolve_scale()`` provides the paper/quick/smoke presets.  Execution
keywords (``backend=``, ``jobs=``, ``cache=``) flow through to
:func:`~repro.experiments.runner.run_campaign`, so
``figure6(cfg, backend="process")`` regenerates a figure with every core
busy and byte-identical numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.algorithms.demt import DemtScheduler
from repro.experiments.config import ExperimentConfig, resolve_scale
from repro.experiments.engine import resolve_backend
from repro.experiments.runner import CampaignResult, run_campaign
from repro.utils.rng import derive_rng
from repro.workloads.generator import generate_workload

__all__ = [
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "Figure7Result",
    "FIGURES",
]


def figure3(cfg: ExperimentConfig | None = None, **kw: object) -> CampaignResult:
    """Performance ratios on **weakly parallel** tasks (Figure 3)."""
    return run_campaign("weakly_parallel", cfg or resolve_scale(), **kw)


def figure4(cfg: ExperimentConfig | None = None, **kw: object) -> CampaignResult:
    """Performance ratios on **highly parallel** tasks (Figure 4)."""
    return run_campaign("highly_parallel", cfg or resolve_scale(), **kw)


def figure5(cfg: ExperimentConfig | None = None, **kw: object) -> CampaignResult:
    """Performance ratios on the **mixed** workload (Figure 5)."""
    return run_campaign("mixed", cfg or resolve_scale(), **kw)


def figure6(cfg: ExperimentConfig | None = None, **kw: object) -> CampaignResult:
    """Performance ratios on the **Cirne–Berman** workload (Figure 6)."""
    return run_campaign("cirne", cfg or resolve_scale(), **kw)


@dataclass(frozen=True)
class Figure7Result:
    """DEMT scheduling times: ``{workload: [(n, mean seconds), ...]}``."""

    timings: dict[str, list[tuple[int, float]]]
    config: ExperimentConfig

    def max_seconds(self) -> float:
        return max(t for series in self.timings.values() for _, t in series)


#: Workloads shown in Figure 7, with the paper's legend labels.
FIGURE7_WORKLOADS: tuple[str, ...] = ("weakly_parallel", "cirne", "highly_parallel")


def _time_demt_cell(args: tuple) -> float:
    """Worker: DEMT wall-clock on one freshly generated instance."""
    seed, kind, n, m, r = args
    rng = derive_rng(seed, "fig7", kind, n, r)
    inst = generate_workload(kind, n=n, m=m, seed=rng)
    scheduler = DemtScheduler()
    t0 = time.perf_counter()
    scheduler.schedule(inst)
    return time.perf_counter() - t0


def figure7(
    cfg: ExperimentConfig | None = None,
    *,
    repeats: int | None = None,
    backend: object = None,
    jobs: int | None = None,
) -> Figure7Result:
    """DEMT wall-clock scheduling time vs n (Figure 7).

    ``repeats`` instances are timed per point (defaults to ``cfg.runs``
    capped at 10 — timing noise shrinks fast and the paper only eyeballs
    the trend).  A process backend times cells concurrently; expect some
    extra contention noise in exchange for the wall-clock win.
    """
    cfg = cfg or resolve_scale()
    reps = min(cfg.runs, 10) if repeats is None else repeats
    backend_obj = resolve_backend(backend, jobs)
    cells = [
        (cfg.seed, kind, n, cfg.m, r)
        for kind in FIGURE7_WORKLOADS
        for n in cfg.task_counts
        for r in range(reps)
    ]
    seconds = backend_obj.map(_time_demt_cell, cells)
    timings: dict[str, list[tuple[int, float]]] = {}
    i = 0
    for kind in FIGURE7_WORKLOADS:
        series: list[tuple[int, float]] = []
        for n in cfg.task_counts:
            total = sum(seconds[i : i + reps])
            i += reps
            series.append((n, total / reps))
        timings[kind] = series
    return Figure7Result(timings=timings, config=cfg)


#: Registry used by the CLI: figure id -> driver.
FIGURES = {
    "3": figure3,
    "4": figure4,
    "5": figure5,
    "6": figure6,
    "7": figure7,
}
