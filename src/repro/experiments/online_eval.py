"""On-line evaluation: the §2.2 batch framework under varying load.

Not a paper figure — the paper analyses the on-line case theoretically
(the ``2ρ`` batching argument) and deploys it on Icluster2 without
published numbers.  This driver supplies the missing measurement: the
on-line-to-off-line makespan ratio ("price of not knowing the future") as
a function of the arrival intensity, for any off-line engine.

Arrival model: task ``i``'s release is the ``i``-th event of a Poisson
process whose rate is calibrated so all arrivals land within
``horizon_fraction`` of the *off-line* makespan — ``0`` is the off-line
limit (everything at t=0), ``1`` spreads arrivals over the whole
schedule length, large values approach the trickle regime where batching
costs nothing because the machine is starved anyway.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.instance import Instance
from repro.core.schedule import Schedule
from repro.experiments.engine import CellFamily, CellKey, CellRecord, execute_cells
from repro.simulator.online import get_policy
from repro.utils.rng import derive_rng
from repro.workloads.generator import generate_workload

__all__ = [
    "OnlineEvalPoint",
    "OnlineSweepFamily",
    "evaluate_online",
    "evaluate_trace_online",
    "DEFAULT_FRACTIONS",
]

#: Arrival-horizon sweep used by the bench.
DEFAULT_FRACTIONS: tuple[float, ...] = (0.0, 0.25, 0.5, 1.0, 2.0)


@dataclass(frozen=True)
class OnlineEvalPoint:
    """Aggregated measurements at one arrival intensity."""

    horizon_fraction: float
    mean_ratio: float  # on-line Cmax / off-line Cmax (mean over runs)
    max_ratio: float
    mean_batches: float

    def __post_init__(self) -> None:
        if self.mean_ratio > self.max_ratio + 1e-12:
            raise ValueError("mean ratio exceeds max ratio")


def _online_cell(args: tuple):
    """Worker: one seeded run at one arrival intensity.

    Top-level so the process backend can ship it; the ``offline`` engine
    travels inside the args tuple and must then be picklable (module-level
    functions and the library's scheduler classes are).
    """
    offline, policy, kind, n, m, frac, r, seed, names = args
    rng = derive_rng(seed, "online", kind, n, int(frac * 1000), r)
    base = generate_workload(kind, n=n, m=m, seed=rng)
    off = offline(base)
    off_cmax = off.makespan()
    if frac == 0.0:
        releases = np.zeros(n)
    else:
        gaps = rng.exponential(1.0, size=n)
        releases = np.sort(gaps.cumsum() / gaps.sum() * frac * off_cmax)
    inst = Instance.from_arrays(
        base.times_matrix, base.weights, releases, m, task_ids=base.task_ids
    )
    result = get_policy(policy, offline=offline).run(inst)
    record = CellRecord(
        cmax=result.schedule.makespan() / off_cmax,
        minsum=float(result.n_batches),
        seconds=0.0,
    )
    return None, {name: record for name in names}


class OnlineSweepFamily(CellFamily):
    """The arrival-sweep family: ``(fraction, r)`` cells, the measured
    on-line/off-line ratio stored in ``cmax`` and the batch count in
    ``minsum`` (no instance bounds — the off-line run is the reference).

    The record name (the ``algorithm`` field of the cell key) is the
    off-line engine's label for the paper's batch policy — the historical
    key, so warm caches stay valid — and ``policy:<name>:<label>`` for
    every other policy, whose identity the engine label alone cannot
    encode.
    """

    name = "online"
    worker = staticmethod(_online_cell)

    def __init__(
        self, offline: Callable, policy: str, kind: str, n: int, m: int, seed: int
    ) -> None:
        self.offline = offline
        self.policy = str(policy)
        self.kind = str(kind)
        self.n = int(n)
        self.m = int(m)
        self.seed = int(seed)

    @staticmethod
    def record_name(label: str | None, policy: str) -> str | None:
        if label is None:
            return None
        return label if policy == "batch" else f"policy:{policy}:{label}"

    def record_key(self, cell, name: str) -> CellKey:
        frac, r = cell
        return CellKey(
            self.seed, f"online:{self.kind}:{frac!r}", self.n, self.m, r, name
        )

    def make_task(self, cell, names, validate, need_bounds) -> tuple:
        frac, r = cell
        return (
            self.offline, self.policy, self.kind, self.n, self.m, frac, r,
            self.seed, names,
        )


def _offline_label(offline: Callable) -> str | None:
    """Stable cache label for the off-line engine, or ``None``.

    ``None`` means "not cacheable".  Only plain module-level functions
    (e.g. :func:`repro.algorithms.demt.schedule_demt`) qualify: their
    name pins their semantics.  Everything else is rejected — lambdas all
    share one qualname, and bound methods or other callables carry
    *configuration* the name cannot see (``DemtScheduler(compaction=
    "shelf").schedule`` and ``DemtScheduler(compaction="list").schedule``
    label identically but measure different engines), so caching them
    would silently serve one engine's numbers for another.
    """
    import types

    if not isinstance(offline, types.FunctionType):
        return None
    label = f"{offline.__module__}.{offline.__qualname__}"
    if "<lambda>" in label or "<locals>" in label:
        return None
    return label


def evaluate_online(
    offline: Callable[[Instance], Schedule],
    *,
    policy: str = "batch",
    kind: str = "cirne",
    n: int = 60,
    m: int = 32,
    runs: int = 5,
    fractions: tuple[float, ...] = DEFAULT_FRACTIONS,
    seed: int = 1,
    backend: object = None,
    jobs: int | None = None,
    cache: object = None,
) -> list[OnlineEvalPoint]:
    """Sweep arrival horizons; return one point per fraction.

    ``policy`` selects the on-line discipline from the
    :data:`~repro.simulator.online.ONLINE_POLICIES` registry (default: the
    paper's batch framework); the instances and their off-line reference
    schedules are identical across policies, so points of different
    policies are directly comparable.  The theoretical envelope of the
    batch policy for ``fraction <= 1`` is ``ratio <= 2`` plus lower-order
    terms (the §2.2 argument: the last two batches each cost at most one
    off-line makespan).  The whole ``fractions x runs`` grid is dispatched
    through one :func:`~repro.experiments.engine.execute_cells` batch;
    with ``backend="process"`` the ``offline`` callable must be picklable.

    ``cache`` (a :class:`~repro.experiments.engine.CellCache` or directory
    path) memoises each ``(fraction, r)`` measurement under the cell key
    ``(seed, "online:<kind>:<fraction>", n, m, r, <record name>)``, with
    the ratio stored in the ``cmax`` field and the batch count in
    ``minsum`` — a repeated sweep re-executes nothing.  Only plain
    module-level engine *functions* are cached; lambdas, closures, and
    bound methods (whose instance configuration the name cannot encode)
    are measured but never journalled, because an ambiguous key could
    serve one engine's numbers for another.
    """
    label = _offline_label(offline)
    record_name = OnlineSweepFamily.record_name(label, policy)
    name = record_name or f"policy:{policy}:<uncached>"
    outcomes = execute_cells(
        OnlineSweepFamily(offline, policy, kind, n, m, seed),
        [(frac, r) for frac in fractions for r in range(runs)],
        (name,),
        backend=backend,
        jobs=jobs,
        cache=cache if record_name is not None else None,
    )

    points: list[OnlineEvalPoint] = []
    for frac in fractions:
        recs = [outcomes[(frac, r)].records[name] for r in range(runs)]
        points.append(
            OnlineEvalPoint(
                horizon_fraction=frac,
                mean_ratio=float(np.mean([rec.cmax for rec in recs])),
                max_ratio=float(np.max([rec.cmax for rec in recs])),
                mean_batches=float(np.mean([int(rec.minsum) for rec in recs])),
            )
        )
    return points


def evaluate_trace_online(
    offline: Callable[[Instance], Schedule],
    source: object,
    *,
    policy: str = "batch",
    m: int | None = None,
    model: str = "rigid",
    window: tuple[int, int] | None = None,
    backend: object = None,
    jobs: int | None = None,
    cache: object = None,
) -> OnlineEvalPoint:
    """The on-line measurement of :func:`evaluate_online`, on a real trace.

    Instead of a synthetic Poisson arrival process, the arrival stream
    comes from an SWF log (path, text, or a loaded
    :class:`~repro.workloads.trace.Trace`), lifted to moldable tasks by
    ``model``.  Both replay cells — the on-line run (``policy`` selects
    the discipline, default the paper's batch framework) with real
    release dates, and the clairvoyant off-line bound — go through
    :func:`repro.experiments.replay.replay_trace`, so they are cached and
    backend-dispatched like every other cell.

    Returns one :class:`OnlineEvalPoint` whose ``horizon_fraction`` is the
    *measured* arrival span over the clairvoyant makespan (the quantity
    the synthetic sweep controls by construction); ``mean_ratio`` ==
    ``max_ratio`` (one trace is one sample).
    """
    from repro.experiments.replay import _as_trace, replay_trace

    trace = _as_trace(source)
    if window is not None:
        trace = trace.window(*window)
    batch, clair = replay_trace(
        trace,
        m=m,
        models=model,
        modes=(policy, "clairvoyant"),
        offline=offline,
        backend=backend,
        jobs=jobs,
        cache=cache,
    )
    if clair.makespan <= 0:
        raise ValueError("cannot form an on-line ratio on an empty trace")
    ratio = batch.makespan / clair.makespan
    # Arrival span relative to the off-line bound: the trace analogue of
    # the synthetic sweep's horizon_fraction knob.
    return OnlineEvalPoint(
        horizon_fraction=trace.span / clair.makespan,
        mean_ratio=ratio,
        max_ratio=ratio,
        mean_batches=float(batch.n_batches),
    )


def format_online_table(points: list[OnlineEvalPoint]) -> str:
    """Printable sweep table."""
    lines = [
        "On-line batching: Cmax(on-line) / Cmax(off-line) vs arrival horizon",
        f"{'horizon':>8} {'mean':>8} {'max':>8} {'batches':>8}",
        "-" * 36,
    ]
    for p in points:
        lines.append(
            f"{p.horizon_fraction:>8.2f} {p.mean_ratio:>8.3f} "
            f"{p.max_ratio:>8.3f} {p.mean_batches:>8.1f}"
        )
    return "\n".join(lines) + "\n"
