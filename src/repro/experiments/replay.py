"""Trace-replay campaigns: archive logs through the on-line framework.

The production story of the paper — DEMT inside the Shmoys–Wein–Williamson
batch wrapper, scheduling real arrival streams on Icluster2 — replayed in
simulation from any SWF log.  One *replay cell* is the smallest
reproducible unit: one trace window, one moldability model, one replay
mode, one off-line engine.  Because trace loading is pure (columnar
parse), moldability reconstruction is RNG-free, and the engines are
deterministic, a cell's numbers are a pure function of its key — so cells
are cacheable and backend-interchangeable exactly like the synthetic
campaign cells of :mod:`repro.experiments.runner`:

* **cell key** — ``CellKey(seed=0, kind="trace:<digest16>:<model>:<mode>",
  n=<window size>, m, r=<window offset>, algorithm=<engine label>)``.  The
  digest is the trace's content digest (see
  :class:`repro.workloads.trace.Trace`), so renaming or moving a log file
  never invalidates its cells, and editing one job always does.
* **record** — makespan in ``cmax``, the total flow ``sum (C_i - r_i)``
  in ``minsum``, the batch count in ``batches``.

Replay modes (the on-line policy axis):

``batch``
    The real thing: the :class:`~repro.simulator.online.BatchPolicy`
    kernel with the trace submit times as release dates.
``clairvoyant``
    The omniscient baseline: one off-line schedule of the whole window,
    started at the first arrival.  It relaxes release dates (jobs may
    start before they exist), which is exactly what makes it a lower
    bound — the on-line/clairvoyant makespan ratio is the measured "price
    of not knowing the future" (the §2.2 analysis bounds it by ``2ρ``).
``fcfs`` / ``fcfs-backfill`` / ``greedy-interval``
    Every other zero-configuration policy of the
    :data:`~repro.simulator.online.ONLINE_POLICIES` registry, replayed
    under identical arrivals — what production clusters actually ran,
    measured beside the paper's wrapper on the same cells.

Replay cells are one family of the :func:`~repro.experiments.engine.
execute_cells` protocol (:class:`ReplayCellFamily`), so backends, caching
and journalling behave exactly like every other campaign family.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.algorithms.demt import schedule_demt
from repro.algorithms.gang import schedule_gang
from repro.algorithms.sequential import schedule_sequential
from repro.algorithms.wspt import schedule_wspt
from repro.core.validation import validate_schedule
from repro.exceptions import ModelError
from repro.experiments.engine import (
    CellFamily,
    CellKey,
    CellRecord,
    execute_cells,
    resolve_cache,
)
from repro.io.swf import write_swf
from repro.simulator.online import ONLINE_POLICIES, ZERO_CONFIG_POLICIES, get_policy
from repro.workloads.trace import (
    MOLDABILITY_MODELS,
    SharedTraceHandle,
    Trace,
    load_trace,
    resolve_trace,
    trace_instance,
)

__all__ = [
    "ReplayResult",
    "ReplayCellFamily",
    "replay_trace",
    "replay_cell_key",
    "export_replay_swf",
    "REPLAY_MODES",
    "REPLAY_ENGINES",
]

#: Supported replay modes: ``clairvoyant`` (the omniscient off-line bound)
#: plus every zero-configuration registry policy — ``batch`` is the
#: paper's framework, the rest are the on-line baselines.
REPLAY_MODES = ("batch", "clairvoyant") + tuple(
    p for p in ZERO_CONFIG_POLICIES if p != "batch"
)

#: Named off-line engines for the CLI: module-level functions only, so
#: every one of them has a stable cache label.
REPLAY_ENGINES: dict[str, Callable] = {
    "demt": schedule_demt,
    "gang": schedule_gang,
    "sequential": schedule_sequential,
    "wspt": schedule_wspt,
}


@dataclass(frozen=True)
class ReplayResult:
    """Aggregates of one replay cell.

    ``weighted_flow`` is ``sum_i w_i (C_i - r_i)`` (SWF jobs carry unit
    weights, so this is the total flow time); ``minsum`` is the library's
    usual ``sum_i w_i C_i``, recovered as ``weighted_flow + sum_i w_i r_i``
    so cached cells reproduce it without storing a second aggregate.
    In clairvoyant mode flow terms can be negative for individual jobs
    (the relaxation may finish a job before it arrived) — the mode is a
    bound, not a feasible execution.
    """

    digest: str
    offset: int
    n_jobs: int
    m: int
    model: str
    mode: str
    engine: str
    makespan: float
    weighted_flow: float
    release_sum: float
    n_batches: int
    seconds: float
    cached: bool = False

    @property
    def minsum(self) -> float:
        return self.weighted_flow + self.release_sum

    @property
    def mean_flow(self) -> float:
        return self.weighted_flow / self.n_jobs if self.n_jobs else 0.0

    @property
    def jobs_per_sec(self) -> float:
        """Replay throughput: jobs scheduled per wall-clock second.

        ``seconds`` is the pure policy/engine time measured by
        :func:`_measure` (trace loading and instance construction are
        excluded), so this is the number the event-spine benchmarks
        report.  Zero-duration cells (cached or degenerate) report 0.0
        rather than dividing by zero.
        """
        return self.n_jobs / self.seconds if self.seconds > 0 else 0.0


def _engine_label(offline: Callable) -> str | None:
    """Stable cache label for the engine, or ``None`` (not cacheable)."""
    from repro.experiments.online_eval import _offline_label

    return _offline_label(offline)


def replay_cell_key(
    trace: Trace, m: int, model: str, mode: str, engine_label: str
) -> CellKey:
    """Address of one replay cell (see the module docstring)."""
    return CellKey(
        seed=0,
        kind=f"trace:{trace.digest[:16]}:{model}:{mode}",
        n=trace.n,
        m=m,
        r=trace.offset,
        algorithm=engine_label,
    )


def _measure(
    trace: Trace, m: int, model: str, mode: str, offline: Callable, validate: bool
) -> tuple[tuple[float, float, int, float], "object"]:
    """One (trace window, model, mode) measurement.

    Returns ``((makespan, weighted_flow, n_batches, seconds), schedule)``;
    every float is a deterministic function of the inputs, so serial and
    process backends — and the SWF export path, which reuses this and the
    schedule it hands back — agree bit for bit.
    """
    if mode in ONLINE_POLICIES:
        policy = get_policy(mode, offline=offline)
        inst = trace_instance(trace, m, model, online=True)
        t0 = time.perf_counter()
        result = policy.run(inst)
        seconds = time.perf_counter() - t0
        sched = result.schedule
        if validate:
            validate_schedule(sched, inst)
        flow = float(sum(p.task.weight * (p.end - p.task.release) for p in sched))
        return (sched.makespan(), flow, result.n_batches, seconds), sched
    if mode == "clairvoyant":
        inst = trace_instance(trace, m, model, online=False)
        t0 = time.perf_counter()
        sched = offline(inst)
        seconds = time.perf_counter() - t0
        if validate:
            validate_schedule(sched, inst)
        shift = float(trace.submits.min()) if trace.n else 0.0
        makespan = (sched.makespan() + shift) if len(sched) else 0.0
        # C_i = end_i + shift against the *real* releases r_i.
        flow = float(
            sum(p.task.weight * (p.end + shift) for p in sched)
        ) - float(trace.submits.sum())
        return (makespan, flow, 1 if len(sched) else 0, seconds), sched
    raise ModelError(f"unknown replay mode {mode!r}; available: {', '.join(REPLAY_MODES)}")


def _replay_cell(args: tuple):
    """Worker: one replay cell's record (top-level and picklable, so the
    process backend can fan replay cells out across cores).  Under that
    backend the trace arrives as zero-copy views over the family's shared
    block (a :class:`~repro.workloads.trace.SharedTraceHandle` unpickles
    straight into a :class:`Trace`); in-process calls unwrap the handle."""
    trace, m, model, mode, offline, validate, names = args
    (makespan, flow, batches, seconds), _ = _measure(
        resolve_trace(trace), m, model, mode, offline, validate
    )
    record = CellRecord(
        cmax=makespan,
        minsum=flow,
        seconds=seconds,
        validated=validate,
        batches=batches,
    )
    return None, {name: record for name in names}


class ReplayCellFamily(CellFamily):
    """The trace-replay family: ``(model, mode)`` cells on one trace
    window, records addressed by :func:`replay_cell_key` (no instance
    bounds — the clairvoyant mode *is* the bound)."""

    name = "replay"
    worker = staticmethod(_replay_cell)

    def __init__(self, trace: Trace, m: int, offline: Callable) -> None:
        self.trace = trace
        self.m = int(m)
        self.offline = offline
        self._ship: SharedTraceHandle | None = None

    def record_key(self, cell, name: str) -> CellKey:
        model, mode = cell
        return replay_cell_key(self.trace, self.m, model, mode, name)

    def dispatch(self, backend):
        """Stage the trace columns in shared memory for a process fan-out.

        Every task of this family references the same trace; without this
        the process backend re-pickles all five columns per task.  The
        serial and thread backends take the no-staging fast path: their
        workers share this process's trace object directly (the thread
        backend's zero-copy property), so staging would only add copies.
        """
        if getattr(backend, "name", "") != "process" or self.trace.n == 0:
            return nullcontext()
        return self._shared_dispatch()

    @contextmanager
    def _shared_dispatch(self):
        self._ship = SharedTraceHandle(self.trace)
        try:
            yield
        finally:
            ship, self._ship = self._ship, None
            ship.release()

    def make_task(self, cell, names, validate, need_bounds) -> tuple:
        model, mode = cell
        trace = self._ship if self._ship is not None else self.trace
        return (trace, self.m, model, mode, self.offline, validate, names)


def _as_trace(source: "Trace | str | object") -> Trace:
    return source if isinstance(source, Trace) else load_trace(source)


def _normalize(values: "str | Sequence[str]", universe: Iterable[str], what: str) -> list[str]:
    universe = list(universe)
    if isinstance(values, str):
        values = universe if values == "all" else [values]
    out = list(values)
    for v in out:
        if v not in universe:
            raise ModelError(f"unknown {what} {v!r}; available: {', '.join(universe)}")
    return out


def replay_trace(
    source: "Trace | str",
    *,
    m: int | None = None,
    models: "str | Sequence[str]" = "rigid",
    modes: "str | Sequence[str]" = "batch",
    offline: Callable = schedule_demt,
    window: tuple[int, int] | None = None,
    validate: bool = False,
    backend: object = None,
    jobs: int | None = None,
    cache: object = None,
) -> list[ReplayResult]:
    """Replay a trace under a grid of moldability models and modes.

    Parameters
    ----------
    source:
        A :class:`~repro.workloads.trace.Trace`, an SWF file path, or SWF
        text.
    m:
        Machine size; defaults to the log's ``MaxProcs`` header (falling
        back to the widest job).  Jobs wider than ``m`` are clamped.
    models / modes:
        One name, a sequence, or ``"all"`` — the cross product is the
        campaign grid, dispatched through ``backend`` in one batch.
    window:
        ``(offset, count)`` restriction of the trace (the cell key keeps
        the window coordinates, so windows cache independently).
    cache:
        A :class:`~repro.experiments.engine.CellCache` or directory path;
        replay cells persist next to the synthetic campaign cells.  Cells
        are only cacheable when ``offline`` is a module-level function
        (same rule, and same reason, as
        :func:`~repro.experiments.online_eval.evaluate_online`).

    Returns one :class:`ReplayResult` per ``(model, mode)``, in grid
    order.  Aggregates are bit-identical across backends and across
    repeat calls — the determinism the trace-level test corpus pins.
    """
    trace = _as_trace(source)
    if window is not None:
        trace = trace.window(*window)
    m = trace.resolve_m(m)
    model_list = _normalize(models, MOLDABILITY_MODELS, "moldability model")
    mode_list = _normalize(modes, REPLAY_MODES, "replay mode")

    label = _engine_label(offline)
    engine = label or getattr(offline, "__name__", repr(offline))
    release_sum = float(trace.submits.sum()) if trace.n else 0.0

    grid = [(model, mode) for model in model_list for mode in mode_list]
    outcomes = execute_cells(
        ReplayCellFamily(trace, m, offline),
        grid,
        (engine,),
        validate=validate,
        backend=backend,
        jobs=jobs,
        # An ambiguous engine label could serve one engine's numbers for
        # another, so only named module-level engines are journalled.
        cache=cache if label is not None else None,
    )
    results = []
    for model, mode in grid:
        out = outcomes[(model, mode)]
        rec = out.records[engine]
        results.append(
            ReplayResult(
                digest=trace.digest,
                offset=trace.offset,
                n_jobs=trace.n,
                m=m,
                model=model,
                mode=mode,
                engine=engine,
                makespan=rec.cmax,
                weighted_flow=rec.minsum,
                release_sum=release_sum,
                n_batches=rec.batches,
                seconds=rec.seconds,
                cached=bool(out.cached),
            )
        )
    return results


def export_replay_swf(
    source: "Trace | str",
    *,
    m: int | None = None,
    model: str = "rigid",
    offline: Callable = schedule_demt,
    window: tuple[int, int] | None = None,
    validate: bool = False,
    cache: object = None,
) -> str:
    """Replay (batch mode) and export the simulated execution as SWF text.

    The round trip — archive log in, simulated archive log out — lets
    standard archive tooling compare the real execution with the
    simulated one field by field.  The export carries the original submit
    times as release dates and parses back losslessly through
    :func:`repro.io.swf.read_swf`.

    ``cache`` (same spec as :func:`replay_trace`) is *seeded* with the
    run's aggregates: a subsequent ``replay_trace`` over the same cell
    serves them as a hit instead of re-running the scheduler — the CLI
    exports first and tabulates second for exactly this reason.
    """
    trace = _as_trace(source)
    if window is not None:
        trace = trace.window(*window)
    m = trace.resolve_m(m)
    (makespan, flow, batches, seconds), sched = _measure(
        trace, m, model, "batch", offline, validate
    )
    cache = resolve_cache(cache)
    label = _engine_label(offline)
    if cache is not None and label is not None:
        cache.put_record(
            replay_cell_key(trace, m, model, "batch", label),
            CellRecord(
                cmax=makespan,
                minsum=flow,
                seconds=seconds,
                validated=validate,
                batches=batches,
            ),
        )
    return write_swf(sched, m=m)
