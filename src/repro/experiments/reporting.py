"""Rendering of campaign results as tables and ASCII charts.

A campaign table prints, for every n and algorithm, the average (min-max)
performance ratio for both criteria — the same rows one would read off a
figure of the paper.  The chart form reproduces the figures' visual layout
(two panels per workload: ``sum w_i C_i`` ratio on top, ``Cmax`` ratio
below).
"""

from __future__ import annotations

from repro.experiments.runner import CampaignResult
from repro.utils.ascii_plot import ascii_chart

__all__ = [
    "format_point_rows",
    "format_campaign_table",
    "format_campaign_charts",
    "format_timing_table",
    "format_replay_table",
    "format_policy_front_table",
    "format_robustness_table",
    "format_front_table",
    "format_indicator_table",
    "format_front_charts",
]


def format_point_rows(result: CampaignResult, criterion: str) -> list[str]:
    """One text row per (n, algorithm): ``n  algo  avg  [min, max]``."""
    rows = []
    for point in result.points:
        for s in point.stats:
            stats = s.cmax if criterion == "cmax" else s.minsum
            rows.append(
                f"{point.n:>5}  {s.algorithm:<16} "
                f"{stats.average:7.3f}  [{stats.minimum:6.3f}, {stats.maximum:6.3f}]"
            )
    return rows


def format_campaign_table(result: CampaignResult) -> str:
    """Full two-criteria table for one workload family."""
    cfg = result.config
    lines = [
        f"Workload: {result.workload}   m={cfg.m}   runs/point={cfg.runs}",
        "",
        f"{'n':>5}  {'algorithm':<16} {'SwiCi avg':>9}  {'[min, max]':>16}"
        f"   {'Cmax avg':>9}  {'[min, max]':>16}",
        "-" * 82,
    ]
    for point in result.points:
        for s in point.stats:
            lines.append(
                f"{point.n:>5}  {s.algorithm:<16} "
                f"{s.minsum.average:9.3f}  [{s.minsum.minimum:6.3f}, {s.minsum.maximum:6.3f}]"
                f"   {s.cmax.average:9.3f}  [{s.cmax.minimum:6.3f}, {s.cmax.maximum:6.3f}]"
            )
        lines.append("-" * 82)
    return "\n".join(lines) + "\n"


def format_campaign_charts(result: CampaignResult) -> str:
    """The figure's two panels as ASCII charts (minsum above, Cmax below)."""
    panels = []
    for criterion, label in (("minsum", "sum w_i C_i ratio"), ("cmax", "Cmax ratio")):
        series = {
            name: [(n, st.average) for n, st in result.series(name, criterion)]
            for name in result.config.algorithms
        }
        panels.append(
            ascii_chart(
                series,
                title=f"{result.workload} — {label} vs number of tasks",
                y_label=label,
            )
        )
    return "\n".join(panels)


def format_replay_table(results) -> str:
    """Trace-replay grid: one row per (moldability model, mode).

    When a model's clairvoyant bound is on the table, every on-line
    policy row also prints its on-line/clairvoyant makespan ratio — the
    measured price of not knowing the future (§2.2 bounds the batch
    policy's by ``2 rho``).
    """
    results = list(results)
    header = (
        f"{'model':<18} {'mode':<16} {'jobs':>6} {'batches':>7} "
        f"{'Cmax':>12} {'mean flow':>12} {'ratio':>7} {'cache':>6}"
    )
    lines = []
    if results:
        r0 = results[0]
        lines.append(
            f"Trace replay: digest {r0.digest[:12]}  window "
            f"({r0.offset}, {r0.n_jobs})  m={r0.m}  engine {r0.engine}"
        )
    lines += [header, "-" * len(header)]
    clair = {
        r.model: r.makespan for r in results if r.mode == "clairvoyant"
    }
    for r in results:
        base = clair.get(r.model)
        ratio = (
            f"{r.makespan / base:7.3f}"
            if r.mode != "clairvoyant" and base
            else f"{'-':>7}"
        )
        lines.append(
            f"{r.model:<18} {r.mode:<16} {r.n_jobs:>6} {r.n_batches:>7} "
            f"{r.makespan:>12.4f} {r.mean_flow:>12.4f} {ratio} "
            f"{'hit' if r.cached else 'miss':>6}"
        )
    return "\n".join(lines) + "\n"


def format_policy_front_table(result) -> str:
    """On-line policy front: one row per (policy[, engine]) spec.

    ``ratio`` is the measured price of not knowing the future —
    makespan over the clairvoyant off-line bound of the same window
    (the §2.2 analysis bounds the batch policy's by ``2 rho``); ``*``
    marks specs on the (makespan, mean flow) Pareto front.
    """
    header = (
        f"{'policy':<28} {'Cmax':>12} {'mean flow':>12} {'ratio':>7} {'front':>6}"
    )
    lines = [
        f"On-line policy front: {result.source}  m={result.m}  "
        f"model {result.model}  clairvoyant Cmax "
        f"{result.clairvoyant_makespan:.4f}",
        header,
        "-" * len(header),
    ]
    for row in result.rows():
        lines.append(
            f"{row['spec']:<28} {row['makespan']:>12.4f} "
            f"{row['mean_flow']:>12.4f} {row['ratio']:>7.3f} "
            f"{'*' if row['on_front'] else '':>6}"
        )
    return "\n".join(lines) + "\n"


def format_robustness_table(result) -> str:
    """Robustness campaign: per-cell rows plus the per-engine summary.

    Each row compares one ``(cell, engine)`` pair's nominal and degraded
    makespan; ``degr`` is their ratio (the measured price of the faults).
    Quarantined cells — the engine's retry budget ran out — print
    ``QUARANTINED`` in place of numbers; they are marked, never dropped.
    The summary aggregates the healthy cells per engine and stars the
    engines on the (nominal, degraded) Pareto front.
    """
    header = (
        f"{'cell':<24} {'engine':<12} {'nominal':>10} {'degraded':>10} "
        f"{'degr':>6} {'crash':>5} {'batches':>7}"
    )
    lines = [
        f"Robustness campaign: scenario {result.scenario.spec}   "
        f"cells={len(result.rows) // max(len(result.engines), 1)}   "
        f"quarantined={result.n_quarantined}",
        header,
        "-" * len(header),
    ]
    for row in result.rows:
        cell = f"{row.kind} n={row.n} r={row.r}"
        if row.quarantined:
            lines.append(f"{cell:<24} {row.engine:<12} {'QUARANTINED':>21}")
            continue
        lines.append(
            f"{cell:<24} {row.engine:<12} {row.nominal_cmax:>10.4f} "
            f"{row.degraded_cmax:>10.4f} {row.degradation:>6.3f} "
            f"{row.crashes:>5} {row.batches:>7}"
        )
    lines.append("-" * len(header))
    points = result.engine_points()
    front = result.front()
    for engine in result.engines:
        if engine not in points:
            lines.append(f"{'  ' + engine:<24} {'(all cells quarantined)'}")
            continue
        nom, deg = points[engine]
        degr = deg / nom if nom > 0 else float("nan")
        mark = "  *front*" if engine in front else ""
        lines.append(
            f"{'  ' + engine:<24} mean nominal {nom:>10.4f}   "
            f"mean degraded {deg:>10.4f}   degr {degr:>6.3f}{mark}"
        )
    lines.append(
        f"total restarts-from-scratch across healthy cells: "
        f"{result.total_crashes}"
    )
    return "\n".join(lines) + "\n"


def format_front_table(result) -> str:
    """Pareto sweep grid: one row per variant, aggregated across cells.

    ``on-front`` is the fraction of instance cells where the variant is
    non-dominated; ``eps+`` / ``eps*`` are its mean additive /
    multiplicative gaps behind the cell front (0 / 1 when on it);
    ``cover`` is the mean fraction of the cloud it weakly dominates
    (see :meth:`repro.pareto.sweep.ParetoSweepResult.variant_rows`).
    """
    header = (
        f"{'variant':<28} {'Cmax':>7} {'SwiCi':>7} {'on-front':>9} "
        f"{'eps+':>7} {'eps*':>7} {'cover':>6}"
    )
    lines = [
        f"Pareto sweep: {result.source}   m={result.m}   "
        f"variants={len(result.specs)}   cells={len(result.cells)}",
        header,
        "-" * len(header),
    ]
    for row in result.variant_rows():
        lines.append(
            f"{row['spec']:<28} {row['cmax_ratio']:>7.3f} {row['minsum_ratio']:>7.3f} "
            f"{row['on_front']:>8.0%} {row['eps_add']:>7.3f} {row['eps_mult']:>7.3f} "
            f"{row['coverage']:>6.2f}"
        )
    return "\n".join(lines) + "\n"


def format_indicator_table(result) -> str:
    """Per-cell front-quality indicators plus the sweep-level summary."""
    header = (
        f"{'cell':<34} {'front':>5} {'hypervol':>9} {'ref':>17} "
        f"{'front variants'}"
    )
    lines = [header, "-" * 82]
    for cell in result.cells:
        ind = cell.indicators()
        members = ", ".join(cell.front_specs)
        lines.append(
            f"{cell.kind[:24] + f' n={cell.n} r={cell.r}':<34} "
            f"{int(ind['front_size']):>5} {ind['hypervolume']:>9.4f} "
            f"({ind['ref_x']:6.3f},{ind['ref_y']:6.3f}) {members}"
        )
    summary = result.indicator_summary()
    lines.append("-" * 82)
    lines.append(
        f"mean front size {summary['mean_front_size']:.2f}   "
        f"mean hypervolume {summary['mean_hypervolume']:.4f}   "
        f"over {int(summary['cells'])} cells"
    )
    return "\n".join(lines) + "\n"


def format_front_charts(result) -> str:
    """ASCII frontier charts: the first cell's cloud plus the mean
    attainment surface across all cells."""
    from repro.pareto.front import pareto_front
    from repro.utils.ascii_plot import ascii_front

    cell = result.cells[0]
    panels = [
        ascii_front(
            cell.cloud,
            cell.front,
            title=(
                f"{result.source} n={cell.n} r={cell.r}: "
                "Cmax ratio (x) vs SwiCi ratio (y)"
            ),
        )
    ]
    if len(result.cells) > 1:
        xs, ys = result.attainment("mean")
        surface = list(zip(xs.tolist(), ys.tolist()))
        panels.append(
            ascii_front(
                surface,
                pareto_front(surface),
                title=f"{result.source}: mean attainment surface "
                f"({len(result.cells)} cells)",
            )
        )
    return "\n".join(panels)


def format_timing_table(
    timings: dict[str, list[tuple[int, float]]],
) -> str:
    """Figure 7: DEMT scheduling time (seconds) per workload and n."""
    kinds = list(timings)
    ns = sorted({n for series in timings.values() for n, _ in series})
    header = f"{'n':>6} " + " ".join(f"{k:>18}" for k in kinds)
    lines = ["DEMT scheduling wall-clock time (seconds)", header, "-" * len(header)]
    as_dict = {k: dict(v) for k, v in timings.items()}
    for n in ns:
        cells = " ".join(
            f"{as_dict[k].get(n, float('nan')):>18.4f}" for k in kinds
        )
        lines.append(f"{n:>6} {cells}")
    return "\n".join(lines) + "\n"
