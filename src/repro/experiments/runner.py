"""Campaign runner.

One *run* = one generated instance, scheduled by every algorithm, compared
against both lower bounds.  One *point* = ``cfg.runs`` runs at a given
(workload, n).  One *campaign* = all points of a workload family — the data
behind one of Figures 3-6 (both panels).  DEMT's wall-clock scheduling time
is recorded on the side, feeding Figure 7.

Determinism: the instance of run ``r`` at point ``(kind, n)`` is generated
from ``derive_rng(seed, kind, n, r)``, so any single run can be regenerated
independently of campaign order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
import numpy as np

from repro.algorithms.dual_approx import dual_approximation
from repro.algorithms.list_graham import ListGrahamScheduler
from repro.algorithms.registry import get_algorithm
from repro.bounds.minsum_lp import minsum_lower_bound
from repro.core.validation import validate_schedule
from repro.experiments.aggregate import RatioStats, aggregate_ratios
from repro.experiments.config import ExperimentConfig
from repro.utils.rng import derive_rng
from repro.workloads.generator import generate_workload

__all__ = [
    "RunRecord",
    "AlgorithmPointStats",
    "PointResult",
    "CampaignResult",
    "run_point",
    "run_campaign",
]


@dataclass(frozen=True)
class RunRecord:
    """Raw measurements of one algorithm on one instance."""

    algorithm: str
    cmax: float
    minsum: float
    seconds: float  # scheduling wall-clock (Figure 7 uses DEMT's)


@dataclass(frozen=True)
class AlgorithmPointStats:
    """Aggregated ratios of one algorithm at one (workload, n) point."""

    algorithm: str
    cmax: RatioStats
    minsum: RatioStats
    mean_seconds: float


@dataclass(frozen=True)
class PointResult:
    """Everything measured at one (workload, n) point."""

    workload: str
    n: int
    stats: tuple[AlgorithmPointStats, ...]
    cmax_bounds: tuple[float, ...]  # per-run dual-approximation LBs
    minsum_bounds: tuple[float, ...]  # per-run LP LBs

    def for_algorithm(self, name: str) -> AlgorithmPointStats:
        for s in self.stats:
            if s.algorithm == name:
                return s
        raise KeyError(f"algorithm {name!r} not in point result")


@dataclass(frozen=True)
class CampaignResult:
    """All points of one workload family (one paper figure)."""

    workload: str
    config: ExperimentConfig
    points: tuple[PointResult, ...]

    def series(self, algorithm: str, criterion: str) -> list[tuple[int, RatioStats]]:
        """(n, stats) series for one algorithm, ``criterion`` in
        {"cmax", "minsum"} — one curve of a figure panel."""
        if criterion not in ("cmax", "minsum"):
            raise ValueError(f"criterion must be 'cmax' or 'minsum', got {criterion!r}")
        out = []
        for p in self.points:
            s = p.for_algorithm(algorithm)
            out.append((p.n, s.cmax if criterion == "cmax" else s.minsum))
        return out


def run_point(
    kind: str,
    n: int,
    cfg: ExperimentConfig,
    *,
    validate: bool = False,
) -> PointResult:
    """Run all algorithms over ``cfg.runs`` fresh instances at ``(kind, n)``.

    ``validate`` additionally feasibility-checks every schedule (slower;
    the test suite turns it on, campaigns rely on the algorithms' own
    guarantees which the suite already certifies).
    """
    per_algo: dict[str, list[RunRecord]] = {name: [] for name in cfg.algorithms}
    cmax_bounds: list[float] = []
    minsum_bounds: list[float] = []

    for r in range(cfg.runs):
        rng = derive_rng(cfg.seed, kind, n, r)
        inst = generate_workload(kind, n=n, m=cfg.m, seed=rng)

        dual = dual_approximation(inst)
        cmax_lb = dual.lower_bound
        minsum_lb = minsum_lower_bound(inst, dual.lam).value
        cmax_bounds.append(cmax_lb)
        minsum_bounds.append(minsum_lb)

        for name in cfg.algorithms:
            scheduler = get_algorithm(name)
            # Share the dual-approximation with the list baselines (their
            # published definition uses the [7] allotments; recomputing
            # would triple the cost for identical results).
            if isinstance(scheduler, ListGrahamScheduler):
                scheduler.dual = dual
            t0 = time.perf_counter()
            sched = scheduler.schedule(inst)
            seconds = time.perf_counter() - t0
            if validate:
                validate_schedule(sched, inst)
            per_algo[name].append(
                RunRecord(
                    algorithm=name,
                    cmax=sched.makespan(),
                    minsum=sched.weighted_completion_sum(),
                    seconds=seconds,
                )
            )

    stats = tuple(
        AlgorithmPointStats(
            algorithm=name,
            cmax=aggregate_ratios([rec.cmax for rec in recs], cmax_bounds),
            minsum=aggregate_ratios([rec.minsum for rec in recs], minsum_bounds),
            mean_seconds=float(np.mean([rec.seconds for rec in recs])),
        )
        for name, recs in per_algo.items()
    )
    return PointResult(
        workload=kind,
        n=n,
        stats=stats,
        cmax_bounds=tuple(cmax_bounds),
        minsum_bounds=tuple(minsum_bounds),
    )


def run_campaign(
    kind: str,
    cfg: ExperimentConfig,
    *,
    validate: bool = False,
    progress: bool = False,
) -> CampaignResult:
    """Run every point of one workload family (one figure's data)."""
    points = []
    for n in cfg.task_counts:
        if progress:  # pragma: no cover - cosmetic
            print(f"  [{kind}] n={n} ({cfg.runs} runs)...", flush=True)
        points.append(run_point(kind, n, cfg, validate=validate))
    return CampaignResult(workload=kind, config=cfg, points=tuple(points))
