"""Campaign runner.

One *run* = one generated instance, scheduled by every algorithm, compared
against both lower bounds.  One *point* = ``cfg.runs`` runs at a given
(workload, n).  One *campaign* = all points of a workload family — the data
behind one of Figures 3-6 (both panels).  DEMT's wall-clock scheduling time
is recorded on the side, feeding Figure 7.

Determinism: the instance of run ``r`` at point ``(kind, n)`` is generated
from ``derive_rng(seed, kind, n, r)``, so any single run can be regenerated
independently of campaign order — and therefore in any process.  The
execution itself goes through :func:`run_cells`, which takes an
:mod:`~repro.experiments.engine` backend (``"serial"`` by default,
``"process"`` to scale a campaign across cores) and an optional
:class:`~repro.experiments.engine.CellCache` so repeated campaigns and
ablations only pay for cells they have not measured yet.  Both backends
produce identical numbers; only the wall-clock ``seconds`` fields differ.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass

import numpy as np

from repro.algorithms.dual_approx import dual_approximation
from repro.algorithms.list_graham import ListGrahamScheduler
from repro.algorithms.registry import get_algorithm
from repro.bounds.minsum_lp import minsum_lower_bound
from repro.core.validation import validate_schedule
from repro.experiments.aggregate import RatioStats, aggregate_ratios
from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import (
    CellBounds,
    CellCache,
    CellFamily,
    CellKey,
    CellRecord,
    execute_cells,
    resolve_backend,
)
from repro.utils.rng import derive_rng
from repro.workloads.generator import generate_workload

__all__ = [
    "RunRecord",
    "AlgorithmPointStats",
    "PointResult",
    "CampaignResult",
    "CampaignCellFamily",
    "ParetoCellFamily",
    "run_cells",
    "run_pareto_cells",
    "run_point",
    "run_campaign",
]


@dataclass(frozen=True)
class RunRecord:
    """Raw measurements of one algorithm on one instance."""

    algorithm: str
    cmax: float
    minsum: float
    seconds: float  # scheduling wall-clock (Figure 7 uses DEMT's)


@dataclass(frozen=True)
class AlgorithmPointStats:
    """Aggregated ratios of one algorithm at one (workload, n) point."""

    algorithm: str
    cmax: RatioStats
    minsum: RatioStats
    mean_seconds: float


@dataclass(frozen=True)
class PointResult:
    """Everything measured at one (workload, n) point."""

    workload: str
    n: int
    stats: tuple[AlgorithmPointStats, ...]
    cmax_bounds: tuple[float, ...]  # per-run dual-approximation LBs
    minsum_bounds: tuple[float, ...]  # per-run LP LBs

    def for_algorithm(self, name: str) -> AlgorithmPointStats:
        for s in self.stats:
            if s.algorithm == name:
                return s
        raise KeyError(f"algorithm {name!r} not in point result")


@dataclass(frozen=True)
class CampaignResult:
    """All points of one workload family (one paper figure)."""

    workload: str
    config: ExperimentConfig
    points: tuple[PointResult, ...]

    def series(self, algorithm: str, criterion: str) -> list[tuple[int, RatioStats]]:
        """(n, stats) series for one algorithm, ``criterion`` in
        {"cmax", "minsum"} — one curve of a figure panel."""
        if criterion not in ("cmax", "minsum"):
            raise ValueError(f"criterion must be 'cmax' or 'minsum', got {criterion!r}")
        out = []
        for p in self.points:
            s = p.for_algorithm(algorithm)
            out.append((p.n, s.cmax if criterion == "cmax" else s.minsum))
        return out


# ---------------------------------------------------------------------- #
# Cell execution                                                         #
# ---------------------------------------------------------------------- #
def _run_cell(args: tuple) -> tuple[CellBounds | None, dict[str, CellRecord]]:
    """Worker: measure one instance under a set of algorithms.

    Top-level (picklable) so the process backend can ship it.  ``args`` is
    ``(seed, kind, n, m, r, algorithms, validate, need_bounds)``.
    """
    seed, kind, n, m, r, algorithms, validate, need_bounds = args
    rng = derive_rng(seed, kind, n, r)
    inst = generate_workload(kind, n=n, m=m, seed=rng)

    schedulers = [(name, get_algorithm(name)) for name in algorithms]
    # The dual approximation is only computed when something consumes it:
    # the lower bounds, or a list baseline sharing its allotments (their
    # published definition uses the [7] allotments; recomputing would
    # triple the cost for identical results).
    dual = None
    if need_bounds or any(
        isinstance(s, ListGrahamScheduler) for _, s in schedulers
    ):
        dual = dual_approximation(inst)
    bounds = None
    if need_bounds:
        bounds = CellBounds(
            cmax_lb=dual.lower_bound,
            minsum_lb=minsum_lower_bound(inst, dual.lam).value,
        )

    records: dict[str, CellRecord] = {}
    for name, scheduler in schedulers:
        if isinstance(scheduler, ListGrahamScheduler):
            scheduler.dual = dual
        t0 = time.perf_counter()
        sched = scheduler.schedule(inst)
        seconds = time.perf_counter() - t0
        if validate:
            validate_schedule(sched, inst)
        records[name] = CellRecord(
            cmax=sched.makespan(),
            minsum=sched.weighted_completion_sum(),
            seconds=seconds,
            validated=validate,
        )
    return bounds, records


class CampaignCellFamily(CellFamily):
    """The figure/ablation family: ``(kind, n, r)`` cells, every algorithm
    measured on the seeded synthetic instance, records cached under the
    plain algorithm name and instance bounds under the standard bounds
    key ``(seed, kind, n, m, r)`` (shared with the Pareto sweeps)."""

    name = "campaign"
    worker = staticmethod(_run_cell)

    def __init__(self, seed: int, m: int) -> None:
        self.seed = int(seed)
        self.m = int(m)

    def record_key(self, cell, name: str) -> CellKey:
        kind, n, r = cell
        return CellKey(self.seed, kind, n, self.m, r, name)

    def bounds_key(self, cell) -> tuple:
        kind, n, r = cell
        return (self.seed, kind, n, self.m, r)

    def make_task(self, cell, names, validate, need_bounds) -> tuple:
        kind, n, r = cell
        return (self.seed, kind, n, self.m, r, names, validate, need_bounds)


def run_cells(
    cells: list[tuple[str, int, int]],
    cfg: ExperimentConfig,
    *,
    validate: bool = False,
    backend: object = None,
    jobs: int | None = None,
    cache: CellCache | None = None,
) -> dict[tuple[str, int, int], tuple[CellBounds, dict[str, CellRecord]]]:
    """Measure every ``(kind, n, r)`` cell under all ``cfg.algorithms``.

    The campaign instantiation of :func:`~repro.experiments.engine.
    execute_cells`: records are cached under the plain algorithm name, and
    ``cache`` may also be a directory path — it is then opened as a
    :class:`~repro.experiments.engine.PersistentCellCache`, so the results
    survive the process and a repeated campaign re-executes nothing.
    """
    outcomes = execute_cells(
        CampaignCellFamily(cfg.seed, cfg.m),
        cells,
        tuple(cfg.algorithms),
        validate=validate,
        backend=backend,
        jobs=jobs,
        cache=cache,
    )
    return {cell: (out.bounds, out.records) for cell, out in outcomes.items()}


# ---------------------------------------------------------------------- #
# Pareto sweep cells                                                     #
# ---------------------------------------------------------------------- #
def _run_pareto_cell(args: tuple) -> tuple[CellBounds | None, dict[str, CellRecord]]:
    """Worker: measure one instance under a set of sweep variants.

    ``args`` is ``(seed, kind, n, m, r, specs, validate, need_bounds,
    payload)``.  ``payload`` is ``None`` for synthetic kinds — the
    instance then comes from the exact ``derive_rng(seed, kind, n, r)``
    stream of :func:`_run_cell`, which is what makes the bounds key
    shareable with the figure campaigns — or ``(trace, model)`` for a
    ``trace:`` kind (a :class:`~repro.workloads.trace.Trace` ships as
    plain picklable arrays, like the replay workers).
    """
    from repro.pareto.sweep import parse_variant

    seed, kind, n, m, r, specs, validate, need_bounds, payload = args
    if payload is None:
        rng = derive_rng(seed, kind, n, r)
        inst = generate_workload(kind, n=n, m=m, seed=rng)
    else:
        from repro.workloads.trace import resolve_trace, trace_instance

        trace, model = payload
        inst = trace_instance(resolve_trace(trace), m, model, online=False)

    schedulers = [(spec, parse_variant(spec).build()) for spec in specs]
    # Share one dual approximation across the bounds and every list
    # baseline variant, exactly as :func:`_run_cell` does — and outside
    # the timing window, so the recorded seconds stay comparable to the
    # campaign records sitting beside these in the shared cache.
    dual = None
    if need_bounds or any(
        isinstance(s, ListGrahamScheduler) for _, s in schedulers
    ):
        dual = dual_approximation(inst)
    bounds = None
    if need_bounds:
        bounds = CellBounds(
            cmax_lb=dual.lower_bound,
            minsum_lb=minsum_lower_bound(inst, dual.lam).value,
        )

    records: dict[str, CellRecord] = {}
    for spec, scheduler in schedulers:
        if isinstance(scheduler, ListGrahamScheduler):
            scheduler.dual = dual
        t0 = time.perf_counter()
        sched = scheduler.schedule(inst)
        seconds = time.perf_counter() - t0
        if validate:
            validate_schedule(sched, inst)
        records[spec] = CellRecord(
            cmax=sched.makespan(),
            minsum=sched.weighted_completion_sum(),
            seconds=seconds,
            validated=validate,
        )
    return bounds, records


class ParetoCellFamily(CampaignCellFamily):
    """The trade-off sweep family: same ``(kind, n, r)`` cells and the same
    shared bounds key as the campaigns, but the measured axis is a set of
    :class:`~repro.pareto.sweep.SweepVariant` spec strings cached under
    ``pareto:<spec>``; ``payloads`` carries the ``(trace, model)`` instance
    material of ``trace:`` kinds into the worker tuple."""

    name = "pareto"
    worker = staticmethod(_run_pareto_cell)

    def __init__(
        self, seed: int, m: int, payloads: dict[str, object] | None = None
    ) -> None:
        super().__init__(seed, m)
        self.payloads = payloads or {}
        self._shipped: dict[str, object] | None = None

    def record_key(self, cell, name: str) -> CellKey:
        kind, n, r = cell
        return CellKey(self.seed, kind, n, self.m, r, f"pareto:{name}")

    def dispatch(self, backend):
        """Stage each payload trace in shared memory for a process fan-out
        (one block per ``trace:`` kind, shared by all that kind's cells).
        Serial and thread dispatch take the no-staging fast path — their
        workers read this process's payload objects directly."""
        if getattr(backend, "name", "") != "process" or not self.payloads:
            return nullcontext()
        return self._shared_dispatch()

    @contextmanager
    def _shared_dispatch(self):
        from repro.workloads.trace import SharedTraceHandle

        handles = []
        shipped = {}
        for kind, payload in self.payloads.items():
            trace, model = payload
            handle = SharedTraceHandle(trace)
            handles.append(handle)
            shipped[kind] = (handle, model)
        self._shipped = shipped
        try:
            yield
        finally:
            self._shipped = None
            for handle in handles:
                handle.release()

    def make_task(self, cell, names, validate, need_bounds) -> tuple:
        kind, n, r = cell
        payloads = self._shipped if self._shipped is not None else self.payloads
        return (
            self.seed, kind, n, self.m, r, names, validate, need_bounds,
            payloads.get(kind),
        )


def run_pareto_cells(
    cells: list[tuple[str, int, int]],
    variants: "list",
    *,
    seed: int,
    m: int,
    validate: bool = False,
    backend: object = None,
    jobs: int | None = None,
    cache: CellCache | None = None,
    payloads: dict[str, object] | None = None,
) -> dict[tuple[str, int, int], tuple[CellBounds, dict[str, CellRecord]]]:
    """Measure every ``(kind, n, r)`` cell under all sweep ``variants``.

    The Pareto instantiation of :func:`~repro.experiments.engine.
    execute_cells`: the measured axis is a set of
    :class:`~repro.pareto.sweep.SweepVariant` configurations instead of
    registry algorithms.  Records are cached under
    ``CellKey(..., algorithm="pareto:<spec>")``; per-instance lower
    bounds live under the standard bounds key and are therefore *shared*
    with the campaign runner and the ablations.  ``payloads`` maps
    ``trace:`` kinds to their ``(trace, model)`` instance material.
    """
    from repro.pareto.sweep import SweepVariant

    specs = tuple(
        v.spec if isinstance(v, SweepVariant) else str(v) for v in variants
    )
    outcomes = execute_cells(
        ParetoCellFamily(seed, m, payloads),
        cells,
        specs,
        validate=validate,
        backend=backend,
        jobs=jobs,
        cache=cache,
    )
    return {cell: (out.bounds, out.records) for cell, out in outcomes.items()}


# ---------------------------------------------------------------------- #
# Point / campaign drivers                                               #
# ---------------------------------------------------------------------- #
def _assemble_point(
    kind: str,
    n: int,
    cfg: ExperimentConfig,
    cell_results: dict[tuple[str, int, int], tuple[CellBounds, dict[str, CellRecord]]],
) -> PointResult:
    """Fold per-cell results into the aggregated point statistics."""
    cmax_bounds = []
    minsum_bounds = []
    per_algo: dict[str, list[CellRecord]] = {name: [] for name in cfg.algorithms}
    for r in range(cfg.runs):
        bounds, records = cell_results[(kind, n, r)]
        cmax_bounds.append(bounds.cmax_lb)
        minsum_bounds.append(bounds.minsum_lb)
        for name in cfg.algorithms:
            per_algo[name].append(records[name])

    stats = tuple(
        AlgorithmPointStats(
            algorithm=name,
            cmax=aggregate_ratios([rec.cmax for rec in recs], cmax_bounds),
            minsum=aggregate_ratios([rec.minsum for rec in recs], minsum_bounds),
            mean_seconds=float(np.mean([rec.seconds for rec in recs])),
        )
        for name, recs in per_algo.items()
    )
    return PointResult(
        workload=kind,
        n=n,
        stats=stats,
        cmax_bounds=tuple(cmax_bounds),
        minsum_bounds=tuple(minsum_bounds),
    )


def run_point(
    kind: str,
    n: int,
    cfg: ExperimentConfig,
    *,
    validate: bool = False,
    backend: object = None,
    jobs: int | None = None,
    cache: CellCache | None = None,
) -> PointResult:
    """Run all algorithms over ``cfg.runs`` fresh instances at ``(kind, n)``.

    ``validate`` additionally feasibility-checks every schedule (slower;
    the test suite turns it on, campaigns rely on the algorithms' own
    guarantees which the suite already certifies).  ``backend`` / ``jobs``
    select the executor; ``cache`` enables cross-campaign memoisation.
    """
    cells = [(kind, n, r) for r in range(cfg.runs)]
    cell_results = run_cells(
        cells, cfg, validate=validate, backend=backend, jobs=jobs, cache=cache
    )
    return _assemble_point(kind, n, cfg, cell_results)


def run_campaign(
    kind: str,
    cfg: ExperimentConfig,
    *,
    validate: bool = False,
    progress: bool = False,
    backend: object = None,
    jobs: int | None = None,
    cache: CellCache | None = None,
) -> CampaignResult:
    """Run every point of one workload family (one figure's data).

    All ``len(task_counts) * runs`` cells are dispatched through the
    backend in one batch, so a process pool keeps every core busy across
    point boundaries instead of draining at each ``n``.
    """
    cells = [(kind, n, r) for n in cfg.task_counts for r in range(cfg.runs)]
    if progress:  # pragma: no cover - cosmetic
        backend_obj = resolve_backend(backend, jobs)
        print(
            f"  [{kind}] {len(cells)} cells x {len(cfg.algorithms)} algorithms "
            f"({backend_obj.name} backend)...",
            flush=True,
        )
    cell_results = run_cells(
        cells, cfg, validate=validate, backend=backend, jobs=jobs, cache=cache
    )
    points = [
        _assemble_point(kind, n, cfg, cell_results) for n in cfg.task_counts
    ]
    return CampaignResult(workload=kind, config=cfg, points=tuple(points))
