"""Campaign runner.

One *run* = one generated instance, scheduled by every algorithm, compared
against both lower bounds.  One *point* = ``cfg.runs`` runs at a given
(workload, n).  One *campaign* = all points of a workload family — the data
behind one of Figures 3-6 (both panels).  DEMT's wall-clock scheduling time
is recorded on the side, feeding Figure 7.

Determinism: the instance of run ``r`` at point ``(kind, n)`` is generated
from ``derive_rng(seed, kind, n, r)``, so any single run can be regenerated
independently of campaign order — and therefore in any process.  The
execution itself goes through :func:`run_cells`, which takes an
:mod:`~repro.experiments.engine` backend (``"serial"`` by default,
``"process"`` to scale a campaign across cores) and an optional
:class:`~repro.experiments.engine.CellCache` so repeated campaigns and
ablations only pay for cells they have not measured yet.  Both backends
produce identical numbers; only the wall-clock ``seconds`` fields differ.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.algorithms.dual_approx import dual_approximation
from repro.algorithms.list_graham import ListGrahamScheduler
from repro.algorithms.registry import get_algorithm
from repro.bounds.minsum_lp import minsum_lower_bound
from repro.core.validation import validate_schedule
from repro.experiments.aggregate import RatioStats, aggregate_ratios
from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import (
    CellBounds,
    CellCache,
    CellKey,
    CellRecord,
    resolve_backend,
    resolve_cache,
)
from repro.utils.rng import derive_rng
from repro.workloads.generator import generate_workload

__all__ = [
    "RunRecord",
    "AlgorithmPointStats",
    "PointResult",
    "CampaignResult",
    "run_cells",
    "run_pareto_cells",
    "run_point",
    "run_campaign",
]


@dataclass(frozen=True)
class RunRecord:
    """Raw measurements of one algorithm on one instance."""

    algorithm: str
    cmax: float
    minsum: float
    seconds: float  # scheduling wall-clock (Figure 7 uses DEMT's)


@dataclass(frozen=True)
class AlgorithmPointStats:
    """Aggregated ratios of one algorithm at one (workload, n) point."""

    algorithm: str
    cmax: RatioStats
    minsum: RatioStats
    mean_seconds: float


@dataclass(frozen=True)
class PointResult:
    """Everything measured at one (workload, n) point."""

    workload: str
    n: int
    stats: tuple[AlgorithmPointStats, ...]
    cmax_bounds: tuple[float, ...]  # per-run dual-approximation LBs
    minsum_bounds: tuple[float, ...]  # per-run LP LBs

    def for_algorithm(self, name: str) -> AlgorithmPointStats:
        for s in self.stats:
            if s.algorithm == name:
                return s
        raise KeyError(f"algorithm {name!r} not in point result")


@dataclass(frozen=True)
class CampaignResult:
    """All points of one workload family (one paper figure)."""

    workload: str
    config: ExperimentConfig
    points: tuple[PointResult, ...]

    def series(self, algorithm: str, criterion: str) -> list[tuple[int, RatioStats]]:
        """(n, stats) series for one algorithm, ``criterion`` in
        {"cmax", "minsum"} — one curve of a figure panel."""
        if criterion not in ("cmax", "minsum"):
            raise ValueError(f"criterion must be 'cmax' or 'minsum', got {criterion!r}")
        out = []
        for p in self.points:
            s = p.for_algorithm(algorithm)
            out.append((p.n, s.cmax if criterion == "cmax" else s.minsum))
        return out


# ---------------------------------------------------------------------- #
# Cell execution                                                         #
# ---------------------------------------------------------------------- #
def _run_cell(args: tuple) -> tuple[CellBounds | None, dict[str, CellRecord]]:
    """Worker: measure one instance under a set of algorithms.

    Top-level (picklable) so the process backend can ship it.  ``args`` is
    ``(seed, kind, n, m, r, algorithms, validate, need_bounds)``.
    """
    seed, kind, n, m, r, algorithms, validate, need_bounds = args
    rng = derive_rng(seed, kind, n, r)
    inst = generate_workload(kind, n=n, m=m, seed=rng)

    schedulers = [(name, get_algorithm(name)) for name in algorithms]
    # The dual approximation is only computed when something consumes it:
    # the lower bounds, or a list baseline sharing its allotments (their
    # published definition uses the [7] allotments; recomputing would
    # triple the cost for identical results).
    dual = None
    if need_bounds or any(
        isinstance(s, ListGrahamScheduler) for _, s in schedulers
    ):
        dual = dual_approximation(inst)
    bounds = None
    if need_bounds:
        bounds = CellBounds(
            cmax_lb=dual.lower_bound,
            minsum_lb=minsum_lower_bound(inst, dual.lam).value,
        )

    records: dict[str, CellRecord] = {}
    for name, scheduler in schedulers:
        if isinstance(scheduler, ListGrahamScheduler):
            scheduler.dual = dual
        t0 = time.perf_counter()
        sched = scheduler.schedule(inst)
        seconds = time.perf_counter() - t0
        if validate:
            validate_schedule(sched, inst)
        records[name] = CellRecord(
            cmax=sched.makespan(),
            minsum=sched.weighted_completion_sum(),
            seconds=seconds,
            validated=validate,
        )
    return bounds, records


def _execute_cached_cells(
    cells: list[tuple[str, int, int]],
    names: tuple,
    *,
    seed: int,
    m: int,
    validate: bool,
    backend: object,
    jobs: int | None,
    cache: "CellCache | None",
    worker: "Callable",
    record_key: "Callable[[str], str]",
    extra_args: "Callable[[str], tuple]",
) -> dict[tuple[str, int, int], tuple[CellBounds, dict[str, CellRecord]]]:
    """The executor scaffolding shared by every cell family.

    Cache lookups decide the work list, the backend runs ``worker`` over
    it (serially or across processes), results merge back into the cache.
    A ``validate=True`` call only accepts cached records that were
    themselves measured under validation; anything else is re-measured.

    ``record_key`` maps a measured name to the ``algorithm`` field of its
    :class:`~repro.experiments.engine.CellKey` (identity for campaign
    cells, ``pareto:<spec>`` for sweep cells); ``extra_args`` appends
    per-``kind`` trailing arguments to the worker tuple (the trace
    payload of a pareto cell).  Per-instance bounds always live under the
    shared standard bounds key.
    """
    backend = resolve_backend(backend, jobs)
    cache = resolve_cache(cache)
    results: dict[tuple[str, int, int], tuple[CellBounds, dict[str, CellRecord]]] = {}
    work: list[tuple] = []
    work_cells: list[tuple[str, int, int]] = []
    cached_parts: dict[tuple[str, int, int], dict[str, CellRecord]] = {}

    for cell in cells:
        kind, n, r = cell
        have: dict[str, CellRecord] = {}
        missing: list[str] = []
        if cache is not None:
            for name in names:
                key = CellKey(seed, kind, n, m, r, record_key(name))
                rec = cache.get_record(key, require_validated=validate)
                if rec is None:
                    missing.append(name)
                else:
                    have[name] = rec
            bounds = cache.get_bounds((seed, kind, n, m, r))
        else:
            missing = list(names)
            bounds = None
        if not missing and bounds is not None:
            results[cell] = (bounds, have)
            continue
        cached_parts[cell] = have
        work_cells.append(cell)
        work.append(
            (seed, kind, n, m, r, tuple(missing), validate, bounds is None)
            + extra_args(kind)
        )

    outputs = backend.map(worker, work)

    for cell, (fresh_bounds, fresh_records) in zip(work_cells, outputs):
        kind, n, r = cell
        bounds = fresh_bounds
        if bounds is None:  # bounds were cached, records were not
            assert cache is not None
            bounds = cache.get_bounds((seed, kind, n, m, r))
        records = dict(cached_parts[cell])
        records.update(fresh_records)
        if cache is not None:
            cache.put_bounds((seed, kind, n, m, r), bounds)
            for name, rec in fresh_records.items():
                cache.put_record(CellKey(seed, kind, n, m, r, record_key(name)), rec)
        results[cell] = (bounds, records)
    return results


def run_cells(
    cells: list[tuple[str, int, int]],
    cfg: ExperimentConfig,
    *,
    validate: bool = False,
    backend: object = None,
    jobs: int | None = None,
    cache: CellCache | None = None,
) -> dict[tuple[str, int, int], tuple[CellBounds, dict[str, CellRecord]]]:
    """Measure every ``(kind, n, r)`` cell under all ``cfg.algorithms``.

    The campaign instantiation of :func:`_execute_cached_cells`: records
    are cached under the plain algorithm name, and ``cache`` may also be
    a directory path — it is then opened as a
    :class:`~repro.experiments.engine.PersistentCellCache`, so the results
    survive the process and a repeated campaign re-executes nothing.
    """
    return _execute_cached_cells(
        cells,
        tuple(cfg.algorithms),
        seed=cfg.seed,
        m=cfg.m,
        validate=validate,
        backend=backend,
        jobs=jobs,
        cache=cache,
        worker=_run_cell,
        record_key=lambda name: name,
        extra_args=lambda kind: (),
    )


# ---------------------------------------------------------------------- #
# Pareto sweep cells                                                     #
# ---------------------------------------------------------------------- #
def _run_pareto_cell(args: tuple) -> tuple[CellBounds | None, dict[str, CellRecord]]:
    """Worker: measure one instance under a set of sweep variants.

    ``args`` is ``(seed, kind, n, m, r, specs, validate, need_bounds,
    payload)``.  ``payload`` is ``None`` for synthetic kinds — the
    instance then comes from the exact ``derive_rng(seed, kind, n, r)``
    stream of :func:`_run_cell`, which is what makes the bounds key
    shareable with the figure campaigns — or ``(trace, model)`` for a
    ``trace:`` kind (a :class:`~repro.workloads.trace.Trace` ships as
    plain picklable arrays, like the replay workers).
    """
    from repro.pareto.sweep import parse_variant

    seed, kind, n, m, r, specs, validate, need_bounds, payload = args
    if payload is None:
        rng = derive_rng(seed, kind, n, r)
        inst = generate_workload(kind, n=n, m=m, seed=rng)
    else:
        from repro.workloads.trace import trace_instance

        trace, model = payload
        inst = trace_instance(trace, m, model, online=False)

    schedulers = [(spec, parse_variant(spec).build()) for spec in specs]
    # Share one dual approximation across the bounds and every list
    # baseline variant, exactly as :func:`_run_cell` does — and outside
    # the timing window, so the recorded seconds stay comparable to the
    # campaign records sitting beside these in the shared cache.
    dual = None
    if need_bounds or any(
        isinstance(s, ListGrahamScheduler) for _, s in schedulers
    ):
        dual = dual_approximation(inst)
    bounds = None
    if need_bounds:
        bounds = CellBounds(
            cmax_lb=dual.lower_bound,
            minsum_lb=minsum_lower_bound(inst, dual.lam).value,
        )

    records: dict[str, CellRecord] = {}
    for spec, scheduler in schedulers:
        if isinstance(scheduler, ListGrahamScheduler):
            scheduler.dual = dual
        t0 = time.perf_counter()
        sched = scheduler.schedule(inst)
        seconds = time.perf_counter() - t0
        if validate:
            validate_schedule(sched, inst)
        records[spec] = CellRecord(
            cmax=sched.makespan(),
            minsum=sched.weighted_completion_sum(),
            seconds=seconds,
            validated=validate,
        )
    return bounds, records


def run_pareto_cells(
    cells: list[tuple[str, int, int]],
    variants: "list",
    *,
    seed: int,
    m: int,
    validate: bool = False,
    backend: object = None,
    jobs: int | None = None,
    cache: CellCache | None = None,
    payloads: dict[str, object] | None = None,
) -> dict[tuple[str, int, int], tuple[CellBounds, dict[str, CellRecord]]]:
    """Measure every ``(kind, n, r)`` cell under all sweep ``variants``.

    The Pareto instantiation of :func:`_execute_cached_cells`: the
    measured axis is a set of :class:`~repro.pareto.sweep.SweepVariant`
    configurations instead of registry algorithms.  Records are cached
    under ``CellKey(..., algorithm="pareto:<spec>")``; per-instance lower
    bounds live under the standard bounds key and are therefore *shared*
    with the campaign runner and the ablations.  ``payloads`` maps
    ``trace:`` kinds to their ``(trace, model)`` instance material.
    """
    from repro.pareto.sweep import SweepVariant

    specs = tuple(
        v.spec if isinstance(v, SweepVariant) else str(v) for v in variants
    )
    return _execute_cached_cells(
        cells,
        specs,
        seed=seed,
        m=m,
        validate=validate,
        backend=backend,
        jobs=jobs,
        cache=cache,
        worker=_run_pareto_cell,
        record_key=lambda spec: f"pareto:{spec}",
        extra_args=lambda kind: (payloads.get(kind) if payloads else None,),
    )


# ---------------------------------------------------------------------- #
# Point / campaign drivers                                               #
# ---------------------------------------------------------------------- #
def _assemble_point(
    kind: str,
    n: int,
    cfg: ExperimentConfig,
    cell_results: dict[tuple[str, int, int], tuple[CellBounds, dict[str, CellRecord]]],
) -> PointResult:
    """Fold per-cell results into the aggregated point statistics."""
    cmax_bounds = []
    minsum_bounds = []
    per_algo: dict[str, list[CellRecord]] = {name: [] for name in cfg.algorithms}
    for r in range(cfg.runs):
        bounds, records = cell_results[(kind, n, r)]
        cmax_bounds.append(bounds.cmax_lb)
        minsum_bounds.append(bounds.minsum_lb)
        for name in cfg.algorithms:
            per_algo[name].append(records[name])

    stats = tuple(
        AlgorithmPointStats(
            algorithm=name,
            cmax=aggregate_ratios([rec.cmax for rec in recs], cmax_bounds),
            minsum=aggregate_ratios([rec.minsum for rec in recs], minsum_bounds),
            mean_seconds=float(np.mean([rec.seconds for rec in recs])),
        )
        for name, recs in per_algo.items()
    )
    return PointResult(
        workload=kind,
        n=n,
        stats=stats,
        cmax_bounds=tuple(cmax_bounds),
        minsum_bounds=tuple(minsum_bounds),
    )


def run_point(
    kind: str,
    n: int,
    cfg: ExperimentConfig,
    *,
    validate: bool = False,
    backend: object = None,
    jobs: int | None = None,
    cache: CellCache | None = None,
) -> PointResult:
    """Run all algorithms over ``cfg.runs`` fresh instances at ``(kind, n)``.

    ``validate`` additionally feasibility-checks every schedule (slower;
    the test suite turns it on, campaigns rely on the algorithms' own
    guarantees which the suite already certifies).  ``backend`` / ``jobs``
    select the executor; ``cache`` enables cross-campaign memoisation.
    """
    cells = [(kind, n, r) for r in range(cfg.runs)]
    cell_results = run_cells(
        cells, cfg, validate=validate, backend=backend, jobs=jobs, cache=cache
    )
    return _assemble_point(kind, n, cfg, cell_results)


def run_campaign(
    kind: str,
    cfg: ExperimentConfig,
    *,
    validate: bool = False,
    progress: bool = False,
    backend: object = None,
    jobs: int | None = None,
    cache: CellCache | None = None,
) -> CampaignResult:
    """Run every point of one workload family (one figure's data).

    All ``len(task_counts) * runs`` cells are dispatched through the
    backend in one batch, so a process pool keeps every core busy across
    point boundaries instead of draining at each ``n``.
    """
    cells = [(kind, n, r) for n in cfg.task_counts for r in range(cfg.runs)]
    if progress:  # pragma: no cover - cosmetic
        backend_obj = resolve_backend(backend, jobs)
        print(
            f"  [{kind}] {len(cells)} cells x {len(cfg.algorithms)} algorithms "
            f"({backend_obj.name} backend)...",
            flush=True,
        )
    cell_results = run_cells(
        cells, cfg, validate=validate, backend=backend, jobs=jobs, cache=cache
    )
    points = [
        _assemble_point(kind, n, cfg, cell_results) for n in cfg.task_counts
    ]
    return CampaignResult(workload=kind, config=cfg, points=tuple(points))
