"""Extensions beyond the paper's core evaluation (§5 "on-going works").

The paper closes with three practical problems "still to be solved for an
even more efficient practical solution":

* **mix of different types of jobs** ("moldable jobs, rigid jobs, and
  divisible load jobs") — :mod:`repro.extensions.job_types` models all
  three in the moldable vocabulary and provides a mixed-type workload
  generator; DEMT handles the result unchanged;
* **reservation of nodes** ("which reduces the size of the cluster") —
  :mod:`repro.extensions.reservations` adds time-varying machine capacity
  and a reservation-aware scheduler;
* realistic front-end policies — :mod:`repro.extensions.fcfs` implements
  the FCFS + EASY-backfilling scheduler of the §1.2 related work (the
  MAUI-style baseline DEMT is designed to replace), and
  :mod:`repro.extensions.greedy_interval` the plain Shmoys-style
  interval-doubling scheduler (DEMT without its refinements), useful as a
  structural ablation.
"""

from repro.extensions.job_types import (
    divisible_load_task,
    generate_mixed_types,
    MixedTypeStats,
)
from repro.extensions.reservations import (
    Reservation,
    CapacityProfile,
    ReservationScheduler,
)
from repro.extensions.fcfs import FcfsBackfillScheduler, rigidify
from repro.extensions.greedy_interval import GreedyIntervalScheduler

__all__ = [
    "divisible_load_task",
    "generate_mixed_types",
    "MixedTypeStats",
    "Reservation",
    "CapacityProfile",
    "ReservationScheduler",
    "FcfsBackfillScheduler",
    "rigidify",
    "GreedyIntervalScheduler",
]
