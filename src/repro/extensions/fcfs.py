"""FCFS with EASY backfilling — the production-scheduler baseline (§1.2).

The paper's related work: "the basic idea in job schedulers is to queue
jobs and to schedule them one after the other using some simple rules like
FCFS with priorities.  MAUI scheduler extends the model with additional
features like fairness and backfilling."  This module provides that
reference point so DEMT can be compared against what clusters actually ran
in 2004:

* jobs are *rigidified* first (:func:`rigidify`) — FCFS queues ignore
  moldability, the user's fixed request is simulated by picking each
  task's minimal-area allotment under a deadline heuristic;
* jobs start in submission order whenever enough processors are free;
* **EASY backfilling**: when the queue head does not fit, a reservation
  is computed for it (the earliest time enough processors will be free),
  and later jobs may jump ahead *only if* they terminate before that
  reservation (they never delay the head).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.allotment import minimal_area_allotment
from repro.core.instance import Instance
from repro.core.profile import FreeProfile
from repro.core.schedule import Schedule
from repro.exceptions import SchedulingError

__all__ = ["rigidify", "FcfsBackfillScheduler"]


def rigidify(instance: Instance, *, slack: float = 2.0) -> dict[int, int]:
    """Choose a fixed allotment per task, emulating user requests.

    Users of rigid systems request "enough processors to finish in
    reasonable time".  We model this as the minimal-*area* allotment that
    meets the deadline ``slack * (fastest duration)`` — frugal in work,
    as a user paying for node-hours would be, but not pathologically
    sequential.
    """
    if slack < 1.0:
        raise ValueError(f"slack must be >= 1, got {slack}")
    allotments: dict[int, int] = {}
    for task in instance:
        deadline = task.min_time * slack
        best = minimal_area_allotment(task, deadline, m=instance.m)
        if best is None:  # pragma: no cover - min_time*slack always feasible
            raise SchedulingError(f"task {task.task_id} cannot meet its own deadline")
        allotments[task.task_id] = best[0]
    return allotments


@dataclass
class _Queued:
    task_id: int
    allotment: int
    duration: float


class FcfsBackfillScheduler:
    """First-come-first-served with optional EASY backfilling.

    Parameters
    ----------
    backfill:
        ``True`` enables EASY backfilling (the MAUI-style improvement);
        ``False`` is pure FCFS (a later job never starts before an earlier
        one *starts*).
    slack:
        Passed to :func:`rigidify`.

    Submission order is task-id order (the §4.1 generators assign ids in
    generation order, which stands in for arrival order in the off-line
    setting).
    """

    def __init__(self, backfill: bool = True, slack: float = 2.0) -> None:
        self.backfill = backfill
        self.slack = slack
        self.name = "FCFS+EASY" if backfill else "FCFS"

    def schedule(self, instance: Instance) -> Schedule:
        out = Schedule(instance.m)
        if instance.n == 0:
            return out
        allot = rigidify(instance, slack=self.slack)
        queue = [
            _Queued(t.task_id, allot[t.task_id], t.p(allot[t.task_id]))
            for t in sorted(instance, key=lambda t: t.task_id)
        ]
        # The incremental free-processor profile replaces the seed's full
        # rescan of all prior placements per earliest-fit query.
        profile = FreeProfile(instance.m)

        def place(job: _Queued, start: float) -> None:
            out.add(instance.task_by_id(job.task_id), start, job.allotment)
            profile.reserve(start, job.duration, job.allotment)

        while queue:
            head = queue[0]
            head_start = profile.earliest_fit(head.allotment, head.duration)
            if not self.backfill:
                place(head, head_start)
                queue.pop(0)
                continue

            # EASY: give the head its reservation, then scan the rest for
            # jobs that fit *now* without pushing the head past it.
            place(head, head_start)
            queue.pop(0)
            i = 0
            while i < len(queue):
                cand = queue[i]
                start = profile.earliest_fit(cand.allotment, cand.duration)
                # Backfill only if the candidate starts before the head's
                # reservation and ends by it (it can then never delay any
                # not-yet-reserved job either, since it uses only holes).
                if start + cand.duration <= head_start + 1e-9:
                    place(cand, start)
                    queue.pop(i)
                else:
                    i += 1
        return out
