"""Plain interval-doubling scheduler (Shmoys et al. / Hall et al. style).

§3.1: "Shmoys et al. used a batch scheduling with batches of increasing
sizes.  The batch length is doubled at each step, therefore only the
smaller tasks are scheduled in the first batches."  §1.3 adds that the
generic framework of Hall et al. yields a (12; 12) bi-criteria
approximation "at the cost of a big complexity".

This class is that *skeleton* without DEMT's refinements: geometric
batches and weight-maximising knapsack selection, but

* no small-task merging,
* naive shelf placement (each batch starts at its own ``t_j``),
* no compaction, no shuffling.

It serves as a structural ablation: the gap between ``GreedyInterval`` and
``DEMT`` on the paper's workloads *is* the value of the paper's §3.2
engineering.  (The true Hall et al. algorithm solves an LP per interval;
the knapsack variant keeps the comparison apples-to-apples.)
"""

from __future__ import annotations

from repro.algorithms.demt import DemtScheduler

__all__ = ["GreedyIntervalScheduler"]


class GreedyIntervalScheduler(DemtScheduler):
    """DEMT's batch skeleton with every refinement disabled."""

    name = "GreedyInterval"

    def __init__(self) -> None:
        super().__init__(
            shuffle_rounds=0,
            compaction="shelf",
            # Threshold ~0 => no task ever counts as "small" => no merging.
            small_threshold_factor=1e-12,
        )
