"""Mixed job types: moldable + rigid + divisible load (§5).

All three job types of the paper's conclusion are expressible as
processing-time vectors, so every algorithm in the library handles a mixed
instance without modification:

* **moldable** — the standard §2.1 model (any of the §4.1 generators);
* **rigid** — the historical submission style: the user fixes the
  processor count; encoded as a vector that is ``+inf`` everywhere except
  the requested allotment (:func:`repro.core.task.rigid_task`);
* **divisible load** — work that splits perfectly across processors
  (ideal data parallelism): ``p(k) = W / k`` exactly.

The mixed generator draws each task's type from a categorical
distribution, mirroring how a production queue receives a blend of legacy
rigid submissions and moldable/divisible ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.instance import Instance
from repro.core.task import MoldableTask, rigid_task
from repro.utils.rng import make_rng
from repro.workloads.cirne import cirne_task
from repro.workloads.sequential import uniform_sequential_times

__all__ = ["divisible_load_task", "generate_mixed_types", "MixedTypeStats"]


def divisible_load_task(
    task_id: int, work: float, m: int, weight: float = 1.0, release: float = 0.0
) -> MoldableTask:
    """A perfectly divisible load of ``work`` processor-seconds.

    ``p(k) = work / k`` for every ``k`` — the idealised data-parallel job
    of divisible load theory.  Monotonic by construction with constant
    area.
    """
    if work <= 0:
        raise ValueError(f"work must be positive, got {work}")
    ks = np.arange(1, m + 1, dtype=np.float64)
    return MoldableTask(task_id, work / ks, weight=weight, release=release)


@dataclass(frozen=True)
class MixedTypeStats:
    """Composition of a generated mixed-type instance."""

    n_moldable: int
    n_rigid: int
    n_divisible: int

    @property
    def total(self) -> int:
        return self.n_moldable + self.n_rigid + self.n_divisible


def generate_mixed_types(
    n: int,
    m: int,
    seed: int | np.random.Generator | None = None,
    *,
    p_moldable: float = 0.5,
    p_rigid: float = 0.3,
    p_divisible: float = 0.2,
) -> tuple[Instance, MixedTypeStats]:
    """Generate an instance mixing the three §5 job types.

    * moldable jobs follow the Cirne–Berman model (uniform(1, 10)
      sequential times);
    * rigid jobs request a power-of-two processor count up to ``m`` (the
      classic cluster submission habit) with the same uniform duration
      model;
    * divisible loads draw their total work uniform(1, 10) processor-
      seconds scaled by a uniform(1, sqrt(m)) parallel appetite.

    Weights are uniform(1, 10) throughout, as in §4.1.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    probs = np.array([p_moldable, p_rigid, p_divisible], dtype=np.float64)
    if (probs < 0).any() or probs.sum() <= 0:
        raise ValueError(f"invalid type probabilities {probs}")
    probs = probs / probs.sum()

    rng = make_rng(seed)
    kinds = rng.choice(3, size=n, p=probs)
    seq = uniform_sequential_times(rng, n)
    weights = rng.uniform(1.0, 10.0, size=n)

    max_pow = int(np.log2(m)) if m > 1 else 0
    tasks: list[MoldableTask] = []
    counts = [0, 0, 0]
    for i in range(n):
        kind = int(kinds[i])
        counts[kind] += 1
        if kind == 0:
            tasks.append(cirne_task(rng, i, seq[i], m, weight=weights[i]))
        elif kind == 1:
            procs = int(2 ** rng.integers(0, max_pow + 1))
            tasks.append(
                rigid_task(i, procs=procs, time=float(seq[i]), weight=weights[i], m=m)
            )
        else:
            appetite = float(rng.uniform(1.0, np.sqrt(m)))
            tasks.append(
                divisible_load_task(i, work=float(seq[i] * appetite), m=m, weight=weights[i])
            )
    stats = MixedTypeStats(counts[0], counts[1], counts[2])
    return Instance(tasks, m), stats
