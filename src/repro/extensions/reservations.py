"""Node reservations: scheduling with time-varying capacity (§5).

"The reservation of nodes ... reduces the size of the cluster": an
administrator blocks ``r`` processors over a time window (maintenance,
advance reservations), so the capacity available to the queue is a
piecewise-constant function of time instead of a constant ``m``.

Components
----------
* :class:`Reservation` — one blocked window;
* :class:`CapacityProfile` — the available-capacity step function derived
  from ``m`` and a set of reservations;
* :class:`ReservationScheduler` — earliest-fit placement of a priority
  list against the profile.  It reuses DEMT's machinery to *order* the
  work (batch construction and local ordering) and replaces the flat-
  capacity list scheduler by a profile-aware one.

Feasibility convention: a task must fit **under the profile for its whole
duration** (moldable jobs cannot be grown/shrunk mid-execution, §2.1), so
a reservation acts like a rigid phantom job the schedule must flow around.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.algorithms.demt import DemtScheduler
from repro.algorithms.list_scheduling import ListItem
from repro.core.instance import Instance
from repro.core.schedule import Schedule
from repro.exceptions import SchedulingError

__all__ = ["Reservation", "CapacityProfile", "ReservationScheduler"]


@dataclass(frozen=True)
class Reservation:
    """``procs`` processors blocked over ``[start, end)``."""

    start: float
    end: float
    procs: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError(f"invalid reservation window [{self.start}, {self.end})")
        if self.procs < 1:
            raise ValueError(f"reservation must block >= 1 processor, got {self.procs}")


class CapacityProfile:
    """Piecewise-constant available capacity ``c(t)``.

    Built from the machine size and reservations; capacity is clamped at 0
    if reservations over-subscribe the machine (the scheduler then simply
    cannot place anything in that window).
    """

    def __init__(self, m: int, reservations: Iterable[Reservation] = ()) -> None:
        if m < 1:
            raise SchedulingError(f"machine must have >= 1 processor, got {m}")
        self.m = int(m)
        self.reservations = tuple(reservations)
        events: dict[float, int] = {0.0: 0}
        for r in self.reservations:
            events[r.start] = events.get(r.start, 0) - r.procs
            events[r.end] = events.get(r.end, 0) + r.procs
        times = sorted(events)
        caps = []
        cur = self.m
        for t in times:
            cur += events[t]
            caps.append(max(0, cur))
        #: breakpoints (sorted) and capacity on [break[i], break[i+1]).
        self.breakpoints: list[float] = times
        self.capacities: list[int] = caps

    def capacity_at(self, t: float) -> int:
        """Available capacity at time ``t`` (>= 0)."""
        if t < 0:
            raise ValueError(f"negative time {t}")
        idx = bisect_right(self.breakpoints, t) - 1
        return self.capacities[max(0, idx)]

    def min_capacity_over(self, start: float, end: float) -> int:
        """Minimum capacity over ``[start, end)``."""
        if end <= start:
            return self.capacity_at(start)
        lo = bisect_right(self.breakpoints, start) - 1
        hi = bisect_right(self.breakpoints, end - 1e-15) - 1
        return min(self.capacities[max(0, lo) : hi + 1])

    def max_capacity(self) -> int:
        return max(self.capacities)


class ReservationScheduler:
    """DEMT-ordered, reservation-aware earliest-fit scheduler.

    Parameters
    ----------
    reservations:
        The blocked windows.
    demt:
        Optionally a configured :class:`DemtScheduler`; its batch
        construction provides the placement order (the bi-criteria
        structure), while placement itself respects the capacity profile.

    Notes
    -----
    The DEMT batch geometry is computed on the *full* machine — the
    dual-approximation estimate ignores reservations — so heavy
    reservations stretch the realised schedule beyond the batch windows.
    That is intentional: the same happens to the production scheduler when
    the administrator blocks nodes, and the ordering remains sensible.
    """

    name = "DEMT+reservations"

    def __init__(
        self,
        reservations: Sequence[Reservation],
        demt: DemtScheduler | None = None,
    ) -> None:
        self.reservations = tuple(reservations)
        self.demt = demt or DemtScheduler()

    def schedule(self, instance: Instance) -> Schedule:
        profile = CapacityProfile(instance.m, self.reservations)
        if instance.n == 0:
            return Schedule(instance.m)
        if profile.max_capacity() < 1:
            raise SchedulingError("reservations leave no capacity at any time")

        detailed = self.demt.schedule_detailed(instance)
        order: list[ListItem] = [it for batch in detailed.batches for it in batch]

        out = Schedule(instance.m)
        placed: list[tuple[float, float, int]] = []
        for item in order:
            start = self._earliest_fit(profile, placed, item.allotment, item.duration)
            if item.stack:
                t = start
                for task in item.stack:
                    out.add(task, t, 1)
                    t += task.seq_time
            else:
                out.add(item.task, start, item.allotment)
            placed.append((start, start + item.duration, item.allotment))
        return out

    @staticmethod
    def _earliest_fit(
        profile: CapacityProfile,
        placed: list[tuple[float, float, int]],
        allotment: int,
        duration: float,
    ) -> float:
        """Earliest start where usage + allotment fits under the profile."""
        candidates = sorted(
            {0.0, *(e for _, e, _ in placed), *profile.breakpoints}
        )
        for t0 in candidates:
            t1 = t0 + duration
            points = sorted(
                {
                    t0,
                    *(s for s, _, _ in placed if t0 < s < t1),
                    *(b for b in profile.breakpoints if t0 < b < t1),
                }
            )
            ok = True
            for point in points:
                usage = sum(a for s, e, a in placed if s <= point < e)
                if usage + allotment > profile.capacity_at(point):
                    ok = False
                    break
            if ok:
                return t0
        raise SchedulingError(
            f"no feasible start for allotment {allotment}: the capacity "
            f"profile never frees enough processors"
        )
