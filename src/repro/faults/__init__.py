"""Uncertainty and fault plane: what happens when the model is wrong.

Every campaign of :mod:`repro.experiments` trusts the processing-time
matrix ``p(j, k)`` exactly and assumes machines never die.  The paper's
``3·sqrt(2)``-style guarantee is only meaningful in production if its
degradation under *runtime misestimation*, *machine failures* and
*adversarial arrivals* can be measured — this package injects all three,
deterministically, and sweeps them as campaign axes:

:mod:`repro.faults.noise`
    Seeded, splitmix64-keyed noise models over moldability
    reconstructions: the scheduler plans on *estimates* (multiplicative
    lognormal error, user-overestimate distributions — optionally fitted
    from an SWF log's requested-vs-actual columns) while execution takes
    the true times.  Pure functions of ``(task_id, spec)``: perturbation
    commutes with trace ``window``/``shift`` and is bit-identical across
    processes and backends.
:mod:`repro.faults.failures`
    Per-machine up/down interval processes (exponential MTBF/MTTR
    renewals) realised as capacity-change events, and
    :class:`~repro.faults.failures.FaultyBatchPolicy` — the batch
    framework with crash-and-restart-from-scratch job semantics: a
    machine failure evicts the jobs it was running, wasted work is lost,
    and the victims rejoin the queue for a later batch.
:mod:`repro.faults.campaign`
    The ``robustness`` campaign family of the
    :func:`~repro.experiments.engine.execute_cells` protocol: scenarios
    (noise × failures × arrivals) swept over seeded instances and
    off-line engines, emitting Pareto fronts of
    ``(nominal Cmax, degraded Cmax)`` through the
    :mod:`repro.pareto` kernels.

Arrival-side attacks (bursty and adversarial release-date generators)
live with the other workload machinery in
:mod:`repro.workloads.arrivals`.
"""

from repro.faults.campaign import (
    FaultScenario,
    RobustnessCellFamily,
    RobustnessResult,
    RobustnessRow,
    parse_scenario,
    run_robustness_campaign,
)
from repro.faults.failures import (
    FAILURE_MODELS,
    FailureTrace,
    FaultyBatchPolicy,
    FaultyOnlineResult,
    generate_failures,
    parse_failures,
)
from repro.faults.noise import (
    NOISE_MODELS,
    NoiseModel,
    fit_overestimate_quantiles,
    parse_noise,
    perturb_instance,
    perturb_times,
)

__all__ = [
    "NOISE_MODELS",
    "NoiseModel",
    "parse_noise",
    "perturb_times",
    "perturb_instance",
    "fit_overestimate_quantiles",
    "FAILURE_MODELS",
    "FailureTrace",
    "FaultyBatchPolicy",
    "FaultyOnlineResult",
    "generate_failures",
    "parse_failures",
    "FaultScenario",
    "parse_scenario",
    "RobustnessCellFamily",
    "RobustnessResult",
    "RobustnessRow",
    "run_robustness_campaign",
]
