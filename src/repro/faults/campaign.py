"""The ``robustness`` campaign family: fault scenarios as sweepable cells.

A :class:`FaultScenario` bundles the three fault axes — a
:mod:`~repro.faults.noise` model, a :mod:`~repro.faults.failures` model
and a :mod:`~repro.workloads.arrivals` pattern — into one canonical spec
string (``noise|failures|arrivals``) that addresses cache records, so a
scenario is a first-class campaign coordinate exactly like an algorithm
name.  :func:`run_robustness_campaign` measures every seeded instance
cell twice through the standard
:func:`~repro.experiments.engine.execute_cells` machinery:

* **degraded** — :class:`~repro.faults.failures.FaultyBatchPolicy` under
  the full scenario (plan on estimates, execute the truth, survive the
  failures);
* **nominal** — the same policy under the scenario's *baseline* (same
  arrivals, no misestimation, no failures), so the comparison isolates
  the faults rather than the on-line setting.

Each engine then becomes one point ``(nominal Cmax, degraded Cmax)``
(mean over cells) and the existing :func:`~repro.pareto.front.pareto_mask`
kernel marks the engines on the robustness/performance trade-off front.

Every record is a pure function of its key: workers zero their
wall-clock field, so a robustness campaign is **bit-identical between
the serial and process backends** — including cells whose first attempts
were crashed and retried by the engine's
:class:`~repro.experiments.engine.RetryPolicy`.  Cells quarantined after
exhausting their attempts surface as
:attr:`~repro.experiments.engine.CellOutcome.error` and are explicitly
marked in the aggregate rows, never silently dropped.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.algorithms.dual_approx import dual_approximation
from repro.bounds.minsum_lp import minsum_lower_bound
from repro.core.instance import Instance
from repro.core.validation import validate_schedule
from repro.exceptions import ModelError
from repro.experiments.engine import (
    CellBounds,
    CellKey,
    CellRecord,
    RetryPolicy,
    execute_cells,
)
from repro.experiments.runner import CampaignCellFamily
from repro.faults.failures import generate_failures, parse_failures
from repro.faults.noise import parse_noise
from repro.utils.rng import derive_rng
from repro.workloads.arrivals import apply_arrivals, parse_arrivals
from repro.workloads.generator import generate_workload

__all__ = [
    "FaultScenario",
    "parse_scenario",
    "ROBUSTNESS_ENGINES",
    "RobustnessCellFamily",
    "RobustnessRow",
    "RobustnessResult",
    "run_robustness_campaign",
]


@dataclass(frozen=True)
class FaultScenario:
    """One point on the fault axes: canonical ``noise|failures|arrivals``.

    Fields hold *canonical* sub-specs (build through
    :func:`parse_scenario`, which normalises them); :attr:`spec` is the
    cache identity of the scenario's records.
    """

    noise: str = "none"
    failures: str = "none"
    arrivals: str = "none"

    @property
    def spec(self) -> str:
        return f"{self.noise}|{self.failures}|{self.arrivals}"

    @property
    def is_nominal(self) -> bool:
        """True when no fault axis is active (arrivals alone are not a fault)."""
        return self.noise == "none" and self.failures == "none"

    def baseline(self) -> "FaultScenario":
        """The fault-free twin: same arrivals, no noise, no failures."""
        return FaultScenario(arrivals=self.arrivals)


def parse_scenario(
    spec: "str | FaultScenario",
    *,
    noise: str | None = None,
    failures: str | None = None,
    arrivals: str | None = None,
) -> FaultScenario:
    """Resolve and canonicalise a scenario.

    ``spec`` is ``noise[|failures[|arrivals]]`` (missing parts default to
    ``none``); the keyword arguments override individual axes — the CLI
    passes its three flags through them with ``spec=""``.

    >>> parse_scenario("lognormal:0.30|exp:50:5").spec
    'lognormal:0.3|exp:50:5|none'
    >>> parse_scenario("", arrivals="bursty:4").spec
    'none|none|bursty:4:0.9'
    """
    if isinstance(spec, FaultScenario):
        parts = [spec.noise, spec.failures, spec.arrivals]
    else:
        parts = [p.strip() for p in str(spec).split("|")] if spec else []
        if len(parts) > 3:
            raise ModelError(
                f"scenario spec has more than 3 '|'-separated axes: {spec!r}"
            )
        parts += ["none"] * (3 - len(parts))
    if noise is not None:
        parts[0] = noise
    if failures is not None:
        parts[1] = failures
    if arrivals is not None:
        parts[2] = arrivals
    return FaultScenario(
        noise=parse_noise(parts[0] or "none").spec,
        failures=parse_failures(parts[1] or "none").spec,
        arrivals=parse_arrivals(parts[2] or "none").spec,
    )


def _robustness_engines() -> dict:
    """Named off-line engines (module-level functions, stable labels)."""
    from repro.experiments.replay import REPLAY_ENGINES

    return REPLAY_ENGINES


#: Engine names accepted by the robustness campaign (the replay engines:
#: every entry is a module-level off-line scheduler with a stable label).
ROBUSTNESS_ENGINES = ("demt", "gang", "sequential", "wspt")


def _failure_horizon(instance: Instance) -> float:
    """Deterministic horizon for failure generation on one instance.

    Long enough that failures keep arriving for any plausible execution:
    the last release plus four times (total minimal work area over ``m``
    plus the longest best-case job).  Beyond it machines stay up, which
    also guarantees every faulty run terminates.
    """
    times = np.asarray(instance.times_matrix, dtype=np.float64)
    if times.size == 0:
        return 1.0
    ks = np.arange(1, instance.m + 1, dtype=np.float64)
    areas = np.min(np.where(np.isfinite(times), times * ks, np.inf), axis=1)
    areas = np.where(np.isfinite(areas), areas, 0.0)
    best = np.min(times, axis=1)
    best = np.where(np.isfinite(best), best, 0.0)
    rel = float(instance.releases.max()) if instance.n else 0.0
    return rel + 4.0 * (float(areas.sum()) / instance.m + float(best.max())) + 1.0


def _run_robustness_cell(args: tuple) -> "tuple[CellBounds | None, dict[str, CellRecord]]":
    """Worker: one seeded instance through the faulty batch policy.

    ``args`` is ``(seed, kind, n, m, r, engines, scenario_spec, validate,
    need_bounds)``.  The instance is the exact
    ``derive_rng(seed, kind, n, r)`` stream of the figure campaigns, so
    the bounds key is shared with them.  ``seconds`` is the real
    wall-clock cost of the engine run — serial and process backends stay
    bit-identical because ``CellRecord`` equality and cache-journal
    writes exclude it (every *compared* field is a pure function of the
    key).
    """
    from repro.faults.failures import FaultyBatchPolicy

    seed, kind, n, m, r, engines, scenario_spec, validate, need_bounds = args
    scenario = parse_scenario(scenario_spec)
    rng = derive_rng(seed, kind, n, r)
    inst = generate_workload(kind, n=n, m=m, seed=rng)

    bounds = None
    if need_bounds:
        dual = dual_approximation(inst)
        bounds = CellBounds(
            cmax_lb=dual.lower_bound,
            minsum_lb=minsum_lower_bound(inst, dual.lam).value,
        )

    truth = apply_arrivals(inst, scenario.arrivals)
    trace = (
        None
        if scenario.failures == "none"
        else generate_failures(m, _failure_horizon(truth), scenario.failures)
    )

    offline_of = _robustness_engines()
    records: dict[str, CellRecord] = {}
    for name in engines:
        policy = FaultyBatchPolicy(
            offline_of[name], noise=scenario.noise, failures=trace
        )
        started = time.perf_counter()
        result = policy.run(truth)
        seconds = time.perf_counter() - started
        if validate:
            validate_schedule(result.schedule, truth)
        records[name] = CellRecord(
            cmax=result.schedule.makespan(),
            minsum=result.schedule.weighted_completion_sum(),
            seconds=seconds,
            validated=validate,
            batches=result.n_batches,
            crashes=result.crashes,
        )
    return bounds, records


class RobustnessCellFamily(CampaignCellFamily):
    """Robustness cells: ``(kind, n, r)`` instances under one scenario.

    Records are cached under ``robust[<scenario>]:<engine>`` — one
    namespace per scenario, so sweeping scenarios never collides — and
    the per-instance lower bounds live under the standard bounds key,
    shared with the figure campaigns and the Pareto sweeps.
    """

    name = "robustness"
    worker = staticmethod(_run_robustness_cell)

    def __init__(self, seed: int, m: int, scenario: FaultScenario) -> None:
        super().__init__(seed, m)
        self.scenario = parse_scenario(scenario)

    def record_key(self, cell, name: str) -> CellKey:
        kind, n, r = cell
        return CellKey(
            self.seed, kind, n, self.m, r, f"robust[{self.scenario.spec}]:{name}"
        )

    def make_task(self, cell, names, validate, need_bounds) -> tuple:
        kind, n, r = cell
        return (
            self.seed, kind, n, self.m, r, names, self.scenario.spec,
            validate, need_bounds,
        )


@dataclass(frozen=True)
class RobustnessRow:
    """One ``(cell, engine)`` comparison of nominal vs degraded execution.

    A quarantined cell (the engine's retry budget ran out) carries the
    failure message in ``error`` and NaNs for whatever was not measured —
    it stays in the table, explicitly marked, instead of vanishing.
    """

    kind: str
    n: int
    r: int
    engine: str
    nominal_cmax: float
    degraded_cmax: float
    cmax_lb: float
    crashes: int = 0
    batches: int = 0
    error: str | None = None

    @property
    def quarantined(self) -> bool:
        return self.error is not None

    @property
    def degradation(self) -> float:
        """Degraded over nominal makespan (NaN when quarantined)."""
        if not np.isfinite(self.nominal_cmax) or self.nominal_cmax <= 0:
            return float("nan")
        return self.degraded_cmax / self.nominal_cmax


@dataclass(frozen=True)
class RobustnessResult:
    """One scenario's campaign: rows, per-engine points, and the front."""

    scenario: FaultScenario
    engines: tuple[str, ...]
    rows: tuple[RobustnessRow, ...]

    def engine_rows(self, engine: str) -> list[RobustnessRow]:
        return [row for row in self.rows if row.engine == engine]

    def engine_points(self) -> "dict[str, tuple[float, float]]":
        """Per-engine ``(mean nominal Cmax, mean degraded Cmax)`` over the
        healthy (non-quarantined) cells."""
        points = {}
        for engine in self.engines:
            ok = [r for r in self.engine_rows(engine) if not r.quarantined]
            if not ok:
                continue
            points[engine] = (
                float(np.mean([r.nominal_cmax for r in ok])),
                float(np.mean([r.degraded_cmax for r in ok])),
            )
        return points

    def front(self) -> frozenset:
        """Engines on the (nominal, degraded) Pareto front (minimisation)."""
        from repro.pareto.front import pareto_mask

        points = self.engine_points()
        if not points:
            return frozenset()
        names = list(points)
        mask = pareto_mask([points[name] for name in names])
        return frozenset(name for name, keep in zip(names, mask) if keep)

    @property
    def n_quarantined(self) -> int:
        return sum(1 for row in self.rows if row.quarantined)

    @property
    def total_crashes(self) -> int:
        return sum(row.crashes for row in self.rows if not row.quarantined)


def run_robustness_campaign(
    kind: str,
    task_counts: "tuple[int, ...] | list[int]",
    runs: int,
    scenario: "str | FaultScenario",
    *,
    engines: "tuple[str, ...]" = ("demt",),
    seed: int = 0,
    m: int = 32,
    validate: bool = False,
    backend: object = None,
    jobs: int | None = None,
    cache: object = None,
    policy: "RetryPolicy | None" = None,
) -> RobustnessResult:
    """Measure ``engines`` on every seeded cell, nominal and degraded.

    Two :func:`~repro.experiments.engine.execute_cells` passes over the
    same ``(kind, n, r)`` cells — the full scenario and its fault-free
    baseline — folded into :class:`RobustnessRow` comparisons.  All the
    engine machinery applies: caching (records keyed by scenario spec),
    serial/process interchangeability, and crash tolerance via
    ``policy``; a quarantined cell marks its rows instead of raising.
    """
    scenario = parse_scenario(scenario)
    for engine in engines:
        if engine not in _robustness_engines():
            raise ModelError(
                f"unknown robustness engine {engine!r}; available: "
                f"{', '.join(_robustness_engines())}"
            )
    cells = [(kind, int(n), r) for n in task_counts for r in range(runs)]
    common = dict(
        validate=validate, backend=backend, jobs=jobs, cache=cache, policy=policy
    )
    degraded = execute_cells(
        RobustnessCellFamily(seed, m, scenario), cells, engines, **common
    )
    if scenario.is_nominal:
        nominal = degraded
    else:
        nominal = execute_cells(
            RobustnessCellFamily(seed, m, scenario.baseline()), cells, engines,
            **common,
        )

    rows = []
    nan = float("nan")
    for cell in cells:
        kind_c, n_c, r_c = cell
        deg, nom = degraded[cell], nominal[cell]
        error = deg.error or nom.error
        lb = deg.bounds.cmax_lb if deg.bounds is not None else (
            nom.bounds.cmax_lb if nom.bounds is not None else nan
        )
        for engine in engines:
            drec = deg.records.get(engine)
            nrec = nom.records.get(engine)
            rows.append(
                RobustnessRow(
                    kind=kind_c,
                    n=n_c,
                    r=r_c,
                    engine=engine,
                    nominal_cmax=nrec.cmax if nrec is not None else nan,
                    degraded_cmax=drec.cmax if drec is not None else nan,
                    cmax_lb=lb,
                    crashes=drec.crashes if drec is not None else 0,
                    batches=drec.batches if drec is not None else 0,
                    error=error if (drec is None or nrec is None) else None,
                )
            )
    return RobustnessResult(
        scenario=scenario, engines=tuple(engines), rows=tuple(rows)
    )
