"""Machine-failure processes and crash-and-restart batch execution.

Failures use the *capacity abstraction*: the simulator never tracks which
physical processor a job occupies, only how many machines are up.  A
:class:`FailureTrace` is a sorted sequence of capacity-change events
(machine ``i`` down at ``t``, up at ``t'``), realised deterministically
from a :class:`FailureModel` (exponential MTBF/MTTR renewals per machine,
seeded through :func:`repro.utils.rng.derive_rng` — bit-identical in any
process).  Beyond the trace ``horizon`` every machine is up.

:class:`FaultyBatchPolicy` runs the paper's batch framework under both
fault axes at once:

* **misestimation** — each batch is *planned* by the off-line engine on
  the estimates matrix (a :mod:`repro.faults.noise` model applied to the
  truth), but *executed* with the true durations.  Jobs that run longer
  than planned can leave no room for a later planned start: that start
  is **deferred** to the next batch.
* **failures** — capacity-change events interleave with the batch's
  starts and completions on the shared incremental
  :class:`~repro.simulator.events.EventSpine` (FINISH transitions free
  capacity first, RESERVE capacity changes apply second, STARTs allocate
  last).  When a drop leaves the running set over capacity, victims are
  evicted LIFO (latest start, then largest id —
  :meth:`~repro.simulator.events.EventSpine.evict_latest`): the job
  **crashes**, its work so far is lost, and it restarts *from scratch*
  in a later batch — the crash-and-restart semantics of checkpoint-free
  clusters.  A crashed job's pending FINISH stays in the heap as a
  tombstone (it still anchors event windows, exactly like the pre-spine
  loop's stale completions) and resolves to nothing.

The realised schedule holds only the successful (completed) placements
with their true durations, so it validates against the truth instance;
the :class:`~repro.simulator.events.EventLog` records the whole story
(``BATCH_STARTED`` / ``STARTED`` / ``COMPLETED`` / ``CRASHED`` /
``MACHINE_DOWN`` / ``MACHINE_UP``) for forensics and tests.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro import obs
from repro.core.instance import Instance
from repro.core.schedule import Schedule
from repro.core.validation import TIME_EPS
from repro.exceptions import ModelError, SchedulingError
from repro.faults.noise import NoiseModel, parse_noise, perturb_instance
from repro.simulator.events import Event, EventKind, EventLog, EventSpine, Transition
from repro.simulator.online import BatchPolicy
from repro.utils.rng import derive_rng

__all__ = [
    "FailureTrace",
    "FailureModel",
    "ExponentialFailures",
    "FAILURE_MODELS",
    "parse_failures",
    "generate_failures",
    "FaultyOnlineResult",
    "FaultyBatchPolicy",
]


@dataclass(frozen=True)
class FailureTrace:
    """Sorted capacity-change events over ``m`` machines up to ``horizon``.

    ``events`` holds ``(time, machine, delta)`` triples, ``delta`` being
    ``-1`` (machine went down) or ``+1`` (came back); sorted by
    ``(time, machine, delta)``.  Every down has a matching up at or
    before ``horizon`` — beyond the horizon all machines are up.
    """

    m: int
    horizon: float
    events: tuple[tuple[float, int, int], ...] = ()
    spec: str = "none"

    def __post_init__(self) -> None:
        if self.m < 1:
            raise ModelError(f"need at least one machine, got {self.m}")
        balance = 0
        for _t, mach, delta in self.events:
            if delta not in (-1, 1) or not 0 <= mach < self.m:
                raise ModelError(f"bad failure event ({_t}, {mach}, {delta})")
            balance += delta
        if balance != 0:
            raise ModelError("every machine down needs a matching up event")

    @property
    def n_failures(self) -> int:
        """Number of down events (machine-failure incidents)."""
        return sum(1 for _t, _m, d in self.events if d < 0)

    def downtime(self) -> float:
        """Total machine-seconds of lost capacity over the horizon."""
        lost, down_at = 0.0, {}
        for t, mach, delta in self.events:
            if delta < 0:
                down_at[mach] = t
            else:
                lost += t - down_at.pop(mach)
        return lost

    def availability(self) -> float:
        """Mean fraction of capacity that was up over the horizon."""
        if self.horizon <= 0:
            return 1.0
        return 1.0 - self.downtime() / (self.m * self.horizon)

    def capacity_profile(self) -> "tuple[np.ndarray, np.ndarray]":
        """``(times, capacity)`` step function (capacity after each time)."""
        times, caps, cap = [0.0], [self.m], self.m
        for t, _mach, delta in self.events:
            cap += delta
            if times and abs(t - times[-1]) <= TIME_EPS:
                caps[-1] = cap
            else:
                times.append(t)
                caps.append(cap)
        return np.asarray(times), np.asarray(caps)


class FailureModel:
    """One failure process: ``realize(m, horizon) -> FailureTrace``."""

    name: str = "abstract"
    seed: int = 0

    @property
    def spec(self) -> str:
        raise NotImplementedError

    def realize(self, m: int, horizon: float) -> FailureTrace:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.spec!r})"


@dataclass(frozen=True)
class NoFailures(FailureModel):
    """``none``: machines never die."""

    name = "none"
    seed: int = 0

    @property
    def spec(self) -> str:
        return "none"

    def realize(self, m: int, horizon: float) -> FailureTrace:
        return FailureTrace(m=m, horizon=float(horizon), events=(), spec="none")


@dataclass(frozen=True)
class ExponentialFailures(FailureModel):
    """``exp:<mtbf>:<mttr>``: independent exponential renewals per machine.

    Machine ``i`` alternates up periods ``~ Exp(mtbf)`` and repair
    periods ``~ Exp(mttr)``, drawn from the stateless stream
    ``derive_rng(seed, "failures", i)`` — the trace for a given
    ``(spec, m, horizon)`` is a pure function, identical in any process.
    Repairs still in progress at the horizon are truncated to it.
    """

    mtbf: float = 50.0
    mttr: float = 5.0
    seed: int = 0
    name = "exp"

    def __post_init__(self) -> None:
        if not (self.mtbf > 0 and self.mttr > 0):
            raise ModelError(
                f"exp failures need positive mtbf/mttr, got {self.mtbf}/{self.mttr}"
            )

    @property
    def spec(self) -> str:
        base = f"exp:{self.mtbf:g}:{self.mttr:g}"
        return f"{base}@{self.seed}" if self.seed else base

    def realize(self, m: int, horizon: float) -> FailureTrace:
        horizon = float(horizon)
        events: list[tuple[float, int, int]] = []
        for mach in range(m):
            rng = derive_rng(self.seed, "failures", self.spec, mach)
            t = float(rng.exponential(self.mtbf))
            while t < horizon:
                repair = float(rng.exponential(self.mttr))
                up_at = min(t + repair, horizon)
                events.append((t, mach, -1))
                events.append((up_at, mach, +1))
                t = up_at + float(rng.exponential(self.mtbf))
        events.sort()
        return FailureTrace(m=m, horizon=horizon, events=tuple(events), spec=self.spec)


#: Model name -> factory of ``(params, seed)`` (``params`` = tuple of
#: ``:``-separated arguments after the name).
FAILURE_MODELS: dict[str, Callable] = {
    "none": lambda params, seed: NoFailures(),
    "exp": lambda params, seed: ExponentialFailures(
        mtbf=float(params[0]) if params else 50.0,
        mttr=float(params[1]) if len(params) > 1 else 5.0,
        seed=seed,
    ),
}


def parse_failures(spec: "str | FailureModel") -> FailureModel:
    """Resolve a failure spec (``name[:param[:param]][@seed]``).

    >>> parse_failures("exp:100:10").mtbf
    100.0
    >>> parse_failures("none").spec
    'none'
    """
    if isinstance(spec, FailureModel):
        return spec
    body, seed = spec, 0
    if "@" in body:
        body, seed_s = body.rsplit("@", 1)
        try:
            seed = int(seed_s)
        except ValueError:
            raise ModelError(f"failure seed must be an int, got {spec!r}") from None
    parts = body.split(":")
    name, params = parts[0], tuple(parts[1:])
    try:
        factory = FAILURE_MODELS[name]
    except KeyError:
        raise ModelError(
            f"unknown failure model {name!r}; available: {', '.join(FAILURE_MODELS)}"
        ) from None
    try:
        return factory(params, seed)
    except (ValueError, IndexError):
        raise ModelError(f"bad failure parameter in {spec!r}") from None


def generate_failures(
    m: int, horizon: float, model: "str | FailureModel"
) -> FailureTrace:
    """Realise ``model`` over ``m`` machines up to ``horizon``."""
    return parse_failures(model).realize(m, horizon)


@dataclass(frozen=True)
class FaultyOnlineResult:
    """Outcome of a faulty on-line run.

    Like :class:`~repro.simulator.online.OnlineResult` plus the fault
    forensics: the number of crash-and-restart evictions and
    capacity-driven start deferrals, and the full event log.
    """

    schedule: Schedule
    batch_starts: tuple[float, ...]
    batch_contents: tuple[frozenset[int], ...]
    crashes: int = 0
    deferrals: int = 0
    log: EventLog = field(default_factory=EventLog)

    @property
    def n_batches(self) -> int:
        return len(self.batch_starts)


#: Spine transitions of the faulty batch simulation: FINISH frees
#: capacity, then RESERVE capacity changes apply, then STARTs allocate.
_FINISH = int(Transition.FINISH)
_RESERVE = int(Transition.RESERVE)
_START = int(Transition.START)


class FaultyBatchPolicy(BatchPolicy):
    """The batch framework under misestimation and machine failures.

    Parameters
    ----------
    offline:
        The per-batch off-line engine (defaults to DEMT), exactly as in
        :class:`~repro.simulator.online.BatchPolicy`.
    noise:
        A :mod:`repro.faults.noise` model or spec; batches are *planned*
        on the perturbed (estimated) matrix, *executed* with the truth.
    failures:
        A :class:`FailureTrace` (or ``None`` for no failures).  Its
        ``m`` must match the instance's.
    max_restarts:
        Hard per-job crash budget; exceeding it raises
        :class:`~repro.exceptions.SchedulingError` instead of looping
        (only reachable with hand-crafted pathological traces).

    With ``noise="none"`` and ``failures=None`` the realised schedule is
    exactly :class:`~repro.simulator.online.BatchPolicy`'s (pinned by the
    tests) — the faulty path degenerates to the nominal one.
    """

    name = "faulty-batch"

    def __init__(
        self,
        offline: "Callable[[Instance], Schedule] | None" = None,
        *,
        noise: "str | NoiseModel" = "none",
        failures: "FailureTrace | None" = None,
        max_restarts: int = 1000,
    ) -> None:
        super().__init__(offline)
        self.noise = parse_noise(noise)
        self.failures = failures
        self.max_restarts = int(max_restarts)

    def _run_impl(self, instance: Instance) -> FaultyOnlineResult:  # noqa: C901
        """Plan on estimates, execute the truth, survive the failures.

        (Called through :meth:`BatchPolicy.run`, which adds the
        ``policy:faulty-batch`` span when observability is enabled.)
        """
        truth = instance
        m = truth.m
        trace = self.failures
        if trace is not None and trace.m != m:
            raise SchedulingError(
                f"failure trace is over {trace.m} machines, instance has {m}"
            )
        cap_events = trace.events if trace is not None else ()

        out = Schedule(m)
        log = EventLog()
        if truth.n == 0:
            return FaultyOnlineResult(out, (), (), log=log)

        est = perturb_instance(truth, self.noise)
        truth_times = truth.times_matrix
        est_times = est.times_matrix
        weights = truth.weights
        ids = truth.task_ids
        task_of = truth._id_index
        row_of = {int(tid): i for i, tid in enumerate(ids.tolist())}
        place = out._place_trusted

        # Pending queue: (release, id).  Crashes and deferrals push jobs
        # back with their crash/deferral instant as the new release.
        pending: list[tuple[float, int]] = [
            (float(r), int(tid)) for r, tid in zip(truth.releases, ids)
        ]
        heapq.heapify(pending)
        restarts: dict[int, int] = {}

        capacity = m
        cap_ptr = 0  # next un-applied capacity event
        # Latest instant any event was witnessed (logged / applied): a new
        # batch can never start before it, so the log stays time-ordered
        # and capacity state never leaks backwards across batches.
        witnessed = 0.0

        def apply_capacity(t: float, mach: int, delta: int) -> None:
            nonlocal capacity, witnessed
            capacity += delta
            witnessed = max(witnessed, t)
            kind = EventKind.MACHINE_UP if delta > 0 else EventKind.MACHINE_DOWN
            log.append(Event(t, kind, procs=(mach,)))

        batch_starts: list[float] = []
        batch_contents: list[frozenset[int]] = []
        crashes = deferrals = 0

        now = pending[0][0]
        while pending:
            now = max(now, pending[0][0])
            # Catch up idle-time capacity changes (nothing runs between
            # batches, so they cannot evict — just log and apply).
            while cap_ptr < len(cap_events) and cap_events[cap_ptr][0] <= now:
                apply_capacity(*cap_events[cap_ptr])
                cap_ptr += 1

            # Heap pops come out (release, id)-sorted — the same batch
            # member order :class:`BatchPolicy` derives via lexsort, so a
            # fault-free run hands the off-line engine identical inputs.
            batch: list[int] = []
            while pending and pending[0][0] <= now + TIME_EPS:
                batch.append(heapq.heappop(pending)[1])
            idx = np.asarray([row_of[j] for j in batch], dtype=np.intp)

            # Plan the batch on the *estimates* (time origin 0 at `now`).
            sub = Instance.from_arrays(
                est_times[idx],
                weights[idx],
                None,
                m,
                task_ids=ids[idx],
                validate=False,
            )
            plan = self._schedule_batch(sub, now)
            if len(plan) != len(batch) or plan.task_ids() != set(batch):
                raise SchedulingError(
                    "off-line scheduler did not place exactly the batch's tasks"
                )
            log.append(Event(now, EventKind.BATCH_STARTED))
            batch_starts.append(now)
            batch_contents.append(frozenset(batch))
            obs_state = obs.ACTIVE
            if obs_state is not None:
                obs_state.count("online.batches")
                obs_state.observe("online.batch_size", len(batch))

            # Execute: starts at their planned offsets, completions at the
            # *true* durations, capacity events interleaved — all on one
            # batch-local spine (FINISH / RESERVE / START transitions).
            spine = EventSpine(m)
            alloc: dict[int, int] = {}
            durs: dict[int, float] = {}  # true duration of the running run
            horizon_t = now
            for p in plan:
                jid = p.task.task_id
                alloc[jid] = p.allotment
                s = now + p.start
                spine.at(s, Transition.START, jid)
                horizon_t = max(
                    horizon_t, s + float(truth_times[row_of[jid], p.allotment - 1])
                )
            batch_cap_end = cap_ptr
            while (
                batch_cap_end < len(cap_events)
                and cap_events[batch_cap_end][0] <= horizon_t + TIME_EPS
            ):
                spine.at(
                    cap_events[batch_cap_end][0], Transition.RESERVE, batch_cap_end
                )
                batch_cap_end += 1

            unresolved = len(alloc)
            started_any = False
            batch_end = now

            def evict_over_capacity(t: float) -> None:
                nonlocal crashes, unresolved, batch_end
                batch_end = max(batch_end, t)
                while spine.used > capacity and spine.n_running:
                    victim, _s, _k = spine.evict_latest()
                    restarts[victim] = restarts.get(victim, 0) + 1
                    if restarts[victim] > self.max_restarts:
                        raise SchedulingError(
                            f"job {victim} crashed more than {self.max_restarts} times"
                        )
                    log.append(Event(t, EventKind.CRASHED, job_id=victim))
                    heapq.heappush(pending, (t, victim))
                    crashes += 1
                    unresolved -= 1

            while unresolved > 0:
                if not spine:  # pragma: no cover - every start is queued
                    raise SchedulingError("faulty batch simulation stalled")
                for t, prio, ident in spine.pop_window():
                    if prio == _RESERVE:
                        if ident == cap_ptr:  # skipped events never reach here
                            apply_capacity(*cap_events[cap_ptr])
                            cap_ptr += 1
                            evict_over_capacity(t)
                        continue
                    jid = ident
                    if prio == _FINISH:
                        resolved = spine.finish(jid, t)
                        if resolved is None:
                            continue  # crashed after this FINISH was queued
                        s, k = resolved
                        place(task_of[jid], s, k, durs[jid])
                        log.append(Event(t, EventKind.COMPLETED, job_id=jid))
                        unresolved -= 1
                        batch_end = max(batch_end, t)
                        continue
                    # A planned start: allocate if it fits the *current*
                    # capacity, else defer the job to a later batch.
                    k = alloc[jid]
                    if k <= capacity - spine.used:
                        dur = float(truth_times[row_of[jid], k - 1])
                        durs[jid] = dur
                        spine.start(jid, k, t, t + dur)
                        started_any = True
                        log.append(Event(t, EventKind.STARTED, job_id=jid))
                    else:
                        heapq.heappush(pending, (t, jid))
                        deferrals += 1
                        unresolved -= 1
                        batch_end = max(batch_end, t)

            witnessed = max(witnessed, batch_end)
            if started_any or not pending:
                now = witnessed
                continue
            # Nothing could start (capacity too low for every planned
            # start): wait for the next capacity recovery, or the next
            # genuinely later arrival, rather than spinning in place.
            future = [t for t, _m2, d in cap_events[cap_ptr:] if d > 0 and t > now]
            later = [r for r, _j in pending if r > now + TIME_EPS]
            candidates = future + later
            if not candidates:  # pragma: no cover - traces always recover
                raise SchedulingError("batch cannot start and capacity never recovers")
            now = max(min(candidates), witnessed)

        obs_state = obs.ACTIVE
        if obs_state is not None:
            if crashes:
                obs_state.count("faults.crashes", crashes)
            if deferrals:
                obs_state.count("faults.deferrals", deferrals)
        return FaultyOnlineResult(
            schedule=out,
            batch_starts=tuple(batch_starts),
            batch_contents=tuple(batch_contents),
            crashes=crashes,
            deferrals=deferrals,
            log=log,
        )
