"""Seeded misestimation models over processing-time matrices.

A noise model turns the *true* ``(n, m)`` processing-time matrix into the
matrix the scheduler *believes* — each job's whole row is scaled by one
multiplicative factor, because misestimation is a property of the job
(the user's runtime guess, the reconstruction's error), not of one
allotment.  Factors are a pure function of ``(task_id, spec)`` through
the same splitmix64 hash the moldability reconstruction uses
(:func:`repro.workloads.trace._hash_u01`): no RNG state, so

* the same spec always produces bit-identical perturbations, in any
  process, on any backend;
* perturbation *commutes* with trace ``window``/``shift`` operations —
  the rows of a perturbed window equal the windowed rows of the
  perturbed full trace (both pinned by the Hypothesis suite in
  ``tests/faults/``).

Models (spec grammar ``name[:param][@seed]``, e.g. ``lognormal:0.3@2``):

``none``
    Identity — estimates equal the truth.
``lognormal:<sigma>``
    Symmetric multiplicative error ``exp(sigma * z)``, ``z`` standard
    normal: the classical model of reconstruction error, median 1.
``overestimate:<fmax>``
    One-sided user overestimation: the believed time is ``1 ..  fmax``
    times the truth, skewed toward small factors (``1 + (fmax-1) u^2``)
    — the stylised shape of SWF requested-vs-actual ratios.  A table
    *fitted* from a real log replaces the stylised shape:
    :func:`fit_overestimate_quantiles` reads the requested-time and
    actual-runtime columns of an SWF source and
    :meth:`OverestimateNoise.fitted` maps hash uniforms through the
    empirical quantiles.
"""

from __future__ import annotations

import hashlib
import io
import os
from dataclasses import dataclass, field
from typing import IO

import numpy as np

from repro.core.instance import Instance
from repro.exceptions import ModelError

__all__ = [
    "NoiseModel",
    "LognormalNoise",
    "OverestimateNoise",
    "NOISE_MODELS",
    "parse_noise",
    "perturb_times",
    "perturb_instance",
    "fit_overestimate_quantiles",
]

#: Clamp hash uniforms into the open interval so inverse CDFs stay finite.
_U_EPS = 2.0**-53


def _job_uniforms(task_ids: np.ndarray, salt: int, seed: int) -> np.ndarray:
    """One deterministic uniform per job, keyed by ``(id, model, seed)``."""
    from repro.workloads.trace import _hash_u01

    ids = np.ascontiguousarray(task_ids, dtype=np.int64)
    u = _hash_u01(ids, salt=salt + 0x9E37 * (int(seed) + 1))
    return np.clip(u, _U_EPS, 1.0 - _U_EPS)


class NoiseModel:
    """One misestimation model: per-job multiplicative factors.

    Subclasses set :attr:`name`, a canonical :attr:`spec` (the campaign
    cache identity) and implement :meth:`factors`.
    """

    name: str = "abstract"
    seed: int = 0

    @property
    def spec(self) -> str:
        raise NotImplementedError

    def factors(self, task_ids: np.ndarray) -> np.ndarray:
        """``(n,)`` positive multiplicative factors, one per job."""
        raise NotImplementedError

    def perturb(self, times: np.ndarray, task_ids: np.ndarray) -> np.ndarray:
        """The *estimated* matrix: each row scaled by its job's factor.

        ``+inf`` entries (forbidden allotments) stay ``+inf`` — noise
        cannot make an inadmissible width admissible.
        """
        times = np.asarray(times, dtype=np.float64)
        return times * self.factors(task_ids)[:, None]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.spec!r})"


@dataclass(frozen=True)
class IdentityNoise(NoiseModel):
    """``none``: estimates equal the truth."""

    name = "none"
    seed: int = 0

    @property
    def spec(self) -> str:
        return "none"

    def factors(self, task_ids: np.ndarray) -> np.ndarray:
        return np.ones(np.asarray(task_ids).shape[0])

    def perturb(self, times: np.ndarray, task_ids: np.ndarray) -> np.ndarray:
        return np.asarray(times, dtype=np.float64)


@dataclass(frozen=True)
class LognormalNoise(NoiseModel):
    """``lognormal:<sigma>``: symmetric multiplicative error, median 1."""

    sigma: float = 0.3
    seed: int = 0
    name = "lognormal"

    def __post_init__(self) -> None:
        if not self.sigma >= 0:
            raise ModelError(f"lognormal sigma must be >= 0, got {self.sigma}")

    @property
    def spec(self) -> str:
        base = f"lognormal:{self.sigma:g}"
        return f"{base}@{self.seed}" if self.seed else base

    def factors(self, task_ids: np.ndarray) -> np.ndarray:
        from scipy.special import ndtri

        u = _job_uniforms(task_ids, salt=0x10F2, seed=self.seed)
        return np.exp(self.sigma * ndtri(u))


@dataclass(frozen=True)
class OverestimateNoise(NoiseModel):
    """``overestimate:<fmax>``: one-sided user overestimation, >= 1.

    The stylised distribution is ``1 + (fmax - 1) u^2`` (most users guess
    close, a few wildly over); :meth:`fitted` swaps it for an empirical
    quantile table of requested/actual ratios from a real archive log.
    """

    fmax: float = 4.0
    seed: int = 0
    quantiles: tuple[float, ...] = field(default=(), repr=False)
    name = "overestimate"

    def __post_init__(self) -> None:
        if not self.fmax >= 1.0:
            raise ModelError(f"overestimate factor must be >= 1, got {self.fmax}")
        if any(q < 1.0 for q in self.quantiles):
            raise ModelError("fitted overestimate quantiles must all be >= 1")

    @classmethod
    def fitted(cls, quantiles: np.ndarray, seed: int = 0) -> "OverestimateNoise":
        """Model mapping hash uniforms through an empirical quantile table
        (see :func:`fit_overestimate_quantiles`)."""
        qs = tuple(float(q) for q in np.asarray(quantiles, dtype=np.float64))
        if len(qs) < 2:
            raise ModelError("need at least 2 quantiles to interpolate")
        return cls(fmax=max(qs), seed=seed, quantiles=qs)

    @property
    def spec(self) -> str:
        if self.quantiles:
            digest = hashlib.sha256(
                np.asarray(self.quantiles, dtype=np.float64).tobytes()
            ).hexdigest()[:8]
            base = f"overestimate:fit-{digest}"
        else:
            base = f"overestimate:{self.fmax:g}"
        return f"{base}@{self.seed}" if self.seed else base

    def factors(self, task_ids: np.ndarray) -> np.ndarray:
        u = _job_uniforms(task_ids, salt=0x0BE5, seed=self.seed)
        if self.quantiles:
            grid = np.linspace(0.0, 1.0, len(self.quantiles))
            return np.interp(u, grid, np.asarray(self.quantiles))
        return 1.0 + (self.fmax - 1.0) * u * u


#: Model name -> parser of the part after ``name:`` (``None`` = default).
NOISE_MODELS = {
    "none": lambda param, seed: IdentityNoise(),
    "lognormal": lambda param, seed: LognormalNoise(
        sigma=float(param) if param is not None else 0.3, seed=seed
    ),
    "overestimate": lambda param, seed: OverestimateNoise(
        fmax=float(param) if param is not None else 4.0, seed=seed
    ),
}


def parse_noise(spec: "str | NoiseModel") -> NoiseModel:
    """Resolve a noise spec (``name[:param][@seed]``) or pass through.

    >>> parse_noise("lognormal:0.5").sigma
    0.5
    >>> parse_noise("none").spec
    'none'
    """
    if isinstance(spec, NoiseModel):
        return spec
    body, seed = spec, 0
    if "@" in body:
        body, seed_s = body.rsplit("@", 1)
        try:
            seed = int(seed_s)
        except ValueError:
            raise ModelError(f"noise seed must be an int, got {spec!r}") from None
    name, _, param = body.partition(":")
    try:
        factory = NOISE_MODELS[name]
    except KeyError:
        raise ModelError(
            f"unknown noise model {name!r}; available: {', '.join(NOISE_MODELS)}"
        ) from None
    try:
        return factory(param if param else None, seed)
    except ValueError:
        raise ModelError(f"bad noise parameter in {spec!r}") from None


def perturb_times(
    times: np.ndarray, task_ids: np.ndarray, noise: "str | NoiseModel"
) -> np.ndarray:
    """The estimated matrix for ``times`` under ``noise`` (see module doc)."""
    return parse_noise(noise).perturb(times, task_ids)


def perturb_instance(instance: Instance, noise: "str | NoiseModel") -> Instance:
    """The *estimates* instance: same ids/weights/releases, perturbed times.

    This is what the scheduler plans on when misestimation is injected;
    execution realises the original instance's (true) times.
    """
    model = parse_noise(noise)
    if isinstance(model, IdentityNoise):
        return instance
    est = model.perturb(instance.times_matrix, instance.task_ids)
    return Instance.from_arrays(
        est,
        instance.weights,
        instance.releases,
        instance.m,
        task_ids=instance.task_ids,
        validate=False,
    )


# --------------------------------------------------------------------- #
# Fitting from archive logs                                             #
# --------------------------------------------------------------------- #
def fit_overestimate_quantiles(
    source: "str | os.PathLike | IO[str]", *, points: int = 33
) -> np.ndarray:
    """Empirical requested/actual ratio quantiles from an SWF source.

    Reads the actual-runtime (field 4) and requested-time (field 9)
    columns of an SWF log — the misestimation data every archive already
    carries — and returns ``points`` quantiles of the overestimation
    ratio ``max(1, requested / actual)``, ready for
    :meth:`OverestimateNoise.fitted`.  Records without both fields
    positive are skipped; an archive with no usable pair is an error.
    """
    if hasattr(source, "read"):
        lines = iter(source)
    elif isinstance(source, (str, os.PathLike)) and (
        "\n" not in str(source) and os.path.exists(os.fspath(source))
    ):
        with open(os.fspath(source), "r", encoding="utf-8") as fh:
            return fit_overestimate_quantiles(io.StringIO(fh.read()), points=points)
    else:
        lines = iter(io.StringIO(str(source)))

    ratios: list[float] = []
    for raw in lines:
        line = raw.lstrip("\ufeff").strip()
        if not line or line.startswith(";"):
            continue
        fields = line.split()
        if len(fields) < 9:
            continue
        try:
            run, req = float(fields[3]), float(fields[8])
        except ValueError:
            continue
        if run > 0 and req > 0:
            ratios.append(max(1.0, req / run))
    if not ratios:
        raise ModelError("no records with both requested and actual runtimes")
    return np.quantile(
        np.asarray(ratios, dtype=np.float64), np.linspace(0.0, 1.0, points)
    )
