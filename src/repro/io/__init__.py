"""Instance/schedule serialisation and workload-trace interchange.

* :mod:`repro.io.json_io` — lossless JSON round-trip of instances and
  schedules (experiment artefacts, regression fixtures);
* :mod:`repro.io.swf` — the Standard Workload Format of the Parallel
  Workloads Archive (Feitelson), the de-facto interchange for real
  cluster logs like the ones the paper's generator [18] was fitted to.
  Reading produces rigid instances (SWF logs record one processor count
  per job); writing lets any simulated schedule be analysed by standard
  SWF tooling.
"""

from repro.io.json_io import (
    instance_to_json,
    instance_from_json,
    schedule_to_json,
    schedule_from_json,
)
from repro.io.swf import read_swf, write_swf, SwfJob

__all__ = [
    "instance_to_json",
    "instance_from_json",
    "schedule_to_json",
    "schedule_from_json",
    "read_swf",
    "write_swf",
    "SwfJob",
]
