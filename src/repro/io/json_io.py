"""Lossless JSON serialisation of instances and schedules.

Format (versioned for forward compatibility)::

    {"format": "repro-instance", "version": 1, "m": 16,
     "tasks": [{"id": 0, "times": [...], "weight": 2.0, "release": 0.0}]}

    {"format": "repro-schedule", "version": 1, "m": 16,
     "placements": [{"id": 0, "start": 0.0, "allotment": 4}]}

``+inf`` processing times (forbidden allotments of rigid tasks) are
encoded as the string ``"inf"`` because JSON has no infinity literal.
Schedules serialise only the decisions; deserialisation re-binds them to
an instance, validating that every referenced task exists.
"""

from __future__ import annotations

import json
import math
from typing import Any

import numpy as np

from repro.core.instance import Instance
from repro.core.schedule import Schedule
from repro.core.task import MoldableTask
from repro.exceptions import ModelError

__all__ = [
    "instance_to_json",
    "instance_from_json",
    "schedule_to_json",
    "schedule_from_json",
]

_INSTANCE_FORMAT = "repro-instance"
_SCHEDULE_FORMAT = "repro-schedule"
_VERSION = 1


def _encode_time(value: float) -> float | str:
    return "inf" if math.isinf(value) else float(value)


def _decode_time(value: float | str) -> float:
    if value == "inf":
        return math.inf
    return float(value)


def instance_to_json(instance: Instance, *, indent: int | None = None) -> str:
    """Serialise an :class:`Instance` to a JSON string."""
    doc: dict[str, Any] = {
        "format": _INSTANCE_FORMAT,
        "version": _VERSION,
        "m": instance.m,
        "tasks": [
            {
                "id": t.task_id,
                "times": [_encode_time(x) for x in t.times],
                "weight": t.weight,
                "release": t.release,
            }
            for t in instance
        ],
    }
    return json.dumps(doc, indent=indent)


def instance_from_json(text: str) -> Instance:
    """Parse an instance serialised by :func:`instance_to_json`."""
    doc = json.loads(text)
    if doc.get("format") != _INSTANCE_FORMAT:
        raise ModelError(
            f"not a repro instance document (format={doc.get('format')!r})"
        )
    if doc.get("version") != _VERSION:
        raise ModelError(f"unsupported instance version {doc.get('version')!r}")
    tasks = [
        MoldableTask(
            entry["id"],
            np.array([_decode_time(x) for x in entry["times"]]),
            weight=entry.get("weight", 1.0),
            release=entry.get("release", 0.0),
        )
        for entry in doc["tasks"]
    ]
    return Instance(tasks, doc["m"])


def schedule_to_json(schedule: Schedule, *, indent: int | None = None) -> str:
    """Serialise the scheduling decisions to a JSON string."""
    doc: dict[str, Any] = {
        "format": _SCHEDULE_FORMAT,
        "version": _VERSION,
        "m": schedule.m,
        "placements": [
            {"id": p.task.task_id, "start": p.start, "allotment": p.allotment}
            for p in schedule
        ],
    }
    return json.dumps(doc, indent=indent)


def schedule_from_json(text: str, instance: Instance) -> Schedule:
    """Parse a schedule and re-bind its decisions to ``instance``.

    Raises
    ------
    ModelError
        On format mismatch, a machine-size mismatch with ``instance`` or a
        placement referencing an unknown task.
    """
    doc = json.loads(text)
    if doc.get("format") != _SCHEDULE_FORMAT:
        raise ModelError(
            f"not a repro schedule document (format={doc.get('format')!r})"
        )
    if doc.get("version") != _VERSION:
        raise ModelError(f"unsupported schedule version {doc.get('version')!r}")
    if doc["m"] != instance.m:
        raise ModelError(
            f"schedule was built for m={doc['m']} but instance has m={instance.m}"
        )
    out = Schedule(instance.m)
    for entry in doc["placements"]:
        try:
            task = instance.task_by_id(entry["id"])
        except KeyError as exc:
            raise ModelError(str(exc)) from None
        out.add(task, entry["start"], entry["allotment"])
    return out
