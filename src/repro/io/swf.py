"""Standard Workload Format (SWF) interchange.

SWF (Feitelson's Parallel Workloads Archive) is the common format for real
cluster logs — the kind of trace the paper's workload generator [18] was
fitted to.  Each job line carries 18 whitespace-separated fields::

    job_id submit wait run procs_used cpu_used mem procs_req time_req
    mem_req status user group app queue partition preceding think_time

Missing values are ``-1``.  This module implements

* :func:`read_swf` — parse a log into :class:`SwfJob` records and
  optionally an :class:`~repro.core.instance.Instance` of *rigid* tasks
  (SWF jobs have one processor count; moldability is gone from a log);
* :func:`write_swf` — export a simulated schedule as an SWF log, so
  standard archive tooling can analyse simulated and real traces
  uniformly.

Only the fields the scheduling model uses are interpreted; the rest are
preserved on read and written as ``-1`` on export.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, TextIO

from repro.core.instance import Instance
from repro.core.schedule import Schedule
from repro.core.task import MoldableTask, rigid_task
from repro.exceptions import ModelError

__all__ = ["SwfJob", "read_swf", "write_swf", "swf_to_instance", "parse_swf_fields"]

#: Number of fields of an SWF record.
SWF_FIELDS = 18


def parse_swf_fields(line: str, lineno: int) -> tuple[float, float, float, float, float, float, float]:
    """The per-record tolerance rule, shared by both SWF parsers.

    Splits one data line and returns ``(job_id, submit, wait, run,
    procs_used, procs_req, status)`` as floats, with ``-1`` for the
    optional trailing fields of short (>= 5 field) records.  Raises
    :class:`ModelError` with the line number otherwise.  This is the
    single place the field-level tolerance lives — :func:`read_swf` (the
    object parser) and the columnar fallback of
    :mod:`repro.workloads.trace` both call it, so they cannot drift.
    """
    parts = line.split()
    if len(parts) < 5:
        raise ModelError(f"SWF line {lineno}: expected >= 5 fields, got {len(parts)}")
    try:
        return (
            float(parts[0]),
            float(parts[1]),
            float(parts[2]),
            float(parts[3]),
            float(parts[4]),
            float(parts[7]) if len(parts) > 7 else -1.0,
            float(parts[10]) if len(parts) > 10 else 1.0,
        )
    except ValueError as exc:
        raise ModelError(f"SWF line {lineno}: {exc}") from None


@dataclass(frozen=True)
class SwfJob:
    """One SWF job record (the subset of fields the model interprets).

    ``procs`` is the *effective* processor count used for replay: the
    allocation the log actually recorded (``procs_used``, field 5), falling
    back to the request (``procs_req``, field 8) when the log only kept one
    of the two — archive logs routinely store ``-1`` for either.
    """

    job_id: int
    submit: float
    wait: float
    run: float
    procs: int
    status: int = 1
    procs_req: int = -1

    def __post_init__(self) -> None:
        if self.job_id < 0:
            raise ModelError(f"negative SWF job id {self.job_id}")


def read_swf(source: str | TextIO) -> list[SwfJob]:
    """Parse SWF text (string or file object) into job records.

    Comment/header lines start with ``;`` (possibly after leading
    whitespace) and are skipped — real archive headers carry dozens of
    ``; Key: value`` metadata lines.  Job ids may appear in any order
    (concatenated or re-sorted logs).  Jobs with non-positive runtime or
    with no usable processor count (``procs_used`` and ``procs_req`` both
    missing) are skipped — cancelled / failed entries — as is conventional
    when replaying archive logs; a missing ``procs_used`` *or* a
    ``procs_req = -1`` alone falls back to the other field instead of
    dropping the job.
    """
    if isinstance(source, str):
        lines: Iterable[str] = source.splitlines()
    else:
        lines = source
    jobs: list[SwfJob] = []
    for lineno, raw in enumerate(lines, start=1):
        line = raw.lstrip("\ufeff").strip()
        if not line or line.startswith(";"):
            continue
        job_id, submit, wait, run, procs_used, procs_req, status = parse_swf_fields(
            line, lineno
        )
        if not job_id.is_integer():  # False for NaN/inf too
            raise ModelError(f"SWF line {lineno}: non-integer job id {job_id!r}")
        # Truncate *before* the positivity tests (non-finite counts as
        # missing), and spell the run check as `not (run > 0)` so NaN is
        # dropped — all three choices mirror the columnar loader's
        # int64/array semantics exactly (the round-trip suite asserts the
        # two parsers agree record for record).
        pu = int(procs_used) if math.isfinite(procs_used) else -1
        pr = int(procs_req) if math.isfinite(procs_req) else -1
        procs = pu if pu > 0 else pr
        if not (run > 0) or procs <= 0:
            continue  # cancelled / failed / malformed record
        jobs.append(
            SwfJob(
                job_id=int(job_id),
                submit=max(0.0, submit),
                wait=max(0.0, wait),
                run=run,
                procs=procs,
                status=int(status),
                procs_req=pr,
            )
        )
    return jobs


def swf_to_instance(
    jobs: Iterable[SwfJob],
    m: int,
    *,
    online: bool = True,
    default_weight: float = 1.0,
) -> Instance:
    """Build a rigid-task :class:`Instance` from SWF records.

    Jobs requesting more than ``m`` processors are clamped to ``m`` (the
    archive convention for replaying a log on a smaller machine).  With
    ``online=True`` submit times become release dates; otherwise the
    instance is off-line.
    """
    if m < 1:
        raise ModelError(f"m must be >= 1, got {m}")
    tasks: list[MoldableTask] = []
    for job in jobs:
        procs = min(job.procs, m)
        tasks.append(
            rigid_task(
                job.job_id,
                procs=procs,
                time=job.run,
                weight=default_weight,
                m=m,
                release=job.submit if online else 0.0,
            )
        )
    return Instance(tasks, m)


def _fmt(value: float) -> str:
    """Shortest decimal that parses back to the same float.

    ``repr`` precision makes ``write_swf -> read_swf`` lossless, so a
    replayed schedule's exported log carries the *exact* simulated times —
    the round-trip suite asserts tuple identity, not approximation.
    """
    return repr(float(value))


def write_swf(schedule: Schedule, *, m: int | None = None) -> str:
    """Export a schedule as SWF text.

    The submit time is the task's release date, the wait time is
    ``start - release``, and the processor count is the chosen allotment —
    i.e. the log a monitoring daemon would have recorded had the simulated
    schedule run for real.  Floats are written at full (repr) precision so
    the export round-trips losslessly through :func:`read_swf`.
    """
    m = schedule.m if m is None else m
    lines = [
        "; SWF export from the repro library (Dutot et al. SPAA'04 reproduction)",
        f"; MaxProcs: {m}",
        f"; Jobs: {len(schedule)}",
    ]
    for p in sorted(schedule, key=lambda p: (p.start, p.task.task_id)):
        submit = p.task.release
        wait = max(0.0, p.start - submit)
        fields = [
            str(p.task.task_id),
            _fmt(submit),
            _fmt(wait),
            _fmt(p.duration),
            str(p.allotment),
            "-1",  # avg cpu time
            "-1",  # memory
            str(p.allotment),  # requested procs
            _fmt(p.duration),  # requested time
            "-1",  # requested memory
            "1",  # status: completed
            "-1", "-1", "-1", "-1", "-1", "-1", "-1",
        ]
        lines.append(" ".join(fields))
    return "\n".join(lines) + "\n"
