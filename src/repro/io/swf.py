"""Standard Workload Format (SWF) interchange.

SWF (Feitelson's Parallel Workloads Archive) is the common format for real
cluster logs — the kind of trace the paper's workload generator [18] was
fitted to.  Each job line carries 18 whitespace-separated fields::

    job_id submit wait run procs_used cpu_used mem procs_req time_req
    mem_req status user group app queue partition preceding think_time

Missing values are ``-1``.  This module implements

* :func:`read_swf` — parse a log into :class:`SwfJob` records and
  optionally an :class:`~repro.core.instance.Instance` of *rigid* tasks
  (SWF jobs have one processor count; moldability is gone from a log);
* :func:`write_swf` — export a simulated schedule as an SWF log, so
  standard archive tooling can analyse simulated and real traces
  uniformly.

Only the fields the scheduling model uses are interpreted; the rest are
preserved on read and written as ``-1`` on export.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, TextIO

from repro.core.instance import Instance
from repro.core.schedule import Schedule
from repro.core.task import MoldableTask, rigid_task
from repro.exceptions import ModelError

__all__ = ["SwfJob", "read_swf", "write_swf", "swf_to_instance"]

#: Number of fields of an SWF record.
SWF_FIELDS = 18


@dataclass(frozen=True)
class SwfJob:
    """One SWF job record (the subset of fields the model interprets)."""

    job_id: int
    submit: float
    wait: float
    run: float
    procs: int
    status: int = 1

    def __post_init__(self) -> None:
        if self.job_id < 0:
            raise ModelError(f"negative SWF job id {self.job_id}")


def read_swf(source: str | TextIO) -> list[SwfJob]:
    """Parse SWF text (string or file object) into job records.

    Comment/header lines start with ``;`` and are skipped.  Jobs with
    non-positive runtime or processor count (cancelled / failed entries)
    are skipped, as is conventional when replaying archive logs.
    """
    if isinstance(source, str):
        lines: Iterable[str] = source.splitlines()
    else:
        lines = source
    jobs: list[SwfJob] = []
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith(";"):
            continue
        parts = line.split()
        if len(parts) < 5:
            raise ModelError(f"SWF line {lineno}: expected >= 5 fields, got {len(parts)}")
        try:
            job_id = int(parts[0])
            submit = float(parts[1])
            wait = float(parts[2])
            run = float(parts[3])
            procs = int(float(parts[4]))
            status = int(parts[10]) if len(parts) > 10 else 1
        except ValueError as exc:
            raise ModelError(f"SWF line {lineno}: {exc}") from None
        if run <= 0 or procs <= 0:
            continue  # cancelled / failed / malformed record
        jobs.append(
            SwfJob(
                job_id=job_id,
                submit=max(0.0, submit),
                wait=max(0.0, wait),
                run=run,
                procs=procs,
                status=status,
            )
        )
    return jobs


def swf_to_instance(
    jobs: Iterable[SwfJob],
    m: int,
    *,
    online: bool = True,
    default_weight: float = 1.0,
) -> Instance:
    """Build a rigid-task :class:`Instance` from SWF records.

    Jobs requesting more than ``m`` processors are clamped to ``m`` (the
    archive convention for replaying a log on a smaller machine).  With
    ``online=True`` submit times become release dates; otherwise the
    instance is off-line.
    """
    if m < 1:
        raise ModelError(f"m must be >= 1, got {m}")
    tasks: list[MoldableTask] = []
    for job in jobs:
        procs = min(job.procs, m)
        tasks.append(
            rigid_task(
                job.job_id,
                procs=procs,
                time=job.run,
                weight=default_weight,
                m=m,
                release=job.submit if online else 0.0,
            )
        )
    return Instance(tasks, m)


def write_swf(schedule: Schedule, *, m: int | None = None) -> str:
    """Export a schedule as SWF text.

    The submit time is the task's release date, the wait time is
    ``start - release``, and the processor count is the chosen allotment —
    i.e. the log a monitoring daemon would have recorded had the simulated
    schedule run for real.
    """
    m = schedule.m if m is None else m
    lines = [
        "; SWF export from the repro library (Dutot et al. SPAA'04 reproduction)",
        f"; MaxProcs: {m}",
        f"; Jobs: {len(schedule)}",
    ]
    for p in sorted(schedule, key=lambda p: (p.start, p.task.task_id)):
        submit = p.task.release
        wait = max(0.0, p.start - submit)
        fields = [
            str(p.task.task_id),
            f"{submit:.6g}",
            f"{wait:.6g}",
            f"{p.duration:.6g}",
            str(p.allotment),
            "-1",  # avg cpu time
            "-1",  # memory
            str(p.allotment),  # requested procs
            f"{p.duration:.6g}",  # requested time
            "-1",  # requested memory
            "1",  # status: completed
            "-1", "-1", "-1", "-1", "-1", "-1", "-1",
        ]
        lines.append(" ".join(fields))
    return "\n".join(lines) + "\n"
