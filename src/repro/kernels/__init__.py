"""Pluggable compiled kernels for the DEMT algorithm core.

The three inner loops that dominate DEMT end-to-end time — the max-weight
knapsack DP + reconstruction, the binary-choice min-work DP of the dual
approximation, and the Graham list-scheduling event loop — live behind
this package's dispatch layer.  Three interchangeable backends implement
them:

``numpy``
    The incumbent pure-NumPy/Python implementations (always available).
``cffi``
    The same loops as C, compiled on first import via :mod:`cffi` and a C
    toolchain (both optional), cached on disk by source hash.
``numba``
    The same loops as ``@njit`` functions (requires :mod:`numba`,
    optional; JIT artifacts disk-cached).

Every backend preserves the incumbent float-operation order, so schedules
and feasibility decisions are **bit-identical** across backends — the
golden corpora and the differential suites hold with kernels on and off.
The suite in ``tests/kernels/`` fuzzes all importable backends against
each other and against the seed oracles of ``algorithms/reference.py``.

Selection: the ``REPRO_KERNELS`` environment variable (``numpy`` |
``cffi`` | ``numba``; unset/``auto`` picks the fastest importable backend
in the order numba, cffi, numpy).  An explicitly requested backend that
fails to import falls back to NumPy with a :class:`RuntimeWarning` —
numbers are identical either way, only speed differs.  Tests can swap
backends at runtime via :func:`set_backend`.

Each candidate backend is smoke-tested on import against the NumPy
reference on tiny fixed inputs; a backend that returns different bits is
rejected (fall through to the next candidate) rather than trusted.
"""

from __future__ import annotations

import os
import warnings

import numpy as np

from repro import obs
from repro.kernels import _numpy as _numpy_backend

__all__ = [
    "backend_name",
    "available_backend_names",
    "load_backend",
    "set_backend",
    "knapsack_select_core",
    "knapsack_min_work_value_core",
    "graham_starts_core",
]

#: Backend preference for auto-selection (first importable wins).
_AUTO_ORDER = ("numba", "cffi")
_KNOWN = ("numpy", "cffi", "numba")

_loaded: dict[str, object] = {"numpy": _numpy_backend}
_failed: dict[str, str] = {}


def _smoke(mod) -> None:
    """Assert a backend reproduces the NumPy reference bit-for-bit on a
    tiny fixed corpus (one exercise per kernel, including a tie and an
    infeasible option)."""
    allot = np.array([2, 2, 3, 1, 7], dtype=np.int64)
    weights = np.array([5.0, 4.0, 6.0, 0.25, 9.0], dtype=np.float64)
    ref = _numpy_backend.knapsack_select_core(allot, weights, 6)
    got = mod.knapsack_select_core(allot, weights, 6)
    if got != ref:
        raise ImportError(f"{mod.name} knapsack_select mismatch: {got} != {ref}")

    work_a = np.array([4.0, 2.5, np.inf, 1.0], dtype=np.float64)
    cost_a = np.array([2, 1, 3, 9], dtype=np.int64)
    work_b = np.array([6.0, 2.5, 3.0, np.inf], dtype=np.float64)
    ref_v = _numpy_backend.knapsack_min_work_value_core(work_a, cost_a, work_b, 4)
    got_v = mod.knapsack_min_work_value_core(work_a, cost_a, work_b, 4)
    if not (got_v == ref_v or (np.isnan(got_v) and np.isnan(ref_v))):
        raise ImportError(f"{mod.name} min_work_value mismatch: {got_v} != {ref_v}")

    ga = np.array([2, 1, 3, 1, 2], dtype=np.int64)
    gd = np.array([3.0, 5.0, 1.0, 1.0, 2.0], dtype=np.float64)
    ref_g = _numpy_backend.graham_starts_core(ga, gd, 4, 0.0, None)
    got_g = mod.graham_starts_core(ga, gd, 4, 0.0, None)
    if (
        got_g is None
        or not np.array_equal(got_g[0], ref_g[0])
        or list(got_g[1]) != list(ref_g[1])
    ):
        raise ImportError(f"{mod.name} graham mismatch: {got_g} != {ref_g}")


def load_backend(name: str):
    """Import, smoke-test and cache one backend; ``None`` if unavailable."""
    if name in _loaded:
        return _loaded[name]
    if name in _failed:
        return None
    if name not in _KNOWN:
        raise ValueError(f"unknown kernel backend {name!r}; known: {_KNOWN}")
    try:
        if name == "cffi":
            from repro.kernels import _cffi as mod
        else:
            from repro.kernels import _numba as mod
        _smoke(mod)
    except Exception as exc:  # noqa: BLE001 - record and fall through
        _failed[name] = str(exc)
        return None
    _loaded[name] = mod
    return mod


def available_backend_names() -> tuple[str, ...]:
    """Names of backends that import and pass the smoke test here."""
    return tuple(n for n in _KNOWN if load_backend(n) is not None)


def _resolve_initial():
    env = os.environ.get("REPRO_KERNELS", "").strip().lower()
    if env in ("", "auto"):
        for name in _AUTO_ORDER:
            mod = load_backend(name)
            if mod is not None:
                return mod
        return _numpy_backend
    if env == "numpy":
        return _numpy_backend
    if env in _KNOWN:
        mod = load_backend(env)
        if mod is not None:
            return mod
        warnings.warn(
            f"REPRO_KERNELS={env} requested but unavailable "
            f"({_failed.get(env, 'unknown error')}); falling back to numpy "
            "(numbers are identical, only speed differs)",
            RuntimeWarning,
            stacklevel=2,
        )
        return _numpy_backend
    warnings.warn(
        f"unknown REPRO_KERNELS={env!r} (known: {', '.join(_KNOWN)}); using numpy",
        RuntimeWarning,
        stacklevel=2,
    )
    return _numpy_backend


#: The active backend module.  Swapped by :func:`set_backend`; the
#: dispatch functions below always read it, so a swap takes effect for
#: every subsequent kernel call library-wide.
ACTIVE = _resolve_initial()


def backend_name() -> str:
    """Name of the active backend (``numpy`` | ``cffi`` | ``numba``)."""
    return ACTIVE.name


def set_backend(name: str) -> str:
    """Activate a backend by name; returns the previously active name.

    Raises :class:`ValueError` for unknown names and :class:`RuntimeError`
    when the backend is known but not importable here — tests use this to
    run the same code paths under every available backend.
    """
    global ACTIVE
    previous = ACTIVE.name
    if name == "numpy":
        ACTIVE = _numpy_backend
        return previous
    mod = load_backend(name)
    if mod is None:
        raise RuntimeError(
            f"kernel backend {name!r} unavailable: {_failed.get(name, 'unknown')}"
        )
    ACTIVE = mod
    return previous


def knapsack_select_core(allotments, weights, m):
    """Dispatch: max-weight knapsack DP + reconstruction."""
    state = obs.ACTIVE
    if state is not None:
        state.count("kernel.dispatch." + ACTIVE.name)
        state.count("kernel.knapsack_select_calls")
        state.count("kernel.dp_cells", len(allotments) * (m + 1))
    return ACTIVE.knapsack_select_core(allotments, weights, m)


def knapsack_min_work_value_core(work_a, cost_a, work_b, m):
    """Dispatch: binary-choice min-work knapsack value."""
    state = obs.ACTIVE
    if state is not None:
        state.count("kernel.dispatch." + ACTIVE.name)
        state.count("kernel.min_work_value_calls")
        state.count("kernel.dp_cells", len(work_a) * (m + 1))
    return ACTIVE.knapsack_min_work_value_core(work_a, cost_a, work_b, m)


def graham_starts_core(allotments, durations, m, start_time, cutoff):
    """Dispatch: Graham list-scheduling event loop."""
    state = obs.ACTIVE
    if state is not None:
        state.count("kernel.dispatch." + ACTIVE.name)
        state.count("kernel.graham_calls")
    return ACTIVE.graham_starts_core(allotments, durations, m, start_time, cutoff)
