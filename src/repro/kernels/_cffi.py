"""cffi kernel backend: the three inner loops as compiled C.

The C code replicates the NumPy backend's float-op order exactly — IEEE
double adds and compares in the same sequence — so every DP value, every
keep/choice bit and every Graham start time is bit-identical to
:mod:`._numpy` (the differential suite pins this).  Where the order could
matter:

* the max-weight knapsack walks capacities *descending* per item, which
  reads only pre-item values — the same read set as NumPy's out-of-place
  ``candidate`` row — and applies ``np.maximum``'s NaN propagation
  explicitly;
* the min-work DP mirrors the ``wa >= wb`` shift collapse and the
  ``via_a``/``via_b`` elementwise minimum (again descending, again the
  pre-item read set);
* the Graham heap orders by end time only; Python's ``(end, allot)``
  tuple heap breaks end-time ties by allotment, but tied completions are
  always drained together before the next placement, so the freed-count
  sum — the only thing the loop reads — is order-independent.

The extension module is compiled on first import into a cache directory
(``REPRO_KERNELS_CACHE``, default ``<tempdir>/repro_kernels``) keyed by a
hash of the C source, so rebuilds only happen when the source changes and
process-pool workers reuse the cached artifact.  Any build or toolchain
failure raises ``ImportError`` — the package then falls back to NumPy.

**GIL release.**  cffi calls C functions with the GIL *released* (API
mode drops it around every call into ``lib``), and these three entry
points touch only caller-owned NumPy buffers — no Python API, no
callbacks — so concurrent kernel calls from different threads genuinely
overlap.  The campaign engine's thread backend depends on this for real
parallelism on kernel-bound cells; ``tests/kernels/test_gil_release.py``
pins the release (main-thread bytecode must keep running mid-call), so a
cffi regression that started holding the GIL would fail loudly instead
of silently serialising thread campaigns.
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.exceptions import SchedulingError

__all__ = [
    "name",
    "knapsack_select_core",
    "knapsack_min_work_value_core",
    "graham_starts_core",
]

name = "cffi"

_CDEF = """
int64_t repro_knapsack_select(const int64_t *allot, const double *weights,
                              int64_t n, int64_t m, double *best,
                              int64_t *chosen, double *total_out,
                              int64_t *used_out);
void repro_min_work_value(const double *work_a, const int64_t *cost_a,
                          const double *work_b, int64_t n, int64_t m,
                          double *dp);
int64_t repro_graham(const int64_t *allot, const double *dur, int64_t n,
                     int64_t m, double start_time, double cutoff,
                     int use_cutoff, double *starts, int64_t *order);
"""

_C_SOURCE = r"""
#include <stdint.h>
#include <stdlib.h>
#include <string.h>
#include <math.h>

/* ------------------------------------------------------------------ */
/* Max-weight 0/1 knapsack DP + reconstruction.                        */
/*                                                                     */
/* Capacities walk DESCENDING per item so best[q - a] is always the    */
/* pre-item value -- the exact read set of the NumPy backend's         */
/* out-of-place candidate row.  The keep bits live in one bitset of    */
/* n * ceil((m+1)/64) words (the bit-packed replacement for the old    */
/* n x (m+1) bool matrix).  Returns the number of chosen items, or -1  */
/* on allocation failure.                                              */
/* ------------------------------------------------------------------ */
int64_t repro_knapsack_select(const int64_t *allot, const double *weights,
                              int64_t n, int64_t m, double *best,
                              int64_t *chosen, double *total_out,
                              int64_t *used_out)
{
    int64_t stride = (m + 1 + 63) / 64;
    uint64_t *keep = calloc((size_t)(n * stride), sizeof(uint64_t));
    if (!keep)
        return -1;
    for (int64_t q = 0; q <= m; q++)
        best[q] = 0.0;
    for (int64_t i = 0; i < n; i++) {
        int64_t a = allot[i];
        if (a > m)
            continue; /* can never fit; keep row stays 0 */
        double w = weights[i];
        uint64_t *row = keep + i * stride;
        for (int64_t q = m; q >= a; q--) {
            double cand = best[q - a] + w;
            double cur = best[q];
            if (cand > cur) {
                best[q] = cand;
                row[q >> 6] |= (uint64_t)1 << (q & 63);
            } else if (cand != cand) {
                best[q] = cand; /* np.maximum propagates NaN */
            }
        }
    }
    double total = best[m];
    /* np.argmax(best >= total): first capacity achieving the optimum
       (0 when no comparison is true, e.g. a NaN total). */
    int64_t q = 0;
    while (q <= m && !(best[q] >= total))
        q++;
    if (q > m)
        q = 0;
    int64_t cnt = 0;
    for (int64_t i = n - 1; i >= 0; i--) {
        if ((keep[i * stride + (q >> 6)] >> (q & 63)) & 1) {
            chosen[cnt++] = i;
            q -= allot[i];
        }
    }
    for (int64_t x = 0, y = cnt - 1; x < y; x++, y--) {
        int64_t t = chosen[x];
        chosen[x] = chosen[y];
        chosen[y] = t;
    }
    int64_t used = 0;
    for (int64_t x = 0; x < cnt; x++)
        used += allot[chosen[x]];
    *total_out = total;
    *used_out = used;
    free(keep);
    return cnt;
}

/* ------------------------------------------------------------------ */
/* Binary-choice min-work knapsack, value only.                        */
/* ------------------------------------------------------------------ */
static inline double npy_minimum(double a, double b)
{
    /* np.minimum: the smaller operand, NaN if either is NaN. */
    if (a != a)
        return a;
    if (b != b)
        return b;
    return (a < b) ? a : b;
}

void repro_min_work_value(const double *work_a, const int64_t *cost_a,
                          const double *work_b, int64_t n, int64_t m,
                          double *dp)
{
    for (int64_t q = 0; q <= m; q++)
        dp[q] = 0.0;
    for (int64_t i = 0; i < n; i++) {
        double wa = work_a[i];
        double wb = work_b[i];
        if (wa >= wb) {
            /* Option A can never strictly win: constant shift. */
            for (int64_t q = 0; q <= m; q++)
                dp[q] = dp[q] + wb;
            continue;
        }
        int64_t c = cost_a[i];
        if (c <= m && isfinite(wa)) {
            /* Descending q: dp[q - c] is still the pre-item value. */
            for (int64_t q = m; q >= c; q--) {
                double va = dp[q - c] + wa;
                double vb = dp[q] + wb;
                dp[q] = npy_minimum(va, vb);
            }
            for (int64_t q = c - 1; q >= 0; q--)
                dp[q] = dp[q] + wb; /* via_a = inf there: min is via_b */
        } else {
            for (int64_t q = 0; q <= m; q++)
                dp[q] = dp[q] + wb;
        }
    }
}

/* ------------------------------------------------------------------ */
/* Graham list-scheduling event loop.                                  */
/*                                                                     */
/* Binary min-heap of (end, allot) ordered by end only; bucket heads   */
/* per distinct allotment value exactly like the Python loop.  Returns */
/* 0 on success, -1 on deadlock, -2 when the cutoff was exceeded, -3   */
/* on allocation failure.                                              */
/* ------------------------------------------------------------------ */
static void heap_push(double *he, int64_t *ha, int64_t *size, double e,
                      int64_t a)
{
    int64_t i = (*size)++;
    while (i > 0) {
        int64_t p = (i - 1) >> 1;
        if (he[p] <= e)
            break;
        he[i] = he[p];
        ha[i] = ha[p];
        i = p;
    }
    he[i] = e;
    ha[i] = a;
}

static void heap_pop(double *he, int64_t *ha, int64_t *size)
{
    int64_t last = --(*size);
    double e = he[last];
    int64_t a = ha[last];
    int64_t i = 0;
    for (;;) {
        int64_t l = 2 * i + 1;
        if (l >= last)
            break;
        int64_t r = l + 1;
        int64_t sm = (r < last && he[r] < he[l]) ? r : l;
        if (he[sm] >= e)
            break;
        he[i] = he[sm];
        ha[i] = ha[sm];
        i = sm;
    }
    he[i] = e;
    ha[i] = a;
}

int64_t repro_graham(const int64_t *allot, const double *dur, int64_t n,
                     int64_t m, double start_time, double cutoff,
                     int use_cutoff, double *starts, int64_t *order)
{
    int64_t status = 0;
    int64_t *slot_of = malloc((size_t)(m + 1) * sizeof(int64_t));
    int64_t *count = calloc((size_t)(m + 1), sizeof(int64_t));
    int64_t *values = malloc((size_t)(m + 1) * sizeof(int64_t));
    int64_t *cut = malloc((size_t)(m + 1) * sizeof(int64_t));
    int64_t *items = malloc((size_t)n * sizeof(int64_t));
    int64_t *offset = malloc((size_t)(m + 2) * sizeof(int64_t));
    int64_t *fill = malloc((size_t)(m + 1) * sizeof(int64_t));
    int64_t *cursor = calloc((size_t)(m + 1), sizeof(int64_t));
    int64_t *heads = malloc((size_t)(m + 1) * sizeof(int64_t));
    double *hend = malloc((size_t)(n > 0 ? n : 1) * sizeof(double));
    int64_t *hal = malloc((size_t)(n > 0 ? n : 1) * sizeof(int64_t));
    if (!slot_of || !count || !values || !cut || !items || !offset || !fill ||
        !cursor || !heads || !hend || !hal) {
        status = -3;
        goto done;
    }

    for (int64_t i = 0; i < n; i++) {
        if (allot[i] < 0 || allot[i] > m) {
            status = -1; /* would deadlock: report like the Python loop */
            goto done;
        }
        count[allot[i]]++;
    }
    int64_t V = 0;
    for (int64_t a = 0; a <= m; a++) {
        if (count[a]) {
            slot_of[a] = V;
            values[V] = a;
            V++;
        } else {
            slot_of[a] = -1;
        }
    }
    offset[0] = 0;
    for (int64_t s = 0; s < V; s++)
        offset[s + 1] = offset[s] + count[values[s]];
    for (int64_t s = 0; s < V; s++)
        fill[s] = offset[s];
    for (int64_t i = 0; i < n; i++)
        items[fill[slot_of[allot[i]]]++] = i;
    for (int64_t s = 0; s < V; s++)
        heads[s] = items[offset[s]];
    { /* cut[f] = number of distinct values <= f (bisect_right) */
        int64_t s = 0;
        for (int64_t f = 0; f <= m; f++) {
            while (s < V && values[s] <= f)
                s++;
            cut[f] = s;
        }
    }

    int64_t free_p = m;
    double now = start_time;
    int64_t placed = 0;
    int64_t pos = 0;
    int64_t hsize = 0;

    while (placed < n) {
        while (free_p > 0) {
            int64_t c = cut[free_p];
            if (c == 0)
                break;
            int64_t idx = n;
            for (int64_t s = 0; s < c; s++)
                if (heads[s] < idx)
                    idx = heads[s];
            if (idx == n)
                break;
            starts[idx] = now;
            order[pos++] = idx;
            int64_t a = allot[idx];
            heap_push(hend, hal, &hsize, now + dur[idx], a);
            free_p -= a;
            placed++;
            int64_t s = slot_of[a];
            int64_t cur = ++cursor[s];
            heads[s] = (offset[s] + cur < offset[s + 1]) ? items[offset[s] + cur]
                                                         : n;
        }
        if (placed == n)
            break;
        if (hsize == 0) {
            status = -1; /* deadlock */
            break;
        }
        double end = hend[0];
        int64_t a = hal[0];
        heap_pop(hend, hal, &hsize);
        free_p += a;
        now = end;
        while (hsize && hend[0] <= now) {
            free_p += hal[0];
            heap_pop(hend, hal, &hsize);
        }
        if (use_cutoff && now > cutoff) {
            status = -2;
            break;
        }
    }

done:
    free(slot_of);
    free(count);
    free(values);
    free(cut);
    free(items);
    free(offset);
    free(fill);
    free(cursor);
    free(heads);
    free(hend);
    free(hal);
    return status;
}
"""


def _cache_dir() -> Path:
    root = os.environ.get("REPRO_KERNELS_CACHE")
    if root:
        return Path(root)
    return Path(tempfile.gettempdir()) / "repro_kernels"


def _load_extension():
    """Compile (once, cached by source hash) and import the extension."""
    from cffi import FFI  # may raise ImportError: caller falls back

    tag = hashlib.sha256((_CDEF + _C_SOURCE).encode()).hexdigest()[:16]
    modname = f"_repro_kernels_{tag}"
    cache = _cache_dir()
    cache.mkdir(parents=True, exist_ok=True)

    def _find_so() -> Path | None:
        hits = sorted(cache.glob(f"{modname}*.so")) + sorted(
            cache.glob(f"{modname}*.pyd")
        )
        return hits[0] if hits else None

    sofile = _find_so()
    if sofile is None:
        # Build in a per-pid staging dir, then move the artifact into the
        # cache root — concurrent builders race benignly (same bytes).
        stage = cache / f"build-{os.getpid()}"
        stage.mkdir(parents=True, exist_ok=True)
        ffibuilder = FFI()
        ffibuilder.cdef(_CDEF)
        ffibuilder.set_source(modname, _C_SOURCE, extra_compile_args=["-O2"])
        built = Path(ffibuilder.compile(tmpdir=str(stage), verbose=False))
        target = cache / built.name
        try:
            os.replace(built, target)
        except OSError:  # pragma: no cover - cross-device fallback
            import shutil

            shutil.copy2(built, target)
        sofile = _find_so()
        if sofile is None:  # pragma: no cover - defensive
            raise ImportError("cffi kernel build produced no extension module")

    spec = importlib.util.spec_from_file_location(modname, str(sofile))
    if spec is None or spec.loader is None:  # pragma: no cover - defensive
        raise ImportError(f"cannot load compiled kernel module {sofile}")
    mod = importlib.util.module_from_spec(spec)
    sys.modules.setdefault(modname, mod)
    spec.loader.exec_module(mod)
    return mod.ffi, mod.lib


try:
    _ffi, _lib = _load_extension()
except Exception as exc:  # noqa: BLE001 - any toolchain failure disables cffi
    raise ImportError(f"cffi kernel backend unavailable: {exc}") from exc


def _i64(arr) -> np.ndarray:
    return np.ascontiguousarray(arr, dtype=np.int64)


def _f64(arr) -> np.ndarray:
    return np.ascontiguousarray(arr, dtype=np.float64)


def _ptr(ctype: str, arr: np.ndarray):
    return _ffi.cast(ctype, _ffi.from_buffer(arr))


def knapsack_select_core(
    allotments: np.ndarray, weights: np.ndarray, m: int
) -> tuple[list[int], float, int]:
    allot = _i64(allotments)
    w = _f64(weights)
    n = int(allot.size)
    best = np.empty(m + 1, dtype=np.float64)
    chosen = np.empty(n, dtype=np.int64)
    total = _ffi.new("double *")
    used = _ffi.new("int64_t *")
    cnt = _lib.repro_knapsack_select(
        _ptr("int64_t *", allot),
        _ptr("double *", w),
        n,
        int(m),
        _ptr("double *", best),
        _ptr("int64_t *", chosen),
        total,
        used,
    )
    if cnt < 0:  # pragma: no cover - allocation failure
        raise MemoryError("knapsack kernel allocation failed")
    return chosen[:cnt].tolist(), float(total[0]), int(used[0])


def knapsack_min_work_value_core(
    work_a: np.ndarray, cost_a: np.ndarray, work_b: np.ndarray, m: int
) -> float:
    wa = _f64(work_a)
    wb = _f64(work_b)
    cost = _i64(cost_a)
    dp = np.empty(m + 1, dtype=np.float64)
    _lib.repro_min_work_value(
        _ptr("double *", wa),
        _ptr("int64_t *", cost),
        _ptr("double *", wb),
        int(wa.size),
        int(m),
        _ptr("double *", dp),
    )
    return float(dp[m])


def graham_starts_core(
    allotments,
    durations,
    m: int,
    start_time: float,
    cutoff: float | None,
) -> tuple[np.ndarray, list[int]] | None:
    allot = _i64(allotments)
    dur = _f64(durations)
    n = int(allot.size)
    starts = np.zeros(n, dtype=np.float64)
    order = np.empty(n, dtype=np.int64)
    status = _lib.repro_graham(
        _ptr("int64_t *", allot),
        _ptr("double *", dur),
        n,
        int(m),
        float(start_time),
        float(cutoff) if cutoff is not None else 0.0,
        1 if cutoff is not None else 0,
        _ptr("double *", starts),
        _ptr("int64_t *", order),
    )
    if status == -2:
        return None
    if status == -1:  # pragma: no cover - defensive; caller guards allotments
        raise SchedulingError("graham kernel deadlocked (item larger than machine?)")
    if status == -3:  # pragma: no cover - allocation failure
        raise MemoryError("graham kernel allocation failed")
    return starts, order.tolist()
