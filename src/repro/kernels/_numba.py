"""Numba kernel backend: the three inner loops as ``@njit`` functions.

Same float-op order as :mod:`._numpy` and :mod:`._cffi` (see the latter's
docstring for the order-equivalence argument; the compiled loops here are
line-for-line the C ones).  Importing this module requires ``numba``; the
JIT artifacts are disk-cached (``cache=True``) so process-pool workers and
repeat runs skip recompilation.  Any import or JIT failure surfaces as
``ImportError`` via the package's backend resolution, which then falls
back to NumPy.

Every loop is compiled with ``nogil=True``: the jitted bodies touch no
Python objects (NumPy buffers and scalars only), so numba drops the GIL
for the whole call and concurrent kernel calls from different threads
genuinely overlap — this is what gives the campaign engine's thread
backend real parallelism on kernel-bound cells.
``tests/kernels/test_gil_release.py`` pins the release (main-thread
bytecode must keep running mid-call).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SchedulingError

try:
    from numba import njit
except ImportError as exc:  # pragma: no cover - exercised only without numba
    raise ImportError(f"numba kernel backend unavailable: {exc}") from exc

__all__ = [
    "name",
    "knapsack_select_core",
    "knapsack_min_work_value_core",
    "graham_starts_core",
]

name = "numba"


@njit(cache=True, nogil=True)
def _knapsack_select_jit(allot, weights, m):  # pragma: no cover - jitted
    n = allot.size
    stride = (m + 1 + 63) // 64
    keep = np.zeros(n * stride, dtype=np.uint64)
    best = np.zeros(m + 1, dtype=np.float64)
    for i in range(n):
        a = allot[i]
        if a > m:
            continue
        w = weights[i]
        base = i * stride
        # Descending capacities: best[q - a] is always the pre-item value.
        for q in range(m, a - 1, -1):
            cand = best[q - a] + w
            cur = best[q]
            if cand > cur:
                best[q] = cand
                keep[base + (q >> 6)] |= np.uint64(1) << np.uint64(q & 63)
            elif cand != cand:
                best[q] = cand  # np.maximum propagates NaN
    total = best[m]
    q = 0
    while q <= m and not (best[q] >= total):
        q += 1
    if q > m:
        q = 0  # argmax over all-False: index 0
    chosen = np.empty(n, dtype=np.int64)
    cnt = 0
    for i in range(n - 1, -1, -1):
        if (keep[i * stride + (q >> 6)] >> np.uint64(q & 63)) & np.uint64(1):
            chosen[cnt] = i
            cnt += 1
            q -= allot[i]
    # Reverse to ascending index order.
    for x in range(cnt // 2):
        y = cnt - 1 - x
        chosen[x], chosen[y] = chosen[y], chosen[x]
    used = 0
    for x in range(cnt):
        used += allot[chosen[x]]
    return chosen[:cnt], total, used


@njit(cache=True, nogil=True)
def _min_work_value_jit(work_a, cost_a, work_b, m):  # pragma: no cover - jitted
    n = work_a.size
    dp = np.zeros(m + 1, dtype=np.float64)
    for i in range(n):
        wa = work_a[i]
        wb = work_b[i]
        if wa >= wb:
            for q in range(m + 1):
                dp[q] = dp[q] + wb
            continue
        c = cost_a[i]
        if c <= m and np.isfinite(wa):
            for q in range(m, c - 1, -1):
                va = dp[q - c] + wa
                vb = dp[q] + wb
                # np.minimum: smaller operand, NaN if either is NaN.
                if va != va:
                    dp[q] = va
                elif vb != vb:
                    dp[q] = vb
                elif va < vb:
                    dp[q] = va
                else:
                    dp[q] = vb
            for q in range(c - 1, -1, -1):
                dp[q] = dp[q] + wb
        else:
            for q in range(m + 1):
                dp[q] = dp[q] + wb
    return dp[m]


@njit(cache=True, nogil=True)
def _graham_jit(allot, dur, m, start_time, cutoff, use_cutoff):  # pragma: no cover
    n = allot.size
    starts = np.zeros(n, dtype=np.float64)
    order = np.empty(n, dtype=np.int64)
    for i in range(n):
        if allot[i] < 0 or allot[i] > m:
            return starts, order, np.int64(-1)

    count = np.zeros(m + 1, dtype=np.int64)
    for i in range(n):
        count[allot[i]] += 1
    slot_of = np.full(m + 1, -1, dtype=np.int64)
    values = np.empty(m + 1, dtype=np.int64)
    V = 0
    for a in range(m + 1):
        if count[a] > 0:
            slot_of[a] = V
            values[V] = a
            V += 1
    offset = np.zeros(V + 1, dtype=np.int64)
    for s in range(V):
        offset[s + 1] = offset[s] + count[values[s]]
    items = np.empty(n, dtype=np.int64)
    fill = offset[:V].copy()
    for i in range(n):
        s = slot_of[allot[i]]
        items[fill[s]] = i
        fill[s] += 1
    cursor = np.zeros(V, dtype=np.int64)
    heads = np.empty(V, dtype=np.int64)
    for s in range(V):
        heads[s] = items[offset[s]]
    cut = np.zeros(m + 1, dtype=np.int64)
    s = 0
    for f in range(m + 1):
        while s < V and values[s] <= f:
            s += 1
        cut[f] = s

    hend = np.empty(max(n, 1), dtype=np.float64)
    hal = np.empty(max(n, 1), dtype=np.int64)
    hsize = 0

    free_p = m
    now = start_time
    placed = 0
    pos = 0
    while placed < n:
        while free_p > 0:
            c = cut[free_p]
            if c == 0:
                break
            idx = n
            for sl in range(c):
                if heads[sl] < idx:
                    idx = heads[sl]
            if idx == n:
                break
            starts[idx] = now
            order[pos] = idx
            pos += 1
            a = allot[idx]
            # heap push (now + dur[idx], a), ordered by end time only
            e = now + dur[idx]
            i = hsize
            hsize += 1
            while i > 0:
                p = (i - 1) >> 1
                if hend[p] <= e:
                    break
                hend[i] = hend[p]
                hal[i] = hal[p]
                i = p
            hend[i] = e
            hal[i] = a
            free_p -= a
            placed += 1
            sl = slot_of[a]
            cursor[sl] += 1
            nxt = offset[sl] + cursor[sl]
            heads[sl] = items[nxt] if nxt < offset[sl + 1] else n
        if placed == n:
            break
        if hsize == 0:
            return starts, order, np.int64(-1)
        # pop-and-drain completions at the next event time
        while True:
            end = hend[0]
            a = hal[0]
            free_p += a
            now = end
            # heap pop (siftdown with the last element)
            hsize -= 1
            last_e = hend[hsize]
            last_a = hal[hsize]
            i = 0
            while True:
                l = 2 * i + 1
                if l >= hsize:
                    break
                r = l + 1
                sm = r if (r < hsize and hend[r] < hend[l]) else l
                if hend[sm] >= last_e:
                    break
                hend[i] = hend[sm]
                hal[i] = hal[sm]
                i = sm
            if hsize > 0:
                hend[i] = last_e
                hal[i] = last_a
            if hsize == 0 or hend[0] > now:
                break
        if use_cutoff and now > cutoff:
            return starts, order, np.int64(-2)
    return starts, order, np.int64(0)


def _i64(arr) -> np.ndarray:
    return np.ascontiguousarray(arr, dtype=np.int64)


def _f64(arr) -> np.ndarray:
    return np.ascontiguousarray(arr, dtype=np.float64)


def knapsack_select_core(
    allotments: np.ndarray, weights: np.ndarray, m: int
) -> tuple[list[int], float, int]:
    chosen, total, used = _knapsack_select_jit(_i64(allotments), _f64(weights), int(m))
    return chosen.tolist(), float(total), int(used)


def knapsack_min_work_value_core(
    work_a: np.ndarray, cost_a: np.ndarray, work_b: np.ndarray, m: int
) -> float:
    return float(
        _min_work_value_jit(_f64(work_a), _i64(cost_a), _f64(work_b), int(m))
    )


def graham_starts_core(
    allotments,
    durations,
    m: int,
    start_time: float,
    cutoff: float | None,
) -> tuple[np.ndarray, list[int]] | None:
    starts, order, status = _graham_jit(
        _i64(allotments),
        _f64(durations),
        int(m),
        float(start_time),
        float(cutoff) if cutoff is not None else 0.0,
        cutoff is not None,
    )
    if status == -2:
        return None
    if status == -1:
        raise SchedulingError("graham kernel deadlocked (item larger than machine?)")
    return starts, order.tolist()
