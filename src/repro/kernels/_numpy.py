"""Pure-NumPy kernel backend — the always-available reference.

These are the incumbent implementations of the three DEMT inner loops,
moved verbatim from ``algorithms/knapsack.py`` and ``core/profile.py``
(same float operations in the same order, so every schedule and every
feasibility decision is bit-identical to the pre-kernel library).  The
compiled backends (:mod:`._cffi`, :mod:`._numba`) mirror this float-op
order exactly; the differential suite in ``tests/kernels/`` pins all
backends against each other and against ``algorithms/reference.py``.

The one intentional change over the pre-kernel code is the knapsack
``keep`` matrix: the old code allocated a fresh ``n × (m+1)`` bool matrix
per call (quadratic transient memory at replay scale); here the keep bits
are built in a small rolling chunk and bit-packed into ``n × ceil((m+1)/8)``
bytes.  The bits themselves — and therefore the reconstruction — are
unchanged.
"""

from __future__ import annotations

import heapq
import math
from bisect import bisect_right

import numpy as np

from repro.exceptions import SchedulingError

__all__ = [
    "name",
    "knapsack_select_core",
    "knapsack_min_work_value_core",
    "graham_starts_core",
]

name = "numpy"

#: Rows of ``keep`` bits buffered before packing (keeps the unpacked
#: scratch at ``64 × (m+1)`` bools however large the item pool gets).
_KEEP_CHUNK = 64


def knapsack_select_core(
    allotments: np.ndarray, weights: np.ndarray, m: int
) -> tuple[list[int], float, int]:
    """Max-weight 0/1 knapsack DP + reconstruction (no short-circuits).

    ``allotments`` is int64, ``weights`` float64, both 1-D of the same
    length; the caller (``knapsack_select_indices``) has already handled
    the empty and take-all cases.
    """
    n = int(allotments.size)
    # best[q] = max weight using at most q processors, items 0..i.
    best = np.zeros(m + 1, dtype=np.float64)
    scratch = np.empty(m + 1, dtype=np.float64)
    # keep[i, q] = True iff item i is taken in the optimum for capacity q,
    # bit-packed row-wise (big-endian within a byte, np.packbits order).
    row_bytes = (m + 1 + 7) // 8
    packed = np.empty((n, row_bytes), dtype=np.uint8)
    chunk = np.zeros((_KEEP_CHUNK, m + 1), dtype=bool)

    alist = allotments.tolist()
    for base in range(0, n, _KEEP_CHUNK):
        hi = min(base + _KEEP_CHUNK, n)
        rows = chunk[: hi - base]
        rows.fill(False)
        for i in range(base, hi):
            a = alist[i]
            if a > m:
                continue  # can never fit; row of keep stays False
            candidate = scratch[: m + 1 - a]
            np.add(best[: m + 1 - a], weights[i], out=candidate)
            np.greater(candidate, best[a:], out=rows[i - base, a:])
            np.maximum(best[a:], candidate, out=best[a:])
        packed[base:hi] = np.packbits(rows, axis=1)

    # Reconstruct at the smallest capacity achieving the maximal weight
    # (fewest processors used for the same weight).  The comparison must be
    # exact: `best` is non-decreasing in the capacity, so `best[q] >= total`
    # already means equality, whereas a tolerance would accept a capacity
    # whose optimum is a *strictly lighter* selection when item weights
    # differ by less than the tolerance — the reconstruction would then not
    # reproduce the reported total.
    total = float(best[m])
    q = int(np.argmax(best >= total))
    data = packed.tobytes()  # flat row-major bytes; cheap Python-int bit tests
    chosen_idx: list[int] = []
    for i in range(n - 1, -1, -1):
        if (data[i * row_bytes + (q >> 3)] >> (7 - (q & 7))) & 1:
            chosen_idx.append(i)
            q -= alist[i]
    chosen_idx.reverse()
    used = sum(alist[i] for i in chosen_idx)
    return chosen_idx, total, used


def knapsack_min_work_value_core(
    work_a: np.ndarray, cost_a: np.ndarray, work_b: np.ndarray, m: int
) -> float:
    """Binary-choice min-work knapsack, value only (``cost_a`` int64)."""
    n = int(work_a.size)
    INF = np.inf
    dp = np.zeros(m + 1)
    via_a = np.empty(m + 1)
    via_b = np.empty(m + 1)
    wa_list = work_a.tolist()
    wb_list = work_b.tolist()
    cost_list = cost_a.tolist()
    for i in range(n):
        wa = wa_list[i]
        wb = wb_list[i]
        if wa >= wb:
            # Option A can never strictly win: dp is non-increasing in the
            # capacity, so via_a(q) = dp(q - c) + wa >= dp(q) + wb = via_b(q).
            np.add(dp, wb, out=dp)
            continue
        a_cost = cost_list[i]
        np.add(dp, wb, out=via_b)
        if a_cost <= m and math.isfinite(wa):
            via_a[:a_cost] = INF
            np.add(dp[: m + 1 - a_cost], wa, out=via_a[a_cost:])
        else:
            via_a[:] = INF
        np.minimum(via_a, via_b, out=dp)
    return float(dp[m])


def graham_starts_core(
    allotments,
    durations,
    m: int,
    start_time: float,
    cutoff: float | None,
) -> tuple[np.ndarray, list[int]] | None:
    """Graham list-scheduling event loop (see ``core/profile.graham_starts``)."""
    n = len(allotments)
    # The event loop runs on plain Python scalars: element reads/writes on
    # numpy arrays cost ~100ns each, which dominates at this granularity.
    dlist = np.asarray(durations, dtype=np.float64).tolist()
    alist = np.asarray(allotments).tolist() if not isinstance(allotments, list) else allotments
    starts = [0.0] * n

    # Pending items are bucketed by allotment value, each bucket keeping
    # its items in priority order.  "First pending item with allotment
    # <= free" is then the minimum of the bucket heads over the distinct
    # values <= free — a bisect plus a C-level min over a short list,
    # instead of rescanning the pending list.
    buckets: dict[int, list[int]] = {}
    for idx, a in enumerate(alist):
        buckets.setdefault(a, []).append(idx)
    values = sorted(buckets)  # distinct allotment values, ascending
    slot_of = {a: s for s, a in enumerate(values)}
    bucket_lists = [buckets[a] for a in values]
    cursors = [0] * len(values)
    heads = [b[0] for b in bucket_lists]  # per-slot next pending index (n = empty)

    order: list[int] = []
    free = int(m)
    now = float(start_time)
    heap: list[tuple[float, int]] = []  # (end_time, allotment) min-heap
    placed = 0

    while placed < n:
        # Burst phase: the free count only shrinks between two completion
        # events, so repeatedly taking the head of the cheapest-index
        # fitting bucket reproduces the textbook restart-from-the-head scan.
        while free > 0:
            cut = bisect_right(values, free)
            if cut == 0:
                break
            idx = heads[0] if cut == 1 else min(heads[:cut])
            if idx == n:
                break
            starts[idx] = now
            order.append(idx)
            a = alist[idx]
            heapq.heappush(heap, (now + dlist[idx], a))
            free -= a
            placed += 1
            slot = slot_of[a]
            bucket = bucket_lists[slot]
            cursor = cursors[slot] + 1
            cursors[slot] = cursor
            heads[slot] = bucket[cursor] if cursor < len(bucket) else n
        if placed == n:
            break
        if not heap:  # pragma: no cover - defensive; free == m yet nothing fits
            raise SchedulingError("graham kernel deadlocked (item larger than machine?)")
        # Advance to the next completion (plus simultaneous ones).
        end, allot = heapq.heappop(heap)
        free += allot
        now = end
        while heap and heap[0][0] <= now:
            _, a = heapq.heappop(heap)
            free += a
        if cutoff is not None and now > cutoff:
            return None
    return np.asarray(starts, dtype=np.float64), order
