"""Observability plane: hierarchical spans, counters, and trace export.

The whole plane hangs off one module-level sentinel:

``obs.ACTIVE``
    ``None`` when tracing is disabled (the default), otherwise the
    session's :class:`~repro.obs.tracer.ObsState`.

Instrumented call sites follow one idiom — a single attribute load and
an ``is``-check, nothing else, when disabled::

    from repro import obs

    state = obs.ACTIVE
    if state is not None:
        state.count("dual.probes", len(lams))

That read is the *entire* disabled-mode cost (pinned by
``benchmarks/bench_obs_overhead.py``); no dict lookups, no method calls,
no allocations happen on the hot path until a state is installed.

This package imports only the standard library: the kernel layer
(``repro.kernels``) instruments itself with ``repro.obs``, so anything
heavier here would create an import cycle.
"""

from __future__ import annotations

from repro.obs.tracer import ObsState

__all__ = ["ACTIVE", "ObsState", "disable", "enable", "enabled"]

#: The installed observability state, or ``None`` when disabled.
#: Hot paths read this exactly once per hook site.
ACTIVE: ObsState | None = None


def enable(clock=None, *, fresh: bool = False) -> ObsState:
    """Install (and return) the process-wide :class:`ObsState`.

    Idempotent by default: if a state is already installed it is
    returned untouched so nested enables (CLI + library callers) share
    one trace.  ``fresh=True`` forces a brand-new state — process-pool
    workers use this because a forked child inherits the parent's
    ``ACTIVE`` object and must not append to that dead copy.

    ``clock`` is the monotonic time source (``time.perf_counter`` by
    default); tests inject a fake counter clock for deterministic spans.
    """
    global ACTIVE
    if ACTIVE is None or fresh:
        ACTIVE = ObsState(clock=clock)
    return ACTIVE


def disable() -> ObsState | None:
    """Uninstall and return the current state (``None`` if none was set).

    After this call every instrumented site is back to the single
    load-and-is-check no-op path.
    """
    global ACTIVE
    state, ACTIVE = ACTIVE, None
    return state


def enabled() -> bool:
    """True when an :class:`ObsState` is installed."""
    return ACTIVE is not None
