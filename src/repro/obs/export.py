"""Exporters for :class:`~repro.obs.tracer.ObsState`.

Three formats, one source of truth:

* :func:`chrome_trace_doc` — the Chrome trace-event JSON object
  (``chrome://tracing`` / Perfetto load it directly).  Spans become
  ``ph: "X"`` complete events with microsecond ``ts``/``dur`` relative
  to the state's start; counters become ``ph: "C"`` events.  The full
  metrics registry rides along under a top-level ``"metrics"`` key
  (viewers ignore unknown keys).
* :func:`write_trace` — writes the Chrome doc, or newline-delimited
  JSON (one event per line) when the path ends in ``.jsonl``.
* :func:`metrics_summary` — terminal report: counter table, histogram
  table, and a span flame rendered via
  :func:`repro.utils.ascii_plot.ascii_flame`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.tracer import ObsState

__all__ = ["chrome_trace_doc", "metrics_summary", "write_trace"]

#: pid stamped on every event — the merged trace is one logical process
#: (worker snapshots are distinguished by tid lanes instead).
_PID = 0


def chrome_trace_doc(state: ObsState) -> dict[str, Any]:
    """Build the Chrome trace-event document for ``state``."""
    events: list[dict[str, Any]] = []
    t_end = 0.0
    for sp in state.spans:
        ts = (sp.t0 - state.t0) * 1e6
        dur = (sp.t1 - sp.t0) * 1e6
        if ts + dur > t_end:
            t_end = ts + dur
        events.append(
            {
                "ph": "X",
                "name": sp.name,
                "cat": sp.cat or "span",
                "ts": ts,
                "dur": dur,
                "pid": _PID,
                "tid": sp.tid,
                "args": {"sid": sp.sid, "parent": sp.parent},
            }
        )
    for name in sorted(state.counters):
        events.append(
            {
                "ph": "C",
                "name": name,
                "cat": "counter",
                "ts": t_end,
                "pid": _PID,
                "tid": 0,
                "args": {"value": state.counters[name]},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metrics": {
            "counters": dict(state.counters),
            "gauges": dict(state.gauges),
            "histograms": {
                name: {**h, "buckets": {str(k): v for k, v in h["buckets"].items()}}
                for name, h in state.hists.items()
            },
            "hook_calls": state.hook_calls,
        },
    }


def write_trace(state: ObsState, path: str | Path) -> Path:
    """Write ``state`` to ``path``; format chosen by suffix.

    ``.jsonl`` → one JSON object per line (the events, then one final
    ``{"metrics": ...}`` line); anything else → the Chrome trace JSON
    document.  Returns the path written.
    """
    path = Path(path)
    doc = chrome_trace_doc(state)
    if path.suffix == ".jsonl":
        lines = [json.dumps(ev) for ev in doc["traceEvents"]]
        lines.append(json.dumps({"metrics": doc["metrics"]}))
        path.write_text("\n".join(lines) + "\n")
    else:
        path.write_text(json.dumps(doc, indent=2) + "\n")
    return path


def _span_rows(state: ObsState) -> list[tuple[str, float, str]]:
    """Aggregate spans by tree path into flame rows.

    Spans sharing a (path-of-names) aggregate their total time and
    count; rows come out depth-first with two-space indentation per
    level, so the flame reads like a collapsed call tree.
    """
    by_sid = {sp.sid: sp for sp in state.spans}
    paths: dict[tuple[str, ...], list[float]] = {}
    for sp in state.spans:
        names = [sp.name]
        cur = sp
        hops = 0
        while cur.parent >= 0 and hops < 64:
            cur = by_sid.get(cur.parent)
            if cur is None:
                break
            names.append(cur.name)
            hops += 1
        path = tuple(reversed(names))
        agg = paths.setdefault(path, [0.0, 0])
        agg[0] += sp.t1 - sp.t0
        agg[1] += 1
    rows = []
    for path in sorted(paths):
        total, n = paths[path]
        indent = "  " * (len(path) - 1)
        rows.append((f"{indent}{path[-1]}", total, f"{total:9.4f} s  x{n}"))
    return rows


def metrics_summary(state: ObsState) -> str:
    """Human-readable metrics + flame report for the terminal."""
    from repro.utils.ascii_plot import ascii_flame

    lines = ["== metrics =="]
    if state.counters:
        width = max(len(n) for n in state.counters)
        for name in sorted(state.counters):
            value = state.counters[name]
            shown = f"{value:,}" if isinstance(value, int) else f"{value:,.3f}"
            lines.append(f"  {name:<{width}} {shown:>14}")
    else:
        lines.append("  (no counters)")
    if state.gauges:
        lines.append("-- gauges --")
        width = max(len(n) for n in state.gauges)
        for name in sorted(state.gauges):
            lines.append(f"  {name:<{width}} {state.gauges[name]:>14,.3f}")
    if state.hists:
        lines.append("-- histograms --")
        width = max(len(n) for n in state.hists)
        for name in sorted(state.hists):
            h = state.hists[name]
            mean = h["total"] / h["count"] if h["count"] else 0.0
            lines.append(
                f"  {name:<{width}} count={h['count']:,} mean={mean:,.2f} "
                f"min={h['min']:,.2f} max={h['max']:,.2f}"
            )
    rows = _span_rows(state)
    if rows:
        lines.append("")
        lines.append(ascii_flame(rows, title="== spans (total time, by path) =="))
    return "\n".join(lines)
