"""Span tracer and metrics registry backing ``repro.obs``.

One :class:`ObsState` holds everything a traced run produces:

* **spans** — closed intervals on a monotonic clock, organised as a
  forest by parent span id (campaign → cell → algorithm → kernel);
* **counters** — monotonically accumulated named totals
  (``dual.probes``, ``spine.transitions.arrival``, …);
* **gauges** — last-write-wins named values;
* **histograms** — count/total/min/max plus power-of-two buckets
  (``online.batch_size``, ``spine.window_depth``, …).

Worker processes build their own fresh state, :meth:`ObsState.snapshot`
it into a picklable dict that rides back with the cell result, and the
parent :meth:`ObsState.merge`\\ s it under the dispatching span with span
ids remapped and worker timelines re-anchored — cross-process clocks are
not comparable, so a worker's spans are placed relative to the moment
the parent dispatched the work and tagged with a distinct ``tid``.

``hook_calls`` counts every mutating hook invocation (span open, count,
gauge, observe); the overhead bench multiplies it by the measured cost
of the disabled-mode check to bound what instrumentation costs a run
that never enables tracing.
"""

from __future__ import annotations

import time
from typing import Any, Callable


class Span:
    """A closed span: ``sid``/``parent`` ids, name, category, times.

    ``parent`` is ``-1`` for roots.  ``tid`` groups spans into timeline
    lanes (0 is the parent process; merged worker snapshots get fresh
    positive ids).
    """

    __slots__ = ("sid", "parent", "name", "cat", "t0", "t1", "tid")

    def __init__(self, sid, parent, name, cat, t0, t1=0.0, tid=0):
        self.sid = sid
        self.parent = parent
        self.name = name
        self.cat = cat
        self.t0 = t0
        self.t1 = t1
        self.tid = tid

    def __repr__(self):  # pragma: no cover - debugging aid
        return (
            f"Span(sid={self.sid}, parent={self.parent}, name={self.name!r}, "
            f"cat={self.cat!r}, t0={self.t0:.6f}, t1={self.t1:.6f}, tid={self.tid})"
        )


class _SpanCM:
    """Context manager returned by :meth:`ObsState.span`."""

    __slots__ = ("_state", "_span")

    def __init__(self, state, span):
        self._state = state
        self._span = span

    def __enter__(self):
        return self._span

    def __exit__(self, exc_type, exc, tb):
        self._state._close(self._span)
        return False


class ObsState:
    """Mutable trace + metrics accumulator for one process."""

    def __init__(self, clock: Callable[[], float] | None = None):
        self.clock = clock if clock is not None else time.perf_counter
        self.t0 = self.clock()
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.hists: dict[str, dict[str, Any]] = {}
        self.spans: list[Span] = []
        self.hook_calls = 0
        self._stack: list[Span] = []
        self._next_sid = 0
        self._next_tid = 1

    # -- spans ---------------------------------------------------------

    def span(self, name: str, cat: str = "") -> _SpanCM:
        """Open a nested span; close it by leaving the ``with`` block."""
        self.hook_calls += 1
        sid = self._next_sid
        self._next_sid = sid + 1
        parent = self._stack[-1].sid if self._stack else -1
        sp = Span(sid, parent, name, cat, self.clock())
        self._stack.append(sp)
        return _SpanCM(self, sp)

    def _close(self, sp: Span) -> None:
        sp.t1 = self.clock()
        # Exceptions can unwind several spans at once; pop to (and
        # including) the span being closed so nesting stays consistent.
        while self._stack:
            top = self._stack.pop()
            top.t1 = sp.t1 if top is sp else top.t1 or sp.t1
            self.spans.append(top)
            if top is sp:
                break

    # -- metrics -------------------------------------------------------

    def count(self, name: str, delta: float = 1) -> None:
        """Add ``delta`` to the named counter (created at 0)."""
        self.hook_calls += 1
        self.counters[name] = self.counters.get(name, 0) + delta

    def gauge(self, name: str, value: float) -> None:
        """Set the named gauge (last write wins)."""
        self.hook_calls += 1
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into the named histogram."""
        self.hook_calls += 1
        h = self.hists.get(name)
        if h is None:
            h = self.hists[name] = {
                "count": 0,
                "total": 0,
                "min": value,
                "max": value,
                "buckets": {},
            }
        h["count"] += 1
        h["total"] += value
        if value < h["min"]:
            h["min"] = value
        if value > h["max"]:
            h["max"] = value
        # Power-of-two buckets keyed by the bucket's upper bound; 0 and
        # negatives land in the "<=0" bucket (arrival gaps can be 0).
        if value <= 0:
            key = 0
        else:
            key = 1
            v = value
            while v > 1:
                key *= 2
                v /= 2
        buckets = h["buckets"]
        buckets[key] = buckets.get(key, 0) + 1

    # -- cross-process aggregation ------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Picklable dict of everything recorded so far.

        Span times are stored *relative to* ``t0`` so the parent can
        re-anchor them on its own clock (cross-process monotonic clocks
        share no epoch).  Open spans are not included.
        """
        return {
            "next_sid": self._next_sid,
            "hook_calls": self.hook_calls,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "hists": {
                name: {**h, "buckets": dict(h["buckets"])}
                for name, h in self.hists.items()
            },
            "spans": [
                (s.sid, s.parent, s.name, s.cat, s.t0 - self.t0, s.t1 - self.t0)
                for s in self.spans
            ],
        }

    def merge(self, snap: dict[str, Any], parent_sid: int, anchor: float) -> int:
        """Fold a worker :meth:`snapshot` into this state.

        Remaps the snapshot's span ids past ``self._next_sid``, grafts
        its roots under ``parent_sid`` (the dispatch span), re-anchors
        its relative times at ``anchor`` (this state's clock, typically
        the dispatch span's start), and places all its spans on a fresh
        timeline lane.  Counters and histograms accumulate; integer
        counters merge exactly.  Returns the lane (tid) used.
        """
        tid = self._next_tid
        self._next_tid = tid + 1
        offset = self._next_sid
        for sid, parent, name, cat, rt0, rt1 in snap["spans"]:
            self.spans.append(
                Span(
                    sid + offset,
                    parent + offset if parent >= 0 else parent_sid,
                    name,
                    cat,
                    anchor + rt0,
                    anchor + rt1,
                    tid,
                )
            )
        self._next_sid = offset + snap["next_sid"]
        self.hook_calls += snap["hook_calls"]
        for name, value in snap["counters"].items():
            self.counters[name] = self.counters.get(name, 0) + value
        self.gauges.update(snap["gauges"])
        for name, h in snap["hists"].items():
            mine = self.hists.get(name)
            if mine is None:
                self.hists[name] = {**h, "buckets": dict(h["buckets"])}
                continue
            mine["count"] += h["count"]
            mine["total"] += h["total"]
            if h["min"] < mine["min"]:
                mine["min"] = h["min"]
            if h["max"] > mine["max"]:
                mine["max"] = h["max"]
            buckets = mine["buckets"]
            for key, n in h["buckets"].items():
                buckets[key] = buckets.get(key, 0) + n
        return tid
