"""Span tracer and metrics registry backing ``repro.obs``.

One :class:`ObsState` holds everything a traced run produces:

* **spans** — closed intervals on a monotonic clock, organised as a
  forest by parent span id (campaign → cell → algorithm → kernel);
* **counters** — monotonically accumulated named totals
  (``dual.probes``, ``spine.transitions.arrival``, …);
* **gauges** — last-write-wins named values;
* **histograms** — count/total/min/max plus power-of-two buckets
  (``online.batch_size``, ``spine.window_depth``, …).

Worker processes build their own fresh state, :meth:`ObsState.snapshot`
it into a picklable dict that rides back with the cell result, and the
parent :meth:`ObsState.merge`\\ s it under the dispatching span with span
ids remapped and worker timelines re-anchored — cross-process clocks are
not comparable, so a worker's spans are placed relative to the moment
the parent dispatched the work and tagged with a distinct ``tid``.

**Worker threads** (the campaign engine's thread backend) share this one
state directly instead of snapshotting: each thread gets its own span
stack (``threading.local``) on its own ``tid`` lane — the same lane
model merged process snapshots land on, so exporters need no new
concepts — and a root span opened on a non-creator thread grafts under
:attr:`ObsState.thread_graft` (the engine points it at the live
``cells:<family>`` dispatch span).  All shared mutation (span-id/lane
allocation, the span list, counters, gauges, histograms) is serialised
by one lock, so counter totals merge *exactly*: a campaign's counters
are bit-identical across the serial, thread and process backends.

``hook_calls`` counts every mutating hook invocation (span open, count,
gauge, observe); the overhead bench multiplies it by the measured cost
of the disabled-mode check to bound what instrumentation costs a run
that never enables tracing.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable


class Span:
    """A closed span: ``sid``/``parent`` ids, name, category, times.

    ``parent`` is ``-1`` for roots.  ``tid`` groups spans into timeline
    lanes (0 is the parent process; merged worker snapshots get fresh
    positive ids).
    """

    __slots__ = ("sid", "parent", "name", "cat", "t0", "t1", "tid")

    def __init__(self, sid, parent, name, cat, t0, t1=0.0, tid=0):
        self.sid = sid
        self.parent = parent
        self.name = name
        self.cat = cat
        self.t0 = t0
        self.t1 = t1
        self.tid = tid

    def __repr__(self):  # pragma: no cover - debugging aid
        return (
            f"Span(sid={self.sid}, parent={self.parent}, name={self.name!r}, "
            f"cat={self.cat!r}, t0={self.t0:.6f}, t1={self.t1:.6f}, tid={self.tid})"
        )


class _SpanCM:
    """Context manager returned by :meth:`ObsState.span`."""

    __slots__ = ("_state", "_span")

    def __init__(self, state, span):
        self._state = state
        self._span = span

    def __enter__(self):
        return self._span

    def __exit__(self, exc_type, exc, tb):
        self._state._close(self._span)
        return False


class ObsState:
    """Mutable trace + metrics accumulator for one process."""

    def __init__(self, clock: Callable[[], float] | None = None):
        self.clock = clock if clock is not None else time.perf_counter
        self.t0 = self.clock()
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.hists: dict[str, dict[str, Any]] = {}
        self.spans: list[Span] = []
        self.hook_calls = 0
        self._stack: list[Span] = []  # creator thread's stack (lane 0)
        self._next_sid = 0
        self._next_tid = 1
        #: Serialises all shared mutation; per-thread span *stacks* are
        #: thread-owned and need no locking.
        self._lock = threading.Lock()
        self._owner = threading.get_ident()
        self._local = threading.local()
        #: Parent sid grafted under root spans opened on non-creator
        #: threads (the engine points this at the live dispatch span
        #: while the thread backend fans out); ``-1``: lane roots.
        self.thread_graft = -1

    def _lane(self) -> "tuple[list[Span], int]":
        """The calling thread's (span stack, timeline lane).

        The creating thread is lane 0 (:attr:`_stack`, the historical
        single-thread behaviour); any other thread gets a private stack
        and a fresh lane from the same ``tid`` sequence merged process
        snapshots draw from, allocated on its first span.
        """
        if threading.get_ident() == self._owner:
            return self._stack, 0
        rec = getattr(self._local, "rec", None)
        if rec is None:
            with self._lock:
                tid = self._next_tid
                self._next_tid = tid + 1
            rec = self._local.rec = ([], tid)
        return rec

    # -- spans ---------------------------------------------------------

    def span(self, name: str, cat: str = "") -> _SpanCM:
        """Open a nested span; close it by leaving the ``with`` block."""
        stack, tid = self._lane()
        with self._lock:
            self.hook_calls += 1
            sid = self._next_sid
            self._next_sid = sid + 1
        if stack:
            parent = stack[-1].sid
        else:
            parent = -1 if tid == 0 else self.thread_graft
        sp = Span(sid, parent, name, cat, self.clock(), tid=tid)
        stack.append(sp)
        return _SpanCM(self, sp)

    def _close(self, sp: Span) -> None:
        stack, _tid = self._lane()
        sp.t1 = self.clock()
        closed = []
        # Exceptions can unwind several spans at once; pop to (and
        # including) the span being closed so nesting stays consistent.
        while stack:
            top = stack.pop()
            top.t1 = sp.t1 if top is sp else top.t1 or sp.t1
            closed.append(top)
            if top is sp:
                break
        with self._lock:
            self.spans.extend(closed)

    # -- metrics -------------------------------------------------------

    def count(self, name: str, delta: float = 1) -> None:
        """Add ``delta`` to the named counter (created at 0)."""
        with self._lock:
            self.hook_calls += 1
            self.counters[name] = self.counters.get(name, 0) + delta

    def gauge(self, name: str, value: float) -> None:
        """Set the named gauge (last write wins)."""
        with self._lock:
            self.hook_calls += 1
            self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into the named histogram."""
        with self._lock:
            self.hook_calls += 1
            self._observe_locked(name, value)

    def _observe_locked(self, name: str, value: float) -> None:
        h = self.hists.get(name)
        if h is None:
            h = self.hists[name] = {
                "count": 0,
                "total": 0,
                "min": value,
                "max": value,
                "buckets": {},
            }
        h["count"] += 1
        h["total"] += value
        if value < h["min"]:
            h["min"] = value
        if value > h["max"]:
            h["max"] = value
        # Power-of-two buckets keyed by the bucket's upper bound; 0 and
        # negatives land in the "<=0" bucket (arrival gaps can be 0).
        if value <= 0:
            key = 0
        else:
            key = 1
            v = value
            while v > 1:
                key *= 2
                v /= 2
        buckets = h["buckets"]
        buckets[key] = buckets.get(key, 0) + 1

    # -- cross-process aggregation ------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Picklable dict of everything recorded so far.

        Span times are stored *relative to* ``t0`` so the parent can
        re-anchor them on its own clock (cross-process monotonic clocks
        share no epoch).  Open spans are not included.
        """
        with self._lock:
            return self._snapshot_locked()

    def _snapshot_locked(self) -> dict[str, Any]:
        return {
            "next_sid": self._next_sid,
            "hook_calls": self.hook_calls,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "hists": {
                name: {**h, "buckets": dict(h["buckets"])}
                for name, h in self.hists.items()
            },
            "spans": [
                (s.sid, s.parent, s.name, s.cat, s.t0 - self.t0, s.t1 - self.t0)
                for s in self.spans
            ],
        }

    def merge(self, snap: dict[str, Any], parent_sid: int, anchor: float) -> int:
        """Fold a worker :meth:`snapshot` into this state.

        Remaps the snapshot's span ids past ``self._next_sid``, grafts
        its roots under ``parent_sid`` (the dispatch span), re-anchors
        its relative times at ``anchor`` (this state's clock, typically
        the dispatch span's start), and places all its spans on a fresh
        timeline lane — the same lane sequence live worker threads draw
        from, so process- and thread-backend traces share one lane
        model.  Counters and histograms accumulate; integer counters
        merge exactly.  Returns the lane (tid) used.
        """
        with self._lock:
            return self._merge_locked(snap, parent_sid, anchor)

    def _merge_locked(self, snap: dict[str, Any], parent_sid: int, anchor: float) -> int:
        tid = self._next_tid
        self._next_tid = tid + 1
        offset = self._next_sid
        for sid, parent, name, cat, rt0, rt1 in snap["spans"]:
            self.spans.append(
                Span(
                    sid + offset,
                    parent + offset if parent >= 0 else parent_sid,
                    name,
                    cat,
                    anchor + rt0,
                    anchor + rt1,
                    tid,
                )
            )
        self._next_sid = offset + snap["next_sid"]
        self.hook_calls += snap["hook_calls"]
        for name, value in snap["counters"].items():
            self.counters[name] = self.counters.get(name, 0) + value
        self.gauges.update(snap["gauges"])
        for name, h in snap["hists"].items():
            mine = self.hists.get(name)
            if mine is None:
                self.hists[name] = {**h, "buckets": dict(h["buckets"])}
                continue
            mine["count"] += h["count"]
            mine["total"] += h["total"]
            if h["min"] < mine["min"]:
                mine["min"] = h["min"]
            if h["max"] > mine["max"]:
                mine["max"] = h["max"]
            buckets = mine["buckets"]
            for key, n in h["buckets"].items():
                buckets[key] = buckets.get(key, 0) + n
        return tid
