"""Pareto-frontier subsystem: the bi-criteria trade-off, measured.

The paper's design goal (§1.3/§2.2) is that DEMT sits on or near the
Pareto front of ``(Cmax, sum w_i C_i)``.  This package turns every
campaign — synthetic families and SWF trace windows alike — into a
bi-criteria experiment:

* :mod:`repro.pareto.front` — vectorized non-domination kernels
  (``O(n log n)`` argsort-sweep mask, staircase reduction, front merge)
  plus the brute-force ``O(n^2)`` oracle they are verified against;
* :mod:`repro.pareto.indicators` — front-quality indicators
  (hypervolume, additive/multiplicative epsilon, coverage), normalised
  by the lower-bound reference point;
* :mod:`repro.pareto.sweep` — parameterized trade-off sweeps over
  DEMT's knobs and the algorithm registry, emitting per-instance point
  clouds as campaign cells keyed ``pareto:<spec>`` (backend-
  interchangeable, persistently cacheable, bit-identical).
"""

from repro.pareto.front import (
    merge_fronts,
    pareto_front,
    pareto_indices,
    pareto_mask,
    pareto_mask_reference,
)
from repro.pareto.indicators import (
    additive_epsilon,
    coverage,
    epsilon_indicator,
    front_indicators,
    hypervolume,
    multiplicative_epsilon,
    normalize_points,
)
from repro.pareto.sweep import (
    SWEEPS,
    ParetoCell,
    ParetoSweepResult,
    SweepVariant,
    demt_knob_variants,
    demt_variant,
    parse_variant,
    registry_variants,
    resolve_source,
    resolve_sweep,
    sweep_tradeoffs,
)

__all__ = [
    "pareto_mask",
    "pareto_mask_reference",
    "pareto_indices",
    "pareto_front",
    "merge_fronts",
    "normalize_points",
    "hypervolume",
    "additive_epsilon",
    "multiplicative_epsilon",
    "epsilon_indicator",
    "coverage",
    "front_indicators",
    "SweepVariant",
    "demt_variant",
    "parse_variant",
    "registry_variants",
    "demt_knob_variants",
    "resolve_sweep",
    "SWEEPS",
    "ParetoCell",
    "ParetoSweepResult",
    "resolve_source",
    "sweep_tradeoffs",
]
