"""Vectorized non-domination kernels over (Cmax, minsum) point clouds.

Everything in this module works on ``(n, 2)`` float arrays of *minimised*
objectives — in this library almost always ``(Cmax ratio, sum w_i C_i
ratio)`` against the two lower bounds, but the kernels are agnostic.

Dominance follows the strict Pareto convention: ``a`` dominates ``b`` iff
``a <= b`` component-wise with strict inequality in at least one
component.  Equal points therefore never dominate each other — exact
duplicates of a non-dominated point are all non-dominated (and
:func:`pareto_front` collapses them to one representative).

The workhorse is :func:`pareto_mask`, an ``O(n log n)`` argsort-sweep:
sort the cloud lexicographically by ``(x, y)``, take two exclusive prefix
minima of ``y`` (over the points with strictly smaller / smaller-or-equal
``x``, addressed by ``searchsorted``), and a point is dominated iff one of
them beats it.  No Python-level loop touches the points; the brute-force
``O(n^2)`` comparison survives as :func:`pareto_mask_reference`, the
differential oracle of the property suite and the benchmark baseline.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "as_points",
    "pareto_mask",
    "pareto_mask_reference",
    "pareto_indices",
    "pareto_front",
    "merge_fronts",
]


def as_points(points: object) -> np.ndarray:
    """Normalise ``points`` to a finite ``(n, 2)`` float64 array.

    Accepts anything :func:`numpy.asarray` does — a list of ``(x, y)``
    pairs, an ``(n, 2)`` array, an empty list.  Rejects non-finite values
    (a NaN objective has no place in a dominance order).
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.size == 0:
        return pts.reshape(0, 2)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise ValueError(f"points must have shape (n, 2), got {pts.shape}")
    if not np.isfinite(pts).all():
        raise ValueError("points must be finite (no NaN/inf objectives)")
    return pts


def pareto_mask(points: object) -> np.ndarray:
    """Boolean mask of the non-dominated points (minimisation, 2-D).

    ``O(n log n)``: one lexicographic argsort plus two prefix-minimum
    sweeps.  Ties are handled exactly — a point is dominated iff some
    other point is ``<=`` in both objectives and ``<`` in at least one,
    so exact duplicates of a front point all stay on the front.

    >>> pareto_mask([(1.0, 3.0), (2.0, 2.0), (3.0, 1.0), (3.0, 3.0)])
    array([ True,  True,  True, False])
    """
    pts = as_points(points)
    n = pts.shape[0]
    if n == 0:
        return np.zeros(0, dtype=bool)
    xs, ys = pts[:, 0], pts[:, 1]
    order = np.lexsort((ys, xs))
    xs_s, ys_s = xs[order], ys[order]

    # Exclusive prefix minima of y in sorted order: prefix_min[k] is the
    # smallest y among the first k sorted points (inf for k == 0).
    prefix_min = np.empty(n + 1, dtype=np.float64)
    prefix_min[0] = np.inf
    np.minimum.accumulate(ys_s, out=prefix_min[1:])

    # For each point, the best y among points with strictly smaller x
    # (dominates when <=, strict in x) and among points with x <= x_i
    # (dominates when <, strict in y; including the point itself is
    # harmless since y_i < y_i is false).
    left = np.searchsorted(xs_s, xs_s, side="left")
    right = np.searchsorted(xs_s, xs_s, side="right")
    dominated_s = (prefix_min[left] <= ys_s) | (prefix_min[right] < ys_s)

    mask = np.empty(n, dtype=bool)
    mask[order] = ~dominated_s
    return mask


def pareto_mask_reference(points: object, *, chunk: int = 512) -> np.ndarray:
    """Brute-force ``O(n^2)`` all-pairs dominance mask (the oracle).

    Compares every point against every other by broadcasting (row-chunked
    to bound memory at ``chunk * n`` comparisons).  Kept deliberately
    naive — it is the differential baseline the property suite and
    ``benchmarks/bench_pareto.py`` measure :func:`pareto_mask` against,
    in the same spirit as :mod:`repro.algorithms.reference`.
    """
    pts = as_points(points)
    n = pts.shape[0]
    mask = np.empty(n, dtype=bool)
    for lo in range(0, n, chunk):
        hi = min(lo + chunk, n)
        block = pts[lo:hi]  # (b, 2)
        leq = (pts[None, :, :] <= block[:, None, :]).all(axis=2)  # (b, n)
        lt = (pts[None, :, :] < block[:, None, :]).any(axis=2)
        mask[lo:hi] = ~(leq & lt).any(axis=1)
    return mask


def pareto_indices(points: object) -> np.ndarray:
    """Indices (ascending) of the non-dominated points of ``points``."""
    return np.flatnonzero(pareto_mask(points))


def pareto_front(points: object) -> np.ndarray:
    """The non-dominated *staircase*: unique front points, sorted.

    Returns a ``(k, 2)`` array sorted by ascending ``x`` — and therefore
    strictly descending ``y``, the canonical staircase form every
    consumer (hypervolume, attainment surfaces, chart rendering) relies
    on.  Exact duplicates are collapsed to one representative.

    >>> pareto_front([(2.0, 2.0), (1.0, 3.0), (1.0, 3.0), (3.0, 3.0)])
    array([[1., 3.],
           [2., 2.]])
    """
    pts = as_points(points)
    if pts.shape[0] == 0:
        return pts
    front = pts[pareto_mask(pts)]
    return np.unique(front, axis=0)  # sorts lexicographically by (x, y)


def merge_fronts(fronts: object) -> np.ndarray:
    """Merge several fronts (or raw clouds) into one combined staircase.

    The merge of Pareto fronts is the front of their union — points that
    were locally optimal but are dominated by another front's point drop
    out.  Accepts any iterable of point arrays; empty inputs are skipped.

    >>> merge_fronts([[(1.0, 3.0)], [(1.0, 2.0), (2.0, 1.0)]])
    array([[1., 2.],
           [2., 1.]])
    """
    stacked = [as_points(f) for f in fronts]
    stacked = [f for f in stacked if f.shape[0]]
    if not stacked:
        return np.zeros((0, 2), dtype=np.float64)
    return pareto_front(np.vstack(stacked))
