"""Front-quality indicators for bi-criteria point clouds.

Three classic families, all for *minimised* 2-D objectives:

* :func:`hypervolume` — the Lebesgue measure of the region dominated by a
  front and bounded by a reference point (Zitzler & Thiele's S-metric).
  Larger is better; it is the only unary indicator strictly compatible
  with Pareto dominance.
* :func:`epsilon_indicator` — the additive (or multiplicative) shift
  ``eps`` needed for set ``A`` to weakly dominate set ``B``
  (Zitzler et al. 2003).  ``eps <= 0`` (``<= 1`` multiplicative) means
  ``A`` already covers ``B``.
* :func:`coverage` — Zitzler's two-set C-metric: the fraction of ``B``
  weakly dominated by some point of ``A``.

The natural coordinate system in this library is *ratio space*: a point
``(Cmax / Cmax_lb, minsum / minsum_lb)`` normalised by the per-instance
lower bounds (:func:`normalize_points`), so the ideal point is ``(1, 1)``
and indicator values are comparable across instances — that is how
:mod:`repro.pareto.sweep` aggregates them over campaign cells.
"""

from __future__ import annotations

import numpy as np

from repro.pareto.front import as_points, pareto_front

__all__ = [
    "normalize_points",
    "hypervolume",
    "additive_epsilon",
    "multiplicative_epsilon",
    "epsilon_indicator",
    "coverage",
    "front_indicators",
]


def normalize_points(points: object, cmax_lb: float, minsum_lb: float) -> np.ndarray:
    """Scale raw ``(cmax, minsum)`` points into ratio space.

    Divides component-wise by the certified lower bounds, so the ideal
    point is ``(1, 1)`` and every achievable point satisfies ``>= 1``
    component-wise.
    """
    pts = as_points(points)
    if cmax_lb <= 0 or minsum_lb <= 0:
        raise ValueError(
            f"lower bounds must be positive, got ({cmax_lb}, {minsum_lb})"
        )
    return pts / np.array([cmax_lb, minsum_lb], dtype=np.float64)


def hypervolume(points: object, reference: object) -> float:
    """Dominated hypervolume of ``points`` w.r.t. ``reference`` (minimise).

    The area of ``{z : p <= z <= reference for some point p}``.  Points
    that do not strictly dominate the reference contribute nothing;
    dominated or duplicate input points are harmless (the staircase
    reduction removes them first).  One vectorised pass over the sorted
    front: ``sum_k (x_{k+1} - x_k) * (ref_y - y_k)`` with ``x_{K+1} =
    ref_x``.

    >>> hypervolume([(1.0, 3.0), (2.0, 2.0), (3.0, 1.0)], (4.0, 4.0))
    6.0
    """
    ref = np.asarray(reference, dtype=np.float64)
    if ref.shape != (2,):
        raise ValueError(f"reference must be a single (x, y) point, got {ref!r}")
    if not np.isfinite(ref).all():
        raise ValueError("reference point must be finite")
    front = pareto_front(points)
    if front.shape[0] == 0:
        return 0.0
    keep = (front < ref).all(axis=1)
    front = front[keep]
    if front.shape[0] == 0:
        return 0.0
    xs, ys = front[:, 0], front[:, 1]
    widths = np.diff(np.append(xs, ref[0]))
    return float(np.sum(widths * (ref[1] - ys)))


def additive_epsilon(a: object, b: object) -> float:
    """Smallest ``eps`` with ``A - eps`` weakly dominating every ``b in B``.

    ``max_{b in B} min_{a in A} max_j (a_j - b_j)``.  Zero or negative
    means ``A`` already weakly dominates ``B``.
    """
    pa, pb = as_points(a), as_points(b)
    if pa.shape[0] == 0 or pb.shape[0] == 0:
        raise ValueError("epsilon indicator needs two non-empty point sets")
    # (|A|, |B|): worst objective-wise gap of a over b.
    gaps = np.max(pa[:, None, :] - pb[None, :, :], axis=2)
    return float(np.max(np.min(gaps, axis=0)))


def multiplicative_epsilon(a: object, b: object) -> float:
    """Smallest factor ``eps`` with ``A / eps`` weakly dominating ``B``.

    ``max_{b in B} min_{a in A} max_j (a_j / b_j)`` — requires strictly
    positive objectives (ratio space satisfies this by construction).
    ``<= 1`` means ``A`` already weakly dominates ``B``.
    """
    pa, pb = as_points(a), as_points(b)
    if pa.shape[0] == 0 or pb.shape[0] == 0:
        raise ValueError("epsilon indicator needs two non-empty point sets")
    if (pa <= 0).any() or (pb <= 0).any():
        raise ValueError("multiplicative epsilon needs strictly positive points")
    ratios = np.max(pa[:, None, :] / pb[None, :, :], axis=2)
    return float(np.max(np.min(ratios, axis=0)))


def epsilon_indicator(a: object, b: object, kind: str = "additive") -> float:
    """Dispatch to :func:`additive_epsilon` / :func:`multiplicative_epsilon`."""
    if kind == "additive":
        return additive_epsilon(a, b)
    if kind == "multiplicative":
        return multiplicative_epsilon(a, b)
    raise ValueError(
        f"unknown epsilon kind {kind!r}; choose 'additive' or 'multiplicative'"
    )


def coverage(a: object, b: object) -> float:
    """Zitzler's C-metric: fraction of ``B`` weakly dominated by ``A``.

    ``C(A, B) = |{b in B : some a in A has a <= b}| / |B|``.  Not
    symmetric; ``C(A, B) = 1`` means every point of ``B`` is matched or
    beaten by ``A``.

    >>> coverage([(1.0, 1.0)], [(1.0, 1.0), (2.0, 2.0), (0.5, 3.0)])
    0.6666666666666666
    """
    pa, pb = as_points(a), as_points(b)
    if pb.shape[0] == 0:
        raise ValueError("coverage needs a non-empty second set")
    if pa.shape[0] == 0:
        return 0.0
    dominated = (pa[:, None, :] <= pb[None, :, :]).all(axis=2).any(axis=0)
    return float(dominated.mean())


def front_indicators(points: object, reference: object | None = None) -> dict[str, float]:
    """Summary indicators of one cloud: front size and hypervolume.

    ``reference`` defaults to the component-wise maximum of the cloud —
    deterministic, so cached sweeps reproduce the same numbers bit for
    bit.  Returns ``{"front_size", "hypervolume", "ref_x", "ref_y"}``.
    """
    pts = as_points(points)
    if pts.shape[0] == 0:
        return {"front_size": 0.0, "hypervolume": 0.0, "ref_x": 0.0, "ref_y": 0.0}
    ref = (
        pts.max(axis=0)
        if reference is None
        else np.asarray(reference, dtype=np.float64)
    )
    return {
        "front_size": float(pareto_front(pts).shape[0]),
        "hypervolume": hypervolume(pts, ref),
        "ref_x": float(ref[0]),
        "ref_y": float(ref[1]),
    }
