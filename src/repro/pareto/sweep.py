"""Parameterized bi-criteria trade-off sweeps over campaign cells.

The paper's pitch is that DEMT sits on or near the Pareto front of
``(Cmax, sum w_i C_i)``; this module *measures* that claim.  A sweep runs
a set of :class:`SweepVariant` scheduler configurations — DEMT's knobs
(shuffle count, merge threshold, intra-batch ordering, dual-guess
relaxation) plus the full algorithm registry — over seeded campaign
instances, producing one bi-criteria *point cloud per instance* in ratio
space (objectives divided by the certified lower bounds, ideal ``(1,1)``).

Every measurement is a campaign cell addressed by
``CellKey(seed, kind, n, m, r, algorithm="pareto:<spec>")`` where
``<spec>`` is the variant's canonical spec string:

* the instance coordinates ``(seed, kind, n, r)`` are exactly the
  campaign runner's, so the per-instance *lower bounds are shared* with
  the figure campaigns through the same bounds key;
* because the spec string is canonical (sorted knobs, only non-default
  values), the serial and process backends produce bit-identical clouds
  and a :class:`~repro.experiments.engine.PersistentCellCache` makes a
  repeated sweep re-execute **zero** cells.

Trace windows sweep too: a source spec ``trace:<path>`` replays an SWF
window as one off-line cell whose kind is
``trace:<digest16>:<model>`` and whose ``r`` is the window offset —
the same coordinates the replay subsystem uses, so fronts of real
arrival streams cache side by side with the synthetic families.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.algorithms.base import Scheduler
from repro.algorithms.demt import BATCH_ORDERINGS, DemtScheduler
from repro.algorithms.registry import ALGORITHM_REGISTRY, PAPER_ALGORITHMS, get_algorithm
from repro.pareto.front import pareto_front, pareto_mask
from repro.pareto.indicators import (
    additive_epsilon,
    coverage,
    front_indicators,
    multiplicative_epsilon,
)

__all__ = [
    "SweepVariant",
    "demt_variant",
    "parse_variant",
    "registry_variants",
    "demt_knob_variants",
    "resolve_sweep",
    "SWEEPS",
    "ParetoCell",
    "ParetoSweepResult",
    "resolve_source",
    "sweep_tradeoffs",
    "PolicyFrontResult",
    "sweep_online_policies",
]

#: Spec knob -> DemtScheduler keyword (and the value each defaults to).
_DEMT_KNOBS: dict[str, tuple[str, object]] = {
    "order": ("batch_ordering", "smith"),
    "relax": ("guess_relaxation", 1.0),
    "shuffle": ("shuffle_rounds", 10),
    "thresh": ("small_threshold_factor", 0.5),
}


@dataclass(frozen=True)
class SweepVariant:
    """One scheduler configuration of a trade-off sweep.

    ``algorithm`` is a registry name; ``params`` is a sorted tuple of
    ``(knob, value)`` pairs holding only *non-default* DEMT knobs (other
    algorithms take no parameters).  The canonical :attr:`spec` string is
    the cache identity of the variant.
    """

    algorithm: str
    params: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHM_REGISTRY:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; available: "
                f"{', '.join(ALGORITHM_REGISTRY)}"
            )
        if self.params and self.algorithm != "DEMT":
            raise ValueError(
                f"only DEMT variants take knobs, got {self.params!r} "
                f"for {self.algorithm!r}"
            )
        for knob, value in self.params:
            if knob not in _DEMT_KNOBS:
                raise ValueError(
                    f"unknown DEMT knob {knob!r}; available: {', '.join(_DEMT_KNOBS)}"
                )
            if value == _DEMT_KNOBS[knob][1]:
                raise ValueError(
                    f"knob {knob!r} at its default {value!r} must be omitted "
                    "(specs are canonical)"
                )
        if tuple(sorted(self.params)) != self.params:
            raise ValueError("params must be sorted by knob name (canonical spec)")

    @property
    def spec(self) -> str:
        """Canonical spec string, e.g. ``DEMT[relax=1.5,shuffle=0]``."""
        if not self.params:
            return self.algorithm
        inner = ",".join(f"{k}={_format_value(v)}" for k, v in self.params)
        return f"{self.algorithm}[{inner}]"

    def build(self) -> Scheduler:
        """Instantiate the configured scheduler."""
        if not self.params:
            return get_algorithm(self.algorithm)
        kwargs = {_DEMT_KNOBS[k][0]: v for k, v in self.params}
        return DemtScheduler(**kwargs)


def _format_value(value: object) -> str:
    # repr round-trips floats exactly; ints and strings print naturally.
    return repr(value) if isinstance(value, float) else str(value)


def demt_variant(**knobs: object) -> SweepVariant:
    """DEMT variant from knob values; defaults are dropped (canonical).

    >>> demt_variant(shuffle=0, thresh=0.5).spec
    'DEMT[shuffle=0]'
    >>> demt_variant().spec
    'DEMT'
    """
    params = []
    for knob, value in knobs.items():
        if knob not in _DEMT_KNOBS:
            raise ValueError(
                f"unknown DEMT knob {knob!r}; available: {', '.join(_DEMT_KNOBS)}"
            )
        kw, default = _DEMT_KNOBS[knob]
        if isinstance(default, float):
            value = float(value)  # type: ignore[assignment]
        if value != default:
            params.append((knob, value))
    return SweepVariant("DEMT", tuple(sorted(params)))


def parse_variant(spec: str) -> SweepVariant:
    """Invert :attr:`SweepVariant.spec` (used by the cell workers).

    >>> parse_variant("DEMT[relax=1.5,shuffle=0]").build().shuffle_rounds
    0
    >>> parse_variant("SAF").spec
    'SAF'
    """
    spec = spec.strip()
    if "[" not in spec:
        return SweepVariant(spec)
    if not spec.endswith("]"):
        raise ValueError(f"malformed variant spec {spec!r}")
    name, _, inner = spec[:-1].partition("[")
    params = []
    for item in inner.split(","):
        knob, sep, raw = item.partition("=")
        if not sep:
            raise ValueError(f"malformed knob {item!r} in spec {spec!r}")
        params.append((knob, _parse_value(knob, raw)))
    return SweepVariant(name, tuple(sorted(params)))


def _parse_value(knob: str, raw: str) -> object:
    if knob == "order":
        if raw not in BATCH_ORDERINGS:
            raise ValueError(
                f"unknown batch ordering {raw!r}; available: {', '.join(BATCH_ORDERINGS)}"
            )
        return raw
    if knob == "shuffle":
        return int(raw)
    return float(raw)


def registry_variants(names: Sequence[str] | None = None) -> list[SweepVariant]:
    """Parameter-free variants for registry algorithms (default: the
    paper's six)."""
    return [SweepVariant(name) for name in (names or PAPER_ALGORITHMS)]


def demt_knob_variants(
    *,
    shuffle: Sequence[int] = (0, 2, 25),
    thresh: Sequence[float] = (0.25, 1.0),
    order: Sequence[str] = ("weight", "duration", "id"),
    relax: Sequence[float] = (1.25, 1.5, 1.75),
) -> list[SweepVariant]:
    """One-knob-at-a-time deviations around the default DEMT.

    The default configuration itself (plain ``DEMT``) anchors the sweep;
    each returned variant moves exactly one knob, so a front traced by
    these points is directly attributable to individual design choices.
    (``relax=2.0`` would be a deliberate no-op — doubling the guess
    increments ``K`` and reproduces the identical geometric grid — so the
    default axis stays inside one octave.)
    """
    variants = [demt_variant()]
    for value in shuffle:
        variants.append(demt_variant(shuffle=value))
    for value in thresh:
        variants.append(demt_variant(thresh=value))
    for value in order:
        variants.append(demt_variant(order=value))
    for value in relax:
        variants.append(demt_variant(relax=value))
    return _dedup_variants(variants)


def _dedup_variants(variants: list[SweepVariant]) -> list[SweepVariant]:
    """Drop later variants whose canonical spec already appeared."""
    seen: set[str] = set()
    return [v for v in variants if not (v.spec in seen or seen.add(v.spec))]


def _full_sweep() -> list[SweepVariant]:
    return _dedup_variants(registry_variants() + demt_knob_variants())


#: Named sweep sets for the CLI (each entry is a zero-argument factory).
SWEEPS = {
    "registry": registry_variants,
    "demt-knobs": demt_knob_variants,
    "full": _full_sweep,
}


def resolve_sweep(sweep: object = "full") -> list[SweepVariant]:
    """Normalise a sweep spec: a name from :data:`SWEEPS`, one variant,
    a variant/spec-string sequence, or ``None`` (full)."""
    if sweep is None:
        sweep = "full"
    if isinstance(sweep, str):
        try:
            return list(SWEEPS[sweep]())
        except KeyError:
            raise ValueError(
                f"unknown sweep {sweep!r}; available: {', '.join(SWEEPS)}"
            ) from None
    if isinstance(sweep, SweepVariant):
        return [sweep]
    out = []
    for item in sweep:  # type: ignore[union-attr]
        out.append(item if isinstance(item, SweepVariant) else parse_variant(str(item)))
    if not out:
        raise ValueError("sweep must contain at least one variant")
    return out


# --------------------------------------------------------------------- #
# Sources                                                               #
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ParetoSource:
    """Where a sweep's instances come from.

    ``kind`` is the cell-key kind: a workload family name, or
    ``trace:<digest16>:<model>`` for an SWF window whose payload rides
    along (picklable plain arrays, like the replay workers ship).
    """

    kind: str
    label: str
    trace: object | None = None
    model: str = "downey"


def resolve_source(
    source: object,
    *,
    model: str = "downey",
    window: tuple[int, int] | None = None,
) -> ParetoSource:
    """Normalise a sweep source.

    Accepts a workload kind (``"mixed"``), a ``trace:<path>`` spec, or a
    :class:`~repro.workloads.trace.Trace`.  ``model`` picks the
    moldability reconstruction for traces; ``window`` restricts them.
    """
    from repro.workloads.generator import WORKLOAD_KINDS
    from repro.workloads.trace import MOLDABILITY_MODELS, Trace, load_trace

    if isinstance(source, Trace) or (
        isinstance(source, str) and source.startswith("trace:")
    ):
        if model not in MOLDABILITY_MODELS:
            raise ValueError(
                f"unknown moldability model {model!r}; available: "
                f"{', '.join(MOLDABILITY_MODELS)}"
            )
        if isinstance(source, Trace):
            trace, label = source, f"trace:<{source.digest[:12]}>"
        else:
            path = source[len("trace:"):]
            trace, label = load_trace(path), source
        if window is not None:
            trace = trace.window(*window)
        return ParetoSource(
            kind=f"trace:{trace.digest[:16]}:{model}",
            label=label,
            trace=trace,
            model=model,
        )
    if isinstance(source, str):
        if source not in WORKLOAD_KINDS:
            raise ValueError(
                f"unknown sweep source {source!r}; use a workload kind "
                f"({', '.join(WORKLOAD_KINDS)}) or 'trace:<path>'"
            )
        return ParetoSource(kind=source, label=source)
    raise TypeError(f"source must be a workload kind, 'trace:<path>', or Trace, got {source!r}")


# --------------------------------------------------------------------- #
# Results                                                               #
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ParetoCell:
    """One instance's bi-criteria point cloud in ratio space.

    ``cloud[i]`` is variant ``specs[i]``'s ``(Cmax ratio, minsum ratio)``
    point; ``front_mask`` marks the non-dominated rows.
    """

    kind: str
    n: int
    r: int
    m: int
    specs: tuple[str, ...]
    cloud: np.ndarray
    front_mask: np.ndarray
    cmax_lb: float
    minsum_lb: float

    @property
    def front(self) -> np.ndarray:
        """The cell's staircase (unique non-dominated points, sorted)."""
        return pareto_front(self.cloud)

    @property
    def front_specs(self) -> tuple[str, ...]:
        """Variant specs on the front, in input order."""
        return tuple(s for s, on in zip(self.specs, self.front_mask) if on)

    def indicators(self) -> dict[str, float]:
        """Front-quality numbers of this cell (reference: cloud maximum)."""
        return front_indicators(self.cloud)


@dataclass(frozen=True)
class ParetoSweepResult:
    """All cells of one sweep, plus per-variant aggregates."""

    source: str
    m: int
    seed: int
    specs: tuple[str, ...]
    cells: tuple[ParetoCell, ...]

    def fronts(self) -> list[np.ndarray]:
        return [cell.front for cell in self.cells]

    def attainment(self, level: float | str = "mean") -> tuple[np.ndarray, np.ndarray]:
        """Mean (or quantile) attainment surface over the per-cell fronts
        (see :func:`repro.experiments.aggregate.attainment_surface`)."""
        from repro.experiments.aggregate import attainment_surface

        return attainment_surface(self.fronts(), level=level)

    def variant_rows(self) -> list[dict[str, float | str]]:
        """Per-variant aggregates across cells.

        For each variant: mean ratios, the fraction of cells where it is
        on the front, its mean additive / multiplicative *gap behind the
        cell front* (``-eps_add(front, point)`` and
        ``1 / eps_mult(front, point)`` — exactly 0 / 1 when the variant is
        on the front), and its mean coverage of the cell cloud (the
        fraction of variants it weakly dominates).
        """
        fronts = [cell.front for cell in self.cells]  # one reduction per cell
        rows = []
        for i, spec in enumerate(self.specs):
            eps_add, eps_mult, cover, on_front = [], [], [], []
            points = []
            for cell, front in zip(self.cells, fronts):
                point = cell.cloud[i : i + 1]
                points.append(cell.cloud[i])
                on_front.append(bool(cell.front_mask[i]))
                eps_add.append(-additive_epsilon(front, point))
                eps_mult.append(1.0 / multiplicative_epsilon(front, point))
                cover.append(coverage(point, cell.cloud))
            mean = np.mean(points, axis=0)
            rows.append(
                {
                    "spec": spec,
                    "cmax_ratio": float(mean[0]),
                    "minsum_ratio": float(mean[1]),
                    "on_front": float(np.mean(on_front)),
                    "eps_add": float(np.mean(eps_add)),
                    "eps_mult": float(np.mean(eps_mult)),
                    "coverage": float(np.mean(cover)),
                }
            )
        return rows

    def indicator_summary(self) -> dict[str, float]:
        """Mean front-quality indicators over the cells."""
        per_cell = [cell.indicators() for cell in self.cells]
        return {
            "cells": float(len(per_cell)),
            "mean_front_size": float(np.mean([d["front_size"] for d in per_cell])),
            "mean_hypervolume": float(np.mean([d["hypervolume"] for d in per_cell])),
        }


# --------------------------------------------------------------------- #
# Driver                                                                #
# --------------------------------------------------------------------- #
def sweep_tradeoffs(
    source: object,
    sweep: object = "full",
    *,
    m: int | None = None,
    task_counts: Sequence[int] = (50,),
    runs: int = 3,
    seed: int = 2004,
    model: str = "downey",
    window: tuple[int, int] | None = None,
    validate: bool = False,
    backend: object = None,
    jobs: int | None = None,
    cache: object = None,
) -> ParetoSweepResult:
    """Run a trade-off sweep and assemble per-instance fronts.

    Synthetic sources sweep the ``task_counts x runs`` instance grid
    (instance streams identical to the campaign runner's); a trace source
    contributes a single window cell.  ``backend`` / ``jobs`` / ``cache``
    are the standard executor knobs — clouds are bit-identical across
    backends, and a persistent cache makes re-sweeps re-execute nothing.
    """
    from repro.experiments.runner import run_pareto_cells

    src = resolve_source(source, model=model, window=window)
    variants = resolve_sweep(sweep)
    specs = tuple(v.spec for v in variants)

    if src.trace is not None:
        m = src.trace.resolve_m(m)
        cells = [(src.kind, src.trace.n, src.trace.offset)]
        payloads = {src.kind: (src.trace, src.model)}
        seed = 0  # trace cells are seed-free (pure function of the window)
    else:
        m = 64 if m is None else m
        cells = [(src.kind, n, r) for n in task_counts for r in range(runs)]
        payloads = None

    results = run_pareto_cells(
        cells,
        variants,
        seed=seed,
        m=m,
        validate=validate,
        backend=backend,
        jobs=jobs,
        cache=cache,
        payloads=payloads,
    )

    out_cells = []
    for kind, n, r in cells:
        bounds, records = results[(kind, n, r)]
        cloud = np.array(
            [
                [records[s].cmax / bounds.cmax_lb, records[s].minsum / bounds.minsum_lb]
                for s in specs
            ],
            dtype=np.float64,
        )
        out_cells.append(
            ParetoCell(
                kind=kind,
                n=n,
                r=r,
                m=m,
                specs=specs,
                cloud=cloud,
                front_mask=pareto_mask(cloud),
                cmax_lb=bounds.cmax_lb,
                minsum_lb=bounds.minsum_lb,
            )
        )
    return ParetoSweepResult(
        source=src.label, m=m, seed=seed, specs=specs, cells=tuple(out_cells)
    )


# --------------------------------------------------------------------- #
# On-line policy fronts                                                 #
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class PolicyFrontResult:
    """The on-line policy axis as a bi-criteria point cloud.

    ``cloud[i]`` is spec ``specs[i]``'s ``(makespan, mean flow time)``
    point on one trace window — both minimised, both *measured under
    identical arrivals*, so the front is directly a statement about which
    on-line disciplines are worth running.  ``clairvoyant_makespan`` is
    the omniscient off-line bound of the same window (the §2.2 reference:
    ``makespan / clairvoyant_makespan`` is each policy's measured price of
    not knowing the future).
    """

    source: str
    m: int
    model: str
    specs: tuple[str, ...]
    cloud: np.ndarray
    front_mask: np.ndarray
    clairvoyant_makespan: float

    @property
    def front(self) -> np.ndarray:
        """The staircase of non-dominated (makespan, mean flow) points."""
        return pareto_front(self.cloud)

    @property
    def front_specs(self) -> tuple[str, ...]:
        return tuple(s for s, on in zip(self.specs, self.front_mask) if on)

    def rows(self) -> list[dict[str, float | str | bool]]:
        """Per-spec table rows (reporting feeds on this)."""
        out = []
        for i, spec in enumerate(self.specs):
            makespan, flow = self.cloud[i]
            out.append(
                {
                    "spec": spec,
                    "makespan": float(makespan),
                    "mean_flow": float(flow),
                    "ratio": (
                        float(makespan / self.clairvoyant_makespan)
                        if self.clairvoyant_makespan > 0
                        else float("nan")
                    ),
                    "on_front": bool(self.front_mask[i]),
                }
            )
        return out


def sweep_online_policies(
    source: object,
    policies: "Sequence[str] | str" = ("batch", "fcfs", "fcfs-backfill", "greedy-interval"),
    *,
    engines: "Sequence[str] | str" = ("demt",),
    m: int | None = None,
    model: str = "rigid",
    window: tuple[int, int] | None = None,
    validate: bool = False,
    backend: object = None,
    jobs: int | None = None,
    cache: object = None,
) -> PolicyFrontResult:
    """Trace the on-line trade-off front over the policy registry.

    Every ``(policy, engine)`` pair replays one SWF trace window under
    identical arrivals through :func:`repro.experiments.replay.
    replay_trace` — so the points are ordinary replay cells: cached,
    backend-dispatched, bit-identical across backends.  The cloud is
    ``(makespan, mean flow time)``; the clairvoyant bound (best over the
    engines) anchors the competitive ratios.

    ``policies`` are registry names (``"all"`` = every zero-configuration
    policy); ``engines`` are :data:`~repro.experiments.replay.
    REPLAY_ENGINES` names.  Only the engine-driven policies (the batch
    family) are crossed with the engines — the immediate policies ignore
    the engine and are measured once.  Specs read ``<policy>`` with a
    single engine and ``<policy>@<engine>`` otherwise.
    """
    from repro.experiments.replay import REPLAY_ENGINES, _as_trace, replay_trace
    from repro.simulator.online import (
        ENGINE_DRIVEN_POLICIES,
        ZERO_CONFIG_POLICIES,
    )

    def expand(values, universe, what):
        # The sweep-spec convention of this module (ValueError, like
        # resolve_sweep/resolve_source): one name, a sequence, or "all".
        universe = list(universe)
        if isinstance(values, str):
            values = universe if values == "all" else [values]
        for v in values:
            if v not in universe:
                raise ValueError(
                    f"unknown {what} {v!r}; available: {', '.join(universe)}"
                )
        return list(values)

    policies = expand(policies, ZERO_CONFIG_POLICIES, "on-line policy")
    engines = expand(engines, REPLAY_ENGINES, "engine")

    trace = _as_trace(source)
    if window is not None:
        trace = trace.window(*window)
    m = trace.resolve_m(m)

    specs: list[str] = []
    points: list[tuple[float, float]] = []
    clairvoyant = float("inf")
    for i, engine in enumerate(engines):
        # Engine-independent policies are replayed with the first engine
        # only; repeating them per engine would duplicate identical
        # measurements (and identical front points).
        mode_list = [
            p for p in policies if p in ENGINE_DRIVEN_POLICIES or i == 0
        ]
        results = replay_trace(
            trace,
            m=m,
            models=model,
            modes=tuple(mode_list) + ("clairvoyant",),
            offline=REPLAY_ENGINES[engine],
            validate=validate,
            backend=backend,
            jobs=jobs,
            cache=cache,
        )
        for res in results:
            if res.mode == "clairvoyant":
                clairvoyant = min(clairvoyant, res.makespan)
                continue
            engine_driven = res.mode in ENGINE_DRIVEN_POLICIES
            specs.append(
                f"{res.mode}@{engine}"
                if engine_driven and len(engines) > 1
                else res.mode
            )
            points.append((res.makespan, res.mean_flow))

    cloud = np.array(points, dtype=np.float64).reshape(len(points), 2)
    return PolicyFrontResult(
        source=f"trace:<{trace.digest[:12]}>",
        m=m,
        model=model,
        specs=tuple(specs),
        cloud=cloud,
        front_mask=pareto_mask(cloud),
        clairvoyant_makespan=clairvoyant if np.isfinite(clairvoyant) else 0.0,
    )
