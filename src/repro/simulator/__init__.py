"""Event-driven cluster simulation and the on-line batch framework.

The paper's platform (§2.1, Figure 1) is a homogeneous cluster fed through
a front-end job queue.  This package provides:

* :mod:`repro.simulator.cluster` — the processor-set resource model
  (allocate / release with explicit processor ids);
* :mod:`repro.simulator.events` — the typed event log of an execution;
* :mod:`repro.simulator.engine` — a discrete-event engine that *executes*
  a schedule on the cluster, assigning concrete processors and verifying
  feasibility live (the closest analogue of running on Icluster2 that a
  simulation can offer);
* :mod:`repro.simulator.online` — the pluggable on-line policy registry:
  the batch doubling framework of Shmoys, Wein & Williamson (paper ref
  [21], §2.2) that turns any off-line ρ-approximation into a
  2ρ-competitive on-line scheduler, the immediate FCFS / EASY-backfill
  baselines, and the greedy-interval / reservation batch variants — all
  running on the shared incremental
  :class:`~repro.simulator.events.EventSpine`;
* :mod:`repro.simulator.reference` — the seed batch scheduler, preserved
  verbatim as the differential oracle of the policy kernel;
* :mod:`repro.simulator.windowed` — the pre-spine policy loops (PR 5/7
  generation), frozen as a second differential oracle layer (imported
  lazily by the test suite, not re-exported here, because it reaches
  into :mod:`repro.faults`).
"""

from repro.simulator.cluster import Cluster
from repro.simulator.events import (
    Event,
    EventKind,
    EventLog,
    EventSpine,
    EventWindowQueue,
    Transition,
)
from repro.simulator.engine import ClusterSimulator, ExecutionTrace
from repro.simulator.online import (
    ONLINE_POLICIES,
    BatchPolicy,
    FcfsOnlinePolicy,
    GreedyIntervalPolicy,
    OnlineBatchScheduler,
    OnlinePolicy,
    OnlineResult,
    ReservationPolicy,
    get_policy,
)
from repro.simulator.reference import ReferenceBatchScheduler

__all__ = [
    "Cluster",
    "Event",
    "EventKind",
    "EventLog",
    "EventWindowQueue",
    "EventSpine",
    "Transition",
    "ClusterSimulator",
    "ExecutionTrace",
    "OnlinePolicy",
    "BatchPolicy",
    "FcfsOnlinePolicy",
    "GreedyIntervalPolicy",
    "ReservationPolicy",
    "OnlineBatchScheduler",
    "OnlineResult",
    "ReferenceBatchScheduler",
    "ONLINE_POLICIES",
    "get_policy",
]
