"""Processor-set resource model.

A :class:`Cluster` owns ``m`` identical processors with stable ids
``0 .. m-1`` and hands out explicit subsets to jobs.  It is deliberately
strict: double allocation, double release and unknown ids raise
immediately, so simulator bugs surface at the faulty call site rather than
as corrupted statistics downstream.
"""

from __future__ import annotations

from repro.exceptions import SchedulingError

__all__ = ["Cluster"]


class Cluster:
    """``m`` identical processors with explicit id management."""

    def __init__(self, m: int) -> None:
        if m < 1:
            raise SchedulingError(f"cluster needs at least one processor, got {m}")
        self.m = int(m)
        self._free: set[int] = set(range(m))
        self._owner: dict[int, int] = {}  # processor id -> job id

    # ------------------------------------------------------------------ #
    @property
    def free_count(self) -> int:
        """Number of currently idle processors."""
        return len(self._free)

    @property
    def busy_count(self) -> int:
        """Number of currently allocated processors."""
        return self.m - len(self._free)

    def owner_of(self, proc: int) -> int | None:
        """Job currently holding ``proc`` (``None`` when idle)."""
        self._check_id(proc)
        return self._owner.get(proc)

    def holding(self, job_id: int) -> tuple[int, ...]:
        """Processors currently held by ``job_id`` (possibly empty)."""
        return tuple(sorted(p for p, j in self._owner.items() if j == job_id))

    # ------------------------------------------------------------------ #
    def allocate(self, job_id: int, count: int) -> tuple[int, ...]:
        """Grant ``count`` idle processors to ``job_id``.

        Returns the granted ids (lowest ids first, for reproducible
        Gantt charts).  Raises :class:`SchedulingError` when fewer than
        ``count`` processors are idle.
        """
        if count < 1:
            raise SchedulingError(f"job {job_id}: must allocate at least 1 processor")
        if count > len(self._free):
            raise SchedulingError(
                f"job {job_id}: requested {count} processors, only "
                f"{len(self._free)} free"
            )
        granted = tuple(sorted(self._free)[:count])
        for p in granted:
            self._free.remove(p)
            self._owner[p] = job_id
        return granted

    def release(self, job_id: int) -> tuple[int, ...]:
        """Return all processors held by ``job_id`` to the idle pool."""
        held = self.holding(job_id)
        if not held:
            raise SchedulingError(f"job {job_id} holds no processors")
        for p in held:
            del self._owner[p]
            self._free.add(p)
        return held

    def _check_id(self, proc: int) -> None:
        if not 0 <= proc < self.m:
            raise SchedulingError(f"no processor {proc} in a {self.m}-processor cluster")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cluster(m={self.m}, busy={self.busy_count})"
