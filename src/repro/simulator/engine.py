"""Discrete-event execution of schedules on a simulated cluster.

:class:`ClusterSimulator.execute` replays a :class:`~repro.core.schedule.
Schedule` against a :class:`~repro.simulator.cluster.Cluster`: jobs are
started at their scheduled times on concrete processor ids and release them
on completion.  The replay is an *independent* feasibility oracle — it
shares no code with :mod:`repro.core.validation` — and produces the typed
event log plus summary statistics that the examples and the on-line
framework build on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.instance import Instance
from repro.core.schedule import Schedule
from repro.core.validation import TIME_EPS
from repro.exceptions import SchedulingError
from repro.simulator.cluster import Cluster
from repro.simulator.events import (
    Event,
    EventKind,
    EventLog,
    EventSpine,
    Transition,
)

__all__ = ["ExecutionTrace", "ClusterSimulator"]


@dataclass
class ExecutionTrace:
    """Everything observed while executing a schedule."""

    log: EventLog
    makespan: float
    processor_assignment: dict[int, tuple[int, ...]]
    completion_times: dict[int, float] = field(default_factory=dict)
    #: Busy-time integral accumulated incrementally by the event spine
    #: during execution; ``None`` for hand-built traces, which fall back
    #: to the per-job log walk.
    busy: "float | None" = None

    @property
    def n_jobs(self) -> int:
        return len(self.processor_assignment)

    def busy_time(self) -> float:
        """Total processor-seconds consumed.

        The simulator hands this over precomputed (the
        :class:`~repro.simulator.events.EventSpine` integrates
        ``k · (end − start)`` as FINISH transitions resolve); traces
        built without it pay one indexed log lookup per job (the
        :class:`~repro.simulator.events.EventLog` keeps a per-job event
        index), so either way this is at most linear in the number of
        jobs even on archive-scale executions.
        """
        if self.busy is not None:
            return self.busy
        total = 0.0
        for job_id, procs in self.processor_assignment.items():
            start = self.log.start_of(job_id).time
            end = self.completion_times[job_id]
            total += len(procs) * (end - start)
        return total

    def utilization(self, m: int) -> float:
        """Busy fraction of the ``m x makespan`` rectangle."""
        if self.makespan <= 0:
            return 0.0
        return self.busy_time() / (m * self.makespan)


class ClusterSimulator:
    """Replays schedules event by event on an explicit processor pool."""

    def __init__(self, m: int) -> None:
        self.m = int(m)

    def execute(self, schedule: Schedule, instance: Instance | None = None) -> ExecutionTrace:
        """Execute ``schedule``; raise :class:`SchedulingError` on conflicts.

        When ``instance`` is given, submission events are logged at release
        dates and a job starting before its release is an error — the
        execution-level counterpart of the validation module's static
        check.
        """
        if schedule.m != self.m:
            raise SchedulingError(
                f"schedule built for m={schedule.m}, simulator has m={self.m}"
            )
        cluster = Cluster(self.m)
        log = EventLog()

        # Typed spine transitions: at equal times, FINISH frees processors
        # before ARRIVAL submissions are logged and STARTs allocate.
        finish, arrival = int(Transition.FINISH), int(Transition.ARRIVAL)
        placements = {p.task.task_id: p for p in schedule}
        all_events: list[tuple[float, int, int]] = []
        if instance is not None:
            for task in instance:
                all_events.append((task.release, arrival, task.task_id))
        for job_id, p in placements.items():
            all_events.append((p.start, int(Transition.START), job_id))
            if instance is not None and p.start < p.task.release - TIME_EPS:
                raise SchedulingError(
                    f"job {job_id} starts at {p.start} before release {p.task.release}"
                )
        assignment: dict[int, tuple[int, ...]] = {}
        completion_times: dict[int, float] = {}

        # Events within TIME_EPS of each other form one processing window,
        # handled completions-first: shifted schedules (on-line batches) can
        # place a start one ulp before the completion that frees its
        # processors, and the static validator tolerates exactly this noise.
        spine = EventSpine(self.m, all_events)
        while spine:
            for time, kind, job_id in spine.pop_window():
                if kind == finish:
                    procs = cluster.release(job_id)
                    spine.finish(job_id, time)
                    completion_times[job_id] = time
                    log.append(Event(time, EventKind.COMPLETED, job_id, procs))
                elif kind == arrival:  # submission
                    log.append(Event(time, EventKind.SUBMITTED, job_id))
                else:  # start
                    p = placements[job_id]
                    try:
                        procs = cluster.allocate(job_id, p.allotment)
                    except SchedulingError as exc:
                        raise SchedulingError(
                            f"at t={time:.6g}: {exc} (schedule is infeasible)"
                        ) from exc
                    assignment[job_id] = procs
                    # Schedules the FINISH transition and keeps the busy
                    # integral / free-capacity profile current.
                    spine.start(job_id, p.allotment, time, p.end)
                    log.append(Event(time, EventKind.STARTED, job_id, procs))

        makespan = max(completion_times.values(), default=0.0)
        return ExecutionTrace(
            log=log,
            makespan=makespan,
            processor_assignment=assignment,
            completion_times=completion_times,
            busy=spine.busy_time,
        )
