"""Typed event log for simulated executions."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["EventKind", "Event", "EventLog"]


class EventKind(enum.Enum):
    """What happened at a log entry."""

    SUBMITTED = "submitted"
    BATCH_STARTED = "batch_started"
    STARTED = "started"
    COMPLETED = "completed"


@dataclass(frozen=True)
class Event:
    """One timestamped occurrence.

    ``procs`` carries the concrete processor ids for START/COMPLETE events;
    ``job_id`` is ``-1`` for batch markers.
    """

    time: float
    kind: EventKind
    job_id: int = -1
    procs: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"negative event time {self.time}")


@dataclass
class EventLog:
    """Append-only, time-ordered collection of events."""

    events: list[Event] = field(default_factory=list)

    def append(self, event: Event) -> None:
        if self.events and event.time < self.events[-1].time - 1e-9:
            raise ValueError(
                f"event at {event.time} appended after {self.events[-1].time}"
            )
        self.events.append(event)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: EventKind) -> list[Event]:
        """All events of one kind, in time order."""
        return [e for e in self.events if e.kind == kind]

    def start_of(self, job_id: int) -> Event:
        """The START event of ``job_id`` (KeyError if absent)."""
        for e in self.events:
            if e.kind == EventKind.STARTED and e.job_id == job_id:
                return e
        raise KeyError(f"job {job_id} never started")

    def completion_of(self, job_id: int) -> Event:
        """The COMPLETED event of ``job_id`` (KeyError if absent)."""
        for e in self.events:
            if e.kind == EventKind.COMPLETED and e.job_id == job_id:
                return e
        raise KeyError(f"job {job_id} never completed")
