"""Typed event log for simulated executions, and the shared event core.

Two pieces live here:

* :class:`EventLog` — the append-only, time-ordered record of what a
  simulated execution did.  Per-job ``STARTED`` / ``COMPLETED`` lookups
  are O(1) through an index maintained on append (the seed scanned the
  whole log per query, which made
  :meth:`~repro.simulator.engine.ExecutionTrace.busy_time` quadratic).
* :class:`EventWindowQueue` — the event core shared by
  :class:`~repro.simulator.engine.ClusterSimulator` and the on-line
  policies of :mod:`repro.simulator.online`: a min-heap of
  ``(time, priority, id)`` tuples drained in windows of width
  :data:`~repro.core.validation.TIME_EPS`, each window sorted by
  ``(priority, time, id)`` so that ties resolve deterministically and
  completions free resources before simultaneous starts allocate them.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.core.validation import TIME_EPS

__all__ = ["EventKind", "Event", "EventLog", "EventWindowQueue"]


class EventKind(enum.Enum):
    """What happened at a log entry."""

    SUBMITTED = "submitted"
    BATCH_STARTED = "batch_started"
    STARTED = "started"
    COMPLETED = "completed"
    #: Fault-plane events (:mod:`repro.faults.failures`): a machine left
    #: or rejoined the capacity profile (``procs`` carries its id), or a
    #: running job was evicted by a capacity drop and will restart from
    #: scratch (``job_id`` is the victim).
    MACHINE_DOWN = "machine_down"
    MACHINE_UP = "machine_up"
    CRASHED = "crashed"


@dataclass(frozen=True)
class Event:
    """One timestamped occurrence.

    ``procs`` carries the concrete processor ids for START/COMPLETE events;
    ``job_id`` is ``-1`` for batch markers.
    """

    time: float
    kind: EventKind
    job_id: int = -1
    procs: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"negative event time {self.time}")


@dataclass
class EventLog:
    """Append-only, time-ordered collection of events.

    ``start_of`` / ``completion_of`` answer in O(1) from a per-job index
    maintained incrementally; everything else is a plain list scan.
    """

    events: list[Event] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._index: dict[tuple[EventKind, int], Event] = {}
        for e in self.events:
            self._remember(e)

    def _remember(self, event: Event) -> None:
        if event.kind in (EventKind.STARTED, EventKind.COMPLETED):
            self._index.setdefault((event.kind, event.job_id), event)

    def append(self, event: Event) -> None:
        if self.events and event.time < self.events[-1].time - TIME_EPS:
            raise ValueError(
                f"event at {event.time} appended after {self.events[-1].time}"
            )
        self.events.append(event)
        self._remember(event)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: EventKind) -> list[Event]:
        """All events of one kind, in time order."""
        return [e for e in self.events if e.kind == kind]

    def start_of(self, job_id: int) -> Event:
        """The START event of ``job_id`` (KeyError if absent)."""
        try:
            return self._index[(EventKind.STARTED, job_id)]
        except KeyError:
            raise KeyError(f"job {job_id} never started") from None

    def completion_of(self, job_id: int) -> Event:
        """The COMPLETED event of ``job_id`` (KeyError if absent)."""
        try:
            return self._index[(EventKind.COMPLETED, job_id)]
        except KeyError:
            raise KeyError(f"job {job_id} never completed") from None


class EventWindowQueue:
    """Min-heap of ``(time, priority, id)`` drained in TIME_EPS windows.

    Events within :data:`~repro.core.validation.TIME_EPS` of the window's
    first event form one processing instant, returned sorted by
    ``(priority, time, id)``: at equal times, lower priorities act first
    (by convention 0 = completion, so processors are freed before
    simultaneous submissions are logged and starts allocate).  Pushes made
    while a window is being handled land in the heap and surface in a
    later window — the exact semantics of the seed simulator loop, now
    shared with the on-line policies.
    """

    __slots__ = ("_heap",)

    def __init__(self, events: Iterable[tuple[float, int, int]] = ()) -> None:
        self._heap: list[tuple[float, int, int]] = list(events)
        heapq.heapify(self._heap)

    def push(self, time: float, priority: int, ident: int) -> None:
        heapq.heappush(self._heap, (time, priority, ident))

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def pop_window(self) -> list[tuple[float, int, int]]:
        """Pop every event within TIME_EPS of the earliest one, sorted by
        ``(priority, time, id)``."""
        heap = self._heap
        window = [heapq.heappop(heap)]
        t0 = window[0][0]
        while heap and heap[0][0] <= t0 + TIME_EPS:
            window.append(heapq.heappop(heap))
        window.sort(key=lambda e: (e[1], e[0], e[2]))
        return window
