"""Typed event log for simulated executions, and the shared event spine.

Three pieces live here:

* :class:`EventLog` — the append-only, time-ordered record of what a
  simulated execution did.  Per-job ``STARTED`` / ``COMPLETED`` lookups
  are O(1) through an index maintained on append (the seed scanned the
  whole log per query, which made
  :meth:`~repro.simulator.engine.ExecutionTrace.busy_time` quadratic);
  :meth:`EventLog.of_kind` answers from per-kind lists maintained the
  same way.  The index keeps the *latest* occurrence per (kind, job):
  under the fault plane a crashed job restarts from scratch, and its
  post-restart START/COMPLETED are the ones ``start_of`` /
  ``completion_of`` / ``busy_time`` must report.
* :class:`EventWindowQueue` — the event core shared by
  :class:`~repro.simulator.engine.ClusterSimulator` and the on-line
  policies of :mod:`repro.simulator.online`: a min-heap of
  ``(time, priority, id)`` tuples drained in windows of width
  :data:`~repro.core.validation.TIME_EPS`, each window sorted by
  ``(priority, time, id)`` so that ties resolve deterministically and
  completions free resources before simultaneous starts allocate them.
* :class:`EventSpine` — the incremental event spine every on-line policy
  and the simulator engine run on: an :class:`EventWindowQueue` with
  typed :class:`Transition` priorities, a per-job running index, an
  incremental free-capacity profile (``used`` / ``free`` /
  ``earliest_free``) and an incremental busy-time integral, all O(log n)
  per event.

Boundary semantics (pinned by the test suite, on both sides of the
epsilon):

* **Windows do not chain.**  A window is anchored at its earliest event
  ``t0`` and closes at ``t0 + TIME_EPS`` exactly; an event at
  ``t0 + 1.5·TIME_EPS`` — even one pushed while handling the window at
  ``t0`` — belongs to a *later* window.  Chained windows would let a
  dense event run extend "simultaneity" without bound.
* **The log's tolerance is anchored at the high-water mark.**
  :meth:`EventLog.append` accepts an event iff its time is within
  ``TIME_EPS`` of the *latest time ever appended* — not of the previous
  event's time, which would let each slightly-early event drag the
  acceptance boundary backwards without bound (the dual of the window
  chaining bug).
"""

from __future__ import annotations

import enum
import heapq
import math
from bisect import insort
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from repro import obs
from repro.core.validation import TIME_EPS
from repro.exceptions import SchedulingError

__all__ = [
    "EventKind",
    "Event",
    "EventLog",
    "EventWindowQueue",
    "Transition",
    "EventSpine",
]


class EventKind(enum.Enum):
    """What happened at a log entry."""

    SUBMITTED = "submitted"
    BATCH_STARTED = "batch_started"
    STARTED = "started"
    COMPLETED = "completed"
    #: Fault-plane events (:mod:`repro.faults.failures`): a machine left
    #: or rejoined the capacity profile (``procs`` carries its id), or a
    #: running job was evicted by a capacity drop and will restart from
    #: scratch (``job_id`` is the victim).
    MACHINE_DOWN = "machine_down"
    MACHINE_UP = "machine_up"
    CRASHED = "crashed"


@dataclass(frozen=True)
class Event:
    """One timestamped occurrence.

    ``procs`` carries the concrete processor ids for START/COMPLETE events;
    ``job_id`` is ``-1`` for batch markers.
    """

    time: float
    kind: EventKind
    job_id: int = -1
    procs: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"negative event time {self.time}")


@dataclass
class EventLog:
    """Append-only, time-ordered collection of events.

    ``start_of`` / ``completion_of`` answer in O(1) from a per-job index
    maintained incrementally, and :meth:`of_kind` from per-kind lists
    maintained the same way.  The per-job index keeps the **latest**
    occurrence: when the fault plane restarts a crashed job from scratch,
    its pre-crash START/COMPLETED are superseded by the attempt that
    actually finished.
    """

    events: list[Event] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._index: dict[tuple[EventKind, int], Event] = {}
        self._by_kind: dict[EventKind, list[Event]] = {}
        self._tmax = -math.inf
        for e in self.events:
            self._remember(e)

    def _remember(self, event: Event) -> None:
        if event.kind in (EventKind.STARTED, EventKind.COMPLETED):
            self._index[(event.kind, event.job_id)] = event
        self._by_kind.setdefault(event.kind, []).append(event)
        if event.time > self._tmax:
            self._tmax = event.time

    def append(self, event: Event) -> None:
        if event.time < self._tmax - TIME_EPS:
            raise ValueError(
                f"event at {event.time} appended after {self._tmax}"
            )
        self.events.append(event)
        self._remember(event)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: EventKind) -> list[Event]:
        """All events of one kind, in append (time) order — O(result)."""
        return list(self._by_kind.get(kind, ()))

    def start_of(self, job_id: int) -> Event:
        """The latest START event of ``job_id`` (KeyError if absent)."""
        try:
            return self._index[(EventKind.STARTED, job_id)]
        except KeyError:
            raise KeyError(f"job {job_id} never started") from None

    def completion_of(self, job_id: int) -> Event:
        """The latest COMPLETED event of ``job_id`` (KeyError if absent)."""
        try:
            return self._index[(EventKind.COMPLETED, job_id)]
        except KeyError:
            raise KeyError(f"job {job_id} never completed") from None


class EventWindowQueue:
    """Min-heap of ``(time, priority, id)`` drained in TIME_EPS windows.

    Events within :data:`~repro.core.validation.TIME_EPS` of the window's
    first event form one processing instant, returned sorted by
    ``(priority, time, id)``: at equal times, lower priorities act first
    (by convention completions come first, so processors are freed before
    simultaneous submissions are logged and starts allocate).  Pushes made
    while a window is being handled land in the heap and surface in a
    later window — the exact semantics of the seed simulator loop, now
    shared with the on-line policies.  Windows are anchored, not chained:
    the window at ``t0`` closes at ``t0 + TIME_EPS`` no matter what is
    pushed while it is handled.
    """

    __slots__ = ("_heap",)

    def __init__(self, events: Iterable[tuple[float, int, int]] = ()) -> None:
        self._heap: list[tuple[float, int, int]] = list(events)
        heapq.heapify(self._heap)

    def push(self, time: float, priority: int, ident: int) -> None:
        heapq.heappush(self._heap, (time, priority, ident))

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def pop_window(self) -> list[tuple[float, int, int]]:
        """Pop every event within TIME_EPS of the earliest one, sorted by
        ``(priority, time, id)``."""
        heap = self._heap
        window = [heapq.heappop(heap)]
        t0 = window[0][0]
        while heap and heap[0][0] <= t0 + TIME_EPS:
            window.append(heapq.heappop(heap))
        window.sort(key=lambda e: (e[1], e[0], e[2]))
        return window


class Transition(enum.IntEnum):
    """Typed event priorities of the spine's heap.

    The integer values *are* the within-window ordering: at equal times,
    FINISH frees capacity first, CANCEL tombstones are resolved next,
    ARRIVAL enqueues before capacity changes RESERVE, and START allocates
    last.  The relative order of the subsets each consumer uses matches
    the untyped priorities the pre-spine loops pushed (completions 0,
    submissions/arrivals and capacity changes in between, starts last),
    so schedules stay bit-identical.
    """

    FINISH = 0
    CANCEL = 1
    ARRIVAL = 2
    RESERVE = 3
    START = 4


#: Counter names per :class:`Transition` value (``.get`` fallback keeps
#: untyped priorities pushed through the raw queue API from crashing the
#: tally).
_TRANSITION_COUNTERS = {
    0: "spine.transitions.finish",
    1: "spine.transitions.cancel",
    2: "spine.transitions.arrival",
    3: "spine.transitions.reserve",
    4: "spine.transitions.start",
}


class EventSpine(EventWindowQueue):
    """The incremental event core: windowed heap + running-set profile.

    One :class:`EventWindowQueue` that also *owns the simulation state*
    every consumer used to rebuild ad hoc:

    * the **running set** — ``start(job, k, now, end)`` allocates ``k``
      processors and schedules the FINISH transition; ``finish(job, t)``
      resolves it (returning ``None`` for a stale FINISH whose job was
      cancelled — stale heap entries still surface and anchor windows,
      liveness is decided here); ``cancel(job)`` / ``evict_latest()``
      release capacity without crediting busy time (crash-and-restart
      semantics: the work is lost);
    * the **free-capacity profile** — ``used`` / ``free`` are O(1), and
      ``earliest_free(k)`` (the EASY reservation query) walks a sorted
      completion-time list with lazily pruned tombstones instead of
      re-sorting the running set per query;
    * the **busy-time integral** — ``busy_time`` accumulates
      ``k · (finish − start)`` per completed run, so utilization needs
      no post-hoc log scan;
    * the **arrival tape** — ``load_arrivals`` + ``take_arrivals`` /
      ``next_arrival`` expose a release-sorted arrival cursor with the
      shared ``t + TIME_EPS`` batch-cut windowing, so batch policies and
      the heap agree on what "has arrived" means.

    Every operation is O(log n) amortised (``earliest_free`` is O(r) in
    the running-set size r ≤ m, with tombstone pruning keeping the walk
    list at most 2r long).  ``m`` is the capacity the ``free`` property
    reports against; the fault plane lowers/raises it as machines fail
    and recover.
    """

    __slots__ = (
        "m",
        "_used",
        "_busy",
        "_running",
        "_ends",
        "_dead",
        "_rel",
        "_arr_ids",
        "_arr_head",
    )

    def __init__(
        self, m: int, events: Iterable[tuple[float, int, int]] = ()
    ) -> None:
        super().__init__(events)
        self.m = int(m)
        self._used = 0
        self._busy = 0.0
        #: job -> (start, allotment, scheduled end)
        self._running: dict[int, tuple[float, int, float]] = {}
        #: sorted (end, job), including tombstones of finished/cancelled runs
        self._ends: list[tuple[float, int]] = []
        self._dead = 0
        self._rel = None
        self._arr_ids = None
        self._arr_head = 0

    # -- typed pushes -------------------------------------------------

    def at(self, time: float, transition: Transition, ident: int = -1) -> None:
        """Schedule a typed transition (a ``push`` with a named priority)."""
        self.push(time, int(transition), ident)

    def pop_window(self) -> list[tuple[float, int, int]]:
        """Windowed pop (see :meth:`EventWindowQueue.pop_window`) plus the
        observability tally: per-:class:`Transition` counters and the
        window-depth histogram.  Pure bookkeeping — the returned window is
        exactly the superclass's, and the disabled path adds one attribute
        load and an ``is``-check."""
        window = super().pop_window()
        state = obs.ACTIVE
        if state is not None:
            counters = _TRANSITION_COUNTERS
            for _t, priority, _i in window:
                state.count(counters.get(priority, "spine.transitions.other"))
            state.observe("spine.window_depth", len(window))
        return window

    # -- running set / capacity profile -------------------------------

    @property
    def used(self) -> int:
        """Processors currently allocated to running jobs."""
        return self._used

    @property
    def free(self) -> int:
        """Processors currently free (against the live capacity ``m``)."""
        return self.m - self._used

    @property
    def n_running(self) -> int:
        return len(self._running)

    @property
    def busy_time(self) -> float:
        """Processor-seconds of *completed* work so far (crashes excluded)."""
        return self._busy

    def __contains__(self, job: int) -> bool:
        return job in self._running

    def start(self, job: int, k: int, now: float, end: float) -> None:
        """Allocate ``k`` processors to ``job`` and schedule its FINISH."""
        self._running[job] = (now, k, end)
        self._used += k
        insort(self._ends, (end, job))
        self.push(end, int(Transition.FINISH), job)

    def finish(self, job: int, time: float) -> "tuple[float, int] | None":
        """Resolve a popped FINISH transition.

        Returns ``(start, allotment)`` and releases the capacity, or
        ``None`` if this FINISH is stale — the job was cancelled (or
        restarted with a different end) after it was scheduled.  Stale
        entries are *expected*: cancellation tombstones the heap entry
        rather than deleting it, so windows still anchor exactly where
        the pre-spine loops anchored them.
        """
        entry = self._running.get(job)
        if entry is None or entry[2] != time:
            return None
        start, k, _end = entry
        del self._running[job]
        self._used -= k
        self._busy += k * (time - start)
        self._dead += 1
        return start, k

    def cancel(self, job: int) -> "tuple[float, int] | None":
        """Evict ``job`` (no busy-time credit — its work is lost).

        Returns ``(start, allotment)``, or ``None`` if the job is not
        running.  The pending FINISH heap entry becomes a tombstone that
        :meth:`finish` later resolves to ``None``.
        """
        entry = self._running.pop(job, None)
        if entry is None:
            return None
        start, k, _end = entry
        self._used -= k
        self._dead += 1
        return start, k

    def evict_latest(self) -> tuple[int, float, int]:
        """Cancel and return the LIFO victim ``(job, start, allotment)``:
        the running job with the latest start, largest id breaking ties —
        the crash-and-restart eviction order of the fault plane."""
        running = self._running
        victim = max(running, key=lambda j: (running[j][0], j))
        start, k = self.cancel(victim)
        return victim, start, k

    def earliest_free(self, k: int) -> float:
        """Earliest time ``k`` processors will be free (the EASY
        reservation bound), given the currently running jobs.

        Walks the sorted completion-time list, skipping tombstones of
        finished/cancelled runs; when tombstones outnumber live entries
        the list is rebuilt, so the walk stays O(running set).
        """
        if self._dead * 2 > len(self._ends):
            self._ends = sorted(
                (end, job) for job, (_s, _k, end) in self._running.items()
            )
            self._dead = 0
        avail = self.m - self._used
        running = self._running
        for end, job in self._ends:
            entry = running.get(job)
            if entry is None or entry[2] != end:
                continue
            avail += entry[1]
            if avail >= k:
                return end
        raise SchedulingError(  # pragma: no cover - k <= m always frees
            f"allotment {k} can never be satisfied"
        )

    # -- arrival tape --------------------------------------------------

    def load_arrivals(self, releases, idents) -> None:
        """Attach the release-sorted arrival tape (parallel arrays of
        release times and task ids, already in arrival order)."""
        self._rel = releases
        self._arr_ids = idents
        self._arr_head = 0

    def next_arrival(self) -> "float | None":
        """Release time of the next unconsumed arrival (None when done)."""
        if self._rel is None or self._arr_head >= len(self._rel):
            return None
        return float(self._rel[self._arr_head])

    def take_arrivals(self, now: float) -> tuple[int, int]:
        """Consume every arrival released by ``now`` (inclusive of the
        shared ``TIME_EPS`` batch-cut window) and return its half-open
        index range ``(lo, hi)`` on the arrival tape.  When nothing has
        arrived yet the range is empty and the cursor does not move."""
        lo = self._arr_head
        hi = int(np.searchsorted(self._rel, now + TIME_EPS, side="right"))
        if hi <= lo:
            return lo, lo
        self._arr_head = hi
        state = obs.ACTIVE
        if state is not None:
            # The tape is the batch policies' arrival path (the FCFS heap
            # pushes ARRIVAL transitions instead; both land on the same
            # counter, and no policy uses both).
            state.count("spine.transitions.arrival", hi - lo)
        return lo, hi
