"""On-line scheduling policies (§2.2 and the §1.2 baselines), pluggable.

Jobs arrive over time (release dates).  An :class:`OnlinePolicy` decides,
without seeing the future, when and how wide each job runs; the registry
:data:`ONLINE_POLICIES` makes the policy a first-class, sweepable campaign
axis (trace replays, arrival sweeps and Pareto fronts all take a policy
name):

``batch``
    The paper's framework (Shmoys–Wein–Williamson [21]): while batch ``k``
    executes, arriving jobs queue up; when the batch completes, all queued
    jobs are scheduled as one off-line instance by a pluggable off-line
    scheduler.  If that scheduler is a ρ-approximation for the makespan,
    the wrapper is ``2ρ``-competitive — this is how the paper derives its
    ``3 + ε`` on-line guarantee from the ``3/2 + ε`` off-line DEMT, and
    the wrapper deployed on Icluster2.  :class:`BatchPolicy` is the
    production kernel: batch sub-instances are built by **zero-copy
    columnar restriction** (:meth:`repro.core.instance.Instance.
    from_arrays` over row slices) instead of the seed's per-task object
    rebuilds, and shifted placements skip re-derivation.  The seed
    implementation survives verbatim as
    :class:`repro.simulator.reference.ReferenceBatchScheduler`, the
    differential oracle the tests pin this kernel against bit for bit.
``fcfs`` / ``fcfs-backfill``
    The §1.2 production-scheduler baselines, lifted from
    :mod:`repro.extensions.fcfs` into the on-line setting: jobs are
    rigidified on arrival and started first-come-first-served on the
    shared event core (``fcfs-backfill`` adds EASY backfilling — later
    jobs may jump ahead only if they cannot delay the queue head's
    reservation).
``greedy-interval``
    The batch wrapper around the plain Shmoys-style interval scheduler
    (:class:`repro.extensions.greedy_interval.GreedyIntervalScheduler`) —
    the structural ablation of the batch policy.
``reservation``
    The batch wrapper scheduling each batch around administrator
    reservations (:mod:`repro.extensions.reservations`), the §5
    time-varying-capacity extension.  Requires a ``reservations=``
    argument, so the trace-replay CLI exposes every policy except this
    one.

All policies run on the same primitives as
:class:`~repro.simulator.engine.ClusterSimulator` — the incremental
:class:`~repro.simulator.events.EventSpine` with its
:data:`~repro.core.validation.TIME_EPS` arrival/event windowing — so
"simultaneous" means the same thing when a schedule is produced and when
it is replayed on the simulated cluster.  The pre-spine generation of
these loops survives verbatim in :mod:`repro.simulator.windowed` as the
differential oracle layer the tests pin this module against bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro import obs
from repro.core.instance import Instance
from repro.core.schedule import Schedule
from repro.core.validation import TIME_EPS
from repro.exceptions import SchedulingError
from repro.simulator.events import EventSpine, Transition

__all__ = [
    "OnlineResult",
    "OnlinePolicy",
    "BatchPolicy",
    "FcfsOnlinePolicy",
    "GreedyIntervalPolicy",
    "ReservationPolicy",
    "OnlineBatchScheduler",
    "ONLINE_POLICIES",
    "ENGINE_DRIVEN_POLICIES",
    "ZERO_CONFIG_POLICIES",
    "get_policy",
]


@dataclass(frozen=True)
class OnlineResult:
    """Outcome of an on-line run.

    Attributes
    ----------
    schedule:
        The combined schedule (release-date feasible).
    batch_starts:
        Start time of every executed batch (empty for immediate policies,
        which make one decision per job instead of per batch).
    batch_contents:
        Task ids scheduled in each batch (parallel to ``batch_starts``).
    """

    schedule: Schedule
    batch_starts: tuple[float, ...]
    batch_contents: tuple[frozenset[int], ...]

    @property
    def n_batches(self) -> int:
        return len(self.batch_starts)


class OnlinePolicy:
    """One on-line scheduling discipline: ``run(instance) -> OnlineResult``.

    Subclasses must set :attr:`name` (the registry/cache identity) and
    implement :meth:`run`; they share the arrival ordering helper so every
    policy agrees on what order jobs "appear" in.
    """

    #: Registry name; also the policy axis of replay cell keys.
    name: str = "abstract"

    def run(self, instance: Instance) -> OnlineResult:
        raise NotImplementedError

    @staticmethod
    def _arrival_order(instance: Instance) -> np.ndarray:
        """Indices of the instance's rows sorted by ``(release, task_id)``
        — computed columnar, no task objects materialised."""
        return np.lexsort((instance.task_ids, instance.releases))


class BatchPolicy(OnlinePolicy):
    """The paper's batch-doubling wrapper, on the columnar kernel.

    Parameters
    ----------
    offline:
        A callable ``Instance -> Schedule`` (e.g.
        :func:`repro.algorithms.demt.schedule_demt`).  The sub-instances it
        receives are off-line (releases stripped); its output is shifted to
        the batch start.

    Batches follow the arrival process: the first batch starts at the
    earliest release; batch ``k+1`` starts when batch ``k`` completes (or
    at the next release if the machine went idle with an empty queue).
    Arrivals within :data:`~repro.core.validation.TIME_EPS` of the batch
    cut count as arrived — the same windowing the simulator engine applies
    when it replays the result (the seed used a private ``1e-12`` here).

    Each batch's sub-instance is a zero-copy columnar restriction: the
    arrival-sorted columns are gathered **once** (or shared outright with
    the parent instance when it already is in arrival order — the common
    case for traces), and every batch is then one contiguous row *slice*
    handed to :meth:`~repro.core.instance.Instance.from_arrays` with
    validation skipped — no per-batch gather, no
    :class:`~repro.core.task.MoldableTask` rebuilds, no parent-task index
    materialisation.  Sub-instances keep their real release columns, so
    placements carry release metadata without re-binding; the arrival
    cursor is the :class:`~repro.simulator.events.EventSpine` arrival
    tape, whose ``t + TIME_EPS`` batch-cut window is the same one the
    simulator engine applies when it replays the result.
    """

    name = "batch"

    def __init__(self, offline: Callable[[Instance], Schedule] | None = None) -> None:
        if offline is None:
            from repro.algorithms.demt import schedule_demt

            offline = schedule_demt
        self.offline = offline

    def _schedule_batch(self, sub: Instance, now: float) -> Schedule:
        """Hook: produce the off-line schedule of one batch (time origin 0
        at ``now``).  Subclasses may use ``now`` (reservations do)."""
        return self.offline(sub)

    def run(self, instance: Instance) -> OnlineResult:
        """Schedule ``instance`` respecting release dates."""
        state = obs.ACTIVE
        if state is None:
            return self._run_impl(instance)
        with state.span("policy:" + self.name, "algorithm"):
            return self._run_impl(instance)

    def _run_impl(self, instance: Instance) -> OnlineResult:
        m = instance.m
        out = Schedule(m)
        n = instance.n
        if n == 0:
            return OnlineResult(out, (), ())

        # Arrival-sorted columnar view, gathered once: each batch is a
        # contiguous row slice (adopted zero-copy by ``from_arrays``).
        # Traces and generators already emit arrival order, so the common
        # case shares the parent's read-only buffers outright.
        order = self._arrival_order(instance)
        if np.array_equal(order, np.arange(n)):
            rel = instance.releases
            times = instance.times_matrix
            weights = instance.weights
            ids = instance.task_ids
        else:
            rel = np.ascontiguousarray(instance.releases[order])
            times = np.ascontiguousarray(instance.times_matrix[order])
            weights = np.ascontiguousarray(instance.weights[order])
            ids = np.ascontiguousarray(instance.task_ids[order])

        spine = EventSpine(m)
        spine.load_arrivals(rel, ids)

        placements = out._placements
        by_id = out._by_id
        shift = object.__setattr__
        batch_starts: list[float] = []
        batch_contents: list[frozenset[int]] = []

        now = float(rel[0])
        while True:
            # Jobs that have arrived by `now` (within the shared event
            # window) form the next batch; if none, jump to the next
            # arrival (idle gap) or finish.
            lo, hi = spine.take_arrivals(now)
            if hi <= lo:
                nxt = spine.next_arrival()
                if nxt is None:
                    break
                now = nxt
                continue
            sl = slice(lo, hi)
            batch_ids = ids[sl].tolist()
            state = obs.ACTIVE
            if state is not None:
                state.count("online.batches")
                state.observe("online.batch_size", hi - lo)

            # Off-line sub-instance at time origin 0: a zero-copy row
            # slice of the arrival-sorted columns (real releases kept —
            # the engines schedule from origin 0 and never read them, and
            # placements then carry correct release metadata for free).
            sub = Instance.from_arrays(
                times[sl],
                weights[sl],
                rel[sl],
                m,
                task_ids=ids[sl],
                validate=False,
            )
            batch_schedule = self._schedule_batch(sub, now)
            if len(batch_schedule) != len(batch_ids) or (
                batch_schedule.task_ids() != set(batch_ids)
            ):
                raise SchedulingError(
                    "off-line scheduler did not place exactly the batch's tasks"
                )
            # Shift into the batch window.  The sub-schedule is freshly
            # built by the engine and referenced nowhere else, so its
            # placements are *adopted*: shifted in place (``end`` recomputed
            # as ``start + duration``, the ``_trusted`` arithmetic) and
            # bulk-appended — no per-placement reconstruction.
            batch_end = now
            batch_placements = batch_schedule._placements
            for p in batch_placements:
                # The next batch cut is anchored on the engine's ``end``
                # shifted as one sum (``now + p.end``); the placement's own
                # ``end`` is the ``_trusted`` arithmetic ``start + duration``
                # — the two differ in the last ulp, and both are pinned by
                # the differential oracles.
                end = now + p.end
                if end > batch_end:
                    batch_end = end
                start = now + p.start
                shift(p, "start", start)
                shift(p, "end", start + p.duration)
            placements.extend(batch_placements)
            by_id.update(batch_schedule._by_id)
            batch_starts.append(now)
            batch_contents.append(frozenset(batch_ids))
            now = batch_end

        out.__dict__.pop("_events", None)  # placements appended directly
        return OnlineResult(
            schedule=out,
            batch_starts=tuple(batch_starts),
            batch_contents=tuple(batch_contents),
        )


class OnlineBatchScheduler(BatchPolicy):
    """Historical name of the batch policy (kept as the public API).

    ``OnlineBatchScheduler(offline).run(instance)`` behaves exactly like
    ``BatchPolicy(offline).run(instance)``; the seed implementation it
    replaced lives on as :class:`repro.simulator.reference.
    ReferenceBatchScheduler`, the differential oracle of the test suite.
    """


class GreedyIntervalPolicy(BatchPolicy):
    """The batch wrapper around the plain interval-doubling scheduler.

    The structural ablation of :class:`BatchPolicy`: same arrival
    batching, but each batch is scheduled by
    :class:`~repro.extensions.greedy_interval.GreedyIntervalScheduler`
    (geometric batches, no merging, no compaction, no shuffling).  The
    ``offline`` argument is ignored — the engine *is* the policy here.
    """

    name = "greedy-interval"

    def __init__(self, offline: Callable | None = None) -> None:
        from repro.extensions.greedy_interval import GreedyIntervalScheduler

        super().__init__(GreedyIntervalScheduler().schedule)


class ReservationPolicy(BatchPolicy):
    """Batch policy scheduling around administrator reservations (§5).

    Each batch is placed by :class:`~repro.extensions.reservations.
    ReservationScheduler` against the capacity profile *as seen from the
    batch start*: a reservation ``[s, e)`` in absolute time becomes
    ``[max(0, s - now), e - now)`` for the batch starting at ``now``
    (expired reservations vanish).  ``offline`` configures the DEMT used
    for batch ordering when it is a :class:`~repro.algorithms.demt.
    DemtScheduler`; other callables fall back to the default DEMT.
    """

    name = "reservation"

    def __init__(
        self,
        reservations: "Sequence",
        offline: Callable[[Instance], Schedule] | None = None,
    ) -> None:
        super().__init__(offline)
        self.reservations = tuple(reservations)

    def _schedule_batch(self, sub: Instance, now: float) -> Schedule:
        from repro.algorithms.demt import DemtScheduler
        from repro.extensions.reservations import Reservation, ReservationScheduler

        shifted = [
            Reservation(max(0.0, r.start - now), r.end - now, r.procs)
            for r in self.reservations
            if r.end - now > TIME_EPS
        ]
        demt = self.offline if isinstance(self.offline, DemtScheduler) else None
        return ReservationScheduler(shifted, demt).schedule(sub)


class FcfsOnlinePolicy(OnlinePolicy):
    """Immediate FCFS (optionally EASY-backfilled) on the event core.

    The §1.2 baseline of :mod:`repro.extensions.fcfs`, run genuinely
    on-line: jobs are rigidified (fixed user-request allotments via
    :func:`~repro.extensions.fcfs.rigidify`) and dispatched at arrival
    and completion events — no batching, no clairvoyance.  With
    ``backfill=True`` a job that cannot start computes its reservation
    (the earliest instant enough processors will have been freed) and
    later arrivals may jump ahead only if they terminate by then, so the
    queue head is never delayed — EASY semantics.

    The event loop is the shared incremental
    :class:`~repro.simulator.events.EventSpine` (FINISH transitions free
    processors before simultaneous ARRIVALs dispatch), so its notion of
    simultaneity is identical to the simulator engine's; the running set,
    the free-processor count and the EASY reservation bound
    (:meth:`~repro.simulator.events.EventSpine.earliest_free`) all live
    on the spine instead of being re-derived per event.
    """

    def __init__(self, backfill: bool = True, slack: float = 2.0) -> None:
        self.backfill = bool(backfill)
        self.slack = float(slack)
        self.name = "fcfs-backfill" if backfill else "fcfs"

    def run(self, instance: Instance) -> OnlineResult:
        state = obs.ACTIVE
        if state is None:
            return self._run_impl(instance)
        with state.span("policy:" + self.name, "algorithm"):
            return self._run_impl(instance)

    def _run_impl(self, instance: Instance) -> OnlineResult:
        from repro.extensions.fcfs import rigidify

        m = instance.m
        out = Schedule(m)
        if instance.n == 0:
            return OnlineResult(out, (), ())

        allot = rigidify(instance, slack=self.slack)
        task_of = instance.task_by_id
        durations = {tid: task_of(tid).p(k) for tid, k in allot.items()}

        # FINISH transitions free processors before simultaneous ARRIVALs
        # enqueue; each window dispatches once.  The waiting queue is a
        # list walked by a head index; backfilled jobs are tombstoned and
        # compacted away once they outnumber the live tail, so a long
        # backlog never pays O(queue) element shifts per start and the
        # EASY scan only walks live entries.
        finish = int(Transition.FINISH)
        arrival = int(Transition.ARRIVAL)
        spine = EventSpine(
            m,
            (
                (r, arrival, j)
                for r, j in zip(
                    instance.releases.tolist(), instance.task_ids.tolist()
                )
            ),
        )
        waiting: list[int | None] = []  # arrival order; None = backfilled
        head_i = 0

        def start(job_id: int, now: float) -> None:
            k = allot[job_id]
            duration = durations[job_id]
            out._place_trusted(task_of(job_id), now, k, duration)
            spine.start(job_id, k, now, now + duration)

        tombstones = 0

        def dispatch(now: float) -> None:
            nonlocal head_i, tombstones
            if tombstones * 2 > len(waiting) - head_i:
                # Compact so the backfill scan only walks live entries.
                live = [j for j in waiting[head_i:] if j is not None]
                waiting[:] = live
                head_i = 0
                tombstones = 0
            while head_i < len(waiting):
                head = waiting[head_i]
                if head is None:  # backfilled earlier
                    head_i += 1
                    tombstones -= 1
                    continue
                if allot[head] <= spine.free:
                    start(head, now)
                    head_i += 1
                    continue
                if not self.backfill:
                    return
                # EASY: the head holds a reservation; later jobs may fill
                # the current hole only if they finish by it.
                t_res = spine.earliest_free(allot[head])
                for i in range(head_i + 1, len(waiting)):
                    cand = waiting[i]
                    if (
                        cand is not None
                        and allot[cand] <= spine.free
                        and now + durations[cand] <= t_res + TIME_EPS
                    ):
                        start(cand, now)
                        waiting[i] = None
                        tombstones += 1
                return

        while spine:
            window = spine.pop_window()
            now = window[0][0]
            for time, priority, job_id in window:
                if priority == finish:
                    spine.finish(job_id, time)
                else:  # arrival
                    waiting.append(job_id)
            dispatch(now)

        if head_i < len(waiting) and any(
            j is not None for j in waiting[head_i:]
        ):  # pragma: no cover - every start enqueues a completion
            raise SchedulingError("FCFS policy stalled with jobs waiting")
        return OnlineResult(out, (), ())


#: Policy name -> factory.  Factories accept the keyword arguments their
#: class documents (``offline=`` for the batch family, ``backfill`` /
#: ``slack`` for FCFS, ``reservations=`` for the reservation policy).
ONLINE_POLICIES: dict[str, Callable[..., OnlinePolicy]] = {
    "batch": BatchPolicy,
    "fcfs": lambda offline=None, **kw: FcfsOnlinePolicy(backfill=False, **kw),
    "fcfs-backfill": lambda offline=None, **kw: FcfsOnlinePolicy(backfill=True, **kw),
    "greedy-interval": GreedyIntervalPolicy,
    "reservation": ReservationPolicy,
}

#: Policies whose behavior depends on the ``offline`` engine.  The rest
#: (the immediate FCFS variants, the fixed-engine greedy-interval) ignore
#: it — sweeping them across engines would just repeat one measurement.
ENGINE_DRIVEN_POLICIES = ("batch", "reservation")

#: Policies constructible without extra configuration — the set exposed
#: as replay modes, swept by ``--front`` and raced by the bench grid.
#: (``reservation`` needs a reservations argument and is library-only.)
ZERO_CONFIG_POLICIES = tuple(p for p in ONLINE_POLICIES if p != "reservation")


def get_policy(
    spec: "str | OnlinePolicy",
    *,
    offline: Callable[[Instance], Schedule] | None = None,
    **kwargs,
) -> OnlinePolicy:
    """Resolve a policy spec: a registry name or an instance (passthrough).

    ``offline`` configures the off-line engine of the batch-family
    policies; the immediate policies ignore it (they take no engine).

    >>> get_policy("batch").name
    'batch'
    >>> get_policy("fcfs").backfill
    False
    """
    if isinstance(spec, OnlinePolicy):
        return spec
    try:
        factory = ONLINE_POLICIES[spec]
    except KeyError:
        raise ValueError(
            f"unknown on-line policy {spec!r}; available: "
            f"{', '.join(ONLINE_POLICIES)}"
        ) from None
    return factory(offline=offline, **kwargs)
