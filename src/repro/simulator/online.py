"""On-line batch scheduling framework (§2.2; Shmoys–Wein–Williamson [21]).

Jobs arrive over time (release dates).  The framework runs the cluster in
*batches*: while batch ``k`` executes, arriving jobs queue up; when the
batch completes, all queued jobs are scheduled as one off-line instance by
a pluggable off-line scheduler, forming batch ``k+1``.

The classical analysis (§2.2 of the paper): if the off-line scheduler has
approximation ratio ρ for the makespan, the batched on-line scheduler is
``2ρ``-competitive — every job of the last batch arrived after the
*previous* batch started, so the last two batch lengths are each at most
ρ times the optimal on-line makespan.  This is how the paper derives its
``3 + ε`` on-line guarantee from the ``3/2 + ε`` off-line algorithm, and
the same wrapper turns DEMT into the production scheduler deployed on
Icluster2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.instance import Instance
from repro.core.schedule import Schedule
from repro.exceptions import SchedulingError

__all__ = ["OnlineResult", "OnlineBatchScheduler"]


@dataclass(frozen=True)
class OnlineResult:
    """Outcome of an on-line run.

    Attributes
    ----------
    schedule:
        The combined schedule (release-date feasible).
    batch_starts:
        Start time of every executed batch.
    batch_contents:
        Task ids scheduled in each batch (parallel to ``batch_starts``).
    """

    schedule: Schedule
    batch_starts: tuple[float, ...]
    batch_contents: tuple[frozenset[int], ...]

    @property
    def n_batches(self) -> int:
        return len(self.batch_starts)


class OnlineBatchScheduler:
    """Batch-doubling wrapper around any off-line scheduler.

    Parameters
    ----------
    offline:
        A callable ``Instance -> Schedule`` (e.g.
        :func:`repro.algorithms.demt.schedule_demt`).  The sub-instances it
        receives are off-line (releases stripped); its output is shifted to
        the batch start.
    """

    def __init__(self, offline: Callable[[Instance], Schedule]) -> None:
        self.offline = offline

    def run(self, instance: Instance) -> OnlineResult:
        """Schedule ``instance`` respecting release dates.

        Batches follow the arrival process: the first batch starts at the
        earliest release; batch ``k+1`` starts when batch ``k`` completes
        (or at the next release if the machine went idle with an empty
        queue).
        """
        m = instance.m
        out = Schedule(m)
        if instance.n == 0:
            return OnlineResult(out, (), ())

        # Tasks sorted by arrival; `head` walks forward, so each batch is a
        # slice of the sorted order and the whole run is O(n log n) instead
        # of re-filtering the full pending list per batch.
        pending = sorted(instance.tasks, key=lambda t: (t.release, t.task_id))
        head = 0
        now = pending[0].release
        batch_starts: list[float] = []
        batch_contents: list[frozenset[int]] = []

        while head < len(pending):
            # Jobs that have arrived by `now` form the next batch; if none
            # (idle gap), jump to the next arrival.
            cut = head
            while cut < len(pending) and pending[cut].release <= now + 1e-12:
                cut += 1
            if cut == head:
                now = pending[head].release
                continue
            arrived = pending[head:cut]
            head = cut

            # Off-line sub-instance at time origin 0 (releases stripped).
            sub = Instance([t.with_release(0.0) for t in arrived], m)
            batch_schedule = self.offline(sub)
            if batch_schedule.task_ids() != {t.task_id for t in arrived}:
                raise SchedulingError(
                    "off-line scheduler did not place exactly the batch's tasks"
                )
            # Shift into the batch window.  Tasks are re-bound to the
            # *original* instance objects so release metadata is kept.
            by_id = {t.task_id: t for t in arrived}
            batch_end = now
            for p in batch_schedule:
                out.add(by_id[p.task.task_id], now + p.start, p.allotment)
                batch_end = max(batch_end, now + p.end)
            batch_starts.append(now)
            batch_contents.append(frozenset(t.task_id for t in arrived))
            now = batch_end

        return OnlineResult(
            schedule=out,
            batch_starts=tuple(batch_starts),
            batch_contents=tuple(batch_contents),
        )
