"""Seed on-line batch scheduler, preserved as the differential oracle.

This is the pre-refactor :class:`OnlineBatchScheduler` of
:mod:`repro.simulator.online`, kept **verbatim** (object-per-task
sub-instances, its original ``1e-12`` arrival cut) so the test suite can
pin the production :class:`~repro.simulator.online.BatchPolicy` — the
columnar kernel running on the unified :data:`~repro.core.validation.
TIME_EPS` — bit-for-bit against the seed semantics, exactly like
:mod:`repro.algorithms.reference` preserves the seed scheduling
algorithms.

The two implementations agree placement-for-placement on every instance
whose arrival gaps exceed ``1e-9`` (every trace and every generator in
this repository); they intentionally differ on sub-nanosecond arrival
gaps, where the seed's private ``1e-12`` cut disagreed with the simulator
engine's event windowing — see the boundary-case tests in
``tests/simulator/test_policies.py``.

This module is the oldest layer of a two-generation oracle stack: the
PR-5 *windowed* loops (the first columnar rewrite, per-batch
fancy-index sub-instances on the raw :class:`~repro.simulator.events.
EventWindowQueue`) are frozen alongside in
:mod:`repro.simulator.windowed`, and the production kernels now run on
the incremental :class:`~repro.simulator.events.EventSpine`.
``tests/simulator/test_spine.py`` pins spine == windowed == seed.

Do not "fix" or optimise this module: its value is that it does not move.
"""

from __future__ import annotations

from typing import Callable

from repro.core.instance import Instance
from repro.core.schedule import Schedule
from repro.exceptions import SchedulingError

__all__ = ["ReferenceBatchScheduler"]


class ReferenceBatchScheduler:
    """Seed batch-doubling wrapper around any off-line scheduler.

    Semantics of the seed implementation, frozen: tasks sorted by
    ``(release, task_id)``, batches cut at ``now + 1e-12``, off-line
    sub-instances rebuilt task object by task object with releases
    stripped.
    """

    def __init__(self, offline: Callable[[Instance], Schedule]) -> None:
        self.offline = offline

    def run(self, instance: Instance) -> "OnlineResult":
        from repro.simulator.online import OnlineResult

        m = instance.m
        out = Schedule(m)
        if instance.n == 0:
            return OnlineResult(out, (), ())

        pending = sorted(instance.tasks, key=lambda t: (t.release, t.task_id))
        head = 0
        now = pending[0].release
        batch_starts: list[float] = []
        batch_contents: list[frozenset[int]] = []

        while head < len(pending):
            cut = head
            while cut < len(pending) and pending[cut].release <= now + 1e-12:
                cut += 1
            if cut == head:
                now = pending[head].release
                continue
            arrived = pending[head:cut]
            head = cut

            sub = Instance([t.with_release(0.0) for t in arrived], m)
            batch_schedule = self.offline(sub)
            if batch_schedule.task_ids() != {t.task_id for t in arrived}:
                raise SchedulingError(
                    "off-line scheduler did not place exactly the batch's tasks"
                )
            by_id = {t.task_id: t for t in arrived}
            batch_end = now
            for p in batch_schedule:
                out.add(by_id[p.task.task_id], now + p.start, p.allotment)
                batch_end = max(batch_end, now + p.end)
            batch_starts.append(now)
            batch_contents.append(frozenset(t.task_id for t in arrived))
            now = batch_end

        return OnlineResult(
            schedule=out,
            batch_starts=tuple(batch_starts),
            batch_contents=tuple(batch_contents),
        )
