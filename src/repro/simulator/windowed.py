"""Frozen pre-spine on-line loops, kept as differential oracles.

When the on-line policies were ported onto the incremental
:class:`~repro.simulator.events.EventSpine`, the previous generation of
loops — the columnar batch kernel that rebuilt one
:meth:`~repro.core.instance.Instance.from_arrays` sub-instance per batch,
and the FCFS dispatcher that re-sorted its running set per EASY
reservation query — moved here *verbatim* (like the seed's
:class:`~repro.simulator.reference.ReferenceBatchScheduler` before them).
They are intentionally unoptimised snapshots: the differential suites run
every registry policy on both paths and require bit-identical schedules,
so any behavioural drift in the spine port is caught against code that
provably produced the golden corpora.

Do not "fix" or optimise this module; it exists to stay behind.
"""

from __future__ import annotations

import heapq
from typing import Callable

import numpy as np

from repro.core.instance import Instance
from repro.core.schedule import Schedule
from repro.core.validation import TIME_EPS
from repro.exceptions import SchedulingError
from repro.faults.failures import FaultyBatchPolicy, FaultyOnlineResult
from repro.faults.noise import perturb_instance
from repro.simulator.events import Event, EventKind, EventLog, EventWindowQueue
from repro.simulator.online import (
    BatchPolicy,
    FcfsOnlinePolicy,
    GreedyIntervalPolicy,
    OnlineResult,
    ReservationPolicy,
)

__all__ = [
    "WindowedBatchPolicy",
    "WindowedGreedyIntervalPolicy",
    "WindowedReservationPolicy",
    "WindowedFcfsPolicy",
    "WindowedFaultyBatchPolicy",
    "WINDOWED_POLICIES",
]

#: The untyped event priorities the pre-spine faulty loop pushed.
_PRIO_COMPLETE, _PRIO_CAPACITY, _PRIO_START = 0, 1, 2


class WindowedBatchPolicy(BatchPolicy):
    """The PR 5 batch kernel: per-batch ``from_arrays`` row-copy rebuilds,
    placements re-bound to the parent instance's materialised tasks."""

    name = "windowed-batch"

    def run(self, instance: Instance) -> OnlineResult:
        m = instance.m
        out = Schedule(m)
        n = instance.n
        if n == 0:
            return OnlineResult(out, (), ())

        order = self._arrival_order(instance)
        rel = instance.releases[order]
        times = instance.times_matrix
        weights = instance.weights
        ids = instance.task_ids
        task_of = instance._id_index  # materialises task objects once
        place = out._place_trusted

        head = 0
        now = float(rel[0])
        batch_starts: list[float] = []
        batch_contents: list[frozenset[int]] = []

        while head < n:
            cut = int(np.searchsorted(rel, now + TIME_EPS, side="right"))
            if cut <= head:
                now = float(rel[head])
                continue
            idx = order[head:cut]
            head = cut
            batch_ids = ids[idx].tolist()

            sub = Instance.from_arrays(
                times[idx],
                weights[idx],
                None,
                m,
                task_ids=ids[idx],
                validate=False,
            )
            batch_schedule = self._schedule_batch(sub, now)
            if len(batch_schedule) != len(batch_ids) or (
                batch_schedule.task_ids() != set(batch_ids)
            ):
                raise SchedulingError(
                    "off-line scheduler did not place exactly the batch's tasks"
                )
            batch_end = now
            for p in batch_schedule:
                place(
                    task_of[p.task.task_id], now + p.start, p.allotment, p.duration
                )
                end = now + p.end
                if end > batch_end:
                    batch_end = end
            batch_starts.append(now)
            batch_contents.append(frozenset(batch_ids))
            now = batch_end

        return OnlineResult(
            schedule=out,
            batch_starts=tuple(batch_starts),
            batch_contents=tuple(batch_contents),
        )


class WindowedGreedyIntervalPolicy(WindowedBatchPolicy, GreedyIntervalPolicy):
    """Greedy-interval engine on the pre-spine batch loop."""

    name = "windowed-greedy-interval"


class WindowedReservationPolicy(WindowedBatchPolicy, ReservationPolicy):
    """Reservation-aware batches on the pre-spine batch loop."""

    name = "windowed-reservation"


class WindowedFcfsPolicy(FcfsOnlinePolicy):
    """The PR 5 FCFS dispatcher: hand-rolled running dict + free counter,
    per-query sort in the EASY reservation bound."""

    def __init__(self, backfill: bool = True, slack: float = 2.0) -> None:
        super().__init__(backfill=backfill, slack=slack)
        self.name = (
            "windowed-fcfs-backfill" if self.backfill else "windowed-fcfs"
        )

    def run(self, instance: Instance) -> OnlineResult:
        from repro.extensions.fcfs import rigidify

        m = instance.m
        out = Schedule(m)
        if instance.n == 0:
            return OnlineResult(out, (), ())

        allot = rigidify(instance, slack=self.slack)
        task_of = instance.task_by_id
        durations = {tid: task_of(tid).p(k) for tid, k in allot.items()}

        queue = EventWindowQueue((t.release, 1, t.task_id) for t in instance)
        waiting: list[int | None] = []  # arrival order; None = backfilled
        head_i = 0
        running: dict[int, tuple[float, int]] = {}  # id -> (end, allotment)
        free = m

        def start(job_id: int, now: float) -> None:
            nonlocal free
            k = allot[job_id]
            duration = durations[job_id]
            free -= k
            running[job_id] = (now + duration, k)
            out._place_trusted(task_of(job_id), now, k, duration)
            queue.push(now + duration, 0, job_id)

        def reservation_time(k: int) -> float:
            avail = free
            for end, held in sorted(running.values()):
                avail += held
                if avail >= k:
                    return end
            raise SchedulingError(  # pragma: no cover - k <= m always frees
                f"allotment {k} can never be satisfied"
            )

        tombstones = 0

        def dispatch(now: float) -> None:
            nonlocal head_i, tombstones
            if tombstones * 2 > len(waiting) - head_i:
                live = [j for j in waiting[head_i:] if j is not None]
                waiting[:] = live
                head_i = 0
                tombstones = 0
            while head_i < len(waiting):
                head = waiting[head_i]
                if head is None:  # backfilled earlier
                    head_i += 1
                    tombstones -= 1
                    continue
                if allot[head] <= free:
                    start(head, now)
                    head_i += 1
                    continue
                if not self.backfill:
                    return
                t_res = reservation_time(allot[head])
                for i in range(head_i + 1, len(waiting)):
                    cand = waiting[i]
                    if (
                        cand is not None
                        and allot[cand] <= free
                        and now + durations[cand] <= t_res + TIME_EPS
                    ):
                        start(cand, now)
                        waiting[i] = None
                        tombstones += 1
                return

        while queue:
            window = queue.pop_window()
            now = window[0][0]
            for _time, priority, job_id in window:
                if priority == 0:  # completion
                    _, k = running.pop(job_id)
                    free += k
                else:  # arrival
                    waiting.append(job_id)
            dispatch(now)

        if head_i < len(waiting) and any(
            j is not None for j in waiting[head_i:]
        ):  # pragma: no cover - every start enqueues a completion
            raise SchedulingError("FCFS policy stalled with jobs waiting")
        return OnlineResult(out, (), ())


class WindowedFaultyBatchPolicy(FaultyBatchPolicy):
    """The PR 7 faulty loop: per-batch untyped queue, hand-rolled running
    dict, eviction by max() over the dict per capacity drop."""

    name = "windowed-faulty-batch"

    def run(self, instance: Instance) -> FaultyOnlineResult:  # noqa: C901
        truth = instance
        m = truth.m
        trace = self.failures
        if trace is not None and trace.m != m:
            raise SchedulingError(
                f"failure trace is over {trace.m} machines, instance has {m}"
            )
        cap_events = trace.events if trace is not None else ()

        out = Schedule(m)
        log = EventLog()
        if truth.n == 0:
            return FaultyOnlineResult(out, (), (), log=log)

        est = perturb_instance(truth, self.noise)
        truth_times = truth.times_matrix
        est_times = est.times_matrix
        weights = truth.weights
        ids = truth.task_ids
        task_of = truth._id_index
        row_of = {int(tid): i for i, tid in enumerate(ids.tolist())}
        place = out._place_trusted

        pending: list[tuple[float, int]] = [
            (float(r), int(tid)) for r, tid in zip(truth.releases, ids)
        ]
        heapq.heapify(pending)
        restarts: dict[int, int] = {}

        capacity = m
        cap_ptr = 0  # next un-applied capacity event
        witnessed = 0.0

        def apply_capacity(t: float, mach: int, delta: int) -> None:
            nonlocal capacity, witnessed
            capacity += delta
            witnessed = max(witnessed, t)
            kind = EventKind.MACHINE_UP if delta > 0 else EventKind.MACHINE_DOWN
            log.append(Event(t, kind, procs=(mach,)))

        batch_starts: list[float] = []
        batch_contents: list[frozenset[int]] = []
        crashes = deferrals = 0

        now = pending[0][0]
        while pending:
            now = max(now, pending[0][0])
            while cap_ptr < len(cap_events) and cap_events[cap_ptr][0] <= now:
                apply_capacity(*cap_events[cap_ptr])
                cap_ptr += 1

            batch: list[int] = []
            while pending and pending[0][0] <= now + TIME_EPS:
                batch.append(heapq.heappop(pending)[1])
            idx = np.asarray([row_of[j] for j in batch], dtype=np.intp)

            sub = Instance.from_arrays(
                est_times[idx],
                weights[idx],
                None,
                m,
                task_ids=ids[idx],
                validate=False,
            )
            plan = self._schedule_batch(sub, now)
            if len(plan) != len(batch) or plan.task_ids() != set(batch):
                raise SchedulingError(
                    "off-line scheduler did not place exactly the batch's tasks"
                )
            log.append(Event(now, EventKind.BATCH_STARTED))
            batch_starts.append(now)
            batch_contents.append(frozenset(batch))

            queue = EventWindowQueue()
            alloc: dict[int, int] = {}
            horizon_t = now
            for p in plan:
                jid = p.task.task_id
                alloc[jid] = p.allotment
                s = now + p.start
                queue.push(s, _PRIO_START, jid)
                horizon_t = max(
                    horizon_t, s + float(truth_times[row_of[jid], p.allotment - 1])
                )
            batch_cap_end = cap_ptr
            while (
                batch_cap_end < len(cap_events)
                and cap_events[batch_cap_end][0] <= horizon_t + TIME_EPS
            ):
                queue.push(cap_events[batch_cap_end][0], _PRIO_CAPACITY, batch_cap_end)
                batch_cap_end += 1

            unresolved = len(alloc)
            running: dict[int, tuple[float, int, float]] = {}  # id -> (s, k, dur)
            used = 0
            started_any = False
            batch_end = now

            def evict_over_capacity(t: float) -> None:
                nonlocal used, crashes, unresolved, batch_end
                batch_end = max(batch_end, t)
                while used > capacity and running:
                    victim = max(running, key=lambda j: (running[j][0], j))
                    _s, k, _d = running.pop(victim)
                    used -= k
                    restarts[victim] = restarts.get(victim, 0) + 1
                    if restarts[victim] > self.max_restarts:
                        raise SchedulingError(
                            f"job {victim} crashed more than {self.max_restarts} times"
                        )
                    log.append(Event(t, EventKind.CRASHED, job_id=victim))
                    heapq.heappush(pending, (t, victim))
                    crashes += 1
                    unresolved -= 1

            while unresolved > 0:
                if not queue:  # pragma: no cover - every start is queued
                    raise SchedulingError("faulty batch simulation stalled")
                for t, prio, ident in queue.pop_window():
                    if prio == _PRIO_CAPACITY:
                        if ident == cap_ptr:  # skipped events never reach here
                            apply_capacity(*cap_events[cap_ptr])
                            cap_ptr += 1
                            evict_over_capacity(t)
                        continue
                    jid = ident
                    if prio == _PRIO_COMPLETE:
                        if jid not in running:
                            continue  # crashed after this completion was queued
                        s, k, dur = running.pop(jid)
                        used -= k
                        place(task_of[jid], s, k, dur)
                        log.append(Event(t, EventKind.COMPLETED, job_id=jid))
                        unresolved -= 1
                        batch_end = max(batch_end, t)
                        continue
                    k = alloc[jid]
                    if k <= capacity - used:
                        dur = float(truth_times[row_of[jid], k - 1])
                        running[jid] = (t, k, dur)
                        used += k
                        started_any = True
                        log.append(Event(t, EventKind.STARTED, job_id=jid))
                        queue.push(t + dur, _PRIO_COMPLETE, jid)
                    else:
                        heapq.heappush(pending, (t, jid))
                        deferrals += 1
                        unresolved -= 1
                        batch_end = max(batch_end, t)

            witnessed = max(witnessed, batch_end)
            if started_any or not pending:
                now = witnessed
                continue
            future = [t for t, _m2, d in cap_events[cap_ptr:] if d > 0 and t > now]
            later = [r for r, _j in pending if r > now + TIME_EPS]
            candidates = future + later
            if not candidates:  # pragma: no cover - traces always recover
                raise SchedulingError("batch cannot start and capacity never recovers")
            now = max(min(candidates), witnessed)

        return FaultyOnlineResult(
            schedule=out,
            batch_starts=tuple(batch_starts),
            batch_contents=tuple(batch_contents),
            crashes=crashes,
            deferrals=deferrals,
            log=log,
        )


#: Spine policy name -> frozen pre-spine factory producing the same
#: schedules — the oracle axis of the differential suites.
WINDOWED_POLICIES: dict[str, Callable] = {
    "batch": WindowedBatchPolicy,
    "fcfs": lambda offline=None, **kw: WindowedFcfsPolicy(backfill=False, **kw),
    "fcfs-backfill": lambda offline=None, **kw: WindowedFcfsPolicy(
        backfill=True, **kw
    ),
    "greedy-interval": WindowedGreedyIntervalPolicy,
    "reservation": WindowedReservationPolicy,
}
