"""Minimal ASCII line charts for terminal reports.

The paper's figures are gnuplot line charts; without a plotting dependency
we render the same series on a character grid — good enough to eyeball
crossovers and orderings straight from the benchmark output.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["ascii_chart", "ascii_flame", "ascii_front"]

#: Glyphs assigned to successive series.
_MARKERS = "ox+*#@%&"


def ascii_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    width: int = 72,
    height: int = 18,
    title: str = "",
    y_label: str = "",
) -> str:
    """Render ``{name: [(x, y), ...]}`` as a multi-series scatter chart.

    Points are mapped onto a ``width x height`` grid with linear axes; each
    series gets a marker from :data:`_MARKERS` (later series overwrite
    earlier ones on collisions, which mirrors how dense gnuplot charts
    overlap).  Returns a printable string including a legend and axis
    ticks.
    """
    if width < 16 or height < 4:
        raise ValueError("chart too small to be legible")
    pts = [(x, y) for s in series.values() for (x, y) in s]
    if not pts:
        return f"{title}\n(no data)\n"
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]

    def to_col(x: float) -> int:
        return min(width - 1, max(0, round((x - x_lo) / (x_hi - x_lo) * (width - 1))))

    def to_row(y: float) -> int:
        # Row 0 is the top of the chart.
        frac = (y - y_lo) / (y_hi - y_lo)
        return min(height - 1, max(0, round((1.0 - frac) * (height - 1))))

    legend = []
    for idx, (name, data) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        legend.append(f"{marker} = {name}")
        for x, y in data:
            grid[to_row(y)][to_col(x)] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:10.3g} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_lo:10.3g} ┤" + "".join(grid[-1]))
    lines.append(" " * 12 + "└" + "─" * width)
    lines.append(
        " " * 12 + f"{x_lo:<10.4g}" + " " * max(0, width - 20) + f"{x_hi:>10.4g}"
    )
    if y_label:
        lines.append(f"   y: {y_label}")
    lines.append("   " + "   ".join(legend))
    return "\n".join(lines) + "\n"


def ascii_front(
    cloud: Sequence[tuple[float, float]],
    front: Sequence[tuple[float, float]],
    *,
    width: int = 60,
    height: int = 16,
    title: str = "",
) -> str:
    """Render a bi-criteria point cloud with its Pareto staircase.

    Dominated points print as ``·``, front points as ``#``, and the
    front's staircase steps are traced with ``─`` / ``│`` so the
    dominated region reads directly off the chart.  ``front`` must be in
    staircase order (ascending x, descending y — what
    :func:`repro.pareto.front.pareto_front` returns).
    """
    if width < 16 or height < 4:
        raise ValueError("chart too small to be legible")
    cloud = [(float(x), float(y)) for x, y in cloud]
    front = [(float(x), float(y)) for x, y in front]
    if not cloud:
        return f"{title}\n(no data)\n"
    xs = [p[0] for p in cloud]
    ys = [p[1] for p in cloud]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]

    def to_col(x: float) -> int:
        return min(width - 1, max(0, round((x - x_lo) / (x_hi - x_lo) * (width - 1))))

    def to_row(y: float) -> int:
        frac = (y - y_lo) / (y_hi - y_lo)
        return min(height - 1, max(0, round((1.0 - frac) * (height - 1))))

    # Staircase first, so the point markers draw over it.
    cells = [(to_col(x), to_row(y)) for x, y in front]
    for (c0, r0), (c1, r1) in zip(cells, cells[1:]):
        for c in range(min(c0, c1) + 1, max(c0, c1)):
            grid[r0][c] = "─"  # horizontal run at the left point's level
        for r in range(min(r0, r1) + 1, max(r0, r1)):
            grid[r][c1] = "│"  # vertical drop onto the next point
    for x, y in cloud:
        grid[to_row(y)][to_col(x)] = "·"
    for c, r in cells:
        grid[r][c] = "#"

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:10.3g} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_lo:10.3g} ┤" + "".join(grid[-1]))
    lines.append(" " * 12 + "└" + "─" * width)
    lines.append(
        " " * 12 + f"{x_lo:<10.4g}" + " " * max(0, width - 20) + f"{x_hi:>10.4g}"
    )
    lines.append("   # = Pareto front   · = dominated")
    return "\n".join(lines) + "\n"


def ascii_flame(
    rows: Sequence[tuple[str, float, str]],
    *,
    width: int = 40,
    title: str = "",
) -> str:
    """Render ``(label, value, annotation)`` rows as proportional bars.

    Labels carry their own hierarchy (indentation supplied by the
    caller); each value is drawn as a ``█`` bar scaled so the largest
    row spans ``width`` characters, with the annotation printed after
    the bar — a flame-graph squashed to one row per aggregate.
    """
    if not rows:
        return f"{title}\n(no data)\n"
    top = max(value for _, value, _ in rows)
    if top <= 0:
        top = 1.0
    label_w = max(len(label) for label, _, _ in rows)
    lines = []
    if title:
        lines.append(title)
    for label, value, note in rows:
        bar = "█" * max(1 if value > 0 else 0, round(value / top * width))
        lines.append(f"  {label:<{label_w}} {bar:<{width}} {note}")
    return "\n".join(lines) + "\n"
