"""The ``repro.*`` logging namespace.

All diagnostic output from the CLI and the campaign engine flows
through loggers under the root ``"repro"`` logger configured here:

* records at WARNING and above go to **stderr** (engine retry /
  quarantine / timeout diagnostics — CI smoke steps grep these);
* records below WARNING go to **stdout** (the CLI's ``[cache]`` /
  ``[export]`` status lines — CLI tests parse these byte for byte).

Both handlers resolve their stream *at emit time* (the same trick as
``logging._StderrHandler``), so pytest's ``capsys`` captures records
exactly like the bare ``print(..., file=sys.stderr)`` calls they
replaced.  ``propagate`` is off: pytest's root-logger capture handler
must not swallow (or duplicate) output that tests assert on the real
streams.

Levels map to the CLI flags: default INFO, ``--verbose`` DEBUG,
``--quiet`` WARNING (status lines off, diagnostics still on).
"""

from __future__ import annotations

import logging
import sys

__all__ = ["configure", "get_logger"]

_ROOT = "repro"


class _DynamicStreamHandler(logging.StreamHandler):
    """StreamHandler bound to ``sys.stderr``/``sys.stdout`` by name, not
    by object, so stream replacement (pytest capsys) is honoured."""

    def __init__(self, stream_name: str):
        logging.Handler.__init__(self)
        self._stream_name = stream_name

    @property
    def stream(self):
        return getattr(sys, self._stream_name)

    @stream.setter
    def stream(self, value):  # pragma: no cover - StreamHandler API only
        pass

    def emit(self, record):
        super().emit(record)
        self.flush()


class _BelowWarning(logging.Filter):
    def filter(self, record):
        return record.levelno < logging.WARNING


def _ensure_handlers() -> logging.Logger:
    logger = logging.getLogger(_ROOT)
    if not logger.handlers:
        fmt = logging.Formatter("%(message)s")
        err = _DynamicStreamHandler("stderr")
        err.setLevel(logging.WARNING)
        err.setFormatter(fmt)
        out = _DynamicStreamHandler("stdout")
        out.addFilter(_BelowWarning())
        out.setFormatter(fmt)
        logger.addHandler(err)
        logger.addHandler(out)
        logger.propagate = False
        logger.setLevel(logging.INFO)
    return logger


def configure(*, verbose: bool = False, quiet: bool = False) -> logging.Logger:
    """Attach the stdout/stderr handlers and set the namespace level.

    Idempotent on the handlers; the level follows the flags every call
    (default INFO).  Returns the root ``repro`` logger.
    """
    logger = _ensure_handlers()
    if verbose:
        logger.setLevel(logging.DEBUG)
    elif quiet:
        logger.setLevel(logging.WARNING)
    else:
        logger.setLevel(logging.INFO)
    return logger


def get_logger(name: str) -> logging.Logger:
    """Logger under the ``repro`` namespace, handlers guaranteed.

    ``name`` may already carry the ``repro.`` prefix or not:
    ``get_logger("engine")`` and ``get_logger("repro.engine")`` return
    the same logger.  Unlike :func:`configure` this never touches the
    level, so a library import can't undo the CLI's ``--quiet``.
    """
    _ensure_handlers()
    if name == _ROOT or name.startswith(_ROOT + "."):
        full = name
    else:
        full = f"{_ROOT}.{name}"
    return logging.getLogger(full)
