"""Deterministic random-number plumbing.

Every stochastic component of the library (workload generators, the batch
shuffle optimisation, experiment campaigns) takes an explicit
:class:`numpy.random.Generator`.  Nothing in the library touches the global
numpy RNG state, which keeps experiments reproducible and parallelisable.

The helpers here normalise the many things callers like to pass as a "seed"
(nothing, an int, an existing generator) and derive independent child streams
for parallel runs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["make_rng", "spawn_rngs", "derive_rng"]

#: Library-wide default seed used when the caller wants determinism but does
#: not care about the particular value.
DEFAULT_SEED = 0x5E_ED


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a flexible ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh OS entropy), an ``int`` seed, or an existing
        generator (returned unchanged so callers can thread one stream
        through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    Uses :meth:`numpy.random.Generator.spawn`, so children are independent
    regardless of how many are drawn and in which order they are consumed.
    This is what the experiment runner uses to give every one of the 40 runs
    of a campaign its own stream.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    return make_rng(seed).spawn(n)


def derive_rng(seed: int | None, *keys: int | str) -> np.random.Generator:
    """Return a generator deterministically derived from ``seed`` and ``keys``.

    Unlike :func:`spawn_rngs` this is *stateless*: the same ``(seed, keys)``
    always yields the same stream, independent of any other derivation.  Used
    to key runs by ``(workload, n, replicate)`` so figures can be regenerated
    point-by-point.
    """
    material: list[int] = [DEFAULT_SEED if seed is None else int(seed)]
    for key in keys:
        if isinstance(key, str):
            # Stable, platform-independent folding of the string into ints.
            material.extend(key.encode("utf-8"))
        else:
            material.append(int(key))
    return np.random.default_rng(np.random.SeedSequence(material))


def interleave_choice(rng: np.random.Generator, options: Sequence) -> object:
    """Pick one element of ``options`` uniformly (tiny convenience wrapper)."""
    if not options:
        raise ValueError("cannot choose from an empty sequence")
    return options[int(rng.integers(len(options)))]
