"""Shared-memory columnar staging for process fan-outs.

The process backend of :mod:`repro.experiments.engine` pickles each
worker's argument tuple.  For families whose tasks all reference the same
large columnar payload — a replay trace's five ``(n,)`` columns, an
instance's ``(n, m)`` time matrix — that means re-serialising megabytes
per task even though every worker reads the identical bytes.

:class:`SharedColumnar` fixes this at the transport layer: the dispatching
process copies the columns **once** into a ``multiprocessing.shared_memory``
block, and the object pickles as a tiny descriptor (block name + per-column
dtype/shape/offset).  Unpickling in a worker attaches to the block and
rebuilds the columns as zero-copy read-only views — no per-task array
bytes cross the pipe at all.

Ownership is explicitly one-sided:

* the **creator** owns the block and must call :meth:`SharedColumnar.destroy`
  once the fan-out has returned;
* **workers** only borrow it.  Attaching registers the segment with the
  worker's resource tracker (CPython gh-82300), which would try to unlink
  the creator's block when the worker exits — so the borrow is immediately
  deregistered.  Attached blocks are cached per process and stay mapped
  for the worker's lifetime (pool workers die with their pool), so a
  worker draining a chunk of tasks maps the block once, not per task.
"""

from __future__ import annotations

import atexit
from multiprocessing import resource_tracker, shared_memory

import numpy as np

__all__ = ["SharedColumnar"]

#: Column offsets are aligned so every dtype's natural alignment holds.
_ALIGN = 16

#: Per-process cache of borrowed segments, keyed by block name.
_ATTACHED: dict[str, "SharedColumnar"] = {}

#: Blocks this process *created* and has not destroyed yet.  The atexit
#: sweep unlinks whatever is left, so a dispatch that died between
#: creating a block and calling :meth:`SharedColumnar.destroy` — a worker
#: crash unwinding the fan-out, an exception between unpickle and attach
#: on the far side — cannot leak the segment past process exit.
_OWNED: dict[str, "SharedColumnar"] = {}


def _cleanup_owned() -> None:  # pragma: no cover - exercised via subprocess
    for obj in list(_OWNED.values()):
        try:
            obj.destroy()
        except Exception:
            pass


atexit.register(_cleanup_owned)


def _deregister_borrow(shm: shared_memory.SharedMemory) -> None:
    # SharedMemory(name=...) registers even a plain attach with the
    # resource tracker (gh-82300).  What that implies depends on whose
    # tracker the worker talks to:
    #
    # * ``spawn``: the worker runs its own tracker, and the attach-side
    #   registration would unlink the creator's block when the worker
    #   exits — deregister the borrow.
    # * ``fork`` / ``forkserver``: the tracker (and its registration set)
    #   is inherited from the creator, so the attach-side register is an
    #   idempotent set-add — and an unregister here would strip the
    #   *creator's* registration, making the tracker whine at exit.
    #   Leave it alone.
    try:
        import multiprocessing

        if multiprocessing.get_start_method(allow_none=True) == "spawn":
            resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker variants across versions
        pass


def _attach(name: str, specs: tuple) -> "SharedColumnar":
    """Worker-side reconstruction; the unpickle target of ``__reduce__``.

    Exception-safe: if anything fails between mapping the block and
    finishing the views (a worker dying mid-unpickle, a corrupt spec),
    the mapping is closed again before the error propagates — a
    half-attached borrow never outlives the call.
    """
    cached = _ATTACHED.get(name)
    if cached is not None:
        return cached
    shm = shared_memory.SharedMemory(name=name)
    try:
        _deregister_borrow(shm)
        obj = SharedColumnar.__new__(SharedColumnar)
        obj._shm = shm
        obj._specs = specs
        obj._owner = False
        obj._arrays = obj._build_views()
    except BaseException:
        shm.close()
        raise
    _ATTACHED[name] = obj
    return obj


class SharedColumnar:
    """Named read-only numpy columns in one shared-memory block.

    Built from a ``{name: array}`` mapping in the dispatching process;
    pickles as a descriptor and unpickles as zero-copy views over the
    attached block (see the module docstring for the lifetime contract).

    >>> cols = SharedColumnar({"xs": np.arange(4)})
    >>> cols.arrays["xs"].tolist()
    [0, 1, 2, 3]
    >>> cols.destroy()
    """

    __slots__ = ("_shm", "_specs", "_arrays", "_owner")

    def __init__(self, arrays: "dict[str, np.ndarray]") -> None:
        specs = []
        offset = 0
        for name, arr in arrays.items():
            offset = -(-offset // _ALIGN) * _ALIGN
            specs.append((name, arr.dtype.str, arr.shape, offset))
            offset += arr.nbytes
        self._shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        self._specs = tuple(specs)
        self._owner = True
        try:
            self._arrays = self._build_views()
            for name, view in self._arrays.items():
                # The write happens through a temporarily writable alias; the
                # exposed view itself is read-only on both sides.
                np.ndarray(view.shape, view.dtype, buffer=self._shm.buf,
                           offset=self._offset_of(name))[...] = arrays[name]
        except BaseException:
            self._arrays = {}
            self._shm.close()
            self._shm.unlink()
            raise
        _OWNED[self._shm.name] = self

    def _offset_of(self, name: str) -> int:
        for cname, _, _, off in self._specs:
            if cname == name:
                return off
        raise KeyError(name)  # pragma: no cover - internal misuse

    def _build_views(self) -> "dict[str, np.ndarray]":
        views = {}
        for name, dtype, shape, off in self._specs:
            view = np.ndarray(shape, dtype=dtype, buffer=self._shm.buf, offset=off)
            view.setflags(write=False)
            views[name] = view
        return views

    @property
    def arrays(self) -> "dict[str, np.ndarray]":
        """The named columns, as read-only views over the block."""
        return self._arrays

    def __reduce__(self):
        return (_attach, (self._shm.name, self._specs))

    def destroy(self) -> None:
        """Creator-side teardown: drop the views, close and unlink.

        Call once every worker result has been collected — attached
        workers keep their own mappings alive, the unlink only removes
        the name so the segment dies with the last mapping.  Idempotent:
        a second call (e.g. the atexit sweep after an explicit destroy,
        or cleanup racing a crashed worker's resource tracker) is a
        no-op rather than an error.
        """
        self._arrays = {}
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - an escaped view holds the map
            pass
        if self._owner:
            self._owner = False
            _OWNED.pop(self._shm.name, None)
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
