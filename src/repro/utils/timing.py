"""Wall-clock measurement helpers used by the Figure-7 timing experiment."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Stopwatch"]


@dataclass
class Stopwatch:
    """Accumulating stopwatch with context-manager ergonomics.

    Example
    -------
    >>> sw = Stopwatch()
    >>> with sw:
    ...     _ = sum(range(1000))
    >>> sw.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    laps: list[float] = field(default_factory=list)
    _started: float | None = None

    def start(self) -> "Stopwatch":
        if self._started is not None:
            raise RuntimeError("stopwatch already running")
        self._started = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._started is None:
            raise RuntimeError("stopwatch not running")
        lap = time.perf_counter() - self._started
        self._started = None
        self.elapsed += lap
        self.laps.append(lap)
        return lap

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def mean_lap(self) -> float:
        """Average lap duration (0.0 when no lap has completed)."""
        return self.elapsed / len(self.laps) if self.laps else 0.0
