"""Schedule visualisation (text Gantt charts and usage profiles)."""

from repro.viz.gantt import gantt_chart, usage_chart

__all__ = ["gantt_chart", "usage_chart"]
