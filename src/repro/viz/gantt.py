"""ASCII Gantt charts of schedules.

Renders a :class:`~repro.core.schedule.Schedule` as a processor-by-time
character grid, using the explicit processor assignment of
:meth:`Schedule.assign_processors` — so what is drawn is exactly what the
event-driven simulator would execute.  Useful in examples, debugging and
doctest-style documentation.

Each task is drawn with a single glyph (letters, then digits, cycling);
idle processor time is ``.``.  For wide schedules the time axis is scaled
to the requested width, so glyph boundaries are approximate at the edge of
a character cell — the criteria printed in the footer are exact.
"""

from __future__ import annotations

from repro.core.schedule import Schedule

__all__ = ["gantt_chart", "usage_chart"]

_GLYPHS = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"


def gantt_chart(schedule: Schedule, *, width: int = 78, max_procs: int = 40) -> str:
    """Render ``schedule`` as an ASCII Gantt chart.

    Parameters
    ----------
    schedule:
        Any feasible schedule.
    width:
        Number of character columns for the time axis.
    max_procs:
        Upper limit of processor rows to draw (large machines are
        truncated with an ellipsis row; the footer still reports full
        statistics).

    >>> from repro.core.schedule import Schedule
    >>> from repro.core.task import MoldableTask
    >>> s = Schedule(2)
    >>> _ = s.add(MoldableTask(0, [2.0, 1.0]), 0.0, 2)
    >>> print(gantt_chart(s, width=8))  # doctest: +SKIP
    """
    if width < 8:
        raise ValueError("width must be at least 8 characters")
    cmax = schedule.makespan()
    if cmax <= 0 or len(schedule) == 0:
        return "(empty schedule)\n"

    assignment = schedule.assign_processors()
    grid = [["."] * width for _ in range(schedule.m)]
    glyph_of: dict[int, str] = {}
    for idx, placement in enumerate(schedule):
        tid = placement.task.task_id
        glyph_of[tid] = _GLYPHS[idx % len(_GLYPHS)]
        c0 = int(placement.start / cmax * width)
        c1 = max(c0 + 1, int(placement.end / cmax * width))
        for proc in assignment[tid]:
            row = grid[proc]
            for c in range(c0, min(c1, width)):
                row[c] = glyph_of[tid]

    lines = []
    shown = min(schedule.m, max_procs)
    for proc in range(shown):
        lines.append(f"p{proc:<3} |" + "".join(grid[proc]))
    if shown < schedule.m:
        lines.append(f"     ... ({schedule.m - shown} more processors)")
    lines.append("     +" + "-" * width)
    lines.append(f"     0{'':{width - 12}}Cmax={cmax:.4g}")
    lines.append(
        f"tasks={len(schedule)}  sum w_i C_i={schedule.weighted_completion_sum():.4g}"
        f"  peak usage={schedule.max_usage()}/{schedule.m}"
    )
    return "\n".join(lines) + "\n"


def usage_chart(schedule: Schedule, *, width: int = 78, height: int = 10) -> str:
    """Render the processor-usage profile over time as a bar silhouette.

    The complement of this silhouette is the idle area the paper's
    administrator criterion wants small.
    """
    if width < 8 or height < 2:
        raise ValueError("chart too small")
    cmax = schedule.makespan()
    if cmax <= 0:
        return "(empty schedule)\n"
    # Sample usage at the midpoint of each column.
    samples = []
    placements = schedule.placements
    for col in range(width):
        t = (col + 0.5) / width * cmax
        usage = sum(p.allotment for p in placements if p.start <= t < p.end)
        samples.append(usage)

    lines = []
    for level in range(height, 0, -1):
        threshold = level / height * schedule.m
        row = "".join("#" if u >= threshold - 1e-12 else " " for u in samples)
        label = f"{threshold:5.0f} |" if level in (height, 1) else "      |"
        lines.append(label + row)
    lines.append("      +" + "-" * width)
    mean_u = sum(samples) / len(samples)
    lines.append(
        f"      0 .. Cmax={cmax:.4g}   mean usage {mean_u:.1f}/{schedule.m} processors"
    )
    return "\n".join(lines) + "\n"
