"""Synthetic workload generators reproducing §4.1 of the paper.

Four experimental workload families are used by the paper's figures:

* ``weakly_parallel`` — uniform(1, 10) sequential times, weakly parallel
  speedup profile (Figure 3);
* ``highly_parallel`` — uniform(1, 10) sequential times, highly parallel
  profile (Figure 4);
* ``mixed`` — 70% small tasks (gaussian around 1) that are weakly parallel
  and 30% large tasks (gaussian around 10) that are highly parallel
  (Figure 5);
* ``cirne`` — uniform(1, 10) sequential times with moldability from the
  Cirne–Berman model built on Downey's parametric speedup curves
  (Figure 6).

All of them draw task weights uniformly from [1, 10], as stated in §4.1
("task priority is a random value taken from an uniform distribution
between 1 and 10").

Real arrival streams enter through the columnar trace plane
(:mod:`repro.workloads.trace`): SWF archive logs loaded straight into
``(n,)`` column arrays, with pluggable moldability reconstruction lifting
each rigid logged job back to a moldable task.
"""

from repro.workloads.generator import WORKLOAD_KINDS, generate_workload
from repro.workloads.trace import (
    MOLDABILITY_MODELS,
    Trace,
    load_trace,
    synthesize_swf,
    trace_instance,
)
from repro.workloads.sequential import mixed_sequential_times, uniform_sequential_times
from repro.workloads.parallelism import (
    parallel_profile,
    parallel_task,
    truncated_gaussian,
)
from repro.workloads.cirne import cirne_task, downey_speedup

__all__ = [
    "WORKLOAD_KINDS",
    "generate_workload",
    "Trace",
    "load_trace",
    "trace_instance",
    "synthesize_swf",
    "MOLDABILITY_MODELS",
    "uniform_sequential_times",
    "mixed_sequential_times",
    "parallel_profile",
    "parallel_task",
    "truncated_gaussian",
    "downey_speedup",
    "cirne_task",
]
