"""Arrival-process generators: release-date patterns as a campaign axis.

The off-line generators of :mod:`repro.workloads.generator` produce
instances with all-zero release dates; the on-line policies only become
interesting — and the batch wrapper's ``2ρ`` argument only gets
stressed — when jobs *arrive over time*.  An :class:`ArrivalPattern`
turns an off-line instance into an on-line one by generating a release
date per job, deterministically from ``(pattern spec, task ids, times)``:

``none``
    All-zero releases — the off-line instance unchanged.
``poisson:<load>``
    Memoryless arrivals: exponential inter-arrival gaps scaled so the
    offered load (total minimal work area per unit time, relative to
    ``m`` machines) is ``load``.  ``load`` near 1 keeps the system
    critically busy; above 1 the backlog grows without bound.
``bursty:<bursts>[:<load>]``
    ``bursts`` synchronized waves evenly spread over the same span the
    Poisson pattern would use; each job joins a wave chosen by its
    splitmix64 hash.  The crash-test for batch policies: every wave
    lands as one huge batch.
``adversarial``
    The staircase adversary against batch-style policies: jobs sorted
    by decreasing best-case duration, each released just *before* the
    previous one could possibly finish.  Every job misses the running
    batch's cut, so a batching policy degenerates to one batch per job
    — the arrival process behind the ``2ρ`` lower-bound intuition.

Patterns parse from ``name[:param[:param]][@seed]`` specs
(:func:`parse_arrivals`) so campaigns sweep them as plain strings, and
every draw derives from :func:`repro.utils.rng.derive_rng` or the
splitmix64 job hash — bit-identical in any process, on any backend.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.instance import Instance
from repro.exceptions import ModelError
from repro.utils.rng import derive_rng

__all__ = [
    "ArrivalPattern",
    "PoissonArrivals",
    "BurstyArrivals",
    "AdversarialArrivals",
    "ARRIVAL_PATTERNS",
    "parse_arrivals",
    "generate_releases",
    "apply_arrivals",
]


def _arrival_span(instance: Instance, load: float) -> float:
    """Time span over which arrivals are spread for an offered ``load``.

    The minimal work area of job ``j`` is ``min_k k * p(j, k)``; spreading
    the total area over ``area / (m * load)`` time units makes the arrival
    process offer ``load`` machine-fractions of work per unit time.
    """
    times = np.asarray(instance.times_matrix, dtype=np.float64)
    ks = np.arange(1, instance.m + 1, dtype=np.float64)
    areas = np.min(np.where(np.isfinite(times), times * ks, np.inf), axis=1)
    total = float(areas[np.isfinite(areas)].sum())
    return total / (instance.m * load) if total > 0 else 0.0


def _best_durations(instance: Instance) -> np.ndarray:
    """Per-job best-case duration ``min_k p(j, k)`` (inf rows -> 0)."""
    times = np.asarray(instance.times_matrix, dtype=np.float64)
    best = np.min(times, axis=1)
    return np.where(np.isfinite(best), best, 0.0)


class ArrivalPattern:
    """One arrival process: ``releases(instance) -> (n,) float array``.

    Subclasses set :attr:`name`, a canonical :attr:`spec` (the campaign
    cache identity) and implement :meth:`releases`.
    """

    name: str = "abstract"
    seed: int = 0

    @property
    def spec(self) -> str:
        raise NotImplementedError

    def releases(self, instance: Instance) -> np.ndarray:
        """Release dates for the instance's jobs, in row order."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.spec!r})"


@dataclass(frozen=True)
class ZeroArrivals(ArrivalPattern):
    """``none``: everything available at time 0 (the off-line setting)."""

    name = "none"
    seed: int = 0

    @property
    def spec(self) -> str:
        return "none"

    def releases(self, instance: Instance) -> np.ndarray:
        return np.zeros(instance.n)


@dataclass(frozen=True)
class PoissonArrivals(ArrivalPattern):
    """``poisson:<load>``: exponential gaps at offered load ``load``."""

    load: float = 0.9
    seed: int = 0
    name = "poisson"

    def __post_init__(self) -> None:
        if not self.load > 0:
            raise ModelError(f"poisson load must be > 0, got {self.load}")

    @property
    def spec(self) -> str:
        base = f"poisson:{self.load:g}"
        return f"{base}@{self.seed}" if self.seed else base

    def releases(self, instance: Instance) -> np.ndarray:
        n = instance.n
        if n == 0:
            return np.zeros(0)
        span = _arrival_span(instance, self.load)
        rng = derive_rng(self.seed, "arrivals", "poisson")
        gaps = rng.exponential(scale=span / n if n else 1.0, size=n)
        gaps[0] = 0.0  # anchor the first arrival at the time origin
        return np.cumsum(gaps)


@dataclass(frozen=True)
class BurstyArrivals(ArrivalPattern):
    """``bursty:<bursts>[:<load>]``: synchronized waves of arrivals."""

    bursts: int = 4
    load: float = 0.9
    seed: int = 0
    name = "bursty"

    def __post_init__(self) -> None:
        if self.bursts < 1:
            raise ModelError(f"need at least 1 burst, got {self.bursts}")
        if not self.load > 0:
            raise ModelError(f"bursty load must be > 0, got {self.load}")

    @property
    def spec(self) -> str:
        base = f"bursty:{self.bursts}:{self.load:g}"
        return f"{base}@{self.seed}" if self.seed else base

    def releases(self, instance: Instance) -> np.ndarray:
        from repro.workloads.trace import _hash_u01

        n = instance.n
        if n == 0:
            return np.zeros(0)
        span = _arrival_span(instance, self.load)
        wave_times = np.linspace(0.0, span, self.bursts)
        ids = np.ascontiguousarray(instance.task_ids, dtype=np.int64)
        u = _hash_u01(ids, salt=0xB57 + 0x9E37 * (self.seed + 1))
        wave = np.minimum((u * self.bursts).astype(np.int64), self.bursts - 1)
        return wave_times[wave]


@dataclass(frozen=True)
class AdversarialArrivals(ArrivalPattern):
    """``adversarial``: the staircase adversary against batching.

    Jobs are ordered by decreasing best-case duration; each is released
    a hair *before* the cumulative best-case completion of its
    predecessors, so under a batch policy every job arrives just after
    the previous batch was cut and waits a full batch length.
    """

    seed: int = 0
    name = "adversarial"

    #: Release fraction of the predecessor's earliest possible finish —
    #: strictly below 1 so the arrival *misses* the running batch's cut.
    margin: float = 0.999

    @property
    def spec(self) -> str:
        return "adversarial"

    def releases(self, instance: Instance) -> np.ndarray:
        n = instance.n
        if n == 0:
            return np.zeros(0)
        best = _best_durations(instance)
        # Decreasing duration, ids break ties: the longest job anchors the
        # staircase so every later arrival hides behind a running batch.
        order = np.lexsort((instance.task_ids, -best))
        stairs = self.margin * np.concatenate(([0.0], np.cumsum(best[order])[:-1]))
        releases = np.empty(n)
        releases[order] = stairs
        return releases


#: Pattern name -> factory of ``(params, seed)`` where ``params`` is the
#: (possibly empty) tuple of ``:``-separated arguments after the name.
ARRIVAL_PATTERNS = {
    "none": lambda params, seed: ZeroArrivals(),
    "poisson": lambda params, seed: PoissonArrivals(
        load=float(params[0]) if params else 0.9, seed=seed
    ),
    "bursty": lambda params, seed: BurstyArrivals(
        bursts=int(params[0]) if params else 4,
        load=float(params[1]) if len(params) > 1 else 0.9,
        seed=seed,
    ),
    "adversarial": lambda params, seed: AdversarialArrivals(seed=seed),
}


def parse_arrivals(spec: "str | ArrivalPattern") -> ArrivalPattern:
    """Resolve an arrival spec (``name[:param[:param]][@seed]``).

    >>> parse_arrivals("bursty:8:0.5").bursts
    8
    >>> parse_arrivals("none").spec
    'none'
    """
    if isinstance(spec, ArrivalPattern):
        return spec
    body, seed = spec, 0
    if "@" in body:
        body, seed_s = body.rsplit("@", 1)
        try:
            seed = int(seed_s)
        except ValueError:
            raise ModelError(f"arrival seed must be an int, got {spec!r}") from None
    parts = body.split(":")
    name, params = parts[0], tuple(parts[1:])
    try:
        factory = ARRIVAL_PATTERNS[name]
    except KeyError:
        raise ModelError(
            f"unknown arrival pattern {name!r}; available: "
            f"{', '.join(ARRIVAL_PATTERNS)}"
        ) from None
    try:
        return factory(params, seed)
    except (ValueError, IndexError):
        raise ModelError(f"bad arrival parameter in {spec!r}") from None


def generate_releases(
    instance: Instance, pattern: "str | ArrivalPattern"
) -> np.ndarray:
    """Release dates for ``instance`` under ``pattern`` (see module doc)."""
    return parse_arrivals(pattern).releases(instance)


def apply_arrivals(instance: Instance, pattern: "str | ArrivalPattern") -> Instance:
    """The on-line version of ``instance``: same jobs, generated releases."""
    model = parse_arrivals(pattern)
    if isinstance(model, ZeroArrivals):
        return instance
    return Instance.from_arrays(
        instance.times_matrix,
        instance.weights,
        model.releases(instance),
        instance.m,
        task_ids=instance.task_ids,
        validate=False,
    )
