"""Cirne–Berman moldable-job model (§4.1, second variant; paper ref [5]).

Cirne & Berman ("A model for moldable supercomputer jobs", IPDPS 2001) fit a
generative model of moldable jobs from a user survey.  A job's speedup curve
follows **Downey's parametric model** (Downey, "A model for speedup of
parallel programs", 1997), characterised by

* ``A`` — the *average parallelism* of the job, and
* ``sigma`` — the coefficient of variation of parallelism (how irregular
  the parallelism profile is; ``sigma = 0`` means perfectly linear speedup
  up to ``A`` processors, larger values bend the curve down earlier).

Downey's speedup on ``n`` processors:

for ``sigma <= 1``::

    S(n) = A n / (A + sigma (n - 1) / 2)              1 <= n <= A
    S(n) = A n / (sigma (A - 1/2) + n (1 - sigma/2))  A <= n <= 2A - 1
    S(n) = A                                          n >= 2A - 1

for ``sigma >= 1``::

    S(n) = n A (sigma + 1) / (sigma (n + A - 1) + A)  1 <= n <= A + A sigma - sigma
    S(n) = A                                          otherwise

Both branches satisfy ``S(1) = 1``, ``S`` non-decreasing and ``S(n)/n``
non-increasing, so the induced tasks are monotonic.

Parameter distributions.  The survey fit of Cirne–Berman draws the *log* of
``A`` uniformly (jobs span the whole range of parallelism on a log scale)
and ``sigma`` uniformly over a small interval.  We use ``log2(A) ~
U(0, log2(m))`` and ``sigma ~ U(0, 2)``; the substitution is recorded in
DESIGN.md.  The SPAA'04 paper combines this with uniform(1, 10) sequential
times ("Only the uniform(1, 10) sequential time model is used for these
tasks").
"""

from __future__ import annotations

import numpy as np

from repro.core.task import MoldableTask
from repro.utils.rng import make_rng

__all__ = ["downey_speedup", "sample_downey_params", "cirne_task"]

#: Upper bound of the uniform sigma distribution.
SIGMA_HIGH = 2.0


def downey_speedup(n: np.ndarray | float, A: float, sigma: float) -> np.ndarray:
    """Downey's speedup ``S(n)`` for average parallelism ``A`` and ``sigma``.

    Vectorised over ``n`` (floats accepted).  ``A >= 1`` and ``sigma >= 0``
    are required; ``A = 1`` yields ``S ≡ 1`` (a sequential job).
    """
    if A < 1:
        raise ValueError(f"average parallelism A must be >= 1, got {A}")
    if sigma < 0:
        raise ValueError(f"sigma must be >= 0, got {sigma}")
    n_arr = np.asarray(n, dtype=np.float64)
    out = np.empty_like(n_arr)
    if sigma <= 1.0:
        low = n_arr <= A
        mid = (n_arr > A) & (n_arr <= 2 * A - 1)
        high = n_arr > 2 * A - 1
        # sigma == 0 degenerates to linear speedup capped at A.
        out[low] = A * n_arr[low] / (A + sigma * (n_arr[low] - 1) / 2.0)
        out[mid] = A * n_arr[mid] / (sigma * (A - 0.5) + n_arr[mid] * (1 - sigma / 2.0))
        out[high] = A
    else:
        knee = A + A * sigma - sigma
        low = n_arr <= knee
        out[low] = (
            n_arr[low] * A * (sigma + 1) / (sigma * (n_arr[low] + A - 1) + A)
        )
        out[~low] = A
    # Guard against floating-point dips below 1 near n = 1.
    return np.maximum(out, 1.0) if out.ndim else max(float(out), 1.0)


def sample_downey_params(
    rng: np.random.Generator | int | None, m: int
) -> tuple[float, float]:
    """Draw ``(A, sigma)`` from the Cirne–Berman-style distributions.

    ``log2(A) ~ U(0, log2(m))`` and ``sigma ~ U(0, 2)``.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    rng = make_rng(rng)
    log2_a = rng.uniform(0.0, np.log2(max(m, 2)))
    a = float(2.0**log2_a)
    sigma = float(rng.uniform(0.0, SIGMA_HIGH))
    return a, sigma


def cirne_task(
    rng: np.random.Generator | int | None,
    task_id: int,
    seq_time: float,
    m: int,
    weight: float = 1.0,
) -> MoldableTask:
    """A moldable task with a Downey speedup curve and CB-sampled parameters.

    ``p(k) = seq_time / S(k)``; the result is monotonised to erase any
    floating-point wrinkles at the branch boundaries of the speedup model.
    """
    if seq_time <= 0:
        raise ValueError(f"sequential time must be positive, got {seq_time}")
    rng = make_rng(rng)
    A, sigma = sample_downey_params(rng, m)
    ks = np.arange(1, m + 1, dtype=np.float64)
    times = seq_time / downey_speedup(ks, A, sigma)
    return MoldableTask(task_id, times, weight=weight).monotonized()
