"""Columnar (array-plane) workload generation.

The object builders in :mod:`repro.workloads.generator` construct one
:class:`~repro.core.task.MoldableTask` at a time: per task, one or more RNG
calls, a fresh time vector, and full per-object validation.  At campaign
scale (§4: hundreds of instances per family, swept over ``n`` and ``m``)
that Python-level loop dominates the setup cost — the scheduling kernels
themselves only ever consume the dense ``(n, m)`` matrix the
:class:`~repro.core.instance.Instance` re-packs those objects into.

This module generates the matrix *directly*: one ``(n, m)`` processing-time
array and one ``(n,)`` weight vector per instance, produced by batched
NumPy RNG calls and handed zero-copy to :meth:`Instance.from_arrays`.
Large intermediates live in a thread-local scratch pool reused across
instances, so a campaign's generation loop stops paying allocation and
page-fault costs per instance.

Bit-for-bit contract
--------------------
The columnar builders are not merely statistically equivalent to the object
builders — they consume the *identical* RNG stream and leave the generator
in the *identical* final state.  Every schedule, golden, differential
oracle, and downstream draw (e.g. the on-line evaluation's release dates,
drawn from the same generator after the instance) is therefore unchanged.
Two NumPy facts make this possible:

* **Batching equivalence** — ``Generator.standard_normal``/``random`` fill
  values sequentially from the bit stream, so one call of size ``a + b``
  yields exactly the concatenation of calls of size ``a`` and ``b``; and
  ``normal(loc, scale, k)`` equals ``loc + scale * standard_normal(k)``
  bitwise (same for ``uniform`` / scaled ``random``).
* **State restore** — ``rng.bit_generator.state`` can be checkpointed and
  restored, so a builder may over-draw into a scratch buffer, compute how
  much the object path would have consumed, and then re-draw exactly that
  many values to land on the same final state.  Draws are chunked with a
  snapshot per chunk, so that final replay only re-draws a partial chunk.

Rejection sampling without the per-task loop
--------------------------------------------
The recurrence families redraw out-of-range gaussians per task
(:func:`~repro.workloads.parallelism.truncated_gaussian`), which interleaves
data-dependent draw counts into the stream.  The key accounting fact: every
*accepted* value permanently fills one of the task's ``width`` slots, so a
task's consumption ends exactly at its ``width``-th accepted value.  With
``pos`` the sorted stream positions of accepted values, task ``i``'s block
therefore starts at ``pos[i * width - 1] + 1`` — fully vectorised when all
tasks share one gaussian centre, and O(1) per task otherwise.  Slot
placement then replays the rejection *rounds* of the seed sampler globally
across all tasks (each round one shrinking scatter), instead of per task.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.workloads.parallelism import (
    HIGHLY_PARALLEL_MEAN,
    PROFILE_STD,
    WEAKLY_PARALLEL_MEAN,
    _MAX_RESAMPLE_ROUNDS,
    truncated_gaussian,
)
from repro.workloads.sequential import mixed_sequential_times, uniform_sequential_times

__all__ = [
    "columnar_workload",
    "COLUMNAR_FAMILIES",
    "batched_truncated_gaussian",
    "WEIGHT_LOW",
    "WEIGHT_HIGH",
]

#: Weight distribution of §4.1: uniform between 1 and 10 for every family.
#: Single source of truth — the object builders in ``generator.py`` draw
#: from the same constants, so the two paths cannot silently diverge.
WEIGHT_LOW, WEIGHT_HIGH = 1.0, 10.0

#: Truncation interval of the parallelism variable X (§4.1).
_LOW, _HIGH = 0.0, 1.0

_tls = threading.local()


def _scratch(name: str, size: int, dtype=np.float64, keep: int = 0) -> np.ndarray:
    """A reusable buffer of at least ``size`` elements (content undefined
    beyond ``keep``, which is preserved across a grow)."""
    pool = getattr(_tls, "pool", None)
    if pool is None:
        pool = _tls.pool = {}
    arr = pool.get(name)
    if arr is None or arr.dtype != dtype:
        arr = pool[name] = np.empty(max(size, 1024), dtype=dtype)
    elif arr.size < size:
        grown = np.empty(max(size, 2 * arr.size), dtype=dtype)
        if keep:
            grown[:keep] = arr[:keep]
        arr = pool[name] = grown
    return arr


# --------------------------------------------------------------------- #
# Stream-exact batched truncated gaussians                              #
# --------------------------------------------------------------------- #
def batched_truncated_gaussian(
    rng: np.random.Generator,
    means: np.ndarray,
    std: float,
    width: int,
    _out: np.ndarray | None = None,
) -> np.ndarray:
    """Rows of truncated gaussians, stream-identical to the per-task path.

    Row ``i`` reproduces, bit for bit, what
    ``truncated_gaussian(rng, means[i], std, size=width)`` would have
    produced had the ``n`` calls been made one after the other — and the
    generator is left in the same final state those calls would have left
    it in.

    Parameters
    ----------
    rng:
        The generator (consumed exactly as the sequential path would).
    means:
        ``(n,)`` gaussian centres, one per row (the mixed family pairs
        0.9 / 0.1 per task).
    std, width:
        Shared standard deviation and row width (``m - 1`` draws per task).
    """
    means = np.asarray(means, dtype=np.float64)
    n = means.size
    out = np.empty((n, width)) if _out is None else _out
    if n == 0 or width == 0:
        return out
    uniq = [float(x) for x in np.unique(means)]
    multi = len(uniq) > 1
    need = n * width

    # ---- draw + transform + accept, chunk by chunk ------------------- #
    # Acceptance is decided on the *transformed* value with the same float
    # ops as the seed sampler (mu + std * z, then the interval test), so
    # boundary ulps cannot diverge.  Rejection probability is ~0.31 for
    # the §4.1 centres (expected consumption 1.446x `need`); sizing the
    # first chunk just under that keeps the replayed tail small.
    states = [rng.bit_generator.state]
    bounds = [0]
    drawn = 0
    counts = {mu: 0 for mu in uniq}
    zbuf = np.empty(0)
    vbufs: dict[float, np.ndarray] = {}
    abufs: dict[float, np.ndarray] = {}

    def _draw_chunk(size: int) -> None:
        nonlocal drawn, zbuf
        end = drawn + size
        zbuf = _scratch("z", end, keep=drawn)
        rng.standard_normal(out=zbuf[drawn:end])
        z = zbuf[drawn:end]
        t = _scratch("cmp", size, np.bool_)[:size]
        for j, mu in enumerate(uniq):
            vb = vbufs[mu] = _scratch(f"v{j}", end, keep=drawn)
            ab = abufs[mu] = _scratch(f"a{j}", end, np.bool_, keep=drawn)
            v = vb[drawn:end]
            np.multiply(z, std, out=v)
            v += mu
            a = ab[drawn:end]
            np.greater_equal(v, _LOW, out=a)
            np.less_equal(v, _HIGH, out=t)
            np.logical_and(a, t, out=a)
            counts[mu] += int(np.count_nonzero(a))
        drawn = end
        bounds.append(drawn)
        states.append(rng.bit_generator.state)

    def _fallback() -> np.ndarray:
        """Pathological parameters (acceptance probability near zero, or a
        row exhausting the reference sampler's 128 resample rounds): rewind
        and run the reference sampler row by row.  Bit-exact by
        construction — the batched accounting assumes every row terminates
        through its width-th acceptance, which the reference's round cap
        and clip break."""
        rng.bit_generator.state = states[0]
        for i, mu in enumerate(means.tolist()):
            out[i] = truncated_gaussian(rng, mu, std, width)
        return out

    # The reference sampler consumes at most width * (1 + 128 rounds) per
    # row; a buffer past that bound with accepts still missing can only
    # mean rows that would hit the reference's clip path.
    max_drawn = need * (_MAX_RESAMPLE_ROUNDS + 1) + 256

    _draw_chunk(int(need * 1.42) + 128)
    starts = np.empty(n, dtype=np.int64)
    while True:
        # Necessary floor before trying the accounting: every row must be
        # able to find its width-th acceptance inside the buffer.
        if min(counts.values()) < need:
            if drawn >= max_drawn:
                return _fallback()
            _draw_chunk(max(need // 16, 1024))
            continue
        if not multi:
            pos = np.flatnonzero(abufs[uniq[0]][:drawn])
            starts[0] = 0
            if n > 1:
                starts[1:] = pos[np.arange(1, n, dtype=np.int64) * width - 1] + 1
            consumed = int(pos[need - 1]) + 1
            break
        accept_pos = {mu: np.flatnonzero(a[:drawn]) for mu, a in abufs.items()}
        cursor = 0
        for i, mu in enumerate(means.tolist()):
            starts[i] = cursor
            pos = accept_pos[mu]
            # Accepts before the cursor, then jump to the width-th after.
            # (Acceptances under the *other* centre sit in between, so the
            # index can overrun the buffer even past the floor above — in
            # that case draw more and redo the accounting.)
            k = int(np.searchsorted(pos, cursor, side="left")) + width - 1
            if k >= pos.size:
                cursor = -1
                break
            cursor = int(pos[k]) + 1
        if cursor >= 0:
            consumed = cursor
            break
        if drawn >= max_drawn:
            return _fallback()
        _draw_chunk(max(need // 16, 1024))
    states.pop()  # the state *after* the last chunk is never a rewind target

    # ---- round-0 placement: every row's first `width` stream values -- #
    idx = _scratch("idx", need, np.int64)[:need].reshape(n, width)
    np.add(starts[:, None], np.arange(width), out=idx)
    bad = _scratch("bad", need, np.bool_)[:need].reshape(n, width)
    if not multi:
        mu = uniq[0]
        np.take(vbufs[mu], idx, out=out)
        np.take(abufs[mu], idx, out=bad)
        np.logical_not(bad, out=bad)
    else:
        np.take(zbuf, idx, out=out)
        out *= std
        out += means[:, None]
        t2 = _scratch("cmp2", need, np.bool_)[:need].reshape(n, width)
        np.less(out, _LOW, out=bad)
        np.greater(out, _HIGH, out=t2)
        np.logical_or(bad, t2, out=bad)

    # ---- resample rounds, replayed globally -------------------------- #
    # In round r the seed sampler hands every still-bad slot (in slot
    # order) the row's next stream value; flat row-major coordinate order
    # is exactly that order, and the rank of a coordinate within its row
    # addresses the value inside the row's round block.
    flat = np.flatnonzero(bad.reshape(-1))
    rows = flat // width
    out_flat = out.reshape(-1)
    block_start = starts + width
    rounds = 0
    while rows.size and rounds < _MAX_RESAMPLE_ROUNDS:
        row_counts = np.bincount(rows, minlength=n)
        cum = np.empty(n, dtype=np.int64)
        cum[0] = 0
        np.cumsum(row_counts[:-1], out=cum[1:])
        positions = block_start[rows] + (np.arange(rows.size) - cum[rows])
        if not multi:
            newv = vbufs[uniq[0]][positions]
            still = ~abufs[uniq[0]][positions]
        else:
            newv = means[rows] + std * zbuf[positions]
            still = (newv < _LOW) | (newv > _HIGH)
        out_flat[flat] = newv
        block_start = block_start + row_counts
        rows, flat = rows[still], flat[still]
        rounds += 1
    if rows.size:
        # Some row hit the reference sampler's resample-round cap: its
        # clipped value and its stream consumption both differ from the
        # width-th-acceptance model, so replay the reference exactly.
        return _fallback()

    # ---- exact final state ------------------------------------------- #
    # Rewind to the snapshot of the chunk containing the consumption end
    # and re-draw only the part of it the sequential path would have used.
    last = int(np.searchsorted(bounds, consumed, side="right")) - 1
    last = min(last, len(states) - 1)
    rng.bit_generator.state = states[last]
    remainder = consumed - bounds[last]
    if remainder:
        rng.standard_normal(remainder)
    return out


def _weights(rng: np.random.Generator, n: int) -> np.ndarray:
    return rng.uniform(WEIGHT_LOW, WEIGHT_HIGH, size=n)


def _profile_times(
    rng: np.random.Generator, seq: np.ndarray, means: np.ndarray, m: int
) -> np.ndarray:
    """Recurrence-model ``(n, m)`` time matrix from batched X draws.

    Mirrors :func:`~repro.workloads.parallelism.parallel_profile` row by
    row: ``p(j) = p(j-1) * (X + j) / (1 + j)`` via a cumulative product.
    """
    n = seq.size
    xs = _scratch("xs", n * max(m - 1, 1))[: n * (m - 1)].reshape(n, m - 1)
    xs = batched_truncated_gaussian(rng, means, PROFILE_STD, m - 1, _out=xs)
    times = np.empty((n, m))
    times[:, 0] = seq
    if m > 1:
        js = np.arange(2, m + 1, dtype=np.float64)
        np.add(xs, js, out=xs)
        np.divide(xs, 1.0 + js, out=xs)  # (X + j) / (1 + j)
        np.cumprod(xs, axis=1, out=xs)
        np.multiply(seq[:, None], xs, out=times[:, 1:])
    return times


# --------------------------------------------------------------------- #
# Families                                                              #
# --------------------------------------------------------------------- #
def _cols_weakly(rng, n, m):
    seq = uniform_sequential_times(rng, n)
    w = _weights(rng, n)
    means = np.full(n, WEAKLY_PARALLEL_MEAN)
    return _profile_times(rng, seq, means, m), w


def _cols_highly(rng, n, m):
    seq = uniform_sequential_times(rng, n)
    w = _weights(rng, n)
    means = np.full(n, HIGHLY_PARALLEL_MEAN)
    return _profile_times(rng, seq, means, m), w


def _cols_mixed(rng, n, m):
    seq, is_small = mixed_sequential_times(rng, n)
    w = _weights(rng, n)
    means = np.where(is_small, WEAKLY_PARALLEL_MEAN, HIGHLY_PARALLEL_MEAN)
    return _profile_times(rng, seq, means, m), w


def _downey_speedup_rows(ks: np.ndarray, A: np.ndarray, sigma: np.ndarray) -> np.ndarray:
    """Vectorised Downey speedup for per-row ``(A, sigma)`` parameters.

    Same per-element formulas (and float-op order) as
    :func:`~repro.workloads.cirne.downey_speedup`; rows are split by sigma
    branch so each formula is only evaluated on the rows that use it
    (``sigma ~ U(0, 2)``, so each group is about half the instance).
    """
    n, m = A.size, ks.size
    out = _scratch("downey", n * m)[: n * m].reshape(n, m)
    le_rows = np.flatnonzero(sigma <= 1.0)
    gt_rows = np.flatnonzero(sigma > 1.0)
    if le_rows.size:
        A2 = A[le_rows, None]
        s2 = sigma[le_rows, None]
        num = A2 * ks
        with np.errstate(divide="ignore", invalid="ignore"):
            low = s2 * (ks - 1) / 2.0
            low += A2
            np.divide(num, low, out=low)
            mid = ks * (1 - s2 / 2.0)
            mid += s2 * (A2 - 0.5)
            np.divide(num, mid, out=mid)
        out[le_rows] = np.where(ks <= A2, low, np.where(ks <= 2 * A2 - 1, mid, A2))
    if gt_rows.size:
        A2 = A[gt_rows, None]
        s2 = sigma[gt_rows, None]
        with np.errstate(divide="ignore", invalid="ignore"):
            low = ks * A2 * (s2 + 1) / (s2 * (ks + A2 - 1) + A2)
        out[gt_rows] = np.where(ks <= A2 + A2 * s2 - s2, low, A2)
    return np.maximum(out, 1.0, out=out)


def _monotonize_rows(times: np.ndarray, ks: np.ndarray) -> np.ndarray:
    """Row-wise :meth:`MoldableTask.monotonized` (all-finite rows).

    The seed transform is a running minimum of times followed by a forward
    pass that lifts ``p(k)`` to ``prev_work / k`` whenever the work would
    decrease — and that ``prev_work`` is exactly the running maximum of the
    (post-minimum) work ``k * p(k)``, so both passes vectorise as
    accumulations.
    """
    t = np.minimum.accumulate(times, axis=1, out=times)
    n, m = t.shape
    work = _scratch("mono_w", n * m)[: n * m].reshape(n, m)
    np.multiply(ks, t, out=work)
    run_max = np.maximum.accumulate(work, axis=1)
    if m > 1:
        prev = run_max[:, :-1]
        fix = work[:, 1:] < prev
        np.copyto(t[:, 1:], prev / ks[1:], where=fix)
    return t


def _cols_cirne(rng, n, m):
    seq = uniform_sequential_times(rng, n)
    w = _weights(rng, n)
    # Per task: log2(A) ~ U(0, log2(max(m, 2))), sigma ~ U(0, 2) — two
    # scalar uniforms in the object path, i.e. exactly two stream doubles.
    draws = rng.random(2 * n).reshape(n, 2) if n else np.empty((0, 2))
    log2_a = np.log2(max(m, 2)) * draws[:, 0]
    # Python's float pow (the object path's `2.0 ** log2_a`) is not
    # bit-identical to np.power on every platform; n scalar pows are cheap.
    A = np.fromiter((2.0**v for v in log2_a.tolist()), dtype=np.float64, count=n)
    sigma = 2.0 * draws[:, 1]
    ks = np.arange(1, m + 1, dtype=np.float64)
    speedup = _downey_speedup_rows(ks, A, sigma)
    times = seq[:, None] / speedup
    return _monotonize_rows(times, ks), w


def _cols_sequential_only(rng, n, m):
    seq = uniform_sequential_times(rng, n)
    w = _weights(rng, n)
    times = np.repeat(seq[:, None], m, axis=1)
    return times, w


def _cols_linear(rng, n, m):
    seq = uniform_sequential_times(rng, n)
    w = _weights(rng, n)
    ks = np.arange(1, m + 1, dtype=np.float64)
    return seq[:, None] / ks, w


#: Family name -> columnar builder ``(rng, n, m) -> (times (n, m), weights)``.
#: Keys match :data:`repro.workloads.generator.WORKLOAD_KINDS`.
COLUMNAR_FAMILIES = {
    "weakly_parallel": _cols_weakly,
    "highly_parallel": _cols_highly,
    "mixed": _cols_mixed,
    "cirne": _cols_cirne,
    "sequential_only": _cols_sequential_only,
    "linear_speedup": _cols_linear,
}


def columnar_workload(
    kind: str, n: int, m: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """``(times (n, m), weights (n,))`` for workload family ``kind``.

    Consumes ``rng`` exactly as the object builders of
    :mod:`repro.workloads.generator` would (same values, same final state);
    see the module docstring for the contract and the mechanism.
    """
    try:
        family = COLUMNAR_FAMILIES[kind]
    except KeyError:
        raise ValueError(
            f"unknown workload kind {kind!r}; available: "
            f"{', '.join(COLUMNAR_FAMILIES)}"
        ) from None
    return family(rng, n, m)
