"""Top-level workload factory.

:func:`generate_workload` assembles complete :class:`~repro.core.instance.
Instance` objects for the four experimental families of §4.1 (plus a couple
of extra families useful for testing and ablation).  Everything is
deterministic given a seed.

Instances are produced on the columnar plane: the family builders of
:mod:`repro.workloads.columnar` emit the whole ``(n, m)`` time matrix and
weight vector with batched RNG calls, and the result is handed zero-copy
to :meth:`Instance.from_arrays`.  The original task-by-task builders are
kept as :func:`generate_workload_reference` — the columnar path consumes
the identical RNG stream (bit-for-bit equal instances, identical final
generator state; pinned by ``tests/workloads/test_columnar.py`` and the
golden corpus), so the two are interchangeable everywhere and the
reference doubles as the differential oracle.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.instance import Instance
from repro.core.task import MoldableTask, sequential_task
from repro.utils.rng import make_rng
from repro.workloads.cirne import cirne_task
from repro.workloads.columnar import (
    WEIGHT_HIGH,
    WEIGHT_LOW,
    _weights,
    columnar_workload,
)
from repro.workloads.parallelism import parallel_task
from repro.workloads.sequential import mixed_sequential_times, uniform_sequential_times

__all__ = ["generate_workload", "generate_workload_reference", "WORKLOAD_KINDS"]


def _weakly(rng: np.random.Generator, n: int, m: int) -> list[MoldableTask]:
    seq = uniform_sequential_times(rng, n)
    w = _weights(rng, n)
    return [parallel_task(rng, i, seq[i], m, "weakly", weight=w[i]) for i in range(n)]


def _highly(rng: np.random.Generator, n: int, m: int) -> list[MoldableTask]:
    seq = uniform_sequential_times(rng, n)
    w = _weights(rng, n)
    return [parallel_task(rng, i, seq[i], m, "highly", weight=w[i]) for i in range(n)]


def _mixed(rng: np.random.Generator, n: int, m: int) -> list[MoldableTask]:
    seq, is_small = mixed_sequential_times(rng, n)
    w = _weights(rng, n)
    return [
        parallel_task(
            rng, i, seq[i], m, "weakly" if is_small[i] else "highly", weight=w[i]
        )
        for i in range(n)
    ]


def _cirne(rng: np.random.Generator, n: int, m: int) -> list[MoldableTask]:
    seq = uniform_sequential_times(rng, n)
    w = _weights(rng, n)
    return [cirne_task(rng, i, seq[i], m, weight=w[i]) for i in range(n)]


def _sequential_only(rng: np.random.Generator, n: int, m: int) -> list[MoldableTask]:
    """Purely sequential jobs (no speedup at all) — a stress family for tests."""
    seq = uniform_sequential_times(rng, n)
    w = _weights(rng, n)
    return [sequential_task(i, seq[i], weight=w[i], m=m) for i in range(n)]


def _linear(rng: np.random.Generator, n: int, m: int) -> list[MoldableTask]:
    """Perfect linear speedup (constant work) — the paper's §3.1 extreme case
    where the minsum-optimal schedule is gang scheduling by increasing area."""
    seq = uniform_sequential_times(rng, n)
    w = _weights(rng, n)
    ks = np.arange(1, m + 1, dtype=np.float64)
    return [MoldableTask(i, seq[i] / ks, weight=w[i]) for i in range(n)]


_FAMILIES: dict[str, Callable[[np.random.Generator, int, int], list[MoldableTask]]] = {
    "weakly_parallel": _weakly,
    "highly_parallel": _highly,
    "mixed": _mixed,
    "cirne": _cirne,
    "sequential_only": _sequential_only,
    "linear_speedup": _linear,
}

#: Public names of the available workload families.  The first four are the
#: paper's experimental families (Figures 3-6), the last two are extra
#: stress/ablation families.
WORKLOAD_KINDS: tuple[str, ...] = tuple(_FAMILIES)


def generate_workload(
    kind: str,
    n: int,
    m: int,
    seed: int | np.random.Generator | None = None,
) -> Instance:
    """Generate an off-line instance of workload family ``kind``.

    Parameters
    ----------
    kind:
        One of :data:`WORKLOAD_KINDS`.
    n:
        Number of tasks (the paper sweeps 25..400).
    m:
        Number of processors (the paper uses 200).
    seed:
        Seed or generator for reproducibility.

    >>> inst = generate_workload("highly_parallel", n=10, m=16, seed=0)
    >>> inst.n, inst.m
    (10, 16)
    """
    if kind not in _FAMILIES:
        raise ValueError(
            f"unknown workload kind {kind!r}; available: {', '.join(WORKLOAD_KINDS)}"
        )
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    rng = make_rng(seed)
    times, weights = columnar_workload(kind, n, m, rng)
    return Instance.from_arrays(times, weights, m=m)


def generate_workload_reference(
    kind: str,
    n: int,
    m: int,
    seed: int | np.random.Generator | None = None,
) -> Instance:
    """The original task-by-task generation path (the columnar oracle).

    Same signature, same RNG stream, bit-for-bit identical instances as
    :func:`generate_workload`; kept for differential tests and as the
    baseline of the columnar-plane benchmarks.
    """
    try:
        family = _FAMILIES[kind]
    except KeyError:
        raise ValueError(
            f"unknown workload kind {kind!r}; available: {', '.join(WORKLOAD_KINDS)}"
        ) from None
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    rng = make_rng(seed)
    return Instance(family(rng, n, m), m)
