"""The paper's recurrence-based parallelism model (§4.1, first variant).

Successive processing times follow

    p_i(j) = p_i(j - 1) * (X + j) / (1 + j),       j = 2 .. m

where ``X`` is drawn in ``[0, 1]`` from a truncated gaussian with standard
deviation 0.2; draws outside ``[0, 1]`` are "ignored and recomputed"
(rejection sampling).  A fresh ``X`` is drawn for every step ``j`` of every
task, so profiles are irregular, just like measured speedup curves.

Which gaussian centre makes a task *highly* parallel?  The product of the
factors telescopes to ``p(m) ≈ p(1) · m^(E[X] - 1)``, i.e. a speedup of
``m^(1 - E[X])``:

* ``X`` centred on **0.1** → speedup ``≈ m^0.9`` — *quasi-linear*, the
  paper's definition of **highly parallel**;
* ``X`` centred on **0.9** → speedup ``≈ m^0.1`` — *close to 1*, the
  paper's definition of **weakly parallel**.

Note the paper's prose lists the centres in the opposite order
("respectively highly and weakly parallel are generated using gaussian
distribution centered on 0.9, and 0.1"), which contradicts the printed
formula: with the formula as published, a centre of 0.9 yields almost no
speedup.  We follow the *semantics* (highly parallel = quasi-linear
speedup, as stated in §4.1 and required for the Figure 3/4 discussion to
make sense) and therefore pair highly ← 0.1, weakly ← 0.9.  The same two
published constants are used, only their pairing is fixed; the choice is
recorded in DESIGN.md.

The recurrence generates *monotonic* tasks by construction: with
``X ∈ [0, 1]`` the factor ``(X + j)/(1 + j) ≤ 1`` makes times non-increasing,
and ``j · (X + j) ≥ (j - 1)(1 + j)`` makes the work ``j · p(j)``
non-decreasing — this is the paper's "according to the usual parallel
program behavior, this method generates monotonic tasks".
"""

from __future__ import annotations

import numpy as np

from repro.core.task import MoldableTask
from repro.utils.rng import make_rng

__all__ = [
    "truncated_gaussian",
    "parallel_profile",
    "parallel_task",
    "HIGHLY_PARALLEL_MEAN",
    "WEAKLY_PARALLEL_MEAN",
    "PROFILE_STD",
]

#: Gaussian centre of X for highly parallel tasks (speedup ~ m^0.9).
HIGHLY_PARALLEL_MEAN = 0.1
#: Gaussian centre of X for weakly parallel tasks (speedup ~ m^0.1).
WEAKLY_PARALLEL_MEAN = 0.9
#: Standard deviation of the X distribution (§4.1).
PROFILE_STD = 0.2

_MAX_RESAMPLE_ROUNDS = 128


def truncated_gaussian(
    rng: np.random.Generator | int | None,
    mean: float,
    std: float,
    size: int,
    low: float = 0.0,
    high: float = 1.0,
) -> np.ndarray:
    """Gaussian draws restricted to ``[low, high]`` by rejection sampling.

    Matches the paper's procedure: "any random value smaller than 0 and
    larger than 1 are ignored and recomputed".
    """
    if low > high:
        raise ValueError(f"empty truncation interval [{low}, {high}]")
    rng = make_rng(rng)
    out = rng.normal(mean, std, size=size)
    for _ in range(_MAX_RESAMPLE_ROUNDS):
        bad = (out < low) | (out > high)
        if not bad.any():
            return out
        out[bad] = rng.normal(mean, std, size=int(bad.sum()))
    return np.clip(out, low, high)  # pathological parameters only


def parallel_profile(
    rng: np.random.Generator | int | None,
    seq_time: float,
    m: int,
    mean_x: float,
    std_x: float = PROFILE_STD,
) -> np.ndarray:
    """Full processing-time vector from the recurrence model.

    Parameters
    ----------
    seq_time:
        ``p(1)``, drawn by one of the sequential models.
    m:
        Number of processors (vector length).
    mean_x, std_x:
        Parameters of the truncated gaussian for ``X``.

    Returns the ``(m,)`` vector ``p(1) .. p(m)``.
    """
    if seq_time <= 0:
        raise ValueError(f"sequential time must be positive, got {seq_time}")
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    rng = make_rng(rng)
    xs = truncated_gaussian(rng, mean_x, std_x, size=m - 1)
    js = np.arange(2, m + 1, dtype=np.float64)
    factors = (xs + js) / (1.0 + js)
    times = np.empty(m, dtype=np.float64)
    times[0] = seq_time
    times[1:] = seq_time * np.cumprod(factors)
    return times


def parallel_task(
    rng: np.random.Generator | int | None,
    task_id: int,
    seq_time: float,
    m: int,
    kind: str,
    weight: float = 1.0,
) -> MoldableTask:
    """Build a highly or weakly parallel :class:`MoldableTask`.

    ``kind`` is ``"highly"`` or ``"weakly"``.
    """
    if kind == "highly":
        mean = HIGHLY_PARALLEL_MEAN
    elif kind == "weakly":
        mean = WEAKLY_PARALLEL_MEAN
    else:
        raise ValueError(f"kind must be 'highly' or 'weakly', got {kind!r}")
    times = parallel_profile(rng, seq_time, m, mean_x=mean)
    return MoldableTask(task_id, times, weight=weight)
