"""Sequential processing-time models (§4.1, "two different sequential
workload types were used: uniform and mixed cases").

* Uniform: ``p_i(1) ~ U(1, 10)``.
* Mixed: two classes — *small* tasks from a gaussian centred on 1
  (sd 0.5) and *large* tasks from a gaussian centred on 10 (sd 5), with a
  70% share of small tasks.  Gaussian draws are resampled while
  non-positive, mirroring the paper's treatment of its truncated
  distributions ("any random value smaller than 0 ... are ignored and
  recomputed" — stated for the parallelism variable, applied equally here
  since a non-positive processing time is meaningless).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import make_rng

__all__ = ["uniform_sequential_times", "mixed_sequential_times"]

#: Smallest admissible sequential time; resampling is bounded by redrawing
#: values <= 0 (the gaussian tails make this rare, not unbounded in practice).
_MAX_RESAMPLE_ROUNDS = 64


def uniform_sequential_times(
    rng: np.random.Generator | int | None,
    n: int,
    low: float = 1.0,
    high: float = 10.0,
) -> np.ndarray:
    """``n`` sequential times drawn from ``U(low, high)``.

    Defaults match the paper: "sequential times were generated according to
    an uniform distribution, varying from 1 to 10".
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if not (0 < low <= high):
        raise ValueError(f"need 0 < low <= high, got low={low}, high={high}")
    rng = make_rng(rng)
    return rng.uniform(low, high, size=n)


def _positive_gaussian(
    rng: np.random.Generator, mean: float, std: float, n: int
) -> np.ndarray:
    """Gaussian draws resampled while ``<= 0`` (truncation by rejection)."""
    out = rng.normal(mean, std, size=n)
    for _ in range(_MAX_RESAMPLE_ROUNDS):
        bad = out <= 0
        if not bad.any():
            return out
        out[bad] = rng.normal(mean, std, size=int(bad.sum()))
    # Pathological parameters (e.g. mean << 0): clamp the stragglers so the
    # generator still terminates deterministically.
    return np.maximum(out, np.finfo(np.float64).tiny)


def mixed_sequential_times(
    rng: np.random.Generator | int | None,
    n: int,
    small_mean: float = 1.0,
    small_std: float = 0.5,
    large_mean: float = 10.0,
    large_std: float = 5.0,
    small_fraction: float = 0.7,
) -> tuple[np.ndarray, np.ndarray]:
    """Mixed small/large sequential times.

    Returns
    -------
    times:
        ``(n,)`` array of positive sequential times.
    is_small:
        ``(n,)`` boolean array flagging the small class.  The mixed
        workload couples this with parallelism: "the small tasks are weakly
        parallel and the large tasks are highly parallel" (§4.1).

    The class of each task is an independent Bernoulli(``small_fraction``)
    draw, so the realised share fluctuates around 70% exactly as a real
    submission mix would.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if not 0.0 <= small_fraction <= 1.0:
        raise ValueError(f"small_fraction must lie in [0, 1], got {small_fraction}")
    rng = make_rng(rng)
    is_small = rng.random(n) < small_fraction
    times = np.empty(n, dtype=np.float64)
    n_small = int(is_small.sum())
    times[is_small] = _positive_gaussian(rng, small_mean, small_std, n_small)
    times[~is_small] = _positive_gaussian(rng, large_mean, large_std, n - n_small)
    return times, is_small
