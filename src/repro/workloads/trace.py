"""Columnar trace plane: SWF archive logs as ``(n,)`` column arrays.

The paper's headline claim is that DEMT wrapped in the batch framework was
good enough to run as the *production* scheduler on Icluster2 — i.e. on
real arrival streams, not only the synthetic families of §4.1.  This
module opens that scenario class: any Parallel Workloads Archive log (or a
synthetic stand-in) becomes a replayable workload.

Three layers:

* :class:`Trace` / :func:`load_trace` — **columnar ingestion**.  An SWF
  log is parsed chunk-by-chunk straight into numpy columns (job ids,
  submit times, runtimes, processor counts).  The hot path is
  :func:`numpy.loadtxt`'s C tokenizer over chunks of data lines, with a
  per-line tolerant fallback (same semantics as
  :func:`repro.io.swf.read_swf`) for chunks containing short or irregular
  records — a million-job archive log never materialises one Python
  object per job.
* :data:`MOLDABILITY_MODELS` / :func:`reconstruct_times` — **moldability
  reconstruction**.  An SWF job is rigid (one ``(procs, run)`` point); the
  scheduler under study is moldable.  Each model lifts the logged point to
  a full processing-time vector using the library's speedup models
  (:mod:`repro.workloads.parallelism`'s recurrence, Downey's curves from
  :mod:`repro.workloads.cirne`), **anchored** so the logged point is
  reproduced exactly: ``times[i, procs_i - 1] == run_i`` bit for bit.
  Model parameters are derived from the job ids by a splitmix64 hash — no
  RNG, so reconstruction is a pure function of the trace (stable across
  windows, processes, and platforms).
* :func:`trace_instance` — hands the reconstructed ``(n, m)`` matrix
  zero-copy to :meth:`repro.core.instance.Instance.from_arrays`, with the
  submit times as release dates, producing the instance the on-line
  replay engine (:mod:`repro.experiments.replay`) consumes.

:func:`synthesize_swf` fabricates deterministic archive-style logs from
the Cirne–Berman workload model — CI-sized fixtures and scale benches
without shipping a real (privacy-encumbered) archive file.
"""

from __future__ import annotations

import hashlib
import io
import os
from typing import IO, Iterable

import numpy as np

from repro.core.instance import Instance
from repro.exceptions import ModelError
from repro.utils.rng import derive_rng
from repro.utils.shm import SharedColumnar
from repro.workloads.columnar import _downey_speedup_rows
from repro.workloads.generator import generate_workload
from repro.workloads.parallelism import (
    HIGHLY_PARALLEL_MEAN,
    PROFILE_STD,
    WEAKLY_PARALLEL_MEAN,
)

__all__ = [
    "Trace",
    "SharedTraceHandle",
    "resolve_trace",
    "load_trace",
    "parse_trace",
    "trace_instance",
    "reconstruct_times",
    "synthesize_swf",
    "MOLDABILITY_MODELS",
]

#: Data lines per parsing chunk.  Large enough that the C tokenizer
#: dominates, small enough that a chunk's line list stays cache-friendly.
_CHUNK_LINES = 65536

#: Columns of an SWF record consumed by the trace plane (0-based):
#: job_id, submit, wait, run, procs_used, procs_req.
_USECOLS = (0, 1, 2, 3, 4, 7)


class Trace:
    """A parsed workload trace in columnar form.

    All attributes are read-only numpy arrays of one value per *replayable*
    job (cancelled / failed records are dropped at load time):

    ``job_ids``
        ``(n,) int64`` — archive job identifiers, original order preserved
        (archives are normally submit-sorted, but out-of-order and
        non-contiguous ids are fine).
    ``submits`` / ``waits`` / ``runs``
        ``(n,) float64`` — submit time, logged wait, logged runtime.
    ``procs``
        ``(n,) int64`` — effective processor count: the recorded
        allocation (``procs_used``), falling back to the request
        (``procs_req``) when the log kept only one of the two.

    ``digest`` is a sha256 over the canonical column bytes — a
    content-addressed identity used to key replay cells, so the same jobs
    yield the same cache entries regardless of file path or comment
    formatting.  ``offset`` records where this trace starts inside the
    originally loaded log (0 for a full load; ``window()`` composes).
    """

    __slots__ = ("job_ids", "submits", "waits", "runs", "procs",
                 "digest", "offset", "max_procs")

    def __init__(
        self,
        job_ids: np.ndarray,
        submits: np.ndarray,
        waits: np.ndarray,
        runs: np.ndarray,
        procs: np.ndarray,
        *,
        digest: str | None = None,
        offset: int = 0,
        max_procs: int | None = None,
    ) -> None:
        self.job_ids = np.ascontiguousarray(job_ids, dtype=np.int64)
        self.submits = np.ascontiguousarray(submits, dtype=np.float64)
        self.waits = np.ascontiguousarray(waits, dtype=np.float64)
        self.runs = np.ascontiguousarray(runs, dtype=np.float64)
        self.procs = np.ascontiguousarray(procs, dtype=np.int64)
        n = self.job_ids.size
        for name in ("submits", "waits", "runs", "procs"):
            if getattr(self, name).shape != (n,):
                raise ModelError(
                    f"trace column {name!r} has shape {getattr(self, name).shape}, "
                    f"expected ({n},)"
                )
        for arr in (self.job_ids, self.submits, self.waits, self.runs, self.procs):
            arr.setflags(write=False)
        self.digest = self._column_digest() if digest is None else digest
        self.offset = int(offset)
        self.max_procs = None if max_procs is None else int(max_procs)

    def _column_digest(self) -> str:
        h = hashlib.sha256()
        for arr in (self.job_ids, self.submits, self.waits, self.runs, self.procs):
            h.update(arr.tobytes())
        return h.hexdigest()

    # ------------------------------------------------------------------ #
    # Basic queries                                                      #
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Number of replayable jobs."""
        return int(self.job_ids.size)

    def __len__(self) -> int:
        return self.n

    @property
    def span(self) -> float:
        """Arrival span ``max(submit) - min(submit)`` (0 for <= 1 job)."""
        if self.n <= 1:
            return 0.0
        return float(self.submits.max() - self.submits.min())

    def resolve_m(self, m: int | None = None) -> int:
        """The machine size to replay on: ``m`` if given, else the log's
        ``MaxProcs`` header, else the widest job.  The single policy every
        replay entry point shares."""
        if m is not None:
            return int(m)
        if self.max_procs is not None:
            return self.max_procs
        if self.n == 0:
            raise ModelError("cannot infer m from an empty trace without a MaxProcs header")
        return int(self.procs.max())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Trace(n={self.n}, digest={self.digest[:12]}, offset={self.offset}, "
            f"max_procs={self.max_procs})"
        )

    # ------------------------------------------------------------------ #
    # Derived traces                                                     #
    # ------------------------------------------------------------------ #
    def window(self, offset: int, count: int | None = None) -> "Trace":
        """Sub-trace of ``count`` jobs starting at row ``offset``.

        Shares the parent's column storage (views) and content digest; the
        window coordinates — not a re-hash — identify it, which is what
        the replay cell keys use (``digest + window + model``).
        """
        if offset < 0 or offset > self.n:
            raise ModelError(f"window offset {offset} outside [0, {self.n}]")
        stop = self.n if count is None else min(self.n, offset + count)
        return Trace(
            self.job_ids[offset:stop],
            self.submits[offset:stop],
            self.waits[offset:stop],
            self.runs[offset:stop],
            self.procs[offset:stop],
            digest=self.digest,
            offset=self.offset + offset,
            max_procs=self.max_procs,
        )

    def shifted(self, dt: float) -> "Trace":
        """Copy with every submit time shifted by ``dt`` (>= 0 preserved).

        The metamorphic expectation — a batch replay of the shifted trace
        is the original schedule shifted by ``dt`` — is pinned by the
        trace-replay test suite.
        """
        submits = self.submits + float(dt)
        if (submits < 0).any():
            raise ModelError(f"shift {dt} makes some submit times negative")
        return Trace(
            self.job_ids, submits, self.waits, self.runs, self.procs,
            offset=self.offset, max_procs=self.max_procs,
        )

    def scaled(self, factor: float) -> "Trace":
        """Copy with every time column scaled by ``factor > 0``."""
        if not factor > 0:
            raise ModelError(f"scale factor must be positive, got {factor}")
        return Trace(
            self.job_ids,
            self.submits * factor,
            self.waits * factor,
            self.runs * factor,
            self.procs,
            offset=self.offset,
            max_procs=self.max_procs,
        )


# --------------------------------------------------------------------- #
# Shared-memory shipping                                                #
# --------------------------------------------------------------------- #
def _trace_from_shared(shared: SharedColumnar, meta: tuple) -> Trace:
    """Worker-side reconstruction of a shipped trace (unpickle target).

    Builds a real :class:`Trace` over the block's zero-copy column views.
    The digest is **passed through**, not recomputed — rehashing megabyte
    columns in every worker would cancel the savings of sharing them.
    """
    digest, offset, max_procs = meta
    cols = shared.arrays
    return Trace(
        cols["job_ids"], cols["submits"], cols["waits"], cols["runs"],
        cols["procs"],
        digest=digest, offset=offset, max_procs=max_procs,
    )


class SharedTraceHandle:
    """Process-backend shipping proxy for a :class:`Trace`.

    Stages the five columns in one :class:`~repro.utils.shm.SharedColumnar`
    block; **pickles as that block's descriptor and unpickles as a real
    Trace** over zero-copy views, so workers are oblivious to the
    transport.  In-process consumers (the serial path, a single-task
    short-circuit) receive the handle itself un-pickled — unwrap with
    :func:`resolve_trace`.

    The dispatching family owns the block: call :meth:`release` once the
    fan-out has returned.
    """

    __slots__ = ("trace", "_shared", "_meta")

    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        self._shared = SharedColumnar(
            {
                "job_ids": trace.job_ids,
                "submits": trace.submits,
                "waits": trace.waits,
                "runs": trace.runs,
                "procs": trace.procs,
            }
        )
        self._meta = (trace.digest, trace.offset, trace.max_procs)

    def __reduce__(self):
        return (_trace_from_shared, (self._shared, self._meta))

    def release(self) -> None:
        """Tear the shared block down (creator side, after the fan-out)."""
        self._shared.destroy()


def resolve_trace(obj: "Trace | SharedTraceHandle") -> Trace:
    """The actual trace behind a worker argument, shipped or not."""
    return obj.trace if isinstance(obj, SharedTraceHandle) else obj


# --------------------------------------------------------------------- #
# Columnar ingestion                                                    #
# --------------------------------------------------------------------- #
def _parse_line_tolerant(line: str, lineno: int) -> tuple:
    """One SWF record -> ``_USECOLS`` values.

    Delegates to :func:`repro.io.swf.parse_swf_fields` — the *same*
    field-level tolerance rule the object parser applies, shared so the
    two paths cannot drift (status, the 7th value, is unused here).
    """
    from repro.io.swf import parse_swf_fields

    return parse_swf_fields(line, lineno)[:6]


def _parse_chunk(lines: list[str], linenos: list[int]) -> np.ndarray:
    """Parse one chunk of data lines into an ``(n_chunk, 6)`` float array.

    Fast path: :func:`numpy.loadtxt`'s C tokenizer over the whole chunk
    (well-formed archives have a uniform 18 fields per line).  Chunks with
    ragged records fall back to a per-line parse with exactly the
    tolerance of :func:`repro.io.swf.read_swf`; ``linenos`` carries each
    data line's position in the *file* (comments included), so fallback
    errors point at the actual offending line.
    """
    try:
        return np.loadtxt(lines, dtype=np.float64, usecols=_USECOLS,
                          comments=None, ndmin=2)
    except (ValueError, IndexError):
        rows = [
            _parse_line_tolerant(line, lineno)
            for line, lineno in zip(lines, linenos)
        ]
        return np.array(rows, dtype=np.float64).reshape(len(rows), 6)


def parse_trace(lines: Iterable[str]) -> Trace:
    """Build a :class:`Trace` from an iterable of SWF lines (chunked).

    Comment lines are scanned for the ``; MaxProcs: N`` header (the
    machine size the log was recorded on); data lines are parsed in
    chunks of :data:`_CHUNK_LINES` through the columnar fast path.
    Cancelled / failed records (non-positive runtime, or neither
    ``procs_used`` nor ``procs_req`` positive) are dropped, exactly as the
    object parser does.
    """
    chunks: list[np.ndarray] = []
    pending: list[str] = []
    pending_linenos: list[int] = []
    max_procs: int | None = None
    for lineno, raw in enumerate(lines, start=1):
        line = raw.lstrip("\ufeff").strip()
        if not line:
            continue
        if line.startswith(";"):
            if max_procs is None:
                body = line[1:].strip()
                if body.lower().startswith("maxprocs:"):
                    try:
                        max_procs = int(float(body.split(":", 1)[1]))
                    except ValueError:
                        pass
            continue
        pending.append(line)
        pending_linenos.append(lineno)
        if len(pending) >= _CHUNK_LINES:
            chunks.append(_parse_chunk(pending, pending_linenos))
            pending, pending_linenos = [], []
    if pending:
        chunks.append(_parse_chunk(pending, pending_linenos))

    if chunks:
        data = np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
    else:
        data = np.empty((0, 6))
    raw_ids = data[:, 0]
    bad_ids = ~np.isfinite(raw_ids) | (raw_ids != np.floor(raw_ids))
    if bad_ids.any():
        raise ModelError(f"non-integer SWF job id {float(raw_ids[bad_ids][0])!r}")
    job_ids = raw_ids.astype(np.int64)
    # fmax, not maximum: a NaN submit/wait clamps to 0 exactly like the
    # object parser's `max(0.0, x)` (np.maximum would propagate the NaN).
    submits = np.fmax(data[:, 1], 0.0)
    waits = np.fmax(data[:, 2], 0.0)
    runs = data[:, 3]
    # Non-finite processor fields count as missing (-1), like read_swf.
    procs_used = np.where(np.isfinite(data[:, 4]), data[:, 4], -1.0).astype(np.int64)
    procs_req = np.where(np.isfinite(data[:, 5]), data[:, 5], -1.0).astype(np.int64)
    procs = np.where(procs_used > 0, procs_used, procs_req)
    keep = (runs > 0) & (procs > 0)
    if not keep.all():
        job_ids, submits, waits, runs, procs = (
            job_ids[keep], submits[keep], waits[keep], runs[keep], procs[keep]
        )
    if (job_ids < 0).any():
        bad = job_ids[job_ids < 0][0]
        raise ModelError(f"negative SWF job id {int(bad)}")
    return Trace(job_ids, submits, waits, runs, procs, max_procs=max_procs)


def load_trace(source: "str | os.PathLike | IO[str]") -> Trace:
    """Load an SWF log into a :class:`Trace`.

    ``source`` may be a file path, SWF text, or an open text stream.  A
    string is treated as a path when it names an existing file or could
    plausibly be one (no newline, no inline whitespace, and not shaped
    like a path — no separator, no ``.swf`` suffix) — so a one-record
    log without a trailing newline still parses as text, while a typo'd
    or missing path surfaces ``FileNotFoundError`` instead of a
    confusing parse error.  File contents are streamed — the whole log
    is never held as one string.
    """
    if hasattr(source, "read"):
        return parse_trace(iter(source))
    if isinstance(source, os.PathLike):
        path = os.fspath(source)
    elif isinstance(source, str):
        looks_like_path = (
            os.sep in source
            or (os.altsep is not None and os.altsep in source)
            or source.endswith(".swf")
        )
        is_text = "\n" in source or (
            not os.path.exists(source)
            and not looks_like_path
            and len(source.split()) > 1
        )
        if is_text:
            return parse_trace(io.StringIO(source))
        path = source
    else:
        raise TypeError(f"source must be a path, SWF text, or stream, got {source!r}")
    with open(path, "r", encoding="utf-8") as fh:
        return parse_trace(fh)


# --------------------------------------------------------------------- #
# Moldability reconstruction                                            #
# --------------------------------------------------------------------- #
def _hash_u01(job_ids: np.ndarray, salt: int) -> np.ndarray:
    """Deterministic uniforms in ``[0, 1)`` from job ids (splitmix64).

    The replacement for an RNG: reconstruction parameters become a pure
    function of ``(job_id, model)``, bit-stable across windows, processes,
    and platforms, and two jobs with the same id (e.g. the same job seen
    in two windows) always get the same speedup curve.
    """
    # Salt folding happens in Python ints (arbitrary precision) and is
    # masked to 64 bits before entering numpy: scalar uint64 overflow
    # warns, array overflow wraps silently — only the arrays may wrap.
    offset = (0x9E3779B97F4A7C15 * (salt + 1)) & 0xFFFFFFFFFFFFFFFF
    z = job_ids.astype(np.uint64) + np.uint64(offset)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    z = z ^ (z >> np.uint64(31))
    return (z >> np.uint64(11)).astype(np.float64) * float(2.0**-53)


def _truncated_gaussian_icdf(
    u: np.ndarray, mean: float, std: float, low: float = 0.0, high: float = 1.0
) -> np.ndarray:
    """Map uniforms through the truncated-gaussian inverse CDF.

    The deterministic counterpart of
    :func:`repro.workloads.parallelism.truncated_gaussian`: same
    distribution, no rejection loop, no RNG.
    """
    from scipy.special import ndtr, ndtri

    a = ndtr((low - mean) / std)
    b = ndtr((high - mean) / std)
    x = mean + std * ndtri(a + u * (b - a))
    return np.clip(x, low, high)


def _model_rigid(trace: Trace, m: int, kp: np.ndarray) -> np.ndarray:
    """No reconstruction: the job runs at its logged width, nowhere else."""
    times = np.full((trace.n, m), np.inf)
    return times


def _model_linear(trace: Trace, m: int, kp: np.ndarray) -> np.ndarray:
    """Perfect linear speedup through the logged point (constant work)."""
    ks = np.arange(1, m + 1, dtype=np.float64)
    return trace.runs[:, None] * (kp.astype(np.float64)[:, None] / ks)


def _model_downey(trace: Trace, m: int, kp: np.ndarray) -> np.ndarray:
    """Downey curves with ``A = logged width``, hash-derived ``sigma``.

    The logged allocation is the one point of the job's real speedup curve
    the archive kept; taking it as the average parallelism ``A`` couples
    the reconstructed curve to the job's actual size, and the
    Cirne–Berman ``sigma ~ U(0, 2)`` spread comes from the id hash.
    ``p(k) = run * S(kp) / S(k)`` — at ``k = kp`` the ratio is exactly 1.
    """
    n = trace.n
    ks = np.arange(1, m + 1, dtype=np.float64)
    A = kp.astype(np.float64)
    sigma = 2.0 * _hash_u01(trace.job_ids, salt=0xD0E)
    speedup = _downey_speedup_rows(ks, A, sigma)
    s_at_kp = speedup[np.arange(n), kp - 1]
    return trace.runs[:, None] * (s_at_kp[:, None] / speedup)


def _recurrence_times(trace: Trace, m: int, kp: np.ndarray, mean: float, salt: int) -> np.ndarray:
    """The §4.1 recurrence profile through the logged point.

    One parallelism variable ``X`` per job (hash-derived from the
    truncated gaussian the paper draws it from), profile
    ``u(j) = u(j-1) (X + j) / (1 + j)`` normalised to the logged width:
    ``p(k) = run * u(k) / u(kp)``.
    """
    n = trace.n
    x = _truncated_gaussian_icdf(_hash_u01(trace.job_ids, salt), mean, PROFILE_STD)
    u = np.empty((n, m))
    u[:, 0] = 1.0
    if m > 1:
        js = np.arange(2, m + 1, dtype=np.float64)
        factors = (x[:, None] + js) / (1.0 + js)
        np.cumprod(factors, axis=1, out=u[:, 1:])
    u_at_kp = u[np.arange(n), kp - 1]
    return trace.runs[:, None] * (u / u_at_kp[:, None])


def _model_recurrence_highly(trace: Trace, m: int, kp: np.ndarray) -> np.ndarray:
    return _recurrence_times(trace, m, kp, HIGHLY_PARALLEL_MEAN, salt=0x41)


def _model_recurrence_weakly(trace: Trace, m: int, kp: np.ndarray) -> np.ndarray:
    return _recurrence_times(trace, m, kp, WEAKLY_PARALLEL_MEAN, salt=0x42)


#: Moldability model name -> builder ``(trace, m, kp) -> (n, m) times``.
#: Every model is RNG-free and anchored: row ``i`` reproduces the logged
#: ``(procs_i, run_i)`` point bit-for-bit (enforced centrally in
#: :func:`reconstruct_times`, so a new model cannot regress the contract).
MOLDABILITY_MODELS = {
    "rigid": _model_rigid,
    "linear": _model_linear,
    "downey": _model_downey,
    "recurrence-highly": _model_recurrence_highly,
    "recurrence-weakly": _model_recurrence_weakly,
}


def reconstruct_times(trace: Trace, m: int, model: str = "rigid") -> np.ndarray:
    """``(n, m)`` processing-time matrix for ``trace`` under ``model``.

    Widths beyond the machine are clamped (``kp = min(procs, m)``, the
    archive convention for replaying a log on a smaller machine) and the
    anchor ``times[i, kp_i - 1] = run_i`` is enforced by direct assignment
    after the model builds its matrix — exactness is a property of the
    plane, not of each model's float arithmetic.
    """
    if m < 1:
        raise ModelError(f"m must be >= 1, got {m}")
    try:
        builder = MOLDABILITY_MODELS[model]
    except KeyError:
        raise ModelError(
            f"unknown moldability model {model!r}; available: "
            f"{', '.join(MOLDABILITY_MODELS)}"
        ) from None
    kp = np.minimum(trace.procs, m).astype(np.int64)
    times = builder(trace, m, kp)
    times[np.arange(trace.n), kp - 1] = trace.runs
    return times


def trace_instance(
    trace: Trace,
    m: int | None = None,
    model: str = "rigid",
    *,
    online: bool = True,
) -> Instance:
    """Build the replay :class:`Instance` for ``trace`` under ``model``.

    ``m`` defaults to the log's ``MaxProcs`` header, falling back to the
    widest job (:meth:`Trace.resolve_m`).  With ``online=True`` submit
    times become release dates.  Weights are 1 (SWF logs carry no
    priority weight).  The reconstructed matrix is handed zero-copy to
    :meth:`Instance.from_arrays`; task ids are the archive job ids (or
    row numbers if a concatenated log repeats ids).
    """
    m = trace.resolve_m(m)
    if trace.n and np.unique(trace.job_ids).size == trace.n:
        task_ids = trace.job_ids
    else:
        task_ids = np.arange(trace.n, dtype=np.int64)
    times = reconstruct_times(trace, m, model)
    return Instance.from_arrays(
        times,
        None,
        trace.submits if online else None,
        m,
        task_ids=task_ids,
        validate=False,
    )


# --------------------------------------------------------------------- #
# Synthetic archives                                                    #
# --------------------------------------------------------------------- #
def synthesize_swf(
    n: int,
    m: int,
    seed: int,
    *,
    load: float = 1.0,
    quirks: bool = False,
) -> str:
    """Deterministic archive-style SWF text from the Cirne–Berman model.

    Jobs are drawn from the columnar ``cirne`` workload; each "user"
    requests the width whose runtime is closest to twice the job's best
    runtime (a realistic over-allocation), and arrivals follow a Poisson
    process calibrated so the offered load is about ``load`` times the
    machine capacity.  Everything derives from ``seed`` via
    :func:`repro.utils.rng.derive_rng` — the same call always produces the
    same text, so fixtures regenerate reproducibly.

    ``quirks=True`` sprinkles in the malformed-record classes real
    archives contain — extra header metadata, a cancelled job (status 0,
    runtime ``-1``), a record with ``procs_used = -1`` (request only) —
    exercising the tolerant parse paths of both the columnar and the
    object loader.
    """
    if n < 1:
        raise ModelError(f"need at least one job, got n={n}")
    inst = generate_workload("cirne", n=n, m=m, seed=derive_rng(seed, "swf", n, m))
    times = inst.times_matrix
    best = times.min(axis=1)
    ks = np.argmin(np.abs(times - 2.0 * best[:, None]), axis=1) + 1
    runs = times[np.arange(n), ks - 1]

    rng = derive_rng(seed, "swf-arrivals", n, m)
    mean_work = float((runs * ks).mean())
    scale = mean_work / (m * max(load, 1e-9))
    submits = np.cumsum(rng.exponential(scale, size=n))

    lines = [
        "; synthetic SWF log (Cirne-Berman model, repro library)",
        f"; MaxProcs: {m}",
        f"; Jobs: {n}",
        f"; Seed: {seed}",
    ]
    if quirks:
        lines += ["; UnixStartTime: 0", ";", "; Note: contains archive quirks"]
    subs = [repr(v) for v in submits.tolist()]  # repr of Python floats: lossless
    runs_s = [repr(v) for v in runs.tolist()]
    for i in range(n):
        job_id, sub, k, run = i + 1, subs[i], int(ks[i]), runs_s[i]
        if quirks and job_id % 11 == 0:
            # Cancelled record: no runtime, status 0 — loaders must drop it.
            lines.append(f"{job_id} {sub} -1 -1 {k} -1 -1 {k} -1 -1 0 "
                         "-1 -1 -1 -1 -1 -1 -1")
            continue
        used = -1 if quirks and job_id % 13 == 0 else k
        lines.append(
            f"{job_id} {sub} -1 {run} {used} -1 -1 {k} {run} -1 1 "
            "-1 -1 -1 -1 -1 -1 -1"
        )
    return "\n".join(lines) + "\n"
