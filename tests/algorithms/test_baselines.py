"""Unit tests for the Gang, Sequential and List-Graham baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.dual_approx import dual_approximation
from repro.algorithms.gang import GangScheduler, schedule_gang
from repro.algorithms.list_graham import (
    LIST_ORDERINGS,
    ListGrahamScheduler,
    schedule_list_graham,
)
from repro.algorithms.registry import (
    ALGORITHM_REGISTRY,
    PAPER_ALGORITHMS,
    get_algorithm,
)
from repro.algorithms.sequential import SequentialScheduler, schedule_sequential
from repro.core.instance import Instance
from repro.core.task import MoldableTask, rigid_task
from repro.core.validation import validate_schedule
from repro.workloads.generator import generate_workload

from tests.conftest import make_instance


class TestGang:
    def test_sequentialises_machine(self):
        inst = make_instance(n=4, m=4, seq_time=8.0)
        s = schedule_gang(inst)
        validate_schedule(s, inst)
        # One task at a time: peak usage equals one task's allotment (m).
        assert s.max_usage() == 4
        starts = sorted(p.start for p in s)
        assert starts[0] == 0.0 and len(set(starts)) == 4

    def test_smith_order(self):
        # Equal durations on m: heavier weight first.
        tasks = [
            MoldableTask(0, [8.0, 4.0], weight=1.0),
            MoldableTask(1, [8.0, 4.0], weight=9.0),
        ]
        inst = Instance(tasks, 2)
        s = schedule_gang(inst)
        assert s[1].start == 0.0 and s[0].start == pytest.approx(4.0)

    def test_optimal_for_linear_speedup_minsum(self):
        """§4.1: 'This algorithm is optimal for instances with linear
        speedup.'  Verify against brute force on a tiny instance."""
        import itertools

        tasks = [
            MoldableTask(0, [6.0, 3.0], weight=2.0),
            MoldableTask(1, [4.0, 2.0], weight=5.0),
            MoldableTask(2, [2.0, 1.0], weight=1.0),
        ]
        inst = Instance(tasks, 2)
        gang = schedule_gang(inst).weighted_completion_sum()
        best = min(
            sum(
                t.weight * c
                for t, c in zip(
                    perm,
                    np.cumsum([t.p(2) for t in perm]),
                )
            )
            for perm in itertools.permutations(tasks)
        )
        assert gang == pytest.approx(best)

    def test_empty(self):
        assert len(schedule_gang(Instance([], 4))) == 0

    def test_task_with_short_vector_uses_fastest(self):
        t = MoldableTask(0, [8.0, 5.0])  # machine has 4 procs
        inst = Instance([t], 4)
        s = schedule_gang(inst)
        assert s[0].allotment == 2


class TestSequential:
    def test_one_processor_each(self):
        inst = make_instance(n=6, m=4, seq_time=5.0)
        s = schedule_sequential(inst)
        validate_schedule(s, inst)
        assert all(p.allotment == 1 for p in s)

    def test_lptf_order(self):
        tasks = [
            MoldableTask(0, [2.0]),
            MoldableTask(1, [9.0]),
            MoldableTask(2, [5.0]),
        ]
        inst = Instance(tasks, 1)
        s = schedule_sequential(inst)
        assert s[1].start == 0.0
        assert s[2].start == pytest.approx(9.0)
        assert s[0].start == pytest.approx(14.0)

    def test_balances_machines(self):
        # 4 equal tasks on 2 procs: two per processor.
        inst = make_instance(n=4, m=2, seq_time=3.0, speedup="none")
        s = schedule_sequential(inst)
        assert s.makespan() == pytest.approx(6.0)

    def test_rigid_task_fallback(self):
        t = rigid_task(0, procs=2, time=3.0, m=4)
        inst = Instance([t], 4)
        s = schedule_sequential(inst)
        validate_schedule(s, inst)
        assert s[0].allotment == 2


class TestListGraham:
    @pytest.mark.parametrize("ordering", LIST_ORDERINGS)
    def test_feasible_all_orderings(self, ordering):
        inst = generate_workload("mixed", n=30, m=16, seed=21)
        s = schedule_list_graham(inst, ordering)
        validate_schedule(s, inst)

    def test_unknown_ordering(self):
        with pytest.raises(ValueError):
            ListGrahamScheduler("random")

    def test_names_match_paper_legends(self):
        assert ListGrahamScheduler("shelf").name == "List Scheduling"
        assert ListGrahamScheduler("lptf").name == "LPTF"
        assert ListGrahamScheduler("saf").name == "SAF"

    def test_shared_dual_result_reused(self):
        inst = generate_workload("cirne", n=20, m=8, seed=22)
        dual = dual_approximation(inst)
        a = schedule_list_graham(inst, "saf", dual)
        b = ListGrahamScheduler("saf", dual).schedule(inst)
        assert a.makespan() == b.makespan()

    def test_allotments_come_from_dual(self):
        inst = generate_workload("highly_parallel", n=15, m=8, seed=23)
        dual = dual_approximation(inst)
        s = schedule_list_graham(inst, "lptf", dual)
        for p in s:
            assert p.allotment == dual.allotments[p.task.task_id]

    def test_saf_orders_by_area(self):
        # Two tasks, same weight; smaller area must start first when both
        # compete for the same processors.
        tasks = [
            MoldableTask(0, [9.0, 9.0], weight=1.0),  # area 9 on 1 proc
            MoldableTask(1, [2.0, 2.0], weight=1.0),  # area 2
        ]
        inst = Instance(tasks, 1)
        s = schedule_list_graham(inst, "saf")
        assert s[1].start < s[0].start

    def test_empty(self):
        assert len(schedule_list_graham(Instance([], 4))) == 0

    def test_makespan_ratio_below_2_on_paper_workloads(self):
        """§4.2: 'the allotment computed for list algorithms is quite good,
        as Cmax performance ratio of these algorithms is always smaller
        than 2'."""
        for kind in ("weakly_parallel", "highly_parallel", "mixed", "cirne"):
            inst = generate_workload(kind, n=50, m=32, seed=24)
            dual = dual_approximation(inst)
            for ordering in LIST_ORDERINGS:
                s = schedule_list_graham(inst, ordering, dual)
                assert s.makespan() / dual.lower_bound < 2.0


class TestRegistry:
    def test_all_paper_algorithms_registered(self):
        assert set(PAPER_ALGORITHMS) <= set(ALGORITHM_REGISTRY)

    def test_get_algorithm(self):
        for name in PAPER_ALGORITHMS:
            algo = get_algorithm(name)
            assert algo.name == name

    def test_get_algorithm_unknown(self):
        with pytest.raises(KeyError, match="unknown algorithm"):
            get_algorithm("RoundRobin")

    def test_fresh_instances(self):
        a, b = get_algorithm("DEMT"), get_algorithm("DEMT")
        assert a is not b

    @pytest.mark.parametrize("name", PAPER_ALGORITHMS)
    def test_registry_schedules_are_feasible(self, name):
        inst = generate_workload("mixed", n=25, m=16, seed=25)
        s = get_algorithm(name).schedule(inst)
        validate_schedule(s, inst)
