"""Unit tests for repro.algorithms.compaction."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.compaction import list_compaction, pull_forward, shelf_placement
from repro.algorithms.list_scheduling import ListItem
from repro.core.instance import Instance
from repro.core.validation import validate_schedule

from tests.conftest import make_task


def make_batches(m=4):
    """Two batches: [A(2x2), B(2x1)] then [C(4x3)] with windows at t=4, 8."""
    a = make_task(0, 4.0, m=m, speedup="none")
    b = make_task(1, 4.0, m=m, speedup="none")
    c = make_task(2, 6.0, m=m, speedup="none")
    batch0 = [ListItem(a, 2), ListItem(b, 1)]
    batch1 = [ListItem(c, 3)]
    return [batch0, batch1], [4.0, 8.0]


class TestShelfPlacement:
    def test_tasks_start_at_batch_start(self):
        batches, starts = make_batches()
        s = shelf_placement(batches, starts, 4)
        assert s[0].start == 4.0 and s[1].start == 4.0
        assert s[2].start == 8.0

    def test_mismatched_lengths_rejected(self):
        batches, _ = make_batches()
        with pytest.raises(ValueError):
            shelf_placement(batches, [1.0], 4)

    def test_feasible(self):
        batches, starts = make_batches()
        tasks = [it.task for b in batches for it in b]
        inst = Instance(tasks, 4)
        validate_schedule(shelf_placement(batches, starts, 4), inst)


class TestPullForward:
    def test_everything_pulled_to_zero_when_room(self):
        batches, _ = make_batches()
        s = pull_forward(batches, 4)
        assert s[0].start == 0.0 and s[1].start == 0.0
        # C needs 3 procs; 2+1 busy until 4 -> starts at 4.
        assert s[2].start == pytest.approx(4.0)

    def test_no_overtaking(self):
        # Batch order [wide, narrow]: narrow may start with wide (both fit),
        # but if wide is delayed the narrow one must not start before it...
        # pull_forward preserves *placement* order yet allows earlier start
        # times when processors are genuinely free.  Construct a case where
        # overtaking would be possible and assert it does not happen.
        blocker = make_task(0, 8.0, m=4, speedup="none")  # 2 procs, [0, 8)
        wide = make_task(1, 4.0, m=4, speedup="none")  # needs 3 -> waits to 8
        narrow = make_task(2, 4.0, m=4, speedup="none")  # 1 proc, could start 0
        batches = [[ListItem(blocker, 2)], [ListItem(wide, 3), ListItem(narrow, 1)]]
        s = pull_forward(batches, 4)
        assert s[1].start == pytest.approx(8.0)
        # narrow is placed after wide but may still fill the early hole:
        # pull-forward starts it at 0 because 2 procs are free there.
        assert s[2].start == pytest.approx(0.0)

    def test_feasible(self):
        batches, _ = make_batches()
        tasks = [it.task for b in batches for it in b]
        inst = Instance(tasks, 4)
        validate_schedule(pull_forward(batches, 4), inst)


class TestListCompaction:
    def test_flattens_and_backfills(self):
        batches, _ = make_batches()
        s = list_compaction(batches, 4)
        assert s[0].start == 0.0 and s[1].start == 0.0
        assert s[2].start == pytest.approx(4.0)

    def test_stack_items_supported(self):
        a = make_task(0, 1.0, m=4, speedup="none")
        b = make_task(1, 1.5, m=4, speedup="none")
        batches = [[ListItem(a, 1, stack=(a, b))]]
        s = list_compaction(batches, 4)
        assert s[1].start == pytest.approx(1.0)

    def test_never_worse_than_shelf(self):
        batches, starts = make_batches()
        shelf = shelf_placement(batches, starts, 4)
        compact = list_compaction(batches, 4)
        assert compact.makespan() <= shelf.makespan() + 1e-9
        assert (
            compact.weighted_completion_sum()
            <= shelf.weighted_completion_sum() + 1e-9
        )


class TestRefinementChain:
    """The paper presents the three strategies as successive improvements."""

    @given(
        widths=st.lists(st.integers(1, 4), min_size=1, max_size=12),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=50)
    def test_property_chain_feasible_and_ordered(self, widths, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        m = 4
        # Durations capped at the smallest batch window (4.0) so the shelf
        # placement is feasible by construction (DEMT's admissibility filter
        # provides the same guarantee in the real pipeline).
        tasks = [
            make_task(i, float(rng.uniform(1, 4)), m=m, speedup="none")
            for i in range(len(widths))
        ]
        inst = Instance(tasks, m)
        # Split into batches of up to m total width, windows doubling
        # (window j spans [4 * 2^j, 4 * 2^(j+1)], always >= any duration).
        batches, starts, cur, width, t = [], [], [], 0, 4.0
        for task, w in zip(tasks, widths):
            if width + w > m:
                batches.append(cur)
                starts.append(t)
                t *= 2
                cur, width = [], 0
            cur.append(ListItem(task, w))
            width += w
        if cur:
            batches.append(cur)
            starts.append(t)

        shelf = shelf_placement(batches, starts, m)
        pulled = pull_forward(batches, m)
        compact = list_compaction(batches, m)
        for sched in (shelf, pulled, compact):
            validate_schedule(sched, inst)
        # Pull-forward never delays a task past its shelf start (no
        # overtaking, disjoint windows): strictly dominated makespan.
        assert pulled.makespan() <= shelf.makespan() + 1e-9
        # List compaction allows overtaking, which can in principle create
        # Graham anomalies relative to pull-forward — so only dominance over
        # the naive shelves is asserted (the geometric windows leave ample
        # slack for the greedy scheduler).
        assert compact.makespan() <= shelf.makespan() + 1e-9
