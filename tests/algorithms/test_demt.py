"""Unit + property tests for the DEMT bi-criteria algorithm."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.demt import DemtScheduler, schedule_demt
from repro.core.instance import Instance
from repro.core.task import MoldableTask
from repro.core.validation import validate_schedule
from repro.workloads.generator import generate_workload

from tests.conftest import make_instance, make_task


class TestConstruction:
    def test_bad_compaction_mode(self):
        with pytest.raises(ValueError):
            DemtScheduler(compaction="magic")

    def test_negative_shuffles(self):
        with pytest.raises(ValueError):
            DemtScheduler(shuffle_rounds=-1)

    def test_bad_batch_ordering(self):
        with pytest.raises(ValueError):
            DemtScheduler(batch_ordering="alphabetical")

    def test_bad_guess_relaxation(self):
        with pytest.raises(ValueError):
            DemtScheduler(guess_relaxation=0.9)

    def test_name(self):
        assert DemtScheduler().name == "DEMT"


class TestScheduleBasics:
    def test_empty_instance(self):
        s = schedule_demt(Instance([], 4))
        assert len(s) == 0

    def test_single_task(self):
        t = MoldableTask(0, [8.0, 4.5, 3.2, 2.6])
        inst = Instance([t], 4)
        s = schedule_demt(inst)
        validate_schedule(s, inst)
        assert len(s) == 1

    @pytest.mark.parametrize("kind", ["weakly_parallel", "highly_parallel", "mixed", "cirne"])
    def test_feasible_on_paper_workloads(self, kind):
        inst = generate_workload(kind, n=50, m=32, seed=7)
        s = schedule_demt(inst)
        validate_schedule(s, inst)

    def test_deterministic(self):
        inst = generate_workload("mixed", n=30, m=16, seed=5)
        a = schedule_demt(inst, seed=1)
        b = schedule_demt(inst, seed=1)
        assert a.makespan() == b.makespan()
        assert a.weighted_completion_sum() == b.weighted_completion_sum()

    @pytest.mark.parametrize("compaction", ["shelf", "pull_forward", "list"])
    def test_all_compaction_modes_feasible(self, compaction):
        inst = generate_workload("highly_parallel", n=25, m=16, seed=2)
        s = schedule_demt(inst, compaction=compaction, shuffle_rounds=0)
        validate_schedule(s, inst)

    def test_compaction_chain_improves(self):
        inst = generate_workload("cirne", n=40, m=16, seed=9)
        shelf = schedule_demt(inst, compaction="shelf", shuffle_rounds=0)
        pulled = schedule_demt(inst, compaction="pull_forward", shuffle_rounds=0)
        compact = schedule_demt(inst, compaction="list", shuffle_rounds=0)
        assert pulled.makespan() <= shelf.makespan() + 1e-9
        assert compact.weighted_completion_sum() <= shelf.weighted_completion_sum() + 1e-9


class TestBatchGeometry:
    def test_t_grid_doubles(self):
        inst = generate_workload("mixed", n=20, m=8, seed=4)
        res = DemtScheduler().schedule_detailed(inst)
        grid = res.t_grid
        assert len(grid) == res.K + 2
        for a, b in zip(grid, grid[1:]):
            assert b == pytest.approx(2 * a)

    def test_K_matches_paper_formula(self):
        inst = generate_workload("mixed", n=20, m=8, seed=4)
        res = DemtScheduler().schedule_detailed(inst)
        expected = max(0, math.floor(math.log2(res.cmax_estimate / inst.tmin)))
        assert res.K == expected

    def test_smallest_batch_can_hold_a_task(self):
        # t_0 >= tmin by construction: some task fits in the first window.
        inst = generate_workload("highly_parallel", n=15, m=8, seed=6)
        res = DemtScheduler().schedule_detailed(inst)
        assert res.t_grid[0] >= inst.tmin - 1e-12

    def test_last_grid_point_is_twice_cstar(self):
        inst = generate_workload("mixed", n=10, m=8, seed=8)
        res = DemtScheduler().schedule_detailed(inst)
        assert res.t_grid[-1] == pytest.approx(2 * res.cmax_estimate)

    def test_batches_partition_tasks(self):
        inst = generate_workload("cirne", n=35, m=16, seed=10)
        res = DemtScheduler().schedule_detailed(inst)
        ids = [
            task.task_id
            for batch in res.batches
            for it in batch
            for task in (it.stack or (it.task,))
        ]
        assert sorted(ids) == list(range(35))

    def test_batch_widths_within_m(self):
        inst = generate_workload("weakly_parallel", n=40, m=16, seed=12)
        res = DemtScheduler().schedule_detailed(inst)
        for batch in res.batches:
            assert sum(it.allotment for it in batch) <= 16

    def test_batch_items_fit_batch_window(self):
        inst = generate_workload("mixed", n=30, m=16, seed=13)
        res = DemtScheduler().schedule_detailed(inst)
        for start, batch in zip(res.batch_starts, res.batches):
            for it in batch:
                assert it.duration <= start + 1e-9  # window length == t_j


class TestKnapsackSelectionQuality:
    def test_prefers_heavy_tasks_early(self):
        """With everything able to fit in the first batch except capacity,
        the heaviest tasks must be selected first."""
        m = 4
        tasks = [
            MoldableTask(i, [4.0] * m, weight=w)
            for i, w in enumerate([10.0, 9.0, 1.0, 0.9, 0.8, 0.7, 0.6, 0.5])
        ]
        inst = Instance(tasks, m)
        res = DemtScheduler(shuffle_rounds=0).schedule_detailed(inst)
        first_batch_ids = {
            t.task_id for it in res.batches[0] for t in (it.stack or (it.task,))
        }
        assert 0 in first_batch_ids and 1 in first_batch_ids

    def test_small_tasks_get_merged(self):
        # Many tiny sequential tasks + one large: the tiny ones stack.
        m = 4
        tiny = [MoldableTask(i, [0.5] * m, weight=5.0) for i in range(6)]
        big = MoldableTask(99, [8.0, 4.0, 3.0, 2.0], weight=1.0)
        inst = Instance(tiny + [big], m)
        res = DemtScheduler(shuffle_rounds=0).schedule_detailed(inst)
        stacked = [it for batch in res.batches for it in batch if it.stack]
        assert any(len(it.stack) > 1 for it in stacked)


class TestSweepKnobs:
    """The trade-off knobs: defaults are bit-identical to the paper
    configuration; deviations stay feasible and actually take effect."""

    def _inst(self, seed=5, n=40, m=16):
        return generate_workload("mixed", n=n, m=m, seed=seed)

    def test_default_knobs_change_nothing(self):
        inst = self._inst()
        base = DemtScheduler().schedule(inst)
        explicit = DemtScheduler(
            shuffle_rounds=10,
            small_threshold_factor=0.5,
            batch_ordering="smith",
            guess_relaxation=1.0,
        ).schedule(inst)
        assert [(p.task.task_id, p.start, p.allotment) for p in base] == [
            (p.task.task_id, p.start, p.allotment) for p in explicit
        ]

    def test_functional_form_passes_knobs(self):
        inst = self._inst()
        a = schedule_demt(
            inst, batch_ordering="weight", guess_relaxation=1.5,
            small_threshold_factor=0.25, shuffle_rounds=0,
        )
        b = DemtScheduler(
            batch_ordering="weight", guess_relaxation=1.5,
            small_threshold_factor=0.25, shuffle_rounds=0,
        ).schedule(inst)
        assert a.makespan() == b.makespan()
        assert a.weighted_completion_sum() == b.weighted_completion_sum()

    @pytest.mark.parametrize("ordering", ["smith", "weight", "duration", "id"])
    def test_orderings_feasible(self, ordering):
        inst = self._inst()
        sched = DemtScheduler(batch_ordering=ordering).schedule(inst)
        validate_schedule(sched, inst)

    @pytest.mark.parametrize("relax", [1.0, 1.25, 1.5, 1.75])
    def test_relaxations_feasible(self, relax):
        inst = self._inst()
        sched = DemtScheduler(guess_relaxation=relax).schedule(inst)
        validate_schedule(sched, inst)

    def test_relaxation_widens_estimate(self):
        inst = self._inst()
        base = DemtScheduler().schedule_detailed(inst)
        relaxed = DemtScheduler(guess_relaxation=1.5).schedule_detailed(inst)
        assert relaxed.cmax_estimate == pytest.approx(1.5 * base.cmax_estimate)

    def test_doubling_relaxation_reproduces_grid(self):
        # relax=2.0 increments K and regenerates the identical t-grid —
        # the degeneracy the sweep's default relax axis avoids.
        inst = self._inst()
        base = DemtScheduler(shuffle_rounds=0).schedule_detailed(inst)
        doubled = DemtScheduler(
            shuffle_rounds=0, guess_relaxation=2.0
        ).schedule_detailed(inst)
        assert doubled.K == base.K + 1
        assert doubled.schedule.makespan() == base.schedule.makespan()

    def test_some_ordering_changes_some_schedule(self):
        changed = False
        for seed in range(6):
            inst = self._inst(seed=seed)
            a = DemtScheduler(shuffle_rounds=0).schedule(inst)
            b = DemtScheduler(shuffle_rounds=0, batch_ordering="id").schedule(inst)
            if a.weighted_completion_sum() != b.weighted_completion_sum():
                changed = True
                break
        assert changed, "intra-batch ordering knob never took effect"


class TestBicriteriaQuality:
    def test_minsum_close_to_smith_on_gangable_instance(self):
        """Linear speedup: the optimal policy is gang in Smith order (§3.1);
        DEMT must land in the same ballpark."""
        inst = generate_workload("linear_speedup", n=20, m=8, seed=3)
        from repro.algorithms.gang import schedule_gang

        demt = schedule_demt(inst)
        gang = schedule_gang(inst)
        assert demt.weighted_completion_sum() <= gang.weighted_completion_sum() * 1.6

    def test_makespan_within_2x_of_dual_lb(self):
        for kind in ("highly_parallel", "mixed", "cirne"):
            inst = generate_workload(kind, n=60, m=32, seed=14)
            res = DemtScheduler().schedule_detailed(inst)
            assert res.schedule.makespan() <= 2.05 * res.dual.lower_bound

    def test_shuffle_never_hurts(self):
        inst = generate_workload("mixed", n=40, m=16, seed=15)
        base = schedule_demt(inst, shuffle_rounds=0)
        shuffled = schedule_demt(inst, shuffle_rounds=20, seed=42)
        assert shuffled.weighted_completion_sum() <= base.weighted_completion_sum() + 1e-9
        assert shuffled.makespan() <= base.makespan() + 1e-9

    def test_shuffle_improvement_reported(self):
        inst = generate_workload("mixed", n=40, m=16, seed=16)
        res = DemtScheduler(shuffle_rounds=20, seed=1).schedule_detailed(inst)
        assert res.shuffle_improvement >= 0.0

    @given(
        n=st.integers(1, 20),
        m=st.integers(2, 12),
        seed=st.integers(0, 9999),
        kind=st.sampled_from(["weakly_parallel", "highly_parallel", "mixed", "cirne"]),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_always_feasible(self, n, m, seed, kind):
        inst = generate_workload(kind, n=n, m=m, seed=seed)
        s = schedule_demt(inst, shuffle_rounds=3)
        validate_schedule(s, inst)
