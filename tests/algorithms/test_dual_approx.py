"""Unit + property tests for the Mounié–Trystram dual approximation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.dual_approx import (
    DualApproxResult,
    dual_approximation,
    feasibility_check,
)
from repro.core.instance import Instance
from repro.core.task import MoldableTask
from repro.core.validation import validate_schedule
from repro.workloads.generator import generate_workload

from tests.conftest import make_instance, make_task


class TestFeasibilityCheck:
    def test_rejects_lambda_below_min_time(self):
        inst = make_instance(n=2, m=4, seq_time=8.0, speedup="linear")
        # Fastest possible duration is 2.0 (8/4); lam=1 must be rejected.
        ok, _, _ = feasibility_check(inst, 1.0)
        assert not ok

    def test_rejects_lambda_below_area_bound(self):
        # 4 tasks of constant work 8 on m=2: area bound = 16.
        inst = make_instance(n=4, m=2, seq_time=8.0, speedup="linear")
        ok, _, _ = feasibility_check(inst, 10.0)
        assert not ok

    def test_accepts_generous_lambda(self):
        inst = make_instance(n=3, m=4, seq_time=8.0)
        ok, in_big, allot = feasibility_check(inst, 100.0)
        assert ok
        assert in_big.shape == (3,) and allot.shape == (3,)
        assert (allot >= 1).all()

    def test_big_shelf_width_respected(self):
        inst = make_instance(n=8, m=4, seq_time=8.0, speedup="none")
        # lam = 8: every task needs the full length on 1 proc -> all big.
        ok, in_big, allot = feasibility_check(inst, 8.0)
        if ok:
            assert allot[in_big].sum() <= 4

    def test_non_positive_lambda(self):
        inst = make_instance(n=1, m=2)
        assert not feasibility_check(inst, 0.0)[0]
        assert not feasibility_check(inst, -1.0)[0]


class TestDualApproximation:
    def test_empty_instance(self):
        res = dual_approximation(Instance([], 4))
        assert res.lower_bound == 0.0 and res.makespan == 0.0

    def test_single_task(self):
        t = MoldableTask(0, [8.0, 4.0, 3.0, 2.5])
        res = dual_approximation(Instance([t], 4))
        # Only the task's fastest time bounds from below; the schedule must
        # be feasible and finish within its sequential time.
        assert res.lower_bound == pytest.approx(2.5)
        validate_schedule(res.schedule, Instance([t], 4))
        assert res.makespan <= 8.0 + 1e-9

    def test_lower_bound_below_accepted_lambda(self):
        inst = make_instance(n=6, m=4, seq_time=8.0)
        res = dual_approximation(inst)
        assert res.lower_bound <= res.lam * (1 + 1e-9)

    def test_schedule_feasible_and_complete(self):
        inst = make_instance(n=10, m=4, seq_time=6.0, speedup="sqrt")
        res = dual_approximation(inst)
        validate_schedule(res.schedule, inst)

    def test_allotments_cover_all_tasks(self):
        inst = make_instance(n=7, m=8)
        res = dual_approximation(inst)
        assert set(res.allotments) == {t.task_id for t in inst}
        assert all(1 <= k <= 8 for k in res.allotments.values())

    def test_perfect_speedup_lower_bound_tight(self):
        # n identical linear tasks, work w each: C* = n*w/m exactly.
        n, m, w = 8, 4, 8.0
        inst = make_instance(n=n, m=m, seq_time=w, speedup="linear")
        res = dual_approximation(inst)
        assert res.lower_bound == pytest.approx(n * w / m)

    def test_sequential_tasks_lower_bound(self):
        # Tasks with no speedup: LB = max(total/m, longest).
        inst = make_instance(n=4, m=2, seq_time=6.0, speedup="none")
        res = dual_approximation(inst)
        assert res.lower_bound == pytest.approx(max(4 * 6.0 / 2, 6.0))

    def test_big_shelf_ids_subset(self):
        inst = make_instance(n=9, m=4, seq_time=5.0, speedup="sqrt")
        res = dual_approximation(inst)
        assert res.big_shelf <= {t.task_id for t in inst}

    @pytest.mark.parametrize("kind", ["weakly_parallel", "highly_parallel", "mixed", "cirne"])
    def test_ratio_reasonable_on_paper_workloads(self, kind):
        inst = generate_workload(kind, n=40, m=32, seed=11)
        res = dual_approximation(inst)
        validate_schedule(res.schedule, inst)
        # Dual approximation targets 3/2; the list construction may add a
        # little, but it must remain far from the trivial 2x regime.
        assert res.makespan / res.lower_bound < 2.0

    def test_rel_tol_controls_gap(self):
        inst = generate_workload("mixed", n=20, m=8, seed=3)
        tight = dual_approximation(inst, rel_tol=1e-4)
        loose = dual_approximation(inst, rel_tol=0.3)
        assert tight.lam <= loose.lam * (1 + 0.3 + 1e-9)
        assert tight.lower_bound <= tight.lam <= tight.lower_bound * (1 + 1e-3)

    @given(
        n=st.integers(1, 12),
        m=st.integers(1, 8),
        seed=st.integers(0, 9999),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_sound_on_random_instances(self, n, m, seed):
        rng = np.random.default_rng(seed)
        tasks = []
        for i in range(n):
            seq = float(rng.uniform(1, 10))
            profile = seq / np.arange(1, m + 1) ** float(rng.uniform(0, 1))
            tasks.append(MoldableTask(i, profile, weight=float(rng.uniform(1, 10))))
        inst = Instance(tasks, m)
        res = dual_approximation(inst)
        validate_schedule(res.schedule, inst)
        # LB never exceeds what an actual schedule achieved.
        assert res.lower_bound <= res.makespan + 1e-9
        # LB dominates the two closed-form bounds.
        assert res.lower_bound >= inst.max_min_time - 1e-9
        assert res.lower_bound >= inst.min_total_work / m - 1e-9
