"""Unit + property tests for repro.algorithms.knapsack."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.knapsack import (
    KnapsackItem,
    knapsack_min_work,
    knapsack_select,
    knapsack_select_indices,
)


def brute_force_max_weight(items, m):
    best = 0.0
    for mask in itertools.product([0, 1], repeat=len(items)):
        cost = sum(it.allotment for it, b in zip(items, mask) if b)
        if cost <= m:
            best = max(best, sum(it.weight for it, b in zip(items, mask) if b))
    return best


class TestKnapsackItem:
    def test_invalid_allotment(self):
        with pytest.raises(ValueError):
            KnapsackItem("x", 0, 1.0)

    def test_invalid_weight(self):
        with pytest.raises(ValueError):
            KnapsackItem("x", 1, float("inf"))
        with pytest.raises(ValueError):
            KnapsackItem("x", 1, -1.0)


class TestKnapsackSelect:
    def test_paper_example_docstring(self):
        items = [
            KnapsackItem("a", 2, 5.0),
            KnapsackItem("b", 2, 4.0),
            KnapsackItem("c", 3, 6.0),
        ]
        res = knapsack_select(items, m=4)
        assert sorted(res.selected_keys) == ["a", "b"]
        assert res.total_weight == pytest.approx(9.0)
        assert res.used_processors == 4

    def test_empty_items(self):
        res = knapsack_select([], 5)
        assert res.total_weight == 0.0 and res.selected == ()

    def test_zero_capacity(self):
        res = knapsack_select([KnapsackItem("a", 1, 1.0)], 0)
        assert res.selected == ()

    def test_item_larger_than_capacity_skipped(self):
        items = [KnapsackItem("big", 10, 100.0), KnapsackItem("ok", 1, 1.0)]
        res = knapsack_select(items, 5)
        assert res.selected_keys == ("ok",)

    def test_all_fit(self):
        items = [KnapsackItem(i, 1, 1.0) for i in range(4)]
        res = knapsack_select(items, 10)
        assert len(res.selected) == 4
        assert res.used_processors == 4

    def test_prefers_fewer_processors_on_ties(self):
        # Same weight achievable with {a} (2 procs) or {b} (3 procs).
        items = [KnapsackItem("b", 3, 5.0), KnapsackItem("a", 2, 5.0)]
        res = knapsack_select(items, 3)
        assert res.selected_keys == ("a",)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            knapsack_select([], -1)

    def test_weights_sum_consistency(self):
        items = [KnapsackItem(i, (i % 3) + 1, float(i + 1)) for i in range(8)]
        res = knapsack_select(items, 6)
        assert res.total_weight == pytest.approx(
            sum(it.weight for it in res.selected)
        )
        assert res.used_processors == sum(it.allotment for it in res.selected)
        assert res.used_processors <= 6

    @given(
        data=st.lists(
            st.tuples(st.integers(1, 6), st.floats(0.1, 10.0)), min_size=1, max_size=10
        ),
        m=st.integers(1, 12),
    )
    @settings(max_examples=80)
    def test_property_optimal_vs_bruteforce(self, data, m):
        items = [KnapsackItem(i, a, w) for i, (a, w) in enumerate(data)]
        res = knapsack_select(items, m)
        assert res.used_processors <= m
        assert res.total_weight == pytest.approx(brute_force_max_weight(items, m))


class TestKnapsackMinWork:
    def brute(self, work_a, cost_a, work_b, m):
        n = len(work_a)
        best = np.inf
        best_mask = None
        for mask in itertools.product([0, 1], repeat=n):
            cost = sum(cost_a[i] for i in range(n) if mask[i])
            if cost > m:
                continue
            w = sum(work_a[i] if mask[i] else work_b[i] for i in range(n))
            if w < best:
                best, best_mask = w, mask
        return best, best_mask

    def test_simple_forced_choice(self):
        # Task 0 has no option B; task 1 prefers B.
        work_a = np.array([4.0, 9.0])
        cost_a = np.array([2.0, 3.0])
        work_b = np.array([np.inf, 5.0])
        in_a, total = knapsack_min_work(work_a, cost_a, work_b, m=4)
        assert in_a[0] and not in_a[1]
        assert total == pytest.approx(9.0)

    def test_infeasible_when_forced_exceeds_budget(self):
        work_a = np.array([1.0])
        cost_a = np.array([5.0])
        work_b = np.array([np.inf])
        _, total = knapsack_min_work(work_a, cost_a, work_b, m=4)
        assert np.isinf(total)

    def test_budget_constrains_choice(self):
        # Both prefer A (cheaper work) but only one fits.
        work_a = np.array([1.0, 1.0])
        cost_a = np.array([3.0, 3.0])
        work_b = np.array([10.0, 10.0])
        in_a, total = knapsack_min_work(work_a, cost_a, work_b, m=3)
        assert in_a.sum() == 1
        assert total == pytest.approx(11.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            knapsack_min_work(np.ones(2), np.ones(3), np.ones(2), 4)

    @given(
        data=st.lists(
            st.tuples(
                st.floats(0.5, 20.0),  # work_a
                st.integers(1, 5),  # cost_a
                st.floats(0.5, 20.0) | st.just(float("inf")),  # work_b
            ),
            min_size=1,
            max_size=8,
        ),
        m=st.integers(1, 10),
    )
    @settings(max_examples=80)
    def test_property_matches_bruteforce(self, data, m):
        work_a = np.array([d[0] for d in data])
        cost_a = np.array([float(d[1]) for d in data])
        work_b = np.array([d[2] for d in data])
        in_a, total = knapsack_min_work(work_a, cost_a, work_b, m)
        expected, _ = self.brute(work_a, cost_a, work_b, m)
        if np.isinf(expected):
            assert np.isinf(total)
        else:
            assert total == pytest.approx(expected)
            # Returned assignment must realise the returned value.
            realised = float(np.where(in_a, work_a, work_b).sum())
            assert realised == pytest.approx(total)
            assert float(cost_a[in_a].sum()) <= m


class TestReconstructionTieTolerance:
    """Regression for the `best >= total - 1e-12` reconstruction bug.

    With weights closer than the old tolerance, the reconstruction could
    pick a capacity whose optimum is a strictly *lighter* selection than
    the reported total (the tolerance treated 1.0 and 1.0 + 5e-13 as the
    same weight).  The fix compares exactly: `best` is non-decreasing in
    the capacity, so `best[q] >= total` already means equality.
    """

    def test_near_equal_weights_reconstruct_reported_total(self):
        eps = 5e-13
        items = [
            KnapsackItem("light", 1, 1.0),
            KnapsackItem("heavy", 2, 1.0 + eps),  # within the old tolerance
        ]
        res = knapsack_select(items, m=2)
        # The optimum is the heavy item alone; the old code reconstructed
        # at capacity 1 and returned ["light"] with the heavy total.
        assert res.selected_keys == ("heavy",)
        assert res.total_weight == 1.0 + eps
        assert sum(it.weight for it in res.selected) == res.total_weight
        assert res.used_processors == 2

    def test_exact_ties_still_prefer_fewer_processors(self):
        # Genuinely equal weights: the narrow selection must win.
        items = [
            KnapsackItem("narrow", 1, 2.0),
            KnapsackItem("wide", 2, 2.0),
        ]
        res = knapsack_select(items, m=2)
        assert res.selected_keys == ("narrow",)
        assert res.used_processors == 1

    @given(
        base=st.floats(0.5, 10.0),
        eps=st.floats(1e-14, 9e-13),
        m=st.integers(2, 6),
    )
    @settings(max_examples=60)
    def test_property_selection_realises_total(self, base, eps, m):
        """Sub-tolerance weight gaps: the selection always reproduces the
        reported total exactly."""
        items = [
            KnapsackItem("a", 1, base),
            KnapsackItem("b", 2, base + eps),
            KnapsackItem("c", 2, base + 2 * eps),
        ]
        res = knapsack_select(items, m)
        realised = sum(it.weight for it in res.selected)
        assert realised == res.total_weight
        assert res.total_weight == brute_force_max_weight(items, m)


class TestMinWorkValueParity:
    """knapsack_min_work_value must mirror the reconstructing DP exactly."""

    @given(
        data=st.lists(
            st.tuples(
                st.floats(0.5, 20.0),
                st.integers(1, 5),
                st.floats(0.5, 20.0) | st.just(float("inf")),
            ),
            min_size=1,
            max_size=8,
        ),
        m=st.integers(1, 10),
    )
    @settings(max_examples=80)
    def test_value_equals_full_dp(self, data, m):
        from repro.algorithms.knapsack import knapsack_min_work_value

        work_a = np.array([d[0] for d in data])
        cost_a = np.array([float(d[1]) for d in data])
        work_b = np.array([d[2] for d in data])
        _, total = knapsack_min_work(work_a, cost_a, work_b, m)
        value = knapsack_min_work_value(work_a, cost_a, work_b, m)
        assert value == total or (np.isinf(value) and np.isinf(total))


class TestTakeAllShortCircuit:
    """`knapsack_select_indices` skips the DP when everything fits."""

    def test_take_all_when_everything_fits(self):
        idx, total, used = knapsack_select_indices([2, 3, 1], [5.0, 1.0, 2.0], m=6)
        assert idx == [0, 1, 2]
        assert total == 5.0 + 1.0 + 2.0
        assert used == 6

    def test_zero_weight_item_falls_back_to_dp(self):
        # The DP never takes a zero-weight item (strict improvement test);
        # the short-circuit must not change that.
        idx, total, used = knapsack_select_indices([1, 1], [3.0, 0.0], m=5)
        assert idx == [0]
        assert total == 3.0
        assert used == 1

    def test_overfull_still_runs_dp(self):
        idx, total, used = knapsack_select_indices([3, 3], [1.0, 2.0], m=3)
        assert idx == [1]
        assert total == 2.0

    @given(
        data=st.lists(
            st.tuples(st.integers(1, 4), st.floats(0.1, 10.0)), min_size=1, max_size=8
        )
    )
    @settings(max_examples=60)
    def test_matches_dp_exactly_when_fitting(self, data):
        """Same indices, bit-identical total, as a capacity large enough to
        make the short-circuit fire vs one item short of it."""
        allot = [a for a, _ in data]
        weights = [w for _, w in data]
        m = sum(allot)
        fast = knapsack_select_indices(allot, weights, m)
        # Disable the short-circuit by appending a zero-weight item (the
        # guard bails to the DP) that the DP itself never selects.
        slow = knapsack_select_indices(allot + [1], weights + [0.0], m)
        assert fast[0] == slow[0][: len(allot)] and len(slow[0]) == len(allot)
        assert fast[1] == slow[1]
        assert fast[2] == slow[2]
