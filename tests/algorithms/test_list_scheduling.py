"""Unit + property tests for repro.algorithms.list_scheduling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.list_scheduling import ListItem, list_schedule
from repro.core.instance import Instance
from repro.core.schedule import Schedule
from repro.core.validation import validate_schedule
from repro.exceptions import SchedulingError

from tests.conftest import make_task


class TestListItem:
    def test_duration_plain(self):
        it = ListItem(make_task(0, 8.0, m=4), 2)
        assert it.duration == pytest.approx(4.0)

    def test_duration_stack(self):
        a, b = make_task(0, 2.0, m=4, speedup="none"), make_task(1, 3.0, m=4, speedup="none")
        it = ListItem(a, 1, stack=(a, b))
        assert it.duration == pytest.approx(5.0)


class TestListSchedule:
    def test_greedy_packing(self):
        # m=4: tasks of width 2, 2, 2 and unit length -> two at t=0, one at t=1.
        tasks = [make_task(i, 2.0, m=4, speedup="none") for i in range(3)]
        items = [ListItem(t, 2) for t in tasks]
        s = list_schedule(items, 4)
        starts = sorted(s[t.task_id].start for t in tasks)
        assert starts == [0.0, 0.0, 2.0]

    def test_priority_respected_among_fitting(self):
        # Width-3 first in list gets the machine before two width-2s.
        big = make_task(0, 2.0, m=4, speedup="none")
        small1 = make_task(1, 2.0, m=4, speedup="none")
        items = [ListItem(big, 3), ListItem(small1, 2)]
        s = list_schedule(items, 4)
        assert s[0].start == 0.0
        assert s[1].start == pytest.approx(2.0)

    def test_backfilling_overtakes_stalled_head(self):
        # Head needs 4 procs; a width-1 task behind it can start immediately.
        blocker = make_task(0, 2.0, m=4, speedup="none")
        head = make_task(1, 2.0, m=4, speedup="none")
        filler = make_task(2, 2.0, m=4, speedup="none")
        items = [ListItem(blocker, 3), ListItem(head, 4), ListItem(filler, 1)]
        s = list_schedule(items, 4)
        assert s[0].start == 0.0
        assert s[2].start == 0.0  # backfilled
        assert s[1].start == pytest.approx(2.0)

    def test_stack_materialised_sequentially(self):
        a = make_task(0, 2.0, m=4, speedup="none")
        b = make_task(1, 3.0, m=4, speedup="none")
        items = [ListItem(a, 1, stack=(a, b))]
        s = list_schedule(items, 4)
        assert s[0].start == 0.0 and s[0].allotment == 1
        assert s[1].start == pytest.approx(2.0) and s[1].allotment == 1

    def test_start_time_floor(self):
        t = make_task(0, 1.0, m=2, speedup="none")
        s = list_schedule([ListItem(t, 1)], 2, start_time=5.0)
        assert s[0].start == pytest.approx(5.0)

    def test_append_to_existing_schedule(self):
        existing = Schedule(2)
        t0 = make_task(0, 1.0, m=2, speedup="none")
        existing.add(t0, 0.0, 1)
        t1 = make_task(1, 1.0, m=2, speedup="none")
        out = list_schedule([ListItem(t1, 1)], 2, schedule=existing, start_time=1.0)
        assert out is existing and len(out) == 2

    def test_oversized_allotment_rejected(self):
        t = make_task(0, 1.0, m=8, speedup="none")
        with pytest.raises(SchedulingError):
            list_schedule([ListItem(t, 9)], 8)

    def test_infinite_duration_rejected(self):
        from repro.core.task import rigid_task

        t = rigid_task(0, procs=2, time=1.0, m=4)
        with pytest.raises(SchedulingError):
            list_schedule([ListItem(t, 1)], 4)

    def test_empty_list(self):
        s = list_schedule([], 4)
        assert len(s) == 0

    def test_never_idle_while_work_fits(self):
        # Graham property: makespan <= 2 * max(total_work/m, longest task)
        # for allotment-1 tasks (classical bound sanity check).
        tasks = [make_task(i, float(i % 5 + 1), m=4, speedup="none") for i in range(20)]
        items = [ListItem(t, 1) for t in tasks]
        s = list_schedule(items, 4)
        total_work = sum(t.seq_time for t in tasks)
        longest = max(t.seq_time for t in tasks)
        assert s.makespan() <= total_work / 4 + longest + 1e-9

    @given(
        widths=st.lists(st.integers(1, 5), min_size=1, max_size=25),
        lengths=st.lists(st.floats(0.5, 9.0), min_size=25, max_size=25),
        m=st.integers(5, 8),
    )
    @settings(max_examples=60)
    def test_property_feasible_and_complete(self, widths, lengths, m):
        tasks = [make_task(i, lengths[i], m=m, speedup="none") for i in range(len(widths))]
        inst = Instance(tasks, m)
        items = [ListItem(t, w) for t, w in zip(tasks, widths)]
        s = list_schedule(items, m)
        validate_schedule(s, inst)

    @given(
        widths=st.lists(st.integers(1, 4), min_size=2, max_size=15),
        m=st.integers(4, 6),
    )
    @settings(max_examples=60)
    def test_property_graham_bound(self, widths, m):
        """List scheduling respects the multiprocessor Graham bound: the
        last-finishing task (width w) was waiting whenever usage exceeded
        m - w, so Cmax <= W / (m - w_max + 1) + D_max."""
        tasks = [make_task(i, 3.0, m=m, speedup="none") for i in range(len(widths))]
        items = [ListItem(t, w) for t, w in zip(tasks, widths)]
        s = list_schedule(items, m)
        W = sum(3.0 * w for w in widths)
        w_max = max(widths)
        assert s.makespan() <= W / (m - w_max + 1) + 3.0 + 1e-9
