"""Unit tests for repro.algorithms.merge."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.merge import MergedStack, merge_small_tasks
from repro.core.task import MoldableTask

from tests.conftest import make_task


def seq(task_id, time, weight=1.0):
    return make_task(task_id, time, m=4, speedup="none", weight=weight)


class TestMergedStack:
    def test_aggregates(self):
        s = MergedStack((seq(0, 2.0, weight=3.0), seq(1, 1.5, weight=1.0)))
        assert s.duration == pytest.approx(3.5)
        assert s.weight == pytest.approx(4.0)
        assert s.task_ids == (0, 1)
        assert len(s) == 2


class TestMergeSmallTasks:
    def test_threshold_is_half_batch(self):
        small = seq(0, 4.0)
        large = seq(1, 4.1)
        stacks, untouched = merge_small_tasks([small, large], batch_length=8.0)
        assert [s.task_ids for s in stacks] == [(0,)]
        assert [t.task_id for t in untouched] == [1]

    def test_decreasing_weight_order_within_stacks(self):
        tasks = [seq(0, 1.0, weight=1.0), seq(1, 1.0, weight=5.0), seq(2, 1.0, weight=3.0)]
        stacks, _ = merge_small_tasks(tasks, batch_length=10.0)
        assert len(stacks) == 1
        assert stacks[0].task_ids == (1, 2, 0)  # heaviest first

    def test_stack_duration_capped_by_batch_length(self):
        tasks = [seq(i, 3.0) for i in range(5)]  # each <= 4.0 = t/2
        stacks, _ = merge_small_tasks(tasks, batch_length=8.0)
        assert all(s.duration <= 8.0 + 1e-12 for s in stacks)
        # 3+3 fits in 8, a third does not -> stacks of size 2,2,1.
        assert sorted(len(s) for s in stacks) == [1, 2, 2]

    def test_all_tasks_preserved(self):
        tasks = [seq(i, 0.5 + 0.3 * i, weight=float(i + 1)) for i in range(7)]
        stacks, untouched = merge_small_tasks(tasks, batch_length=4.0)
        merged_ids = [tid for s in stacks for tid in s.task_ids]
        all_ids = sorted(merged_ids + [t.task_id for t in untouched])
        assert all_ids == list(range(7))

    def test_parallel_tasks_with_small_seq_time_are_merged(self):
        # Merging only looks at p(1); a moldable task with small p(1)
        # is a merge candidate like any sequential one.
        t = make_task(0, 2.0, m=4, speedup="linear")
        stacks, untouched = merge_small_tasks([t], batch_length=8.0)
        assert len(stacks) == 1 and not untouched

    def test_rigid_task_never_merged(self):
        from repro.core.task import rigid_task

        t = rigid_task(0, procs=2, time=1.0, m=4)  # p(1) = inf
        stacks, untouched = merge_small_tasks([t], batch_length=8.0)
        assert not stacks and untouched == [t]

    def test_empty_input(self):
        stacks, untouched = merge_small_tasks([], batch_length=4.0)
        assert stacks == [] and untouched == []

    def test_invalid_batch_length(self):
        with pytest.raises(ValueError):
            merge_small_tasks([], batch_length=0.0)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            merge_small_tasks([], batch_length=1.0, small_threshold_factor=0.0)
        with pytest.raises(ValueError):
            merge_small_tasks([], batch_length=1.0, small_threshold_factor=1.5)

    def test_custom_threshold(self):
        t = seq(0, 4.0)
        stacks, untouched = merge_small_tasks([t], 8.0, small_threshold_factor=0.25)
        assert untouched == [t]  # 4 > 0.25*8
        stacks, untouched = merge_small_tasks([t], 8.0, small_threshold_factor=0.5)
        assert len(stacks) == 1

    @given(
        times=st.lists(st.floats(0.1, 3.9), min_size=1, max_size=20),
        weights=st.lists(st.floats(1.0, 10.0), min_size=20, max_size=20),
    )
    @settings(max_examples=60)
    def test_property_partition_and_caps(self, times, weights):
        tasks = [seq(i, t, weight=weights[i]) for i, t in enumerate(times)]
        stacks, untouched = merge_small_tasks(tasks, batch_length=8.0)
        # Partition: every task appears exactly once.
        ids = sorted(
            [tid for s in stacks for tid in s.task_ids]
            + [t.task_id for t in untouched]
        )
        assert ids == sorted(t.task_id for t in tasks)
        # Every stack respects the batch length (all inputs are <= t/2 here,
        # so untouched must be empty).
        assert not untouched
        assert all(s.duration <= 8.0 + 1e-9 for s in stacks)
        # At most one stack holds a single task *by necessity*: greedy
        # first-fit by weight can strand singles, but total stacked time
        # above one batch forces multi-task stacks somewhere.
        if sum(times) > 8.0:
            assert len(stacks) >= 2
