"""Tests for the WSPT extra baseline."""

from __future__ import annotations

import pytest

from repro.algorithms.dual_approx import dual_approximation
from repro.algorithms.registry import get_algorithm
from repro.algorithms.wspt import WsptScheduler, schedule_wspt
from repro.core.instance import Instance
from repro.core.task import MoldableTask
from repro.core.validation import validate_schedule
from repro.workloads.generator import generate_workload


class TestWspt:
    def test_feasible(self):
        inst = generate_workload("mixed", n=25, m=16, seed=91)
        s = schedule_wspt(inst)
        validate_schedule(s, inst)

    def test_registered(self):
        assert get_algorithm("WSPT").name == "WSPT"

    def test_smith_order_on_single_machine(self):
        # One processor: WSPT is provably minsum-optimal.
        tasks = [
            MoldableTask(0, [4.0], weight=1.0),  # w/p = 0.25
            MoldableTask(1, [2.0], weight=4.0),  # w/p = 2.0
            MoldableTask(2, [3.0], weight=3.0),  # w/p = 1.0
        ]
        inst = Instance(tasks, 1)
        s = schedule_wspt(inst)
        # Order: 1, 2, 0.
        assert s[1].start == 0.0
        assert s[2].start == pytest.approx(2.0)
        assert s[0].start == pytest.approx(5.0)

    def test_optimal_on_single_machine_vs_exact(self):
        from repro.bounds.exact import exact_reference

        tasks = [
            MoldableTask(0, [3.0], weight=2.0),
            MoldableTask(1, [5.0], weight=1.0),
            MoldableTask(2, [1.0], weight=4.0),
        ]
        inst = Instance(tasks, 1)
        exact = exact_reference(inst)
        assert schedule_wspt(inst).weighted_completion_sum() == pytest.approx(
            exact.minsum
        )

    def test_shared_dual(self):
        inst = generate_workload("cirne", n=15, m=8, seed=92)
        dual = dual_approximation(inst)
        a = schedule_wspt(inst, dual)
        b = WsptScheduler(dual).schedule(inst)
        assert a.weighted_completion_sum() == b.weighted_completion_sum()

    def test_strong_minsum_baseline(self):
        """WSPT should be at least competitive with the anti-Smith LPTF on
        the minsum criterion (that is its entire point)."""
        from repro.algorithms.list_graham import schedule_list_graham

        inst = generate_workload("highly_parallel", n=60, m=16, seed=93)
        dual = dual_approximation(inst)
        wspt = schedule_wspt(inst, dual).weighted_completion_sum()
        lptf = schedule_list_graham(inst, "lptf", dual).weighted_completion_sum()
        assert wspt <= lptf * 1.01

    def test_empty(self):
        assert len(schedule_wspt(Instance([], 4))) == 0
