"""Unit tests for repro.bounds.cmax."""

from __future__ import annotations

import pytest

from repro.algorithms.dual_approx import dual_approximation
from repro.bounds.cmax import (
    area_lower_bound,
    cmax_lower_bound,
    critical_path_lower_bound,
)
from repro.core.instance import Instance
from repro.core.task import MoldableTask
from repro.workloads.generator import generate_workload

from tests.conftest import make_instance


class TestClosedForms:
    def test_critical_path(self):
        a = MoldableTask(0, [8.0, 4.0])
        b = MoldableTask(1, [10.0, 9.5])
        inst = Instance([a, b], 2)
        assert critical_path_lower_bound(inst) == pytest.approx(9.5)

    def test_area(self):
        inst = make_instance(n=4, m=2, seq_time=6.0, speedup="linear")
        assert area_lower_bound(inst) == pytest.approx(12.0)

    def test_empty(self):
        inst = Instance([], 4)
        assert critical_path_lower_bound(inst) == 0.0
        assert area_lower_bound(inst) == 0.0
        assert cmax_lower_bound(inst) == 0.0


class TestDualBound:
    def test_dominates_closed_forms(self):
        for kind in ("weakly_parallel", "mixed"):
            inst = generate_workload(kind, n=30, m=16, seed=31)
            lb = cmax_lower_bound(inst)
            assert lb >= critical_path_lower_bound(inst) - 1e-9
            assert lb >= area_lower_bound(inst) - 1e-9

    def test_precomputed_dual_reused(self):
        inst = generate_workload("cirne", n=20, m=8, seed=32)
        dual = dual_approximation(inst)
        assert cmax_lower_bound(inst, dual) == dual.lower_bound

    def test_never_exceeds_any_feasible_makespan(self):
        from repro.algorithms.registry import PAPER_ALGORITHMS, get_algorithm

        inst = generate_workload("highly_parallel", n=25, m=16, seed=33)
        lb = cmax_lower_bound(inst)
        for name in PAPER_ALGORITHMS:
            s = get_algorithm(name).schedule(inst)
            assert lb <= s.makespan() + 1e-9
