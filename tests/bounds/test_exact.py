"""Unit tests for the exhaustive reference solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bounds.exact import MAX_EXACT_TASKS, exact_reference
from repro.core.instance import Instance
from repro.core.task import MoldableTask
from repro.core.validation import validate_schedule
from repro.exceptions import ModelError

from tests.conftest import make_instance


class TestExactReference:
    def test_empty(self):
        res = exact_reference(Instance([], 2))
        assert res.cmax == 0.0 and res.minsum == 0.0

    def test_single_task_picks_best_allotment(self):
        t = MoldableTask(0, [6.0, 3.0, 2.5], weight=2.0)
        res = exact_reference(Instance([t], 3))
        assert res.cmax == pytest.approx(2.5)
        assert res.minsum == pytest.approx(5.0)

    def test_two_sequential_tasks_one_machine(self):
        # Smith's rule: order by w/p. w/p: a: 3/2=1.5, b: 1/4=0.25 -> a first.
        a = MoldableTask(0, [2.0], weight=3.0)
        b = MoldableTask(1, [4.0], weight=1.0)
        res = exact_reference(Instance([a, b], 1))
        assert res.cmax == pytest.approx(6.0)
        assert res.minsum == pytest.approx(3 * 2.0 + 1 * 6.0)

    def test_parallelisation_tradeoff(self):
        # Two linear-speedup tasks on 2 procs: run both sequentially side by
        # side (Cmax 4) rather than gang them (Cmax 2+2 = 4): equal here,
        # but minsum prefers ganging the heavy one first.
        a = MoldableTask(0, [4.0, 2.0], weight=10.0)
        b = MoldableTask(1, [4.0, 2.0], weight=1.0)
        res = exact_reference(Instance([a, b], 2))
        assert res.cmax == pytest.approx(4.0)
        # Gang order a,b: 10*2 + 1*4 = 24; side-by-side: 10*4 + 1*4 = 44.
        assert res.minsum == pytest.approx(24.0)

    def test_schedules_are_feasible(self):
        inst = make_instance(n=4, m=3, seq_time=5.0, speedup="sqrt")
        res = exact_reference(inst)
        validate_schedule(res.cmax_schedule, inst)
        validate_schedule(res.minsum_schedule, inst)
        assert res.cmax_schedule.makespan() == pytest.approx(res.cmax)
        assert res.minsum_schedule.weighted_completion_sum() == pytest.approx(res.minsum)

    def test_size_cap(self):
        inst = make_instance(n=MAX_EXACT_TASKS + 1, m=2)
        with pytest.raises(ModelError):
            exact_reference(inst)

    def test_heuristics_never_beat_exact(self):
        from repro.algorithms.demt import schedule_demt
        from repro.algorithms.gang import schedule_gang

        rng = np.random.default_rng(7)
        for _ in range(5):
            tasks = [
                MoldableTask(
                    i,
                    float(rng.uniform(1, 8))
                    / np.arange(1, 4) ** float(rng.uniform(0, 1)),
                    weight=float(rng.uniform(1, 5)),
                )
                for i in range(4)
            ]
            inst = Instance(tasks, 3)
            res = exact_reference(inst)
            assert schedule_demt(inst).makespan() >= res.cmax - 1e-9
            assert schedule_demt(inst).weighted_completion_sum() >= res.minsum - 1e-9
            assert schedule_gang(inst).weighted_completion_sum() >= res.minsum - 1e-9
