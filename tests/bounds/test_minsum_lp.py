"""Unit + property tests for the LP-relaxation minsum lower bound."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.demt import schedule_demt
from repro.algorithms.dual_approx import dual_approximation
from repro.bounds.minsum_lp import build_time_grid, minsum_lower_bound
from repro.core.instance import Instance
from repro.core.task import MoldableTask
from repro.workloads.generator import generate_workload

from tests.conftest import make_instance


class TestTimeGrid:
    def test_doubles_and_ends_at_twice_estimate(self):
        inst = make_instance(n=4, m=4, seq_time=8.0)
        grid = build_time_grid(inst, cmax_estimate=10.0)
        assert grid[-1] == pytest.approx(20.0)
        for a, b in zip(grid, grid[1:]):
            assert b == pytest.approx(2 * a)

    def test_first_point_at_least_tmin(self):
        inst = make_instance(n=4, m=4, seq_time=8.0)
        grid = build_time_grid(inst, cmax_estimate=13.7)
        assert grid[0] >= inst.tmin - 1e-12

    def test_invalid_estimate(self):
        inst = make_instance(n=1, m=2)
        with pytest.raises(ValueError):
            build_time_grid(inst, 0.0)


class TestMinsumBound:
    def test_empty_instance(self):
        res = minsum_lower_bound(Instance([], 4), cmax_estimate=1.0)
        assert res.value == 0.0

    def test_single_task_bound_positive_and_valid(self):
        t = MoldableTask(0, [4.0, 2.5], weight=3.0)
        inst = Instance([t], 2)
        res = minsum_lower_bound(inst)
        # Optimal completion is 2.5 -> minsum 7.5; bound must not exceed it
        # and should be positive (the task cannot finish before 1.25).
        assert 0.0 < res.value <= 7.5 + 1e-9

    def test_bound_below_every_algorithm(self):
        from repro.algorithms.registry import PAPER_ALGORITHMS, get_algorithm

        inst = generate_workload("mixed", n=30, m=16, seed=41)
        dual = dual_approximation(inst)
        lb = minsum_lower_bound(inst, dual.lam).value
        for name in PAPER_ALGORITHMS:
            s = get_algorithm(name).schedule(inst)
            assert lb <= s.weighted_completion_sum() + 1e-6, name

    def test_relaxation_weaker_than_ilp(self):
        """§3.3: the relaxed bound 'might be weaker, but is much faster'."""
        inst = generate_workload("cirne", n=10, m=4, seed=42)
        lam = dual_approximation(inst).lam
        lp = minsum_lower_bound(inst, lam, integral=False)
        ilp = minsum_lower_bound(inst, lam, integral=True)
        assert lp.value <= ilp.value + 1e-6
        assert ilp.integral and not lp.integral

    def test_x_rows_cover_each_task(self):
        inst = generate_workload("highly_parallel", n=12, m=8, seed=43)
        res = minsum_lower_bound(inst)
        assert res.x.shape[0] == 12
        assert (res.x.sum(axis=1) >= 1 - 1e-6).all()

    def test_boundaries_start_at_zero(self):
        inst = generate_workload("mixed", n=8, m=4, seed=44)
        res = minsum_lower_bound(inst)
        assert res.boundaries[0] == 0.0
        assert (np.diff(res.boundaries) > 0).all()

    def test_weights_scale_bound(self):
        base = generate_workload("mixed", n=10, m=4, seed=45)
        lam = dual_approximation(base).lam
        doubled = Instance(
            [MoldableTask(t.task_id, t.times, weight=2 * t.weight) for t in base],
            base.m,
        )
        a = minsum_lower_bound(base, lam).value
        b = minsum_lower_bound(doubled, lam).value
        assert b == pytest.approx(2 * a, rel=1e-6)

    def test_bound_grows_with_load(self):
        small = generate_workload("cirne", n=10, m=8, seed=46)
        big = generate_workload("cirne", n=40, m=8, seed=46)
        assert minsum_lower_bound(big).value > minsum_lower_bound(small).value

    @given(seed=st.integers(0, 9999), n=st.integers(1, 5), m=st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_property_lower_bounds_exact_optimum(self, seed, n, m):
        """The heart of §3.3: LP value <= optimal minsum (verified against
        the exhaustive solver on tiny instances)."""
        from repro.bounds.exact import exact_reference

        rng = np.random.default_rng(seed)
        tasks = []
        for i in range(n):
            seq = float(rng.uniform(1, 10))
            alpha = float(rng.uniform(0, 1))
            times = seq / np.arange(1, m + 1) ** alpha
            tasks.append(MoldableTask(i, times, weight=float(rng.uniform(1, 10))))
        inst = Instance(tasks, m)
        exact = exact_reference(inst)
        lb = minsum_lower_bound(inst).value
        assert lb <= exact.minsum + 1e-6
        # Sanity: the bound is not trivially zero on non-trivial instances.
        assert lb > 0.0

    @given(seed=st.integers(0, 9999))
    @settings(max_examples=10, deadline=None)
    def test_property_ilp_also_below_optimum(self, seed):
        from repro.bounds.exact import exact_reference

        rng = np.random.default_rng(seed)
        tasks = [
            MoldableTask(
                i,
                float(rng.uniform(1, 8)) / np.arange(1, 4) ** float(rng.uniform(0, 1)),
                weight=float(rng.uniform(1, 5)),
            )
            for i in range(4)
        ]
        inst = Instance(tasks, 3)
        exact = exact_reference(inst)
        ilp = minsum_lower_bound(inst, integral=True).value
        assert ilp <= exact.minsum + 1e-6
