"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.instance import Instance
from repro.core.task import MoldableTask


def make_task(
    task_id: int,
    seq_time: float,
    m: int = 8,
    speedup: str = "linear",
    weight: float = 1.0,
) -> MoldableTask:
    """Build a simple monotonic moldable task for tests.

    ``speedup``:
      * ``"linear"`` — perfect speedup ``p(k) = p1/k`` (constant work);
      * ``"none"`` — no speedup ``p(k) = p1`` (work grows linearly);
      * ``"sqrt"`` — intermediate ``p(k) = p1/sqrt(k)``.
    """
    ks = np.arange(1, m + 1, dtype=np.float64)
    if speedup == "linear":
        times = seq_time / ks
    elif speedup == "none":
        times = np.full(m, seq_time)
    elif speedup == "sqrt":
        times = seq_time / np.sqrt(ks)
    else:  # pragma: no cover - defensive
        raise ValueError(speedup)
    return MoldableTask(task_id, times, weight=weight)


def make_instance(
    n: int = 5,
    m: int = 8,
    seq_time: float = 10.0,
    speedup: str = "linear",
    weights: list[float] | None = None,
) -> Instance:
    """A small, fully regular instance for algorithm smoke tests."""
    tasks = [
        make_task(i, seq_time, m=m, speedup=speedup, weight=(weights[i] if weights else 1.0))
        for i in range(n)
    ]
    return Instance(tasks, m)


@pytest.fixture
def tiny_instance() -> Instance:
    """3 tasks, 4 processors, mixed speedups — a hand-checkable instance."""
    t0 = MoldableTask(0, [4.0, 2.0, 1.5, 1.2], weight=2.0)
    t1 = MoldableTask(1, [6.0, 3.5, 2.5, 2.0], weight=1.0)
    t2 = MoldableTask(2, [2.0, 2.0, 2.0, 2.0], weight=3.0)
    return Instance([t0, t1, t2], 4)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: archive-scale tests, skipped unless REPRO_RUN_SLOW=1 "
        "(CI runs them in the slow lane)",
    )
