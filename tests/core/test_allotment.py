"""Unit tests for repro.core.allotment."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allotment import (
    minimal_allotment,
    minimal_allotments,
    minimal_area_allotment,
    minimal_area_allotments,
)
from repro.core.instance import Instance
from repro.core.task import MoldableTask


class TestMinimalAllotment:
    def test_exact_boundary_included(self):
        t = MoldableTask(0, [10.0, 6.0, 4.5])
        assert minimal_allotment(t, 6.0) == 2

    def test_smallest_k_chosen(self):
        t = MoldableTask(0, [10.0, 6.0, 4.5])
        assert minimal_allotment(t, 100.0) == 1

    def test_none_when_impossible(self):
        t = MoldableTask(0, [10.0, 6.0])
        assert minimal_allotment(t, 1.0) is None

    def test_m_limit_respected(self):
        t = MoldableTask(0, [10.0, 6.0, 4.5])
        assert minimal_allotment(t, 5.0, m=2) is None
        assert minimal_allotment(t, 5.0, m=3) == 3

    def test_skips_infinite_entries(self):
        t = MoldableTask(0, [np.inf, 3.0])
        assert minimal_allotment(t, 4.0) == 2


class TestVectorised:
    def test_matches_scalar(self):
        tasks = [
            MoldableTask(0, [10.0, 6.0, 4.5, 4.0]),
            MoldableTask(1, [2.0, 1.5, 1.2, 1.0]),
            MoldableTask(2, [50.0, 30.0, 20.0, 15.0]),
        ]
        inst = Instance(tasks, 4)
        for deadline in (1.0, 2.0, 4.5, 6.0, 100.0):
            vec = minimal_allotments(inst.times_matrix, deadline)
            for i, t in enumerate(tasks):
                scalar = minimal_allotment(t, deadline, m=4)
                assert vec[i] == (0 if scalar is None else scalar)

    @given(
        times=st.lists(
            st.lists(st.floats(min_value=0.5, max_value=50.0), min_size=3, max_size=3),
            min_size=1,
            max_size=8,
        ),
        deadline=st.floats(min_value=0.1, max_value=60.0),
    )
    @settings(max_examples=60)
    def test_property_vector_equals_scalar(self, times, deadline):
        tasks = [MoldableTask(i, sorted(ts, reverse=True)) for i, ts in enumerate(times)]
        inst = Instance(tasks, 3)
        vec = minimal_allotments(inst.times_matrix, deadline)
        for i, t in enumerate(tasks):
            scalar = minimal_allotment(t, deadline, m=3)
            assert vec[i] == (0 if scalar is None else scalar)


class TestMinimalArea:
    def test_monotonic_task_minimal_area_is_minimal_allotment(self):
        t = MoldableTask(0, [10.0, 6.0, 4.5])  # works 10, 12, 13.5
        k, area = minimal_area_allotment(t, 6.0)
        assert k == 2 and area == pytest.approx(12.0)

    def test_non_monotonic_picks_cheaper_larger_allotment(self):
        # p = [10, 2]: works 10 vs 4 -> with deadline 10, k=2 is cheaper.
        t = MoldableTask(0, [10.0, 2.0])
        k, area = minimal_area_allotment(t, 10.0)
        assert k == 2 and area == pytest.approx(4.0)

    def test_none_when_impossible(self):
        t = MoldableTask(0, [10.0])
        assert minimal_area_allotment(t, 5.0) is None

    def test_vectorised_matches_scalar(self):
        tasks = [
            MoldableTask(0, [10.0, 6.0, 4.5]),
            MoldableTask(1, [3.0, 3.0, 3.0]),
            MoldableTask(2, [9.0, 4.0, 3.5]),
        ]
        inst = Instance(tasks, 3)
        for deadline in (2.0, 3.0, 4.5, 9.0, 20.0):
            vec = minimal_area_allotments(inst.times_matrix, deadline)
            for i, t in enumerate(tasks):
                scalar = minimal_area_allotment(t, deadline, m=3)
                if scalar is None:
                    assert np.isinf(vec[i])
                else:
                    assert vec[i] == pytest.approx(scalar[1])

    def test_infinite_when_nothing_fits(self):
        inst = Instance([MoldableTask(0, [10.0, 8.0])], 2)
        vec = minimal_area_allotments(inst.times_matrix, 1.0)
        assert np.isinf(vec[0])
