"""Unit tests for repro.core.instance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.instance import Instance
from repro.core.task import MoldableTask, rigid_task
from repro.exceptions import InvalidInstanceError

from tests.conftest import make_instance, make_task


class TestConstruction:
    def test_basic(self):
        inst = make_instance(n=3, m=4)
        assert inst.n == 3 and inst.m == 4
        assert len(inst) == 3

    def test_iteration_preserves_order(self):
        inst = make_instance(n=5, m=4)
        assert [t.task_id for t in inst] == [0, 1, 2, 3, 4]

    def test_duplicate_ids_rejected(self):
        t = MoldableTask(0, [1.0])
        with pytest.raises(InvalidInstanceError, match="duplicate"):
            Instance([t, MoldableTask(0, [2.0])], 2)

    def test_zero_processors_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Instance([MoldableTask(0, [1.0])], 0)

    def test_task_infeasible_within_m_rejected(self):
        # Rigid task on 4 procs, machine has only 2.
        t = rigid_task(0, procs=4, time=1.0)
        with pytest.raises(InvalidInstanceError, match="no feasible allotment"):
            Instance([t], 2)

    def test_empty_instance_allowed(self):
        inst = Instance([], 4)
        assert inst.n == 0

    def test_getitem_and_lookup(self):
        inst = make_instance(n=3, m=2)
        assert inst[1].task_id == 1
        assert inst.task_by_id(2).task_id == 2
        with pytest.raises(KeyError):
            inst.task_by_id(99)


class TestDerived:
    def test_times_matrix_shape_and_padding(self):
        short = MoldableTask(0, [4.0, 2.0])  # shorter than m
        inst = Instance([short], 4)
        tm = inst.times_matrix
        assert tm.shape == (1, 4)
        assert tm[0, 0] == 4.0 and tm[0, 1] == 2.0
        assert np.isinf(tm[0, 2]) and np.isinf(tm[0, 3])

    def test_times_matrix_truncation(self):
        long = MoldableTask(0, [4.0, 2.0, 1.0, 0.5])
        inst = Instance([long], 2)
        assert inst.times_matrix.shape == (1, 2)

    def test_weights_vector(self):
        inst = Instance(
            [MoldableTask(0, [1.0], weight=2.0), MoldableTask(1, [1.0], weight=5.0)], 2
        )
        assert np.allclose(inst.weights, [2.0, 5.0])

    def test_tmin(self):
        inst = make_instance(n=2, m=4, seq_time=8.0, speedup="linear")
        assert inst.tmin == pytest.approx(2.0)  # 8/4

    def test_max_min_time(self):
        a = MoldableTask(0, [8.0, 4.0])
        b = MoldableTask(1, [10.0, 10.0])
        inst = Instance([a, b], 2)
        assert inst.max_min_time == 10.0

    def test_min_total_work_linear_speedup(self):
        # Perfect speedup: minimal work = sequential work for each task.
        inst = make_instance(n=3, m=4, seq_time=8.0, speedup="linear")
        assert inst.min_total_work == pytest.approx(3 * 8.0)

    def test_is_offline(self):
        inst = make_instance(n=2)
        assert inst.is_offline()
        t = MoldableTask(0, [1.0], release=3.0)
        assert not Instance([t], 1).is_offline()
        assert Instance([t], 1).max_release == 3.0


class TestRestrict:
    def test_restrict_keeps_machine_and_ids(self):
        inst = make_instance(n=5, m=8)
        sub = inst.restrict([1, 3])
        assert sub.m == 8
        assert sorted(t.task_id for t in sub) == [1, 3]

    def test_restrict_missing_id_raises(self):
        inst = make_instance(n=3)
        with pytest.raises(KeyError):
            inst.restrict([0, 42])

    def test_restrict_empty(self):
        inst = make_instance(n=3)
        assert inst.restrict([]).n == 0
