"""Unit tests for repro.core.metrics."""

from __future__ import annotations

import pytest

from repro.core import metrics
from repro.core.schedule import Schedule
from repro.core.task import MoldableTask

from tests.conftest import make_task


@pytest.fixture
def sched() -> Schedule:
    s = Schedule(m=4)
    s.add(make_task(0, 8.0, m=4, weight=1.0), 0.0, 2)  # p=4, C=4, work 8
    s.add(make_task(1, 6.0, m=4, weight=2.0), 0.0, 2)  # p=3, C=3, work 6
    return s


def test_makespan(sched):
    assert metrics.makespan(sched) == pytest.approx(4.0)


def test_completion_sum(sched):
    assert metrics.completion_sum(sched) == pytest.approx(7.0)


def test_weighted_completion_sum(sched):
    assert metrics.weighted_completion_sum(sched) == pytest.approx(4.0 + 6.0)


def test_total_work(sched):
    assert metrics.total_work(sched) == pytest.approx(14.0)


def test_utilization(sched):
    # Busy area 14 over m*Cmax = 16.
    assert metrics.utilization(sched) == pytest.approx(14.0 / 16.0)


def test_utilization_empty():
    assert metrics.utilization(Schedule(m=2)) == 0.0


def test_max_stretch():
    s = Schedule(m=2)
    t = MoldableTask(0, [4.0, 2.0])
    s.add(t, 2.0, 2)  # C = 4, min_time = 2 -> stretch 2
    assert metrics.max_stretch(s) == pytest.approx(2.0)


def test_max_stretch_accounts_release():
    s = Schedule(m=2)
    t = MoldableTask(0, [4.0, 2.0], release=2.0)
    s.add(t, 2.0, 2)  # flow = 2, min_time 2 -> stretch 1
    assert metrics.max_stretch(s) == pytest.approx(1.0)


def test_mean_weighted_flow(sched):
    # (1*4 + 2*3) / 2
    assert metrics.mean_weighted_flow(sched) == pytest.approx(5.0)


def test_mean_weighted_flow_empty():
    assert metrics.mean_weighted_flow(Schedule(m=1)) == 0.0
