"""Unit tests for the vectorized scheduling core (FreeProfile + kernel)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.profile import FreeProfile, graham_starts
from repro.exceptions import SchedulingError


class TestGrahamStarts:
    def test_empty(self):
        starts, order = graham_starts(np.array([], dtype=np.int64), np.array([]), 4)
        assert starts.size == 0 and order == []

    def test_sequentialises_on_one_processor(self):
        starts, order = graham_starts([1, 1, 1], [2.0, 3.0, 1.0], 1)
        assert starts.tolist() == [0.0, 2.0, 5.0]
        assert order == [0, 1, 2]

    def test_parallel_fill(self):
        # Two fit side by side; the third waits for the earliest completion.
        starts, _ = graham_starts([2, 2, 2], [4.0, 2.0, 3.0], 4)
        assert starts.tolist() == [0.0, 0.0, 2.0]

    def test_overtaking_preserves_priority_scan(self):
        # Item 1 (width 3) stalls behind item 0; item 2 (width 1) fits now
        # and legitimately overtakes — exactly Graham's rule.
        starts, order = graham_starts([2, 3, 1], [4.0, 2.0, 1.0], 3)
        assert starts[0] == 0.0
        assert starts[2] == 0.0
        assert starts[1] == 4.0
        assert order == [0, 2, 1]

    def test_start_time_offset(self):
        starts, _ = graham_starts([1], [1.0], 2, start_time=5.5)
        assert starts[0] == 5.5

    def test_cutoff_aborts(self):
        assert graham_starts([1, 1], [10.0, 10.0], 1, cutoff=5.0) is None

    def test_cutoff_survives_when_under(self):
        result = graham_starts([1, 1], [1.0, 1.0], 2, cutoff=5.0)
        assert result is not None

    def test_simultaneous_completions_free_together(self):
        # Both finish at t=2; the wide item needs all processors at once.
        starts, _ = graham_starts([1, 1, 2], [2.0, 2.0, 1.0], 2)
        assert starts.tolist() == [0.0, 0.0, 2.0]


class TestFreeProfile:
    def test_empty_machine_starts_at_zero(self):
        prof = FreeProfile(4)
        assert prof.earliest_fit(4, 10.0) == 0.0
        assert prof.usage_at(0.0) == 0

    def test_rejects_oversized_allotment(self):
        with pytest.raises(SchedulingError):
            FreeProfile(2).earliest_fit(3, 1.0)

    def test_reserve_and_query(self):
        prof = FreeProfile(3)
        prof.reserve(0.0, 5.0, 2)
        assert prof.usage_at(2.5) == 2
        assert prof.usage_at(5.0) == 0  # half-open interval
        assert prof.earliest_fit(1, 1.0) == 0.0  # one processor still free
        assert prof.earliest_fit(2, 1.0) == 5.0

    def test_window_must_stay_free_throughout(self):
        prof = FreeProfile(2)
        prof.reserve(3.0, 1.0, 2)  # blocks [3, 4)
        # A 2-wide task of duration 4 cannot start at 0 (hits the block);
        # earliest is after the block.
        assert prof.earliest_fit(2, 4.0) == 4.0
        # Duration 3 fits exactly in [0, 3) before the block (half-open).
        assert prof.earliest_fit(2, 3.0) == 0.0

    def test_not_before(self):
        prof = FreeProfile(2)
        prof.reserve(0.0, 2.0, 1)
        assert prof.earliest_fit(1, 1.0, not_before=0.5) == 0.5
        assert prof.earliest_fit(2, 1.0, not_before=0.5) == 2.0

    def test_gap_filling(self):
        prof = FreeProfile(2)
        prof.reserve(0.0, 1.0, 2)
        prof.reserve(3.0, 1.0, 2)
        assert prof.earliest_fit(2, 2.0) == 1.0  # the [1, 3) hole
        assert prof.earliest_fit(2, 2.5) == 4.0  # too long for the hole

    def test_incremental_matches_rebuild(self):
        """Random reservations: earliest_fit equals a brute-force rescan."""
        rng = np.random.default_rng(7)
        m = 5
        prof = FreeProfile(m)
        placed: list[tuple[float, float, int]] = []
        for _ in range(60):
            a = int(rng.integers(1, m + 1))
            d = float(rng.uniform(0.1, 3.0))
            start = prof.earliest_fit(a, d)
            brute = _brute_earliest_fit(placed, a, d, m)
            assert start == brute, (placed, a, d)
            prof.reserve(start, d, a)
            placed.append((start, start + d, a))

    def test_zero_duration_reserve_is_noop(self):
        prof = FreeProfile(2)
        prof.reserve(1.0, 0.0, 2)
        assert prof.earliest_fit(2, 1.0) == 0.0


def _brute_earliest_fit(placed, allotment, duration, m):
    """The seed's quadratic candidate scan (oracle)."""
    candidates = sorted({0.0, *(e for _, e, _ in placed)})
    for t0 in candidates:
        t1 = t0 + duration
        points = [t0, *(s for s, _, _ in placed if t0 < s < t1)]
        if all(
            sum(a for s, e, a in placed if s <= p < e) + allotment <= m
            for p in points
        ):
            return t0
    return max((e for _, e, _ in placed), default=0.0)


class TestFreeProfileAmortisedGrowth:
    """PR-6 regressions: reserve() used to rebuild both breakpoint arrays
    with np.insert per call (O(n^2) growth) and wrapped a negative start
    straight into ``usage[-1]`` via the searchsorted index."""

    def test_negative_start_rejected(self):
        prof = FreeProfile(4)
        with pytest.raises(SchedulingError, match="must be >= 0"):
            prof.reserve(-1.0, 2.0, 1)

    def test_negative_start_zero_duration_still_noop(self):
        # duration <= 0 was (and stays) a silent no-op, even before the
        # start sign is inspected.
        prof = FreeProfile(4)
        prof.reserve(-5.0, 0.0, 1)
        assert prof.usage_at(0.0) == 0

    def test_capacity_doubles_not_per_insert(self):
        prof = FreeProfile(8)
        for i in range(500):
            prof.reserve(float(2 * i), 1.0, 1)
        # live breakpoints: one per reservation edge (the first start
        # coincides with the origin breakpoint)
        assert prof._size == 1000
        capacity = prof._times.size
        assert capacity >= prof._size
        # geometric doubling: capacity is 16 * 2^k and within 2x of the need
        assert capacity & (capacity - 1) == 0
        assert capacity < 2 * prof._size + 16

    def test_growth_preserves_profile_semantics(self):
        rng = np.random.default_rng(42)
        prof = FreeProfile(6)
        placed: list[tuple[float, float, int]] = []
        for _ in range(200):
            start = float(rng.integers(0, 50)) * 0.5
            duration = float(rng.integers(1, 8)) * 0.25
            allot = int(rng.integers(1, 4))
            prof.reserve(start, duration, allot)
            placed.append((start, start + duration, allot))
        for probe in np.arange(0.0, 30.0, 0.25):
            expected = sum(a for s, e, a in placed if s <= probe < e)
            assert prof.usage_at(float(probe)) == expected

    def test_earliest_fit_ignores_spare_capacity(self):
        prof = FreeProfile(2)
        for i in range(40):  # force several doublings
            prof.reserve(float(i), 1.0, 2)
        assert prof.earliest_fit(1, 1.0) == 40.0
